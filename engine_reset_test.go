package photonrail

import (
	"encoding/json"
	"sync"
	"testing"
)

// resetGrid is a cheap 4-cell grid used by the reset/bounded tests.
func resetGrid() Grid {
	return Grid{
		Name:        "reset-race",
		Fabrics:     []GridFabricKind{GridElectrical, GridPhotonic},
		LatenciesMS: []float64{1, 10, 100},
		Iterations:  1,
	}
}

func gridJSON(t *testing.T, res *GridResult) string {
	t.Helper()
	b, err := json.Marshal(res.Rows())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestResetCacheDuringParallelGrid is the regression test for the
// ResetCache/in-flight race: hammering ResetCache while a parallel grid
// runs must lose no cell (every caller resolves with the right value)
// and duplicate no in-flight simulation (singleflight holds across the
// reset), so the result stays byte-identical to an undisturbed run.
func TestResetCacheDuringParallelGrid(t *testing.T) {
	clean, err := NewEngine(4).RunGrid(resetGrid())
	if err != nil {
		t.Fatal(err)
	}
	want := gridJSON(t, clean)

	for trial := 0; trial < 3; trial++ {
		en := NewEngine(4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					en.ResetCache()
				}
			}
		}()
		res, err := en.RunGrid(resetGrid())
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := gridJSON(t, res); got != want {
			t.Fatalf("trial %d: grid under ResetCache hammering diverged\ngot:  %s\nwant: %s", trial, got, want)
		}
		if st := en.CacheStats(); st.InFlight != 0 {
			t.Fatalf("trial %d: inflight = %d after grid completed", trial, st.InFlight)
		}
	}
}

// TestBoundedEngineEvictsAndReports exercises the daemon-facing cache
// bound: a tiny budget forces evictions on a grid with more distinct
// simulations than the cap, the telemetry reports them, and results are
// still byte-identical to an unbounded engine's.
func TestBoundedEngineEvictsAndReports(t *testing.T) {
	clean, err := NewEngine(2).RunGrid(resetGrid())
	if err != nil {
		t.Fatal(err)
	}
	en := NewBoundedEngine(2, 1) // at most one cached simulation
	res, err := en.RunGrid(resetGrid())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gridJSON(t, res), gridJSON(t, clean); got != want {
		t.Fatalf("bounded engine diverged\ngot:  %s\nwant: %s", got, want)
	}
	st := en.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a 1-unit cap", st)
	}
	if st.Misses == 0 {
		t.Fatalf("stats = %+v, want misses", st)
	}
}
