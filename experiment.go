package photonrail

// The experiment registry: every figure, table, and scenario grid the
// repository reproduces is a named, parameterized, cancellable
// Experiment. The registry is the single entry point every client
// shares — the CLIs (cmd/railsweep, cmd/railgrid, cmd/railwindows,
// cmd/railcost), the raild daemon (which serves exp_req frames for any
// registered name), and library callers — while the historical
// package-level and Engine signatures remain as thin compatibility
// wrappers with byte-identical output.
//
// The cancellation contract, top to bottom:
//
//   - Experiment.Run(ctx, …) with a cancelled ctx returns ctx.Err()
//     promptly: fan-out stops scheduling new simulation jobs and the
//     caller does not wait for in-flight ones to wind down;
//   - simulations other callers share (via the engine's memo cache) are
//     never killed by one caller's cancellation — the computation
//     finishes for the survivors, and only becomes cancellable when its
//     last waiter departs (see internal/exp's detached singleflight);
//   - an abandoned, cancelled computation is not memoized, so a later
//     request recomputes cleanly.

import (
	"context"
	"fmt"
	"io"
	"sort"

	"photonrail/internal/cost"
	"photonrail/internal/exp"
	"photonrail/internal/parallelism"
	"photonrail/internal/report"
	"photonrail/internal/scenario"
	"photonrail/internal/topo"
)

// Compile-time proof that the historical public signatures survive the
// registry redesign unchanged (the compatibility contract of this API).
var (
	_ func(Workload, []float64) ([]SweepPoint, error) = SweepReconfigLatency
	_ func(Workload) (*WindowReport, error)           = AnalyzeWindows
	_ func() ([]cost.Fig7Row, error)                  = CostComparison
	_ func(Grid) (*GridResult, error)                 = RunGrid
)

// Params parameterizes an Experiment run. Zero values take each
// experiment's documented defaults, so Params{} runs every experiment
// at its paper-canonical scale.
type Params struct {
	// Iterations is the training iteration count for fig8 simulations
	// (0 = 2).
	Iterations int
	// WindowIterations is the iteration count for the trace/window
	// analyses — fig3, fig4, window-analysis (0 = 10).
	WindowIterations int
	// LatenciesMS is fig8's x-axis (nil = the paper's PaperLatenciesMS).
	LatenciesMS []float64
	// Rail selects the rail for the fig3 timeline.
	Rail int
	// GPUs is the cluster size for the bom experiment (0 = 8192).
	GPUs int
	// Grid supplies the scenario grid for the "grid" experiment (nil =
	// the paper-default custom grid). Built-in grid experiments (e.g.
	// "fig8-5d") run their registered grid when Grid is nil and the
	// given spec — typically the registered grid's axes with CLI
	// overrides applied — otherwise.
	Grid *GridSpec
	// OnProgress, when non-nil, receives per-cell completion ticks from
	// grid experiments (completion order; it must not block).
	OnProgress func(done, total int)
}

// ParamInfo documents one parameter an experiment honors, for
// discoverable listings (railsweep -list, the daemon's catalog).
type ParamInfo struct {
	// Name is the Params field consulted.
	Name string
	// Default is the zero-value meaning, as a human-readable string.
	Default string
	// Doc is a one-line description.
	Doc string
}

// Section is one ordered unit of an experiment's rendered output:
// either a table or verbatim text (separators, footers). Rendering a
// result is the plain concatenation of its sections, so the registry
// reproduces each historical CLI's output byte for byte.
type Section struct {
	// Table, when non-nil, renders as an aligned table (or CSV in CSV
	// mode) followed by nothing — spacing lives in Text sections.
	Table *report.Table
	// Text is written verbatim when Table is nil.
	Text string
}

// ExperimentResult is one completed experiment run: the ordered
// rendering sections plus the structured rows scripted consumers get
// from JSON output.
type ExperimentResult struct {
	// Experiment is the registry name that produced the result.
	Experiment string
	// Grid is the executed grid's name for grid experiments ("" otherwise).
	Grid string
	// Sections is the aligned-text rendering, in order.
	Sections []Section
	// CSVSections, when non-nil, replaces Sections in CSV mode (grid
	// experiments render a fully numeric table there); nil means CSV
	// mode renders Sections with each table as CSV.
	CSVSections []Section
	// Rows is the structured payload: exactly what -json emits.
	Rows any
}

// RenderText writes the aligned-text rendering: tables aligned, text
// sections verbatim, concatenated in order.
func (r *ExperimentResult) RenderText(w io.Writer) error {
	return renderSections(w, r.Sections, false)
}

// RenderCSV writes the CSV rendering: each table as CSV, text sections
// verbatim.
func (r *ExperimentResult) RenderCSV(w io.Writer) error {
	sections := r.Sections
	if r.CSVSections != nil {
		sections = r.CSVSections
	}
	return renderSections(w, sections, true)
}

// RenderJSON writes the structured rows as indented JSON.
func (r *ExperimentResult) RenderJSON(w io.Writer) error {
	return report.JSON(w, r.Rows)
}

func renderSections(w io.Writer, sections []Section, csv bool) error {
	for _, s := range sections {
		if s.Table != nil {
			var err error
			if csv {
				err = s.Table.CSV(w)
			} else {
				err = s.Table.Render(w)
			}
			if err != nil {
				return err
			}
			continue
		}
		if _, err := io.WriteString(w, s.Text); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a named, parameterized, cancellable experiment — one
// unit of the registry.
type Experiment struct {
	// Name is the registry key (also the CLI spelling).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Params documents the Params fields the experiment honors.
	Params []ParamInfo

	run func(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error)
}

// Run executes the experiment on the engine (nil = DefaultEngine) with
// the given parameters. A cancelled ctx returns ctx.Err() promptly; see
// the package cancellation contract above.
func (e Experiment) Run(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	if e.run == nil {
		return nil, fmt.Errorf("photonrail: experiment %q is not runnable", e.Name)
	}
	if en == nil {
		en = DefaultEngine()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := e.run(ctx, en, p)
	if err != nil {
		return nil, err
	}
	res.Experiment = e.Name
	return res, nil
}

// Experiments lists the registry sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Defaults shared by the registry entries and their CLI wrappers.
const (
	defaultFig8Iterations   = 2
	defaultWindowIterations = 10
	defaultBOMGPUs          = 8192
)

func fig8Iterations(p Params) int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return defaultFig8Iterations
}

func windowIterations(p Params) int {
	if p.WindowIterations > 0 {
		return p.WindowIterations
	}
	return defaultWindowIterations
}

// Fig4Summary is the scripted-consumer shape of the fig4 experiment:
// the per-rail window-size quantiles and the rail-0 traffic-class
// breakdown (this is railsweep's historical -json fig4 payload).
type Fig4Summary struct {
	FractionOver1ms float64           `json:"fractionOver1ms"`
	PerRail         []Fig4RailSummary `json:"perRail"`
	Breakdown       []Fig4Class       `json:"breakdown"`
}

// Fig4RailSummary is one rail's window-size quantiles in milliseconds.
type Fig4RailSummary struct {
	Rail  int     `json:"rail"`
	N     int     `json:"n"`
	P50MS float64 `json:"p50ms"`
	P90MS float64 `json:"p90ms"`
	MaxMS float64 `json:"maxms"`
}

// Fig4Class is one traffic class of the Fig. 4b breakdown.
type Fig4Class struct {
	Class         string  `json:"class"`
	Count         int     `json:"count"`
	MeanWindowMS  float64 `json:"meanWindowMS"`
	MeanBytesNext float64 `json:"meanBytesAfter"`
}

// Fig4SummaryOf flattens a window report into the summary shape.
func Fig4SummaryOf(rep *WindowReport) Fig4Summary {
	out := Fig4Summary{FractionOver1ms: rep.FractionOver1ms}
	for rail := 0; ; rail++ {
		c, ok := rep.PerRailCDF[rail]
		if !ok {
			break
		}
		out.PerRail = append(out.PerRail, Fig4RailSummary{
			Rail: rail, N: c.N(),
			P50MS: c.Quantile(0.50), P90MS: c.Quantile(0.90), MaxMS: c.Quantile(1),
		})
	}
	for _, b := range rep.Breakdown.Buckets() {
		out.Breakdown = append(out.Breakdown, Fig4Class{
			Class: b.Label, Count: b.Count, MeanWindowMS: b.Mean(),
			MeanBytesNext: rep.BreakdownBytes[b.Label],
		})
	}
	return out
}

// Fig8Sweep pairs the fig8 sweep points with the workload scale they
// were simulated at (railsweep's historical -json fig8 payload).
type Fig8Sweep struct {
	Iterations int          `json:"iterations"`
	Points     []SweepPoint `json:"points"`
}

// GridRows is the scripted-consumer shape of a grid experiment: the
// grid's name plus its flat, wire-encodable rows (the historical
// railgrid/railclient -format json document).
type GridRows struct {
	Grid  string         `json:"grid"`
	Cells []scenario.Row `json:"cells"`
}

// tableExperiment registers a static-table experiment: one table, one
// trailing blank line.
func tableExperiment(name, description string, build func() *report.Table) Experiment {
	return Experiment{
		Name:        name,
		Description: description,
		run: func(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
			t := build()
			return &ExperimentResult{
				Sections: []Section{{Table: t}, {Text: "\n"}},
				Rows:     t,
			}, nil
		},
	}
}

var paramIterations = ParamInfo{Name: "Iterations", Default: "2", Doc: "training iterations per simulation"}
var paramWindowIterations = ParamInfo{Name: "WindowIterations", Default: "10", Doc: "iterations traced for the window analysis"}

// registry is the experiment table; built at init from the static
// entries plus one entry per built-in scenario grid.
var registry = buildRegistry()

func buildRegistry() map[string]Experiment {
	reg := make(map[string]Experiment)
	add := func(e Experiment) {
		reg[e.Name] = e
	}

	add(tableExperiment("table1", "Table 1: rule-of-thumb LLM parallelism strategies", Table1))
	add(tableExperiment("table2", "Table 2: characteristics of parallelism strategies", Table2))
	add(tableExperiment("table3", "Table 3: Opus scalability-latency tradeoff", Table3))

	add(Experiment{
		Name:        "eq1",
		Description: "Eq. 1: inter-parallelism windows per training iteration",
		run:         runEq1,
	})
	add(Experiment{
		Name:        "fig3",
		Description: "Fig. 3: per-rail communication timeline of one iteration",
		Params: []ParamInfo{
			paramWindowIterations,
			{Name: "Rail", Default: "0", Doc: "rail whose timeline is rendered"},
		},
		run: runFig3,
	})
	add(Experiment{
		Name:        "fig4",
		Description: "Fig. 4: window-size summary and rail-0 traffic breakdown",
		Params:      []ParamInfo{paramWindowIterations},
		run:         runFig4,
	})
	add(Experiment{
		Name:        "window-analysis",
		Description: "Fig. 4 in full: per-rail window CDF quantiles and breakdown",
		Params:      []ParamInfo{paramWindowIterations},
		run:         runWindowAnalysis,
	})
	add(Experiment{
		Name:        "fig7",
		Description: "Fig. 7: GPU-backend network cost and power across cluster sizes",
		run:         runFig7,
	})
	add(Experiment{
		Name:        "fig8",
		Description: "Fig. 8: normalized iteration time vs reconfiguration latency",
		Params: []ParamInfo{
			paramIterations,
			{Name: "LatenciesMS", Default: "paper x-axis", Doc: "reconfiguration latencies swept, in ms"},
		},
		run: runFig8,
	})
	add(Experiment{
		Name:        "bom",
		Description: "Per-design bills of materials at one cluster size",
		Params: []ParamInfo{
			{Name: "GPUs", Default: "8192", Doc: "cluster size priced"},
		},
		run: runBOM,
	})

	add(Experiment{
		Name:        "grid",
		Description: "Run a custom scenario grid (Params.Grid)",
		Params: []ParamInfo{
			{Name: "Grid", Default: "paper-default grid", Doc: "wire-encodable scenario grid spec"},
			{Name: "OnProgress", Default: "none", Doc: "per-cell completion hook"},
		},
		run: func(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
			var spec GridSpec
			if p.Grid != nil {
				spec = *p.Grid
			}
			if spec.Name == "" {
				spec.Name = "custom"
			}
			g, err := spec.Resolve()
			if err != nil {
				return nil, err
			}
			return runGrid(ctx, en, g, p.OnProgress)
		},
	})
	for name, mk := range scenario.Grids() {
		mk := mk
		add(Experiment{
			Name:        name,
			Description: fmt.Sprintf("Built-in scenario grid %q", name),
			Params: []ParamInfo{
				{Name: "Grid", Default: "the registered grid", Doc: "optional spec overriding the built-in axes"},
				{Name: "OnProgress", Default: "none", Doc: "per-cell completion hook"},
			},
			run: func(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
				g := mk()
				if p.Grid != nil {
					var err error
					if g, err = p.Grid.Resolve(); err != nil {
						return nil, err
					}
				}
				return runGrid(ctx, en, g, p.OnProgress)
			},
		})
	}
	return reg
}

func runEq1(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	t := report.NewTable("Eq. 1: windows per iteration",
		"Workload", "PP", "Layers", "Microbatches", "CP", "EP", "Windows")
	add := func(label string, pp, layers, mb int, cp, ep bool) error {
		n, err := WindowCount(pp, layers, mb, cp, ep)
		if err != nil {
			return err
		}
		t.AddRow(label, pp, layers, mb, cp, ep, n)
		return nil
	}
	if err := add("Llama3-8B (paper §3.1)", 2, 32, 12, false, false); err != nil {
		return nil, err
	}
	if err := add("Llama3.1-405B (1k H100)", 16, 126, 16, true, false); err != nil {
		return nil, err
	}
	if err := add("5D (CP+EP)", 4, 32, 8, true, true); err != nil {
		return nil, err
	}
	n, err := WindowCount(16, 126, 16, true, false)
	if err != nil {
		return nil, err
	}
	footer := fmt.Sprintf("Llama3.1-405B: %.1f windows/second at 20s iterations (paper: ~6/s)\n\n",
		parallelism.WindowsPerSecond(n, 20))
	return &ExperimentResult{
		Sections: []Section{{Table: t}, {Text: "\n"}, {Text: footer}},
		Rows:     t,
	}, nil
}

func runFig3(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	iters := windowIterations(p)
	rep, err := en.AnalyzeWindowsCtx(ctx, PaperWorkload(iters))
	if err != nil {
		return nil, err
	}
	iter := 1
	if iters < 2 {
		iter = 0
	}
	t := TimelineTable(rep.Trace, p.Rail, iter)
	return &ExperimentResult{
		Sections: []Section{{Table: t}, {Text: "\n"}},
		Rows:     t,
	}, nil
}

func runFig4(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	rep, err := en.AnalyzeWindowsCtx(ctx, PaperWorkload(windowIterations(p)))
	if err != nil {
		return nil, err
	}
	sum := Fig4SummaryOf(rep)
	summary := report.NewTable("Fig. 4: window-size summary per rail (ms)",
		"Rail", "N", "p50", "p90", "max")
	for _, r := range sum.PerRail {
		summary.AddRow(fmt.Sprintf("rail%d", r.Rail+1), r.N,
			fmt.Sprintf("%.3g", r.P50MS), fmt.Sprintf("%.3g", r.P90MS), fmt.Sprintf("%.3g", r.MaxMS))
	}
	breakdown := report.NewTable("Fig. 4b: rail-0 windows by following traffic",
		"Traffic class", "Count", "Avg window (ms)", "Avg bytes after")
	for _, c := range sum.Breakdown {
		breakdown.AddRow(c.Class, c.Count, fmt.Sprintf("%.3g", c.MeanWindowMS), fmt.Sprintf("%.3g", c.MeanBytesNext))
	}
	return &ExperimentResult{
		Sections: []Section{
			{Table: summary},
			{Text: fmt.Sprintf("windows over 1ms: %.0f%%\n", 100*sum.FractionOver1ms)},
			{Table: breakdown},
			{Text: "\n"},
		},
		Rows: sum,
	}, nil
}

func runWindowAnalysis(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	rep, err := en.AnalyzeWindowsCtx(ctx, PaperWorkload(windowIterations(p)))
	if err != nil {
		return nil, err
	}
	cdf, breakdown := Fig4Tables(rep)
	return &ExperimentResult{
		Sections: []Section{
			{Table: cdf},
			{Text: "\n"},
			{Table: breakdown},
			{Text: "\n"},
			{Text: fmt.Sprintf("windows over 1ms: %.0f%% (paper: >75%%)\n", 100*rep.FractionOver1ms)},
		},
		Rows: Fig4SummaryOf(rep),
	}, nil
}

func runFig7(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	rows, err := en.CostComparisonCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		Sections: []Section{{Table: Fig7RowsTable(rows)}, {Text: "\n"}},
		Rows:     rows,
	}, nil
}

func runFig8(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	iters := fig8Iterations(p)
	points, err := en.SweepReconfigLatencyCtx(ctx, PaperWorkload(iters), p.LatenciesMS)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		Sections: []Section{{Table: Fig8Table(points)}, {Text: "\n"}},
		Rows:     Fig8Sweep{Iterations: iters, Points: points},
	}, nil
}

func runBOM(ctx context.Context, en *Engine, p Params) (*ExperimentResult, error) {
	gpus := p.GPUs
	if gpus == 0 {
		gpus = defaultBOMGPUs
	}
	if gpus <= 0 {
		return nil, fmt.Errorf("photonrail: bom needs a positive GPU count, got %d", gpus)
	}
	cat := cost.DefaultCatalog()
	ft, err := cost.FatTree(gpus, cat)
	if err != nil {
		return nil, err
	}
	rail, err := cost.RailOptimized(gpus, topo.DGXH200GPUsPerNode, cat)
	if err != nil {
		return nil, err
	}
	op, err := cost.Opus(gpus, topo.DGXH200GPUsPerNode, cat)
	if err != nil {
		return nil, err
	}
	boms := []cost.BOM{ft, rail, op}
	var sections []Section
	for _, b := range boms {
		t := report.NewTable(fmt.Sprintf("%s bill of materials (%d GPUs)", b.Design, b.GPUs),
			"Component", "Count", "Unit price", "Unit power")
		for _, it := range b.Items {
			t.AddRow(it.Device.Name, it.Count, it.Device.Price, it.Device.Power)
		}
		t.AddRow("TOTAL", "", b.TotalCost(), b.TotalPower())
		sections = append(sections, Section{Table: t}, Section{Text: "\n"})
	}
	costFrac, powerFrac := cost.Savings(rail, op)
	sections = append(sections, Section{Text: fmt.Sprintf(
		"Opus vs rail-optimized at %d GPUs: cost -%.1f%%, power -%.2f%% (paper: up to -70.5%% / -95.84%%)\n",
		gpus, 100*costFrac, 100*powerFrac)})
	return &ExperimentResult{Sections: sections, Rows: boms}, nil
}

// runGrid executes a resolved grid and shapes the result with the
// historical railgrid renderings: the aligned table plus an ok/skip
// footer, the fully numeric CSV table, and the {"grid","cells"} JSON
// document.
func runGrid(ctx context.Context, en *Engine, g Grid, onCell func(done, total int)) (*ExperimentResult, error) {
	res, err := en.RunGridProgressCtx(ctx, g, onCell)
	if err != nil {
		return nil, err
	}
	return GridExperimentResult(g.Name, res.Rows()), nil
}

// GridExperimentResult shapes executed grid rows as the grid
// experiment's result: the aligned table plus the ok/skip footer, the
// fully numeric CSV table, and the {"grid","cells"} JSON document.
// Rows are all a renderer needs, so a fleet coordinator that merged
// rows from several daemons renders them byte-identically to a
// single-daemon (or local) run.
func GridExperimentResult(name string, rows []scenario.Row) *ExperimentResult {
	skipped := 0
	for _, row := range rows {
		if row.Status == "skip" {
			skipped++
		}
	}
	return &ExperimentResult{
		Grid: name,
		Sections: []Section{
			{Table: scenario.TableFromRows(name, rows)},
			{Text: fmt.Sprintf("\n%d cells: %d ok, %d skipped\n", len(rows), len(rows)-skipped, skipped)},
		},
		CSVSections: []Section{{Table: scenario.CSVTableFromRows(rows)}},
		Rows:        GridRows{Grid: name, Cells: rows},
	}
}

// DescribeExperiments renders the registry as a human-readable listing:
// one line per experiment plus its honored parameters — the catalog
// railsweep -list prints and the golden registry-surface test pins.
func DescribeExperiments(w io.Writer) error {
	for _, e := range Experiments() {
		if _, err := fmt.Fprintf(w, "%-16s %s\n", e.Name, e.Description); err != nil {
			return err
		}
		for _, p := range e.Params {
			if _, err := fmt.Fprintf(w, "%-18s.%s (default %s): %s\n", "", p.Name, p.Default, p.Doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExperimentKey is the canonical content-address of one experiment
// invocation: a stable hash over the registry name and every parameter
// that can affect the result (OnProgress is observational and excluded).
// The raild daemon keys its request-level singleflight on it, and the
// railgate front door keys its durable result store on the same hash —
// so identical requests coalesce in flight, dedup across daemons, and
// resolve to one stored object across restarts. Parameters are hashed
// as given: a zero value and its spelled-out default produce different
// keys even though they run identically, matching the daemon's
// singleflight behavior since PR 4.
func ExperimentKey(name string, p Params) string {
	var spec GridSpec
	if p.Grid != nil {
		spec = *p.Grid
	}
	return exp.Key("exp", name, p.Iterations, p.WindowIterations, p.LatenciesMS, p.Rail, p.GPUs, spec)
}

// ExperimentNames lists the registered experiment names, sorted.
func ExperimentNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsGridExperiment reports whether the named experiment executes a
// scenario grid (and therefore honors Params.Grid / renders grid rows).
func IsGridExperiment(name string) bool {
	if name == "grid" {
		return true
	}
	_, ok := scenario.Grids()[name]
	return ok
}
