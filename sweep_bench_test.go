// Benchmarks for the concurrent experiment engine: the acceptance bar
// is BenchmarkSweepParallel ≥ 2× faster wall-clock than
// BenchmarkSweepSequential on a 4+-core machine, with byte-identical
// []SweepPoint output (asserted by TestSweepParallelDeterminism).
//
// Compare with:
//
//	go test -bench 'BenchmarkSweep(Sequential|Parallel)$' -benchtime 2x
package photonrail

import (
	"runtime"
	"testing"
)

// sweepBenchConfig scales the benchmark workload down under -short so
// CI smoke runs stay quick; the full config is the paper's Fig. 8.
func sweepBenchConfig() (Workload, []float64) {
	if testing.Short() {
		return PaperWorkload(1), []float64{0, 10, 100}
	}
	return PaperWorkload(2), PaperLatenciesMS()
}

// benchmarkSweep times full sweep batches on fresh engines (a fresh
// engine per iteration, so every batch pays its simulations instead of
// replaying a warm cache).
func benchmarkSweep(b *testing.B, workers int) {
	w, lats := sweepBenchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := NewEngine(workers)
		points, err := en.SweepReconfigLatency(w, lats)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(lats) {
			b.Fatalf("points = %d", len(points))
		}
		if st := en.CacheStats(); st.Hits < 1 {
			b.Fatalf("cache stats %+v: baseline not shared", st)
		}
	}
}

// BenchmarkSweepSequential is the pre-engine execution model: the same
// jobs, strictly one at a time.
func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepParallel fans the sweep out across all cores.
func BenchmarkSweepParallel(b *testing.B) {
	b.Logf("GOMAXPROCS = %d", runtime.GOMAXPROCS(0))
	benchmarkSweep(b, 0)
}
