package photonrail

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSweepParallelDeterminism is the engine's core contract: a
// parallel sweep must produce results byte-identical to the sequential
// run, and the shared electrical baseline must be served from cache
// for every point after the first (≥ 1 hit per sweep).
func TestSweepParallelDeterminism(t *testing.T) {
	w := PaperWorkload(2)
	lats := []float64{0, 10, 100, 1000}

	seq := NewEngine(1)
	seqPoints, err := seq.SweepReconfigLatency(w, lats)
	if err != nil {
		t.Fatal(err)
	}
	par := NewEngine(8)
	parPoints, err := par.SweepReconfigLatency(w, lats)
	if err != nil {
		t.Fatal(err)
	}

	seqJSON, err := json.Marshal(seqPoints)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(parPoints)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("parallel sweep diverged from sequential:\nseq: %s\npar: %s", seqJSON, parJSON)
	}

	for name, en := range map[string]*Engine{"sequential": seq, "parallel": par} {
		st := en.CacheStats()
		if st.Hits < 1 {
			t.Errorf("%s engine: %d cache hits, want ≥ 1 (shared baseline)", name, st.Hits)
		}
		// Staged-pipeline accounting over L latency points:
		//   Time hits:  L-1 baseline refetches + L reactive fetches by
		//               the Provision stage (shared with the sweep's
		//               reactive column)
		//   Build hits: L-1 photonic-program fetches by reactive runs
		//               + L by Provision-stage passes
		// for 4L-2 hits total; anything else means a shared sub-result
		// was re-simulated or re-compiled.
		if want := uint64(4*len(lats) - 2); st.Hits != want {
			t.Errorf("%s engine: %d hits, want %d (staged sharing across %d points)",
				name, st.Hits, want, len(lats))
		}
		if want := uint64(2*len(lats) - 1); st.Time.Hits != want {
			t.Errorf("%s engine: %d time-stage hits, want %d", name, st.Time.Hits, want)
		}
		if st.Build.Misses != 2 {
			t.Errorf("%s engine: %d programs compiled, want 2 (electrical + photonic)",
				name, st.Build.Misses)
		}
	}
}

// TestSweepZeroLatencySimulated is the regression test for the
// documented claim that the photonic fabric at zero switching latency
// reproduces the electrical baseline exactly — the latency-0 point must
// be simulated, not hard-coded to 1.0.
func TestSweepZeroLatencySimulated(t *testing.T) {
	w := PaperWorkload(2)

	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ph.MeanIterationSeconds != base.MeanIterationSeconds {
		t.Errorf("photonic @0ms iteration %v != electrical %v",
			ph.MeanIterationSeconds, base.MeanIterationSeconds)
	}

	en := NewEngine(2)
	points, err := en.SweepReconfigLatency(w, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Reactive != 1 || p.Provisioned != 1 {
		t.Errorf("latency-0 point = %+v, want exactly 1.0/1.0 from simulation", p)
	}
	// Simulated, not fabricated: the zero-latency photonic runs really
	// happened (3 distinct jobs: baseline, reactive, provisioned) and
	// their telemetry shows reconfiguration activity.
	if st := en.CacheStats(); st.Misses < 3 {
		t.Errorf("only %d simulations ran; latency-0 point looks hard-coded", st.Misses)
	}
	if p.ReactiveReconfigs == 0 {
		t.Error("latency-0 reactive run reports no reconfigurations; was it simulated?")
	}
}

// TestEngineCacheSharedAcrossExperiments checks reuse beyond one sweep:
// a second sweep on the same engine re-simulates nothing.
func TestEngineCacheSharedAcrossExperiments(t *testing.T) {
	w := PaperWorkload(1)
	en := NewEngine(4)
	first, err := en.SweepReconfigLatency(w, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	misses := en.CacheStats().Misses
	second, err := en.SweepReconfigLatency(w, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if st := en.CacheStats(); st.Misses != misses {
		t.Errorf("second sweep simulated %d new jobs, want 0", st.Misses-misses)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Error("cached sweep diverged from original")
	}
}

func TestEngineWorkersDefault(t *testing.T) {
	if w := NewEngine(0).Workers(); w < 1 {
		t.Errorf("workers = %d", w)
	}
	if w := NewEngine(3).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
	if DefaultEngine() == nil || DefaultEngine().Workers() < 1 {
		t.Error("default engine unusable")
	}
}

func TestAnalyzeWindowsRejectsEmptyTrace(t *testing.T) {
	w := PaperWorkload(0)
	if _, err := AnalyzeWindows(w); err == nil || !strings.Contains(err.Error(), "iteration") {
		t.Errorf("0-iteration workload: err = %v, want iteration error", err)
	}
	w.Iterations = -3
	if _, err := AnalyzeWindows(w); err == nil {
		t.Error("negative iterations accepted")
	}
}

// TestAnalyzeWindowsEngineCache checks the traced baseline is simulated
// once per workload per engine.
func TestAnalyzeWindowsEngineCache(t *testing.T) {
	en := NewEngine(2)
	w := PaperWorkload(2)
	rep1, err := en.AnalyzeWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	misses := en.CacheStats().Misses
	rep2, err := en.AnalyzeWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	if st := en.CacheStats(); st.Misses != misses {
		t.Error("second analysis re-simulated the traced baseline")
	}
	if rep1.FractionOver1ms != rep2.FractionOver1ms {
		t.Error("cached analysis diverged")
	}
	// The breakdown must only contain classes that actually had windows.
	for class, bytes := range rep1.BreakdownBytes {
		if bytes < 0 {
			t.Errorf("class %q has negative mean volume", class)
		}
		found := false
		for _, b := range rep1.Breakdown.Buckets() {
			if b.Label == class && b.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("class %q has volume but no windows", class)
		}
	}
}

// TestCostComparisonEngine checks the engine path returns the same rows
// as a direct evaluation and memoizes them.
func TestCostComparisonEngine(t *testing.T) {
	en := NewEngine(4)
	rows, err := en.CostComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].GPUs != 1024 || rows[3].GPUs != 8192 {
		t.Fatalf("rows = %+v", rows)
	}
	misses := en.CacheStats().Misses
	again, err := en.CostComparison()
	if err != nil {
		t.Fatal(err)
	}
	if st := en.CacheStats(); st.Misses != misses {
		t.Error("second comparison recomputed BOM rows")
	}
	a, _ := json.Marshal(rows)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Error("cached comparison diverged")
	}
}
