module photonrail

go 1.22
