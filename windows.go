package photonrail

import (
	"context"
	"fmt"

	"photonrail/internal/metrics"
	"photonrail/internal/topo"
	"photonrail/internal/trace"
)

// WindowReport is the Fig. 3 / Fig. 4 analysis of one workload's trace
// on the fully-connected baseline (windows are a property of the
// workload, measured — like the paper's Perlmutter trace — on an
// electrical fabric).
type WindowReport struct {
	// PerRailCDF maps each rail to the CDF of positive window sizes in
	// milliseconds over all iterations (Fig. 4a).
	PerRailCDF map[int]*metrics.CDF
	// Breakdown is the rail-0 per-class window count and mean size for
	// one steady-state iteration (Fig. 4b); bucket samples are window
	// sizes in ms.
	Breakdown *metrics.ClassifiedHistogram
	// BreakdownBytes maps each Fig. 4b class to the mean traffic volume
	// (bytes) following its windows.
	BreakdownBytes map[string]float64
	// FractionOver1ms is the fraction of positive windows exceeding 1 ms
	// across rails (paper: >75%).
	FractionOver1ms float64
	// Windows holds the raw rail-0 windows of the analyzed iteration, in
	// time order (the Fig. 3 arrows).
	Windows []trace.Window
	// Trace is the full recorded trace for custom analysis (Fig. 3
	// timelines).
	Trace *trace.Trace
}

// AnalyzeWindows runs the workload on the electrical baseline with
// tracing and extracts the inter-parallelism windows. The workload
// should have ≥ 2 iterations; the paper uses 10 and analyzes the CDF
// over all of them, with the per-class breakdown taken from a single
// steady-state iteration.
//
// The traced baseline run goes through DefaultEngine's cache, so
// repeated analyses of the same workload simulate it once.
func AnalyzeWindows(w Workload) (*WindowReport, error) {
	return DefaultEngine().AnalyzeWindows(w)
}

// AnalyzeWindows is the engine form of the package-level function: the
// traced simulation is memoized per workload, the analysis itself is
// recomputed and each report gets its own copy of the trace, so
// callers may freely mutate the report without corrupting the cache.
func (en *Engine) AnalyzeWindows(w Workload) (*WindowReport, error) {
	return en.AnalyzeWindowsCtx(context.Background(), w)
}

// AnalyzeWindowsCtx is AnalyzeWindows under a context: a cancelled
// caller returns ctx.Err() promptly, while a traced simulation shared
// with other callers keeps running for them (see SimulateCtx).
func (en *Engine) AnalyzeWindowsCtx(ctx context.Context, w Workload) (*WindowReport, error) {
	if w.Iterations < 1 {
		return nil, fmt.Errorf("photonrail: need at least one iteration")
	}
	inner, err := en.simulateTracedCtx(ctx, w)
	if err != nil {
		return nil, err
	}
	if inner.Trace == nil || inner.Trace.Iterations() == 0 {
		return nil, fmt.Errorf("photonrail: trace has no iterations to analyze")
	}
	tr := inner.Trace.Clone()
	rep := &WindowReport{
		PerRailCDF:     make(map[int]*metrics.CDF),
		Breakdown:      metrics.NewClassifiedHistogram(trace.Classes()...),
		BreakdownBytes: make(map[string]float64),
		Trace:          tr,
	}
	var over1, positive int
	for _, r := range tr.Rails() {
		var sizes []float64
		for it := 0; it < tr.Iterations(); it++ {
			ws := tr.Windows(r, it)
			for _, s := range trace.WindowSizesMS(ws) {
				sizes = append(sizes, s)
				positive++
				if s > 1 {
					over1++
				}
			}
		}
		rep.PerRailCDF[int(r)] = metrics.NewCDF(sizes)
	}
	if positive > 0 {
		rep.FractionOver1ms = float64(over1) / float64(positive)
	}
	// Fig. 4b: rail 0, last iteration (steady state).
	iter := tr.Iterations() - 1
	rep.Windows = tr.Windows(topo.RailID(0), iter)
	byteSums := make(map[string]float64)
	byteCounts := make(map[string]int)
	for _, win := range rep.Windows {
		class := trace.ClassifyWindow(win)
		rep.Breakdown.Add(class, win.Size.Milliseconds())
		byteSums[class] += float64(win.AfterBytes)
		byteCounts[class]++
	}
	// byteSums only has keys for classes that had at least one window
	// this iteration, so classes with no windows are skipped and every
	// division is by a count >= 1.
	for class, sum := range byteSums {
		rep.BreakdownBytes[class] = sum / float64(byteCounts[class])
	}
	return rep, nil
}
