package photonrail

import (
	"strings"
	"testing"
)

func TestFacade4DWorkload(t *testing.T) {
	w := PaperWorkload(1)
	w.NumNodes = 8
	w.CP = 2
	w.Microbatches = 4

	// Static: infeasible with three scale-out axes (C2).
	if _, err := Simulate(w, Fabric{Kind: PhotonicStaticPartition}); err == nil {
		t.Fatal("static 4D accepted")
	} else if !strings.Contains(err.Error(), "C2") {
		t.Errorf("error does not cite C2: %v", err)
	}
	w4 := w
	w4.NIC = FourPort100G
	if _, err := Simulate(w4, Fabric{Kind: PhotonicStaticPartition}); err == nil {
		t.Fatal("static 4D accepted even on 4 ports")
	}

	// Opus: runs, near baseline with a fast switch.
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 0.01, Provision: true})
	if err != nil {
		t.Fatal(err)
	}
	norm := fast.MeanIterationSeconds / base.MeanIterationSeconds
	if norm > 1.05 {
		t.Errorf("4D under fast OCS = %.3f x baseline, want ≤1.05", norm)
	}
	if fast.Reconfigurations < 100 {
		t.Errorf("4D job reconfigured only %d times; CP interleave missing", fast.Reconfigurations)
	}
}

func TestFacadeEPWorkload(t *testing.T) {
	w := Workload{
		Model:          Mixtral8x7B,
		GPU:            A100,
		NumNodes:       8,
		GPUsPerNode:    4,
		NIC:            TwoPort200G,
		TP:             4,
		EP:             2,
		DP:             2,
		PP:             2,
		Microbatches:   4,
		MicrobatchSize: 2,
		Iterations:     1,
	}
	res, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 0.01, Provision: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 {
		t.Fatal("no progress")
	}
	// EP on a dense model is rejected.
	w.Model = Llama3_8B
	if _, err := Simulate(w, Fabric{Kind: ElectricalRail}); err == nil {
		t.Error("EP with dense model accepted")
	}
}
