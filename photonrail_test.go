package photonrail

import (
	"strings"
	"testing"

	"photonrail/internal/trace"
)

func TestSimulatePaperWorkload(t *testing.T) {
	w := PaperWorkload(2)
	res, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 || len(res.IterationSeconds) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.MeanIterationSeconds < 5 || res.MeanIterationSeconds > 60 {
		t.Errorf("iteration = %vs, outside calibration band", res.MeanIterationSeconds)
	}
	ph, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 15})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Reconfigurations == 0 || ph.QueuedGrants == 0 {
		t.Errorf("photonic telemetry empty: %+v", ph)
	}
	if ph.TotalSeconds <= res.TotalSeconds {
		t.Errorf("photonic (%v) not slower than electrical (%v)", ph.TotalSeconds, res.TotalSeconds)
	}
}

func TestSimulateInvalid(t *testing.T) {
	w := PaperWorkload(1)
	if _, err := Simulate(w, Fabric{Kind: FabricKind(99)}); err == nil {
		t.Error("unknown fabric accepted")
	}
	if _, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	bad := w
	bad.TP = 2
	if _, err := Simulate(bad, Fabric{Kind: ElectricalRail}); err == nil {
		t.Error("TP != GPUsPerNode accepted")
	}
}

// TestFig8Sweep asserts the full Fig. 8 shape on a 3-point sweep:
// normalized times start at 1.0, grow with latency, and provisioning is
// never worse than reactive.
func TestFig8Sweep(t *testing.T) {
	w := PaperWorkload(2)
	points, err := SweepReconfigLatency(w, []float64{0, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Reactive != 1 || points[0].Provisioned != 1 {
		t.Errorf("latency 0 point = %+v, want 1.0/1.0", points[0])
	}
	prev := 0.0
	for _, p := range points {
		if p.Reactive < prev-1e-9 {
			t.Errorf("reactive not monotone at %vms: %v", p.LatencyMS, p.Reactive)
		}
		prev = p.Reactive
		if p.Provisioned > p.Reactive+1e-9 {
			t.Errorf("provisioning hurt at %vms: %v > %v", p.LatencyMS, p.Provisioned, p.Reactive)
		}
	}
	// Paper bands (loose): at 100ms reactive ≈ 1.065, provisioned ≈
	// 1.035; at 1000ms ≈ 1.65 / 1.47.
	p100 := points[2]
	if p100.Reactive < 1.01 || p100.Reactive > 1.2 {
		t.Errorf("reactive at 100ms = %.3f, want ≈1.05", p100.Reactive)
	}
	p1000 := points[3]
	if p1000.Reactive < 1.2 || p1000.Reactive > 2.2 {
		t.Errorf("reactive at 1000ms = %.3f, want ≈1.5-1.9", p1000.Reactive)
	}
	if p1000.Provisioned >= p1000.Reactive {
		t.Errorf("provisioning should help at 1000ms: %.3f vs %.3f", p1000.Provisioned, p1000.Reactive)
	}
}

func TestAnalyzeWindows(t *testing.T) {
	w := PaperWorkload(3)
	rep, err := AnalyzeWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerRailCDF) != 4 {
		t.Fatalf("rails = %d", len(rep.PerRailCDF))
	}
	// Paper: more than 75% of windows are over 1 ms, similar across
	// rails. (Our DAG yields a cleaner trace than Perlmutter, so assert
	// a conservative 50%.)
	if rep.FractionOver1ms < 0.5 {
		t.Errorf("only %.0f%% of windows over 1ms", 100*rep.FractionOver1ms)
	}
	for r, c := range rep.PerRailCDF {
		if c.N() == 0 {
			t.Errorf("rail %d has no windows", r)
		}
	}
	// The DP ReduceScatter class must carry the biggest following
	// traffic and one of the largest windows (paper §3.1).
	var rsMean, maxMean float64
	for _, b := range rep.Breakdown.Buckets() {
		if b.Label == trace.ClassDPRS {
			rsMean = b.Mean()
		}
		if b.Count > 0 && b.Mean() > maxMean {
			maxMean = b.Mean()
		}
	}
	if rsMean <= 0 || rsMean < 0.5*maxMean {
		t.Errorf("RS window mean %.3g not among the largest (max %.3g)", rsMean, maxMean)
	}
	if rep.BreakdownBytes[trace.ClassDPRS] <= rep.BreakdownBytes[trace.ClassDPAG] {
		t.Error("RS traffic should exceed AG traffic (fp32 grads vs bf16 params)")
	}
	if len(rep.Windows) == 0 || rep.Trace == nil {
		t.Error("raw windows/trace missing")
	}
}

func TestTables(t *testing.T) {
	t1 := Table1().String()
	for _, want := range []string{"TP & PP", "DP & PP", "TP, DP & PP"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2().String()
	for _, want := range []string{"FSDP", "fwd AG per layer", "bwd RS per layer", "AllToAll"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3().String()
	for _, want := range []string{"Piezo (Polatis)", "20736", "2304", "36288"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, t3)
		}
	}
}

func TestFig7Table(t *testing.T) {
	tbl, err := Fig7Table()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "8192") {
		t.Errorf("Fig 7 table missing sizes:\n%s", out)
	}
	// Headline savings bands.
	rows, err := CostComparison()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.GPUs != 8192 {
		t.Fatalf("last row = %d GPUs", last.GPUs)
	}
}

func TestFig8AndFig4Renderers(t *testing.T) {
	pts := []SweepPoint{{LatencyMS: 100, Reactive: 1.06, Provisioned: 1.03, ReactiveReconfigs: 26}}
	out := Fig8Table(pts).String()
	if !strings.Contains(out, "1.060") || !strings.Contains(out, "1.030") {
		t.Errorf("Fig 8 table:\n%s", out)
	}
	w := PaperWorkload(2)
	rep, err := AnalyzeWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	cdf, breakdown := Fig4Tables(rep)
	if !strings.Contains(cdf.String(), "rail1") {
		t.Errorf("Fig 4a table:\n%s", cdf.String())
	}
	if !strings.Contains(breakdown.String(), trace.ClassDPRS) {
		t.Errorf("Fig 4b table:\n%s", breakdown.String())
	}
	timeline := TimelineTable(rep.Trace, 0, 1).String()
	if !strings.Contains(timeline, "AG") || !strings.Contains(timeline, "SRf") {
		t.Errorf("timeline:\n%s", timeline)
	}
}

func TestWindowCountFacade(t *testing.T) {
	n, err := WindowCount(2, 32, 12, false, false)
	if err != nil || n != 8 {
		t.Errorf("WindowCount = %d, %v", n, err)
	}
	if _, err := WindowCount(0, 32, 12, false, false); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStaticPartitionFacade(t *testing.T) {
	w := PaperWorkload(1)
	// 2 scale-out axes on 2 ports: infeasible.
	if _, err := Simulate(w, Fabric{Kind: PhotonicStaticPartition}); err == nil {
		t.Error("static partition on 2-port NIC accepted")
	}
	w.NIC = FourPort100G
	res, err := Simulate(w, Fabric{Kind: PhotonicStaticPartition})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 {
		t.Error("no time elapsed")
	}
}
