package photonrail

import (
	"fmt"
	"math/rand"
	"testing"

	"photonrail/internal/scenario"
)

// oracleCell computes one grid cell the monolithic way: uncached
// package-level Simulate calls (and the uncached provisioned-stable
// loop), mirroring runCell's field assignments exactly. It is the
// reference the staged pipeline is pinned against.
func oracleCell(c GridCell) (GridCellResult, error) {
	out := GridCellResult{Cell: c}
	if reason := c.Skip(); reason != "" {
		out.Skipped = true
		out.SkipReason = reason
		return out, nil
	}
	w := gridWorkload(c)
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		return out, err
	}
	var res *Result
	switch c.Fabric {
	case scenario.Electrical:
		res = base
	case scenario.Photonic:
		res, err = Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: c.LatencyMS})
	case scenario.PhotonicProvisioned:
		res, err = simulateProvisionedStable(w, c.LatencyMS)
	case scenario.PhotonicStatic:
		res, err = Simulate(w, Fabric{Kind: PhotonicStaticPartition})
	default:
		err = fmt.Errorf("unknown grid fabric kind %v", c.Fabric)
	}
	if err != nil {
		return out, err
	}
	out.MeanIterationSeconds = res.MeanIterationSeconds
	out.TotalSeconds = res.TotalSeconds
	out.Slowdown = res.MeanIterationSeconds / base.MeanIterationSeconds
	out.Reconfigurations = res.Reconfigurations
	out.FastGrants = res.FastGrants
	out.QueuedGrants = res.QueuedGrants
	out.BlockedSeconds = res.BlockedSeconds
	return out, nil
}

// TestStagedPipelineMatchesOracle is the equivalence property test for
// the staged pipeline: a seeded random sample of feasible fig8-5d cells
// is executed through the production path (Build → Provision → Time,
// memoized, on the parallel worker pool via RunCellsCtx) and through
// the monolithic oracle, and every sampled cell's result must be
// byte-identical between the two. The sample is deterministic, so a
// divergence is reproducible; running the staged side on the worker
// pool also makes this test a data-race probe under -race.
func TestStagedPipelineMatchesOracle(t *testing.T) {
	grid := Fig8Grid5D()
	cells := grid.Expand()
	var feasible []int
	for i, c := range cells {
		if c.Skip() == "" {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) < 4 {
		t.Fatalf("fig8-5d has %d feasible cells, want >= 4", len(feasible))
	}
	sample := 6
	if testing.Short() {
		sample = 3
	}
	if sample > len(feasible) {
		sample = len(feasible)
	}
	// Seeded sample without replacement; the seed pins the cell set so
	// failures replay exactly.
	rng := rand.New(rand.NewSource(0xF165D))
	rng.Shuffle(len(feasible), func(i, j int) {
		feasible[i], feasible[j] = feasible[j], feasible[i]
	})
	indices := feasible[:sample]

	en := NewEngine(0)
	staged, err := en.RunCellsCtx(t.Context(), grid, indices)
	if err != nil {
		t.Fatal(err)
	}
	for k, idx := range indices {
		c := cells[idx]
		t.Run(c.Name(), func(t *testing.T) {
			want, err := oracleCell(c)
			if err != nil {
				t.Fatal(err)
			}
			got := staged[k]
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Errorf("staged cell diverges from oracle:\nstaged: %+v\noracle: %+v", got, want)
			}
		})
	}
}
