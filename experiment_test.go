package photonrail

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"photonrail/internal/goldentest"
)

// TestExperimentsGoldenListing pins the registry surface — names,
// descriptions, and parameter schemas — byte for byte, so an
// accidentally dropped or renamed experiment fails loudly. Regenerate
// intentionally with `go test . -run ExperimentsGolden -update`.
func TestExperimentsGoldenListing(t *testing.T) {
	var out bytes.Buffer
	if err := DescribeExperiments(&out); err != nil {
		t.Fatal(err)
	}
	goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", "experiments.txt"))
}

func TestLookupKnownAndUnknown(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "eq1", "fig3", "fig4",
		"window-analysis", "fig7", "fig8", "bom", "grid", "fig8-5d"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted an unknown experiment")
	}
	names := ExperimentNames()
	if len(names) != len(Experiments()) {
		t.Fatalf("names = %d, experiments = %d", len(names), len(Experiments()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// TestExperimentOutputsMatchLegacySignatures proves the registry
// entries are thin wrappers: the table an experiment renders is byte
// identical to what the historical package-level call produces.
func TestExperimentOutputsMatchLegacySignatures(t *testing.T) {
	en := NewEngine(2)

	e, _ := Lookup("table3")
	res, err := e.Run(context.Background(), en, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := res.RenderText(&got); err != nil {
		t.Fatal(err)
	}
	if err := Table3().Render(&want); err != nil {
		t.Fatal(err)
	}
	want.WriteString("\n")
	if got.String() != want.String() {
		t.Errorf("table3 diverged from the legacy rendering:\n got: %q\nwant: %q", got.String(), want.String())
	}

	e, _ = Lookup("fig8")
	res, err = e.Run(context.Background(), en, Params{Iterations: 1, LatenciesMS: []float64{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	points, err := en.SweepReconfigLatency(PaperWorkload(1), []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	want.Reset()
	if err := res.RenderText(&got); err != nil {
		t.Fatal(err)
	}
	if err := Fig8Table(points).Render(&want); err != nil {
		t.Fatal(err)
	}
	want.WriteString("\n")
	if got.String() != want.String() {
		t.Errorf("fig8 diverged from the legacy rendering:\n got: %q\nwant: %q", got.String(), want.String())
	}
}

// TestFig8CancelledCtxReturnsPromptly is the acceptance criterion:
// Lookup("fig8").Run with a cancelled ctx returns promptly without
// duplicating or killing in-flight shared simulations. A background
// runner starts the sweep; a second caller with a cancellable context
// joins the same engine, cancels mid-flight, and must get ctx.Err()
// quickly while the first run completes and the cache shows no
// duplicated simulations.
func TestFig8CancelledCtxReturnsPromptly(t *testing.T) {
	en := NewEngine(2)
	fig8, ok := Lookup("fig8")
	if !ok {
		t.Fatal("fig8 not registered")
	}
	p := Params{Iterations: 1, LatenciesMS: []float64{0, 5, 10}}

	// Pre-cancelled: prompt error, nothing simulated.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	start := time.Now()
	if _, err := fig8.Run(pre, en, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled Run took %v", d)
	}
	if st := en.CacheStats(); st.Misses != 0 {
		t.Fatalf("pre-cancelled run simulated: %+v", st)
	}

	type outcome struct {
		res *ExperimentResult
		err error
	}
	full := make(chan outcome, 1)
	go func() {
		res, err := fig8.Run(context.Background(), en, p)
		full <- outcome{res, err}
	}()
	// Wait until the shared sweep has simulations in flight, then cancel
	// a second caller that joined them.
	deadline := time.Now().Add(10 * time.Second)
	for en.CacheStats().Misses == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := fig8.Run(ctx, en, p)
		cancelled <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the second caller join in-flight keys
	cancel()
	select {
	case err := <-cancelled:
		// The joiner may have finished first if the sweep was quick;
		// both a clean result and a prompt cancellation are in-contract.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled fig8 run did not return promptly")
	}
	out := <-full
	if out.err != nil {
		t.Fatalf("shared run err = %v (a cancelled joiner must not kill shared simulations)", out.err)
	}
	rows, ok := out.res.Rows.(Fig8Sweep)
	if !ok || len(rows.Points) != 3 {
		t.Fatalf("rows = %#v", out.res.Rows)
	}
	// 3 latency points × (baseline + reactive + provisioned), deduped:
	// baseline once, reactive@0/5/10, provisioned@0/5/10 = 7 runs, plus
	// the Build stage's two compiled programs (electrical + photonic)
	// = 9 distinct misses. The cancelled joiner must not have
	// duplicated any — but if it raced the shared run's completion it
	// may legitimately have re-simulated nothing at most. Allow the
	// exact count only.
	if st := en.CacheStats(); st.Misses != 9 {
		t.Fatalf("misses = %d, want 9 (no duplicated simulations)", st.Misses)
	}
}

// TestGridExperimentMatchesRunGrid pins grid experiments against the
// legacy RunGrid surface.
func TestGridExperimentMatchesRunGrid(t *testing.T) {
	en := NewEngine(2)
	spec := GridSpec{
		Models: []string{"Llama3-8B"}, Fabrics: []string{"electrical", "static"},
		Parallelisms: []GridParallelism{{TP: 4, DP: 2, PP: 2}}, Iterations: 1,
	}
	e, _ := Lookup("grid")
	var ticks int
	res, err := e.Run(context.Background(), en, Params{Grid: &spec, OnProgress: func(done, total int) { ticks++ }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid != "custom" {
		t.Errorf("grid name = %q", res.Grid)
	}
	if ticks == 0 {
		t.Error("no progress ticks")
	}
	g, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	g.Name = "custom"
	legacy, err := en.RunGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows.(GridRows)
	if len(rows.Cells) != len(legacy.Rows()) {
		t.Fatalf("rows = %d, legacy = %d", len(rows.Cells), len(legacy.Rows()))
	}
	for i, row := range legacy.Rows() {
		if rows.Cells[i] != row {
			t.Fatalf("row %d diverged:\n got: %+v\nwant: %+v", i, rows.Cells[i], row)
		}
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := res.RenderCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if err := legacy.CSVTable().CSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != wantCSV.String() {
		t.Errorf("grid CSV diverged")
	}
	if !strings.Contains(res.Sections[1].Text, "cells:") {
		t.Errorf("grid footer = %q", res.Sections[1].Text)
	}
}

// TestRegistrySmoke runs every non-grid registry experiment once at a
// small scale on one shared engine (fig3/fig4/window-analysis share a
// single traced simulation through its cache) and checks each result
// renders in all three formats.
func TestRegistrySmoke(t *testing.T) {
	en := NewEngine(0)
	p := Params{Iterations: 1, WindowIterations: 2, LatenciesMS: []float64{0}, GPUs: 1024}
	for _, name := range []string{"table1", "table2", "table3", "eq1", "fig3", "fig4",
		"window-analysis", "fig7", "fig8", "bom"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := Lookup(name)
			if !ok {
				t.Fatalf("%q not registered", name)
			}
			res, err := e.Run(context.Background(), en, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Experiment != name {
				t.Errorf("result experiment = %q", res.Experiment)
			}
			var text, csv, rows bytes.Buffer
			if err := res.RenderText(&text); err != nil {
				t.Fatal(err)
			}
			if err := res.RenderCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if err := res.RenderJSON(&rows); err != nil {
				t.Fatal(err)
			}
			if text.Len() == 0 || csv.Len() == 0 || rows.Len() == 0 {
				t.Errorf("empty rendering: text=%d csv=%d rows=%d", text.Len(), csv.Len(), rows.Len())
			}
		})
	}
	if IsGridExperiment("table1") || !IsGridExperiment("grid") || !IsGridExperiment("fig8-5d") {
		t.Error("IsGridExperiment misclassifies")
	}
	if SpecOfGrid(Fig8Grid5D()).Name != "fig8-5d" {
		t.Error("SpecOfGrid dropped the name")
	}
	if len(PaperLatenciesMS()) == 0 || NewCDF([]float64{1, 2}).N() != 2 {
		t.Error("helper re-exports broken")
	}
	// The never-cancelled compatibility wrappers still work.
	if _, err := NewEngine(1).Simulate(PaperWorkload(1), Fabric{Kind: ElectricalRail}); err != nil {
		t.Fatal(err)
	}
	if res, err := NewEngine(1).RunGridCtx(context.Background(), Grid{LatenciesMS: []float64{5}, Iterations: 1}); err != nil || len(res.Cells) == 0 {
		t.Fatalf("RunGridCtx = %v, %v", res, err)
	}
}

// TestBuiltinGridExperimentHonorsSpecOverride pins the -exp fig8-5d
// -latencies … behavior: a spec passed to a built-in grid experiment
// overrides its registered axes instead of being silently ignored.
func TestBuiltinGridExperimentHonorsSpecOverride(t *testing.T) {
	en := NewEngine(2)
	e, ok := Lookup("fig8-5d")
	if !ok {
		t.Fatal("fig8-5d not registered")
	}
	spec := SpecOfGrid(Fig8Grid5D())
	spec.Models = []string{"Llama3-8B"}
	spec.Fabrics = []string{"electrical"}
	spec.LatenciesMS = nil
	spec.Parallelisms = spec.Parallelisms[:1]
	spec.Iterations = 1
	res, err := e.Run(context.Background(), en, Params{Grid: &spec})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows.(GridRows)
	if len(rows.Cells) != 1 {
		t.Fatalf("overridden grid expanded to %d cells, want 1", len(rows.Cells))
	}
	if rows.Cells[0].Fabric != "electrical" {
		t.Fatalf("cell fabric = %q, want the override", rows.Cells[0].Fabric)
	}
}
