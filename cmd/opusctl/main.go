// Command opusctl runs the Opus TCP controller, or exercises one as a
// client: registering groups, acquiring/releasing circuits, and reading
// telemetry. It is the operational face of the real control plane
// (internal/opusnet).
//
// Usage:
//
//	opusctl serve -addr 127.0.0.1:9350 -nodes 4 -gpus-per-node 4 -latency 15
//	opusctl stats -addr 127.0.0.1:9350
//	opusctl demo  -addr 127.0.0.1:9350   # drive a 3-phase iteration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"photonrail/internal/opusnet"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opusctl: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: opusctl <serve|stats|demo> [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "stats":
		stats(args)
	case "demo":
		demo(args)
	default:
		log.Fatalf("unknown subcommand %q", cmd)
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9350", "listen address")
	nodes := fs.Int("nodes", 4, "scale-up domains")
	perNode := fs.Int("gpus-per-node", 4, "GPUs per domain")
	latency := fs.Float64("latency", 15, "OCS reconfiguration latency (ms)")
	_ = fs.Parse(args)

	cl, err := topo.New(topo.Config{NumNodes: *nodes, GPUsPerNode: *perNode, Fabric: topo.FabricPhotonicRail})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := opusnet.NewServer(opusnet.ServerConfig{
		Cluster:         cl,
		ReconfigLatency: units.FromMilliseconds(*latency),
		Addr:            *addr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opus controller listening on %s (%s, latency %gms)\n", srv.Addr(), cl, *latency)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9350", "controller address")
	_ = fs.Parse(args)
	c, err := opusnet.Dial(*addr, -1)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfigurations:     %d\n", st.Reconfigurations)
	fmt.Printf("fast grants:          %d\n", st.FastGrants)
	fmt.Printf("queued grants:        %d\n", st.QueuedGrants)
	fmt.Printf("blocked time:         %v\n", st.BlockedTime)
	fmt.Printf("provisioned requests: %d\n", st.ProvisionedRequests)
}

// demo drives the §3.1 rail-0 phase sequence (AG → PP → RS → sync)
// against a running controller with four concurrent rank clients.
func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9350", "controller address")
	_ = fs.Parse(args)

	ranks := []int{0, 4, 8, 12}
	clients := make(map[int]*opusnet.Client)
	for _, r := range ranks {
		c, err := opusnet.Dial(*addr, r)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients[r] = c
	}
	groups := map[string][]int{
		"fsdp.s0.r0": {0, 4},
		"fsdp.s1.r0": {8, 12},
		"pp.d0.r0":   {0, 8},
		"pp.d1.r0":   {4, 12},
	}
	for name, members := range groups {
		for _, r := range members {
			if err := clients[r].RegisterGroup(name, 0, 0, members); err != nil {
				log.Fatal(err)
			}
		}
	}
	phase := func(label string, names ...string) {
		var wg sync.WaitGroup
		for _, name := range names {
			for _, r := range groups[name] {
				wg.Add(1)
				go func(r int, name string) {
					defer wg.Done()
					if err := clients[r].Acquire(name, 0); err != nil {
						log.Fatalf("rank %d acquire %s: %v", r, name, err)
					}
					if err := clients[r].Release(name, 0); err != nil {
						log.Fatalf("rank %d release %s: %v", r, name, err)
					}
				}(r, name)
			}
		}
		wg.Wait()
		fmt.Printf("phase %-12s done\n", label)
	}
	phase("AllGather", "fsdp.s0.r0", "fsdp.s1.r0")
	phase("pipeline", "pp.d0.r0", "pp.d1.r0")
	phase("ReduceScatter", "fsdp.s0.r0", "fsdp.s1.r0")
	phase("sync", "pp.d0.r0", "pp.d1.r0")
	st, err := clients[0].Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller: %d reconfigurations, %d fast grants, %d queued\n",
		st.Reconfigurations, st.FastGrants, st.QueuedGrants)
}
