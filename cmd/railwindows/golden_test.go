package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"photonrail/internal/goldentest"
)

// TestGoldenOutputs pins railwindows's canonical invocations byte for
// byte: the Eq. 1 / Table 1-2 summaries in text and CSV, and the
// Fig. 3 + Fig. 4 trace analysis at two iterations. Regenerate
// intentionally with `go test ./cmd/railwindows -run Golden -update`.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"eq1_tables.table", []string{"-eq1", "-table1", "-table2"}},
		{"table1.csv", []string{"-table1", "-csv"}},
		{"fig34_2iter.table", []string{"-fig3", "-fig4", "-iterations", "2"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(t.Context(), tc.args, &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", tc.name))
		})
	}
}
