// Command railwindows reproduces the paper's §3.1 trace analysis: the
// Fig. 3 per-rail communication timeline, the Fig. 4 window-size CDF and
// traffic breakdown, the Eq. 1 window-count formula, and Tables 1–2.
//
// Usage:
//
//	railwindows -fig3          # rail-0 timeline
//	railwindows -fig4          # window CDF + breakdown (10 iterations)
//	railwindows -eq1           # window-count formula examples
//	railwindows -table1 -table2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"photonrail"
	"photonrail/internal/parallelism"
	"photonrail/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("railwindows: ")
	var (
		fig3   = flag.Bool("fig3", false, "print the Fig. 3 rail timeline")
		fig4   = flag.Bool("fig4", false, "print the Fig. 4 window analysis")
		eq1    = flag.Bool("eq1", false, "print Eq. 1 window counts")
		table1 = flag.Bool("table1", false, "print Table 1")
		table2 = flag.Bool("table2", false, "print Table 2")
		iters  = flag.Int("iterations", 10, "iterations for the Fig. 4 CDF")
		rail   = flag.Int("rail", 0, "rail to analyze")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	if !*fig3 && !*fig4 && !*eq1 && !*table1 && !*table2 {
		*fig3, *fig4, *eq1, *table1, *table2 = true, true, true, true, true
	}
	render := func(t *report.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *table1 {
		render(photonrail.Table1())
	}
	if *table2 {
		render(photonrail.Table2())
	}
	if *eq1 {
		t := report.NewTable("Eq. 1: windows per iteration",
			"Workload", "PP", "Layers", "Microbatches", "CP", "EP", "Windows")
		add := func(label string, pp, layers, mb int, cp, ep bool) {
			n, err := photonrail.WindowCount(pp, layers, mb, cp, ep)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(label, pp, layers, mb, cp, ep, n)
		}
		add("Llama3-8B (paper §3.1)", 2, 32, 12, false, false)
		add("Llama3.1-405B (1k H100)", 16, 126, 16, true, false)
		add("5D (CP+EP)", 4, 32, 8, true, true)
		render(t)
		n, _ := photonrail.WindowCount(16, 126, 16, true, false)
		fmt.Printf("Llama3.1-405B: %.1f windows/second at 20s iterations (paper: ~6/s)\n\n",
			parallelism.WindowsPerSecond(n, 20))
	}
	if *fig3 || *fig4 {
		w := photonrail.PaperWorkload(*iters)
		rep, err := photonrail.AnalyzeWindows(w)
		if err != nil {
			log.Fatal(err)
		}
		if *fig3 {
			iter := 1
			if *iters < 2 {
				iter = 0
			}
			render(photonrail.TimelineTable(rep.Trace, *rail, iter))
		}
		if *fig4 {
			cdf, breakdown := photonrail.Fig4Tables(rep)
			render(cdf)
			render(breakdown)
			fmt.Printf("windows over 1ms: %.0f%% (paper: >75%%)\n", 100*rep.FractionOver1ms)
		}
	}
}
