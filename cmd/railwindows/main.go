// Command railwindows reproduces the paper's §3.1 trace analysis: the
// Fig. 3 per-rail communication timeline, the Fig. 4 window-size CDF and
// traffic breakdown, the Eq. 1 window-count formula, and Tables 1–2.
//
// Usage:
//
//	railwindows -fig3          # rail-0 timeline
//	railwindows -fig4          # window CDF + breakdown (10 iterations)
//	railwindows -eq1           # window-count formula examples
//	railwindows -table1 -table2
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"photonrail"
	"photonrail/internal/parallelism"
	"photonrail/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railwindows: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railwindows", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig3   = fs.Bool("fig3", false, "print the Fig. 3 rail timeline")
		fig4   = fs.Bool("fig4", false, "print the Fig. 4 window analysis")
		eq1    = fs.Bool("eq1", false, "print Eq. 1 window counts")
		table1 = fs.Bool("table1", false, "print Table 1")
		table2 = fs.Bool("table2", false, "print Table 2")
		iters  = fs.Int("iterations", 10, "iterations for the Fig. 4 CDF")
		rail   = fs.Int("rail", 0, "rail to analyze")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *iters <= 0 {
		return fmt.Errorf("-iterations must be positive, got %d", *iters)
	}
	if !*fig3 && !*fig4 && !*eq1 && !*table1 && !*table2 {
		*fig3, *fig4, *eq1, *table1, *table2 = true, true, true, true, true
	}
	render := func(t *report.Table) error {
		var err error
		if *csv {
			err = t.CSV(stdout)
		} else {
			err = t.Render(stdout)
		}
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(stdout)
		return err
	}

	if *table1 {
		if err := render(photonrail.Table1()); err != nil {
			return err
		}
	}
	if *table2 {
		if err := render(photonrail.Table2()); err != nil {
			return err
		}
	}
	if *eq1 {
		t := report.NewTable("Eq. 1: windows per iteration",
			"Workload", "PP", "Layers", "Microbatches", "CP", "EP", "Windows")
		add := func(label string, pp, layers, mb int, cp, ep bool) error {
			n, err := photonrail.WindowCount(pp, layers, mb, cp, ep)
			if err != nil {
				return err
			}
			t.AddRow(label, pp, layers, mb, cp, ep, n)
			return nil
		}
		if err := add("Llama3-8B (paper §3.1)", 2, 32, 12, false, false); err != nil {
			return err
		}
		if err := add("Llama3.1-405B (1k H100)", 16, 126, 16, true, false); err != nil {
			return err
		}
		if err := add("5D (CP+EP)", 4, 32, 8, true, true); err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		n, _ := photonrail.WindowCount(16, 126, 16, true, false)
		fmt.Fprintf(stdout, "Llama3.1-405B: %.1f windows/second at 20s iterations (paper: ~6/s)\n\n",
			parallelism.WindowsPerSecond(n, 20))
	}
	if *fig3 || *fig4 {
		w := photonrail.PaperWorkload(*iters)
		rep, err := photonrail.AnalyzeWindows(w)
		if err != nil {
			return err
		}
		if *fig3 {
			iter := 1
			if *iters < 2 {
				iter = 0
			}
			if err := render(photonrail.TimelineTable(rep.Trace, *rail, iter)); err != nil {
				return err
			}
		}
		if *fig4 {
			cdf, breakdown := photonrail.Fig4Tables(rep)
			if err := render(cdf); err != nil {
				return err
			}
			if err := render(breakdown); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "windows over 1ms: %.0f%% (paper: >75%%)\n", 100*rep.FractionOver1ms)
		}
	}
	return nil
}
