// Command railwindows reproduces the paper's §3.1 trace analysis: the
// Fig. 3 per-rail communication timeline, the Fig. 4 window-size CDF and
// traffic breakdown, the Eq. 1 window-count formula, and Tables 1–2 —
// each served by its photonrail registry experiment (fig3,
// window-analysis, eq1, table1, table2), so railwindows is flag parsing
// plus Lookup(name).Run plus rendering.
//
// Usage:
//
//	railwindows -fig3          # rail-0 timeline
//	railwindows -fig4          # window CDF + breakdown (10 iterations)
//	railwindows -eq1           # window-count formula examples
//	railwindows -table1 -table2
//	railwindows -fig4 -timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"photonrail"
	"photonrail/internal/gridcli"
)

func main() {
	// Ctrl-C and SIGTERM cancel the run through the same context the
	// -timeout flag bounds; a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railwindows: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railwindows", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig3    = fs.Bool("fig3", false, "print the Fig. 3 rail timeline")
		fig4    = fs.Bool("fig4", false, "print the Fig. 4 window analysis")
		eq1     = fs.Bool("eq1", false, "print Eq. 1 window counts")
		table1  = fs.Bool("table1", false, "print Table 1")
		table2  = fs.Bool("table2", false, "print Table 2")
		iters   = fs.Int("iterations", 10, "iterations for the Fig. 4 CDF")
		rail    = fs.Int("rail", 0, "rail to analyze")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		timeout = fs.Duration("timeout", 0, "overall deadline for the invocation (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *iters <= 0 {
		return fmt.Errorf("-iterations must be positive, got %d", *iters)
	}
	if !*fig3 && !*fig4 && !*eq1 && !*table1 && !*table2 {
		*fig3, *fig4, *eq1, *table1, *table2 = true, true, true, true, true
	}

	// The selected flags map onto registry experiments in the historical
	// print order; one engine serves them all, so fig3 and fig4 share
	// one traced simulation through its cache.
	var selected []string
	if *table1 {
		selected = append(selected, "table1")
	}
	if *table2 {
		selected = append(selected, "table2")
	}
	if *eq1 {
		selected = append(selected, "eq1")
	}
	if *fig3 {
		selected = append(selected, "fig3")
	}
	if *fig4 {
		selected = append(selected, "window-analysis")
	}

	ctx, cancel := gridcli.WithTimeout(ctx, *timeout)
	defer cancel()
	return gridcli.RunExperiments(ctx, photonrail.NewEngine(0), selected,
		photonrail.Params{WindowIterations: *iters, Rail: *rail}, *csv, stdout)
}
