package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTablesAndEq1(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-table1", "-table2", "-eq1"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TP, DP & PP",      // Table 1
		"fwd AG per layer", // Table 2
		"windows/second",   // Eq. 1 summary line
		"Llama3.1-405B",    // Eq. 1 row
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFig3Fig4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the traced workload")
	}
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-fig3", "-fig4", "-iterations", "2"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rail1", "windows over 1ms:", "AG"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-table1", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ",") || strings.Contains(out.String(), "---") {
		t.Errorf("csv shape:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-iterations", "0"},
		{"-nope"},
		{"positional"},
	} {
		var out, errb bytes.Buffer
		if err := run(t.Context(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
