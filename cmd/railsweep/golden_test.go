package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"photonrail/internal/goldentest"
)

// TestGoldenOutputs pins railsweep's canonical invocations byte for
// byte: the static tables, the Fig. 7 cost comparison, and a two-point
// Fig. 8 sweep, in both text and JSON. Regenerate intentionally with
// `go test ./cmd/railsweep -run Golden -update`.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"tables.table", []string{"table1", "table2", "table3"}},
		{"fig7.table", []string{"fig7"}},
		{"fig7.json", []string{"-json", "fig7"}},
		{"fig8.table", []string{"-latencies", "0,10", "-iters", "1", "fig8"}},
		{"fig8.json", []string{"-json", "-latencies", "0,10", "-iters", "1", "fig8"}},
		{"fig4.table", []string{"-window-iters", "2", "fig4"}},
		{"fig4.json", []string{"-json", "-window-iters", "2", "fig4"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(t.Context(), tc.args, &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", tc.name))
		})
	}
}
