// Command railsweep runs experiments from the photonrail registry on
// the concurrent experiment engine, with a configurable worker count,
// an overall -timeout, and optional JSON output for scripted
// large-scale sweeps.
//
// Usage:
//
//	railsweep [flags] [experiment ...]
//
// Experiments: any registered name (see -list), plus "all" for the
// historical batch (table1 table2 table3 fig7 fig4 fig8; default
// fig8). One engine serves the whole invocation, so experiments
// sharing simulations (e.g. the electrical baseline) run them once.
//
//	railsweep -parallel 8 fig8
//	railsweep -json -latencies 0,10,100,1000 fig8
//	railsweep -parallel 4 -stats all
//	railsweep -timeout 30s fig8-5d
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"photonrail"
	"photonrail/internal/gridcli"
	"photonrail/internal/report"
)

func main() {
	// Ctrl-C and SIGTERM cancel the run through the same context the
	// -timeout flag bounds; a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railsweep: %v\n", err)
		os.Exit(1)
	}
}

// experimentNames is the order "all" runs in (cheap tables first).
var experimentNames = []string{"table1", "table2", "table3", "fig7", "fig4", "fig8"}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parallel  = fs.Int("parallel", 0, "worker count (0 = NumCPU)")
		jsonOut   = fs.Bool("json", false, "emit JSON instead of aligned text")
		stats     = fs.Bool("stats", false, "print engine cache stats to stderr")
		iters     = fs.Int("iters", 2, "training iterations for fig8 simulations")
		winIters  = fs.Int("window-iters", 10, "training iterations for the fig4 window analysis")
		latencies = fs.String("latencies", "", "comma-separated fig8 latencies in ms (default: the paper's)")
		timeout   = fs.Duration("timeout", 0, "overall deadline for the invocation (0 = none)")
		list      = fs.Bool("list", false, "list the experiment registry, then exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railsweep [flags] [experiment ...]\nexperiments: any registered name (-list), or: %s, all\n",
			strings.Join(experimentNames, ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if *list {
		return photonrail.DescribeExperiments(stdout)
	}
	lats, err := parseLatencies(*latencies)
	if err != nil {
		return err
	}
	wanted := fs.Args()
	if len(wanted) == 0 {
		wanted = []string{"fig8"}
	}
	var selected []string
	for _, name := range wanted {
		if name == "all" {
			selected = append(selected, experimentNames...)
			continue
		}
		if _, ok := photonrail.Lookup(name); !ok {
			return fmt.Errorf("unknown experiment %q (want %s, all)", name,
				strings.Join(photonrail.ExperimentNames(), ", "))
		}
		selected = append(selected, name)
	}

	ctx, cancel := gridcli.WithTimeout(ctx, *timeout)
	defer cancel()
	en := photonrail.NewEngine(*parallel)
	params := photonrail.Params{
		Iterations:       *iters,
		WindowIterations: *winIters,
		LatenciesMS:      lats,
	}
	out := make(map[string]*photonrail.ExperimentResult, len(selected))
	for _, name := range selected {
		e, _ := photonrail.Lookup(name)
		res, err := e.Run(ctx, en, params)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out[name] = res
	}

	if *jsonOut {
		if len(selected) == 1 {
			if err := out[selected[0]].RenderJSON(stdout); err != nil {
				return err
			}
		} else {
			rows := make(map[string]any, len(out))
			for name, res := range out {
				rows[name] = res.Rows
			}
			if err := report.JSON(stdout, rows); err != nil {
				return err
			}
		}
	} else {
		for _, name := range selected {
			if err := out[name].RenderText(stdout); err != nil {
				return err
			}
		}
	}
	if *stats {
		st := en.CacheStats()
		fmt.Fprintf(stderr, "engine: %d workers, cache %d hits / %d misses\n",
			en.Workers(), st.Hits, st.Misses)
		fmt.Fprintf(stderr, "stages: build %d/%d, provision %d/%d (seeds %d/%d), time %d/%d (hits/misses)\n",
			st.Build.Hits, st.Build.Misses,
			st.Provision.Hits, st.Provision.Misses, st.SeedHits, st.SeedMisses,
			st.Time.Hits, st.Time.Misses)
	}
	return nil
}

func parseLatencies(s string) ([]float64, error) {
	if s == "" {
		return nil, nil // the fig8 experiment defaults to the paper's
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad latency %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative latency %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}
