// Command railsweep runs any of the paper's figure/table experiment
// batches on the concurrent experiment engine, with a configurable
// worker count and optional JSON output for scripted large-scale
// sweeps.
//
// Usage:
//
//	railsweep [flags] [experiment ...]
//
// Experiments: fig4, fig7, fig8, table1, table2, table3, all
// (default fig8). One engine serves the whole invocation, so
// experiments sharing simulations (e.g. the electrical baseline)
// run them once.
//
//	railsweep -parallel 8 fig8
//	railsweep -json -latencies 0,10,100,1000 fig8
//	railsweep -parallel 4 -stats all
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"photonrail"
	"photonrail/internal/cost"
	"photonrail/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railsweep: %v\n", err)
		os.Exit(1)
	}
}

// experimentNames is the order "all" runs in (cheap tables first).
var experimentNames = []string{"table1", "table2", "table3", "fig7", "fig4", "fig8"}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parallel  = fs.Int("parallel", 0, "worker count (0 = NumCPU)")
		jsonOut   = fs.Bool("json", false, "emit JSON instead of aligned text")
		stats     = fs.Bool("stats", false, "print engine cache stats to stderr")
		iters     = fs.Int("iters", 2, "training iterations for fig8 simulations")
		winIters  = fs.Int("window-iters", 10, "training iterations for the fig4 window analysis")
		latencies = fs.String("latencies", "", "comma-separated fig8 latencies in ms (default: the paper's)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railsweep [flags] [experiment ...]\nexperiments: %s, all\n",
			strings.Join(experimentNames, ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	lats, err := parseLatencies(*latencies)
	if err != nil {
		return err
	}
	wanted := fs.Args()
	if len(wanted) == 0 {
		wanted = []string{"fig8"}
	}
	var selected []string
	for _, name := range wanted {
		if name == "all" {
			selected = append(selected, experimentNames...)
			continue
		}
		if !validExperiment(name) {
			return fmt.Errorf("unknown experiment %q (want %s, all)", name, strings.Join(experimentNames, ", "))
		}
		selected = append(selected, name)
	}

	en := photonrail.NewEngine(*parallel)
	out := make(map[string]any, len(selected))
	for _, name := range selected {
		res, err := runExperiment(en, name, *iters, *winIters, lats)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out[name] = res
	}

	if *jsonOut {
		if len(selected) == 1 {
			if err := report.JSON(stdout, out[selected[0]]); err != nil {
				return err
			}
		} else if err := report.JSON(stdout, out); err != nil {
			return err
		}
	} else {
		for _, name := range selected {
			if err := renderText(stdout, out[name]); err != nil {
				return err
			}
		}
	}
	if *stats {
		st := en.CacheStats()
		fmt.Fprintf(stderr, "engine: %d workers, cache %d hits / %d misses\n",
			en.Workers(), st.Hits, st.Misses)
	}
	return nil
}

func validExperiment(name string) bool {
	for _, n := range experimentNames {
		if n == name {
			return true
		}
	}
	return false
}

func parseLatencies(s string) ([]float64, error) {
	if s == "" {
		return nil, nil // SweepReconfigLatency defaults to the paper's
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad latency %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative latency %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// fig4JSON summarizes the window analysis for scripted consumers.
type fig4JSON struct {
	FractionOver1ms float64        `json:"fractionOver1ms"`
	PerRail         []fig4RailJSON `json:"perRail"`
	Breakdown       []fig4Class    `json:"breakdown"`
}

type fig4RailJSON struct {
	Rail  int     `json:"rail"`
	N     int     `json:"n"`
	P50MS float64 `json:"p50ms"`
	P90MS float64 `json:"p90ms"`
	MaxMS float64 `json:"maxms"`
}

type fig4Class struct {
	Class         string  `json:"class"`
	Count         int     `json:"count"`
	MeanWindowMS  float64 `json:"meanWindowMS"`
	MeanBytesNext float64 `json:"meanBytesAfter"`
}

// fig8JSON pairs the sweep points with the workload scale they were
// simulated at.
type fig8JSON struct {
	Iterations int                     `json:"iterations"`
	Points     []photonrail.SweepPoint `json:"points"`
}

func runExperiment(en *photonrail.Engine, name string, iters, winIters int, lats []float64) (any, error) {
	switch name {
	case "table1":
		return photonrail.Table1(), nil
	case "table2":
		return photonrail.Table2(), nil
	case "table3":
		return photonrail.Table3(), nil
	case "fig7":
		rows, err := en.CostComparison()
		if err != nil {
			return nil, err
		}
		return rows, nil
	case "fig4":
		rep, err := en.AnalyzeWindows(photonrail.PaperWorkload(winIters))
		if err != nil {
			return nil, err
		}
		out := fig4JSON{FractionOver1ms: rep.FractionOver1ms}
		for rail := 0; ; rail++ {
			c, ok := rep.PerRailCDF[rail]
			if !ok {
				break
			}
			out.PerRail = append(out.PerRail, fig4RailJSON{
				Rail: rail, N: c.N(),
				P50MS: c.Quantile(0.50), P90MS: c.Quantile(0.90), MaxMS: c.Quantile(1),
			})
		}
		for _, b := range rep.Breakdown.Buckets() {
			out.Breakdown = append(out.Breakdown, fig4Class{
				Class: b.Label, Count: b.Count, MeanWindowMS: b.Mean(),
				MeanBytesNext: rep.BreakdownBytes[b.Label],
			})
		}
		return out, nil
	case "fig8":
		points, err := en.SweepReconfigLatency(photonrail.PaperWorkload(iters), lats)
		if err != nil {
			return nil, err
		}
		return fig8JSON{Iterations: iters, Points: points}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func renderText(w io.Writer, res any) error {
	var t *report.Table
	switch v := res.(type) {
	case *report.Table:
		t = v
	case fig8JSON:
		t = photonrail.Fig8Table(v.Points)
	case fig4JSON:
		t = report.NewTable("Fig. 4: window-size summary per rail (ms)",
			"Rail", "N", "p50", "p90", "max")
		for _, r := range v.PerRail {
			t.AddRow(fmt.Sprintf("rail%d", r.Rail+1), r.N,
				fmt.Sprintf("%.3g", r.P50MS), fmt.Sprintf("%.3g", r.P90MS), fmt.Sprintf("%.3g", r.MaxMS))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "windows over 1ms: %.0f%%\n", 100*v.FractionOver1ms)
		t = report.NewTable("Fig. 4b: rail-0 windows by following traffic",
			"Traffic class", "Count", "Avg window (ms)", "Avg bytes after")
		for _, c := range v.Breakdown {
			t.AddRow(c.Class, c.Count, fmt.Sprintf("%.3g", c.MeanWindowMS), fmt.Sprintf("%.3g", c.MeanBytesNext))
		}
	case []cost.Fig7Row:
		t = photonrail.Fig7RowsTable(v)
	default:
		return fmt.Errorf("railsweep: no text renderer for %T", res)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
