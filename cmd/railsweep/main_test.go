package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTable3Text(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"table3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Piezo (Polatis)") {
		t.Errorf("table3 output:\n%s", out.String())
	}
}

func TestRunFig8JSON(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the workload")
	}
	var out, errb bytes.Buffer
	err := run(t.Context(), []string{"-json", "-parallel", "4", "-iters", "1", "-latencies", "0,10", "-stats", "fig8"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Iterations int `json:"iterations"`
		Points     []struct {
			LatencyMS float64
			Reactive  float64
		} `json:"points"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(got.Points) != 2 || got.Points[0].LatencyMS != 0 || got.Points[0].Reactive != 1 {
		t.Errorf("points = %+v", got.Points)
	}
	if !strings.Contains(errb.String(), "cache") {
		t.Errorf("-stats wrote nothing: %q", errb.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"fig99"}, &out, &errb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestParseLatencies(t *testing.T) {
	got, err := parseLatencies("0, 10,100.5")
	if err != nil || len(got) != 3 || got[2] != 100.5 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := parseLatencies("1,x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseLatencies("-1"); err == nil {
		t.Error("negative latency accepted")
	}
	if got, err := parseLatencies(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
}
