// Command railgate is the HTTP/JSON front door to the experiment
// fleet: it fronts a raild daemon or railfleet coordinator (or spins up
// an in-process daemon when standalone) and serves the experiment
// registry to plain HTTP clients — catalog, parameterized runs with
// content negotiation (JSON/CSV/text), per-run SSE progress, and the
// gateway's own /metrics and /events.
//
// Requests carry a tenant in the X-Tenant header; each tenant gets a
// token-bucket rate limit, a bounded admission queue (429 + Retry-After
// past either), and a weighted fair share of the execution slots, so
// one tenant's 4096-cell grid cannot starve another's fig4. With
// -store, completed results also persist to a content-addressed
// on-disk store and identical requests — across tenants, gateways, and
// daemon restarts — are served from disk with zero new simulations.
//
// Usage:
//
//	railgate                                  # in-process daemon, listen on 127.0.0.1:8080
//	railgate -connect 10.0.0.9:9090           # front an existing raild/railfleet
//	railgate -store /var/lib/railgate         # durable cross-restart result store
//	railgate -rate 5 -burst 10 -queue 32      # default-tenant admission policy
//	railgate -tenant 'ci,rate=100,weight=4'   # per-tenant override (repeatable)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"photonrail/internal/railgate"
	"photonrail/internal/railserve"
	"photonrail/internal/resultstore"
)

func main() {
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		fmt.Fprintf(os.Stderr, "railgate: %v\n", err)
		os.Exit(1)
	}
}

// tenantFlags collects repeatable -tenant specs.
type tenantFlags map[string]railgate.TenantLimits

func (t tenantFlags) String() string { return fmt.Sprintf("%d tenant overrides", len(t)) }

func (t tenantFlags) Set(spec string) error {
	name, limits, err := parseTenantSpec(spec)
	if err != nil {
		return err
	}
	t[name] = limits
	return nil
}

// parseTenantSpec parses "name,key=value,..." with keys rate, burst,
// weight, inflight, queue.
func parseTenantSpec(spec string) (string, railgate.TenantLimits, error) {
	parts := strings.Split(spec, ",")
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return "", railgate.TenantLimits{}, fmt.Errorf("tenant spec %q: empty tenant name", spec)
	}
	var l railgate.TenantLimits
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return "", railgate.TenantLimits{}, fmt.Errorf("tenant spec %q: %q is not key=value", spec, kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "rate", "burst", "weight":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return "", railgate.TenantLimits{}, fmt.Errorf("tenant spec %q: bad %s %q", spec, key, val)
			}
			switch key {
			case "rate":
				l.RatePerSec = f
			case "burst":
				l.Burst = f
			case "weight":
				l.Weight = f
			}
		case "inflight", "queue":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return "", railgate.TenantLimits{}, fmt.Errorf("tenant spec %q: bad %s %q", spec, key, val)
			}
			if key == "inflight" {
				l.MaxInFlight = n
			} else {
				l.MaxQueue = n
			}
		default:
			return "", railgate.TenantLimits{}, fmt.Errorf("tenant spec %q: unknown key %q (want rate, burst, weight, inflight, queue)", spec, key)
		}
	}
	return name, l, nil
}

// run starts the gateway and serves until stop delivers. It is the
// testable core: main wires OS signals in, tests feed the channel
// directly.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("railgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tenants := tenantFlags{}
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		connect  = fs.String("connect", "", "raild/railfleet address to front (empty = in-process daemon)")
		parallel = fs.Int("parallel", 0, "in-process daemon worker count (0 = NumCPU)")
		cache    = fs.Int64("cache", 4096, "in-process daemon cache bound in simulation units (0 = unbounded)")
		slots    = fs.Int("slots", 4, "gateway-wide concurrent execution slots")
		storeDir = fs.String("store", "", "durable result-store directory (empty = disabled)")
		storeMax = fs.Int64("store-max-bytes", 256<<20, "result-store size bound before LRU eviction (0 = unbounded)")
		storeSyn = fs.Bool("store-fsync", false, "fsync stored results (survive power loss, not just crashes)")
		rate     = fs.Float64("rate", 0, "default tenant sustained requests/sec (0 = unlimited)")
		burst    = fs.Float64("burst", 0, "default tenant burst depth (0 = max(1, rate))")
		inflight = fs.Int("inflight", 0, "default tenant max in-flight requests (0 = uncapped)")
		queue    = fs.Int("queue", 0, "default tenant max queued requests (0 = 64)")
		verbose  = fs.Bool("verbose", false, "log gateway events to stderr")
	)
	fs.Var(tenants, "tenant", "per-tenant override 'name,rate=R,burst=B,weight=W,inflight=N,queue=Q' (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railgate takes flags only)", fs.Args())
	}
	if *connect != "" && (*parallel != 0 || *cache != 4096) {
		return fmt.Errorf("-parallel/-cache configure the in-process daemon and conflict with -connect")
	}

	backendAddr := *connect
	if backendAddr == "" {
		// Standalone: an in-process daemon on a loopback port, dialed
		// like any remote one — the gateway path is identical either way.
		s, err := railserve.NewServer(railserve.Config{Workers: *parallel, MaxCacheCost: *cache})
		if err != nil {
			return err
		}
		defer func() { _ = s.Close() }()
		backendAddr = s.Addr()
		fmt.Fprintf(stdout, "railgate: in-process daemon on %s\n", backendAddr)
	}
	client, err := railserve.Dial(backendAddr)
	if err != nil {
		return fmt.Errorf("backend %s: %w", backendAddr, err)
	}
	defer func() { _ = client.Close() }()

	var store *resultstore.Store
	if *storeDir != "" {
		store, err = resultstore.Open(resultstore.Config{Dir: *storeDir, MaxBytes: *storeMax, Fsync: *storeSyn})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "railgate: durable results in %s (%d entries)\n", *storeDir, store.Stats().Entries)
	}

	cfg := railgate.Config{
		Runner: client,
		Store:  store,
		Slots:  *slots,
		DefaultTenant: railgate.TenantLimits{
			RatePerSec:  *rate,
			Burst:       *burst,
			MaxInFlight: *inflight,
			MaxQueue:    *queue,
		},
		Tenants: tenants,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	g, err := railgate.New(cfg)
	if err != nil {
		return err
	}
	defer g.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }() // joined below: Serve returns once hs.Close runs
	fmt.Fprintf(stdout, "railgate: listening on http://%s\n", ln.Addr())
	select {
	case <-stop:
	case err := <-serveErr:
		return err
	}
	fmt.Fprintf(stdout, "railgate: shutting down\n")
	_ = hs.Close()
	<-serveErr
	return nil
}
