package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail/internal/goldentest"
)

// syncBuffer lets the gateway goroutine write output while the test
// polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startGateway runs the railgate CLI with the given extra flags — the
// flag parsing, backend dialing, and HTTP serving are what's under
// test — and returns the base URL.
func startGateway(t *testing.T, extra ...string) string {
	t.Helper()
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-parallel", "2"}, extra...)
	go func() { done <- run(args, &out, &errb, stop) }()
	t.Cleanup(func() {
		stop <- os.Interrupt
		if err := <-done; err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
	})
	listenRE := regexp.MustCompile(`listening on (http://\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		select {
		case err := <-done:
			done <- err
			t.Fatalf("gateway exited early: %v; stderr: %s", err, errb.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never reported listening; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGoldenGateway pins the HTTP front door byte for byte: the fig8-5d
// grid requested over plain HTTP/JSON must render exactly the committed
// corpus — and exactly the bytes cmd/railfleet's fleet corpus pins, so
// gateway, fleet, daemon, and local CLI all print the same result. CI
// runs this test in its loopback golden step. Regenerate this package's
// copy intentionally with `go test ./cmd/railgate -run Golden -update`
// (the railfleet corpus is never written from here).
func TestGoldenGateway(t *testing.T) {
	base := startGateway(t)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/experiments/fig8-5d", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	goldentest.Check(t, body, filepath.Join("testdata", "golden", "fig8-5d.json"))

	// The same bytes the fleet corpus commits: the front door adds no
	// rendering of its own.
	want, err := os.ReadFile(filepath.Join("..", "railfleet", "testdata", "golden", "fig8-5d.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("gateway JSON diverged from cmd/railfleet's fig8-5d golden corpus")
	}
}
