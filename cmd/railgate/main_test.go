package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestParseTenantSpec covers the -tenant flag grammar.
func TestParseTenantSpec(t *testing.T) {
	name, l, err := parseTenantSpec("ci,rate=2.5,burst=10,weight=4,inflight=2,queue=8")
	if err != nil {
		t.Fatal(err)
	}
	if name != "ci" || l.RatePerSec != 2.5 || l.Burst != 10 || l.Weight != 4 || l.MaxInFlight != 2 || l.MaxQueue != 8 {
		t.Fatalf("parsed %q / %+v", name, l)
	}
	name, l, err = parseTenantSpec("bare")
	if err != nil || name != "bare" || l.RatePerSec != 0 || l.Weight != 0 {
		t.Fatalf("bare spec: %q %+v %v", name, l, err)
	}
	for _, bad := range []string{
		"",                  // empty name
		",rate=1",           // empty name with keys
		"t,rate",            // not key=value
		"t,rate=x",          // bad float
		"t,inflight=-1",     // negative
		"t,queue=1.5",       // not an int
		"t,throughput=1000", // unknown key
	} {
		if _, _, err := parseTenantSpec(bad); err == nil {
			t.Errorf("parseTenantSpec(%q) accepted", bad)
		}
	}
}

// TestFlagValidation covers the CLI refusal paths.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"positional"},
		{"-connect", "10.0.0.1:9090", "-parallel", "4"},
		{"-tenant", "t,bogus=1"},
	} {
		var out, errb strings.Builder
		stop := make(chan struct{})
		close(stop)
		if err := run(args, &out, &errb, nil); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestGatewayServesCatalog boots the CLI end to end (in-process daemon)
// and fetches the catalog.
func TestGatewayServesCatalog(t *testing.T) {
	base := startGateway(t, "-tenant", "ci,rate=100")
	resp, err := http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var entries []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("catalog not JSON: %v\n%s", err, body)
	}
	if len(entries) == 0 {
		t.Fatal("empty catalog")
	}
}
