package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes to it
// from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesUntilStopped(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		// Backends are dialed lazily, so a coordinator starts fine
		// before its fleet does.
		done <- run([]string{"-addr", "127.0.0.1:0", "-backends", "127.0.0.1:1,127.0.0.1:2"}, &out, &errb, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reported listening; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "2 backends") {
		t.Errorf("startup line = %q", out.String())
	}
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                   // no backends
		{"-backends", " , "}, // empty backend list
		{"-backends", "h:1", "-inflight", "0"},
		{"-backends", "h:1", "-addr", "not:an:addr:at:all"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(args, &out, &errb, stop); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesMetrics: with -metrics-addr the coordinator exposes its
// fleet-level observability surface over HTTP.
func TestRunServesMetrics(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-backends", "127.0.0.1:1",
			"-metrics-addr", "127.0.0.1:0"}, &out, &errb, stop)
	}()
	defer func() {
		stop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("coordinator never shut down")
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`metrics on (http://[^/\s]+)/metrics`)
	var base string
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reported its metrics address; out: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"railfleet_requests_inflight", "railfleet_failovers_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %s:\n%s", want, body)
		}
	}
}
