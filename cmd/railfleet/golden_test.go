package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"photonrail/internal/goldentest"
	"photonrail/internal/gridcli"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
)

// startGoldenFleet brings up three raild backends and a railfleet
// coordinator — through run(), so the CLI wiring is what's under test
// — and returns the coordinator's dial address.
func startGoldenFleet(t *testing.T) string {
	t.Helper()
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := railserve.NewServer(railserve.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close(); s.Drain() })
		addrs = append(addrs, s.Addr())
	}
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-backends", strings.Join(addrs, ",")}, &out, &errb, stop)
	}()
	t.Cleanup(func() {
		stop <- os.Interrupt
		if err := <-done; err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	listenRE := regexp.MustCompile(`listening on (\S+),`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reported listening; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGoldenFleet pins the fleet path byte for byte: the full 48-cell
// fig8-5d grid served by a 3-backend fleet must render exactly the
// committed corpus in every output format, and the canonical small
// grid must match cmd/railgrid's own golden files — the same bytes a
// single-process run produces, proving the fan-out is invisible in the
// output. CI runs this test in its loopback golden step. Regenerate
// the fig8-5d corpus intentionally with
// `go test ./cmd/railfleet -run Golden -update` (railgrid's files are
// never written from here).
func TestGoldenFleet(t *testing.T) {
	addr := startGoldenFleet(t)
	c, err := railserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	t.Run("fig8-5d", func(t *testing.T) {
		run, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range []string{"table", "csv", "json"} {
			var out bytes.Buffer
			if err := gridcli.RenderRows(&out, format, run.Name, run.Rows); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", "fig8-5d."+format))
		}
	})

	// The exact grid railgrid's golden corpus pins, through the fleet:
	// the bytes must equal railgrid's committed files, not a corpus of
	// our own.
	t.Run("railgrid-corpus", func(t *testing.T) {
		spec := scenario.Spec{
			Name:         "custom",
			Models:       []string{"Llama3-8B"},
			Parallelisms: []scenario.Parallelism{{TP: 4, DP: 2, PP: 2}},
			Fabrics:      []string{"electrical", "photonic", "static"},
			LatenciesMS:  []float64{5},
			Iterations:   1,
		}
		run, err := c.RunGrid(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range []string{"table", "csv", "json"} {
			var out bytes.Buffer
			if err := gridcli.RenderRows(&out, format, run.Name, run.Rows); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("..", "railgrid", "testdata", "golden", "small."+format))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("%s output diverged from railgrid's golden corpus", format)
			}
		}
	})
}
