// Command railfleet is the sharded-fleet coordinator: it speaks the
// same opusnet protocol raild does — point railclient (or any existing
// client) at it unchanged — but executes each scenario grid across a
// fleet of backend raild daemons, sharding cells by workload so no
// simulation is duplicated, merging rows back into canonical order,
// and re-sharding a dead backend's cells to the survivors mid-grid.
// Non-grid experiments are proxied to a backend.
//
// Usage:
//
//	railfleet -backends 10.0.0.1:9090,10.0.0.2:9090     # listen on 127.0.0.1:9091
//	railfleet -addr :7071 -backends host:9090 -inflight 32
//	railfleet -backends ... -verbose                     # log requests and failovers
//	railfleet -backends ... -metrics-addr :9191          # serve /metrics and /events over HTTP
//	railfleet -register                                  # elastic fleet: backends join themselves
//	railfleet -register -backends host:9090              # mixed: statics plus self-registered
//
// Backends are dialed lazily and re-probed after failures, so the
// fleet may come up (and restart) in any order. With -register the
// fleet is elastic: raild daemons started with -coordinator register
// themselves (weighting the cell shard by their advertised capacity),
// keep alive via heartbeats bounded by -heartbeat-ttl, and drain
// gracefully on SIGTERM — joining and leaving even mid-request.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"photonrail/internal/railctl"
	"photonrail/internal/railfleet"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		fmt.Fprintf(os.Stderr, "railfleet: %v\n", err)
		os.Exit(1)
	}
}

// run starts the coordinator and serves until stop delivers. It is the
// testable core: main wires OS signals in, tests feed the channel
// directly.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("railfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9091", "TCP listen address")
		backends = fs.String("backends", "", "comma-separated static raild backend addresses")
		register = fs.Bool("register", false, "accept self-registering backends (raild -coordinator)")
		hbTTL    = fs.Duration("heartbeat-ttl", railctl.DefaultHeartbeatTTL, "mark a registered backend dead when its newest heartbeat is older than this")
		inflight = fs.Int("inflight", railfleet.DefaultInFlight, "max cells in flight per backend per request")
		batchTO  = fs.Duration("batch-timeout", railfleet.DefaultBatchTimeout, "per-batch wedge bound before a backend's cells re-shard (<0 = unbounded)")
		metrics  = fs.String("metrics-addr", "", "HTTP address for /metrics and /events (empty = disabled)")
		verbose  = fs.Bool("verbose", false, "log served requests, failovers, and membership events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railfleet takes flags only)", fs.Args())
	}
	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 && !*register {
		return fmt.Errorf("no backends: pass -backends host:port[,host:port...] or enable -register")
	}
	if *inflight <= 0 {
		return fmt.Errorf("-inflight must be > 0, got %d", *inflight)
	}
	if *hbTTL <= 0 {
		return fmt.Errorf("-heartbeat-ttl must be > 0, got %v", *hbTTL)
	}
	cfg := railfleet.Config{
		Addr:              *addr,
		Backends:          addrs,
		AllowRegistration: *register,
		HeartbeatTTL:      *hbTTL,
		InFlight:          *inflight,
		BatchTimeout:      *batchTO,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	f, err := railfleet.New(cfg)
	if err != nil {
		return err
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		hs := &http.Server{Handler: f.Telemetry().Handler()}
		go func() { _ = hs.Serve(ln) }() // Serve returns once hs is closed below
		defer func() { _ = hs.Close() }()
		fmt.Fprintf(stdout, "railfleet: metrics on http://%s/metrics\n", ln.Addr())
	}
	switch {
	case *register && len(addrs) > 0:
		fmt.Fprintf(stdout, "railfleet: listening on %s, %d backends (%s) + registration open\n",
			f.Addr(), len(addrs), strings.Join(addrs, ", "))
	case *register:
		fmt.Fprintf(stdout, "railfleet: listening on %s, registration open (no static backends)\n", f.Addr())
	default:
		fmt.Fprintf(stdout, "railfleet: listening on %s, %d backends: %s\n", f.Addr(), len(addrs), strings.Join(addrs, ", "))
	}
	<-stop
	fmt.Fprintf(stdout, "railfleet: shutting down\n")
	return f.Close()
}
