package main

import (
	"testing"

	"photonrail"
)

func TestBuildWorkload(t *testing.T) {
	w, err := buildWorkload("Llama3-8B", "A100", 4, 4, 2, 2, 12, 2, 2, "2x200")
	if err != nil {
		t.Fatal(err)
	}
	if w.Model.Name != "Llama3-8B" || w.GPU.Name != "A100" || w.NIC != photonrail.TwoPort200G {
		t.Errorf("workload = %+v", w)
	}
	if w.TP != 4 {
		t.Errorf("TP should follow gpus-per-node: %d", w.TP)
	}
	for _, bad := range [][2]string{
		{"NoSuchModel", "A100"},
		{"Llama3-8B", "TPU"},
	} {
		if _, err := buildWorkload(bad[0], bad[1], 4, 4, 2, 2, 12, 2, 2, "2x200"); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
	if _, err := buildWorkload("Llama3-8B", "A100", 4, 4, 2, 2, 12, 2, 2, "9x99"); err == nil {
		t.Error("accepted bad NIC")
	}
}

func TestParseFabric(t *testing.T) {
	f, err := parseFabric("photonic", 25, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != photonrail.PhotonicRail || f.ReconfigLatencyMS != 25 || !f.Provision {
		t.Errorf("fabric = %+v", f)
	}
	if f, _ := parseFabric("electrical", 0, false); f.Kind != photonrail.ElectricalRail {
		t.Error("electrical parse failed")
	}
	if f, _ := parseFabric("static", 0, false); f.Kind != photonrail.PhotonicStaticPartition {
		t.Error("static parse failed")
	}
	if _, err := parseFabric("quantum", 0, false); err == nil {
		t.Error("accepted unknown fabric")
	}
}

// TestEndToEndSimulation drives the same path main does, on a small run.
func TestEndToEndSimulation(t *testing.T) {
	w, err := buildWorkload("Llama3-8B", "A100", 4, 4, 2, 2, 4, 2, 1, "2x200")
	if err != nil {
		t.Fatal(err)
	}
	f, err := parseFabric("photonic", 15, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := photonrail.Simulate(w, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 {
		t.Error("no progress")
	}
}
