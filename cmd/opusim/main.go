// Command opusim simulates hybrid-parallel training on a rail fabric:
// one run on a chosen fabric, or the full Fig. 8 reconfiguration-latency
// sweep.
//
// Usage:
//
//	opusim [flags]
//	opusim -sweep                # regenerate Fig. 8
//	opusim -fabric photonic -latency 25 -provision
//
// Flags configure the workload (defaults are the paper's §3.1 Llama3-8B
// job) and the fabric.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"photonrail"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opusim: ")

	var (
		modelName  = flag.String("model", "Llama3-8B", "model preset: Llama3-8B, Llama3-70B, Llama3.1-405B, Mixtral-8x7B")
		gpuName    = flag.String("gpu", "A100", "GPU preset: A100, H100, H200")
		nodes      = flag.Int("nodes", 4, "scale-up domain count")
		perNode    = flag.Int("gpus-per-node", 4, "GPUs per scale-up domain (= rails = TP)")
		dp         = flag.Int("dp", 2, "FSDP degree")
		pp         = flag.Int("pp", 2, "pipeline degree")
		cp         = flag.Int("cp", 1, "context-parallel degree (1 = off)")
		ep         = flag.Int("ep", 1, "expert-parallel degree (1 = off; MoE models only)")
		gpipe      = flag.Bool("gpipe", false, "use the GPipe schedule instead of 1F1B")
		microbatch = flag.Int("microbatches", 12, "microbatches per iteration")
		mbs        = flag.Int("mbs", 2, "microbatch size (sequences)")
		iters      = flag.Int("iterations", 2, "training iterations")
		fabric     = flag.String("fabric", "photonic", "fabric: electrical, photonic, static")
		latency    = flag.Float64("latency", 15, "OCS reconfiguration latency (ms)")
		provision  = flag.Bool("provision", false, "enable Opus provisioning")
		nic        = flag.String("nic", "2x200", "NIC port configuration: 1x400, 2x200, 4x100")
		sweep      = flag.Bool("sweep", false, "run the Fig. 8 latency sweep and exit")
	)
	flag.Parse()

	w, err := buildWorkload(*modelName, *gpuName, *nodes, *perNode, *dp, *pp, *microbatch, *mbs, *iters, *nic)
	if err != nil {
		log.Fatal(err)
	}
	w.CP = *cp
	w.EP = *ep
	w.UseGPipe = *gpipe

	if *sweep {
		points, err := photonrail.SweepReconfigLatency(w, photonrail.PaperLatenciesMS())
		if err != nil {
			log.Fatal(err)
		}
		if err := photonrail.Fig8Table(points).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	f, err := parseFabric(*fabric, *latency, *provision)
	if err != nil {
		log.Fatal(err)
	}
	res, err := photonrail.Simulate(w, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric:            %s (latency %gms, provision %v)\n", *fabric, *latency, *provision)
	fmt.Printf("total time:        %.4fs\n", res.TotalSeconds)
	fmt.Printf("mean iteration:    %.4fs\n", res.MeanIterationSeconds)
	fmt.Printf("reconfigurations:  %d\n", res.Reconfigurations)
	fmt.Printf("fast grants:       %d\n", res.FastGrants)
	fmt.Printf("queued grants:     %d\n", res.QueuedGrants)
	fmt.Printf("blocked time:      %.4fs\n", res.BlockedSeconds)
}

func buildWorkload(modelName, gpuName string, nodes, perNode, dp, pp, microbatches, mbs, iters int, nic string) (photonrail.Workload, error) {
	w := photonrail.Workload{
		NumNodes:       nodes,
		GPUsPerNode:    perNode,
		TP:             perNode,
		DP:             dp,
		PP:             pp,
		Microbatches:   microbatches,
		MicrobatchSize: mbs,
		Iterations:     iters,
	}
	switch modelName {
	case "Llama3-8B":
		w.Model = photonrail.Llama3_8B
	case "Llama3-70B":
		w.Model = photonrail.Llama3_70B
	case "Llama3.1-405B":
		w.Model = photonrail.Llama31_405B
	case "Mixtral-8x7B":
		w.Model = photonrail.Mixtral8x7B
	default:
		return w, fmt.Errorf("unknown model %q", modelName)
	}
	switch gpuName {
	case "A100":
		w.GPU = photonrail.A100
	case "H100":
		w.GPU = photonrail.H100
	case "H200":
		w.GPU = photonrail.H200
	default:
		return w, fmt.Errorf("unknown GPU %q", gpuName)
	}
	switch nic {
	case "1x400":
		w.NIC = photonrail.OnePort400G
	case "2x200":
		w.NIC = photonrail.TwoPort200G
	case "4x100":
		w.NIC = photonrail.FourPort100G
	default:
		return w, fmt.Errorf("unknown NIC config %q", nic)
	}
	return w, nil
}

func parseFabric(name string, latencyMS float64, provision bool) (photonrail.Fabric, error) {
	switch strings.ToLower(name) {
	case "electrical":
		return photonrail.Fabric{Kind: photonrail.ElectricalRail}, nil
	case "photonic":
		return photonrail.Fabric{Kind: photonrail.PhotonicRail, ReconfigLatencyMS: latencyMS, Provision: provision}, nil
	case "static":
		return photonrail.Fabric{Kind: photonrail.PhotonicStaticPartition}, nil
	default:
		return photonrail.Fabric{}, fmt.Errorf("unknown fabric %q", name)
	}
}
