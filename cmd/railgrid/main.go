// Command railgrid sweeps scenario grids — the cross-product of model,
// GPU, fabric kind, reconfiguration latency, {TP,DP,PP,CP,EP}
// parallelism, pipeline schedule, jitter, and ReduceScatter eagerness —
// on the concurrent memoizing engine. Infeasible cells (e.g. static
// partitions violating constraint C2, or expert parallelism on a dense
// model) are reported as skips with reasons. Parallel output is
// byte-identical to -parallel=1.
//
// Usage:
//
//	railgrid -grid fig8-5d                            # built-in grid
//	railgrid -fabrics electrical,photonic,provisioned \
//	         -latencies 1,10,100 -par 4:2:2,4:1:2:2   # from flags
//	railgrid -grid fig8-5d -format csv -stats
//	railgrid -models Mixtral-8x7B -par 4:1:2:1:2 -format json
//
// Parallelism coordinates are TP:DP:PP[:CP[:EP]].
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"photonrail"
	"photonrail/internal/model"
	"photonrail/internal/report"
	"photonrail/internal/scenario"
	"photonrail/internal/topo"
	"photonrail/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railgrid: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railgrid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gridName  = fs.String("grid", "", "built-in grid name (see -list); dimension flags override its axes")
		list      = fs.Bool("list", false, "list built-in grids and presets, then exit")
		models    = fs.String("models", "", "comma-separated model presets (e.g. Llama3-8B,Mixtral-8x7B)")
		gpus      = fs.String("gpus", "", "comma-separated GPU presets (e.g. A100,H100)")
		fabrics   = fs.String("fabrics", "", "comma-separated fabric kinds: electrical,photonic,provisioned,static")
		latencies = fs.String("latencies", "", "comma-separated reconfiguration latencies in ms")
		par       = fs.String("par", "", "comma-separated parallelisms TP:DP:PP[:CP[:EP]] (e.g. 4:2:2,4:1:2:2)")
		schedules = fs.String("schedules", "", "comma-separated pipeline schedules: 1F1B,GPipe")
		jitters   = fs.String("jitters", "", "comma-separated compute jitter fractions (e.g. 0,0.03)")
		eager     = fs.String("eager", "", "comma-separated EagerRS values: false,true")
		nic       = fs.String("nic", "", "NIC port split: 1x400, 2x200, or 4x100")
		mb        = fs.Int("mb", 0, "microbatches per iteration (0 = grid default)")
		mbs       = fs.Int("mbs", 0, "microbatch size (0 = grid default)")
		iters     = fs.Int("iters", 0, "training iterations per cell (0 = grid default)")
		parallel  = fs.Int("parallel", 0, "worker count (0 = NumCPU)")
		format    = fs.String("format", "table", "output format: table, csv, or json")
		stats     = fs.Bool("stats", false, "print engine cache stats to stderr")
		progress  = fs.Bool("progress", false, "print per-cell progress to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railgrid [flags]\nparallelism coordinates are TP:DP:PP[:CP[:EP]]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railgrid takes flags only)", fs.Args())
	}
	if *list {
		printCatalog(stdout)
		return nil
	}
	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, json)", *format)
	}

	var g photonrail.Grid
	if *gridName != "" {
		mk, ok := scenario.Grids()[*gridName]
		if !ok {
			names := gridNames()
			return fmt.Errorf("unknown grid %q (built-ins: %s)", *gridName, strings.Join(names, ", "))
		}
		g = mk()
	}
	if err := applyDimensionFlags(&g, *models, *gpus, *fabrics, *latencies, *par, *schedules, *jitters, *eager, *nic); err != nil {
		return err
	}
	if *mb > 0 {
		g.Microbatches = *mb
	}
	if *mbs > 0 {
		g.MicrobatchSize = *mbs
	}
	if *iters > 0 {
		g.Iterations = *iters
	}
	if g.Name == "" {
		g.Name = "custom"
	}

	var onCell func(done, total int)
	if *progress {
		onCell = func(done, total int) { fmt.Fprintf(stderr, "railgrid: %d/%d cells\n", done, total) }
	}
	en := photonrail.NewEngine(*parallel)
	res, err := en.RunGridProgress(g, onCell)
	if err != nil {
		return err
	}

	switch *format {
	case "table":
		if err := res.Table().Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n%d cells: %d ok, %d skipped\n",
			len(res.Cells), len(res.Cells)-len(res.Skips()), len(res.Skips()))
	case "csv":
		if err := res.CSVTable().CSV(stdout); err != nil {
			return err
		}
	case "json":
		out := struct {
			Grid  string         `json:"grid"`
			Cells []scenario.Row `json:"cells"`
		}{g.Name, res.Rows()}
		if err := report.JSON(stdout, out); err != nil {
			return err
		}
	}
	if *stats {
		st := en.CacheStats()
		fmt.Fprintf(stderr, "engine: %d workers, cache %d hits / %d misses\n",
			en.Workers(), st.Hits, st.Misses)
	}
	return nil
}

func gridNames() []string {
	var names []string
	for name := range scenario.Grids() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func printCatalog(w io.Writer) {
	fmt.Fprintf(w, "built-in grids: %s\n", strings.Join(gridNames(), ", "))
	var ms, gs []string
	for _, m := range model.Presets() {
		ms = append(ms, m.Name)
	}
	for _, g := range model.GPUPresets() {
		gs = append(gs, g.Name)
	}
	fmt.Fprintf(w, "model presets:  %s\n", strings.Join(ms, ", "))
	fmt.Fprintf(w, "gpu presets:    %s\n", strings.Join(gs, ", "))
	fmt.Fprintf(w, "fabric kinds:   electrical, photonic, provisioned, static\n")
	fmt.Fprintf(w, "schedules:      1F1B, GPipe\n")
	fmt.Fprintf(w, "nic splits:     1x400, 2x200, 4x100\n")
}

// applyDimensionFlags overlays non-empty flag values onto the grid (a
// named grid's axes when -grid was given, the zero grid's paper
// defaults otherwise).
func applyDimensionFlags(g *photonrail.Grid, models, gpus, fabrics, latencies, par, schedules, jitters, eager, nic string) error {
	if models != "" {
		g.Models = nil
		for _, name := range splitList(models) {
			m, ok := model.ByName(name)
			if !ok {
				return fmt.Errorf("unknown model %q (presets: %s)", name, presetNames())
			}
			g.Models = append(g.Models, m)
		}
	}
	if gpus != "" {
		g.GPUs = nil
		for _, name := range splitList(gpus) {
			gp, ok := model.GPUByName(name)
			if !ok {
				return fmt.Errorf("unknown GPU %q", name)
			}
			g.GPUs = append(g.GPUs, gp)
		}
	}
	if fabrics != "" {
		g.Fabrics = nil
		for _, name := range splitList(fabrics) {
			k, ok := scenario.FabricKindByName(name)
			if !ok {
				return fmt.Errorf("unknown fabric kind %q (want electrical, photonic, provisioned, static)", name)
			}
			g.Fabrics = append(g.Fabrics, k)
		}
	}
	if latencies != "" {
		g.LatenciesMS = nil
		for _, s := range splitList(latencies) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad latency %q: %w", s, err)
			}
			g.LatenciesMS = append(g.LatenciesMS, v)
		}
	}
	if par != "" {
		g.Parallelisms = nil
		for _, s := range splitList(par) {
			p, err := parseParallelism(s)
			if err != nil {
				return err
			}
			g.Parallelisms = append(g.Parallelisms, p)
		}
	}
	if schedules != "" {
		g.Schedules = nil
		for _, s := range splitList(schedules) {
			switch s {
			case "1F1B":
				g.Schedules = append(g.Schedules, workload.OneFOneB)
			case "GPipe":
				g.Schedules = append(g.Schedules, workload.GPipe)
			default:
				return fmt.Errorf("unknown schedule %q (want 1F1B, GPipe)", s)
			}
		}
	}
	if jitters != "" {
		g.JitterFracs = nil
		for _, s := range splitList(jitters) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad jitter %q: %w", s, err)
			}
			g.JitterFracs = append(g.JitterFracs, v)
		}
	}
	if eager != "" {
		g.EagerRS = nil
		for _, s := range splitList(eager) {
			v, err := strconv.ParseBool(s)
			if err != nil {
				return fmt.Errorf("bad eager value %q: %w", s, err)
			}
			g.EagerRS = append(g.EagerRS, v)
		}
	}
	if nic != "" {
		switch nic {
		case "1x400":
			g.NIC = topo.OnePort400G
		case "2x200":
			g.NIC = topo.TwoPort200G
		case "4x100":
			g.NIC = topo.FourPort100G
		default:
			return fmt.Errorf("unknown NIC split %q (want 1x400, 2x200, 4x100)", nic)
		}
	}
	return nil
}

func presetNames() string {
	var names []string
	for _, m := range model.Presets() {
		names = append(names, m.Name)
	}
	return strings.Join(names, ", ")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseParallelism parses TP:DP:PP[:CP[:EP]].
func parseParallelism(s string) (photonrail.GridParallelism, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return photonrail.GridParallelism{}, fmt.Errorf("bad parallelism %q: want TP:DP:PP[:CP[:EP]]", s)
	}
	vals := make([]int, 5)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return photonrail.GridParallelism{}, fmt.Errorf("bad parallelism %q: %w", s, err)
		}
		vals[i] = v
	}
	return photonrail.GridParallelism{TP: vals[0], DP: vals[1], PP: vals[2], CP: vals[3], EP: vals[4]}, nil
}
