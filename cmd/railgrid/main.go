// Command railgrid sweeps scenario grids — the cross-product of model,
// GPU, fabric kind, reconfiguration latency, {TP,DP,PP,CP,EP}
// parallelism, pipeline schedule, jitter, and ReduceScatter eagerness —
// on the concurrent memoizing engine. Infeasible cells (e.g. static
// partitions violating constraint C2, or expert parallelism on a dense
// model) are reported as skips with reasons. Parallel output is
// byte-identical to -parallel=1.
//
// Usage:
//
//	railgrid -grid fig8-5d                            # built-in grid
//	railgrid -fabrics electrical,photonic,provisioned \
//	         -latencies 1,10,100 -par 4:2:2,4:1:2:2   # from flags
//	railgrid -grid fig8-5d -format csv -stats
//	railgrid -models Mixtral-8x7B -par 4:1:2:1:2 -format json
//
// Parallelism coordinates are TP:DP:PP[:CP[:EP]]. The dimension flags
// and output formats are shared with cmd/railclient, which runs the
// same sweeps against a raild daemon instead of in-process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"photonrail"
	"photonrail/internal/gridcli"
)

func main() {
	// Ctrl-C and SIGTERM cancel the run through the same context the
	// -timeout flag bounds; a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railgrid: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railgrid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dims := gridcli.Register(fs)
	var (
		list     = fs.Bool("list", false, "list built-in grids and presets, then exit")
		parallel = fs.Int("parallel", 0, "worker count (0 = NumCPU)")
		format   = fs.String("format", "table", "output format: table, csv, or json")
		stats    = fs.Bool("stats", false, "print engine cache stats to stderr")
		progress = fs.Bool("progress", false, "print per-cell progress to stderr")
		timeout  = fs.Duration("timeout", 0, "overall deadline for the sweep (0 = none)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railgrid [flags]\nparallelism coordinates are TP:DP:PP[:CP[:EP]]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railgrid takes flags only)", fs.Args())
	}
	if *list {
		gridcli.PrintCatalog(stdout)
		return nil
	}
	if err := gridcli.CheckFormat(*format); err != nil {
		return err
	}
	spec, _, err := dims.Spec()
	if err != nil {
		return err
	}

	var onCell func(done, total int)
	if *progress {
		onCell = func(done, total int) { fmt.Fprintf(stderr, "railgrid: %d/%d cells\n", done, total) }
	}
	ctx, cancel := gridcli.WithTimeout(ctx, *timeout)
	defer cancel()
	en := photonrail.NewEngine(*parallel)
	// The validated spec feeds the registry's generic grid experiment:
	// railgrid is flag parsing + Lookup("grid").Run + rendering.
	e, _ := photonrail.Lookup("grid")
	res, err := e.Run(ctx, en, photonrail.Params{Grid: &spec, OnProgress: onCell})
	if err != nil {
		return err
	}
	if err := renderResult(stdout, *format, res); err != nil {
		return err
	}
	if *stats {
		st := en.CacheStats()
		fmt.Fprintf(stderr, "engine: %d workers, cache %d hits / %d misses / %d evictions\n",
			en.Workers(), st.Hits, st.Misses, st.Evictions)
		fmt.Fprintf(stderr, "stages: build %d/%d, provision %d/%d (seeds %d/%d), time %d/%d (hits/misses)\n",
			st.Build.Hits, st.Build.Misses,
			st.Provision.Hits, st.Provision.Misses, st.SeedHits, st.SeedMisses,
			st.Time.Hits, st.Time.Misses)
	}
	return nil
}

// renderResult writes the experiment result in the chosen format; the
// bytes are identical to gridcli.RenderRows over the same rows.
func renderResult(w io.Writer, format string, res *photonrail.ExperimentResult) error {
	switch format {
	case "table":
		return res.RenderText(w)
	case "csv":
		return res.RenderCSV(w)
	case "json":
		return res.RenderJSON(w)
	}
	return gridcli.CheckFormat(format)
}
