package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"photonrail"
)

func TestRunGridFromFlagsCSV(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(t.Context(), []string{"-par", "4:2:2", "-latencies", "5", "-iters", "1", "-format", "csv"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + electrical + photonic@5
		t.Fatalf("csv lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "cell,model,gpu,fabric,latency_ms") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "electrical") || !strings.Contains(lines[2], "photonic") {
		t.Errorf("rows:\n%s", out.String())
	}
}

func TestRunGridJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(t.Context(), []string{"-par", "4:2:2", "-fabrics", "electrical,static", "-iters", "1", "-format", "json"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Grid  string `json:"grid"`
		Cells []struct {
			Cell       string  `json:"cell"`
			Status     string  `json:"status"`
			SkipReason string  `json:"skipReason"`
			Slowdown   float64 `json:"slowdown"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if got.Grid != "custom" || len(got.Cells) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Cells[0].Status != "ok" || got.Cells[0].Slowdown != 1 {
		t.Errorf("electrical cell = %+v", got.Cells[0])
	}
	if got.Cells[1].Status != "skip" || !strings.Contains(got.Cells[1].SkipReason, "C2") {
		t.Errorf("static cell = %+v", got.Cells[1])
	}
}

// TestFig8GridParallelMatchesSequential is the acceptance check: the
// built-in ≥24-cell grid in parallel produces output byte-identical to
// -parallel=1, with skips reported and the shared electrical baselines
// simulated exactly once per batch (5 workload baselines + 15 photonic
// + 15 provisioned points + 10 compiled programs = 45 misses; every
// further lookup is a hit).
func TestFig8GridParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full fig8-5d grid twice")
	}
	if n := len(photonrail.Fig8Grid5D().Expand()); n < 24 {
		t.Fatalf("fig8-5d has %d cells, want >= 24", n)
	}
	runGrid := func(parallel string) (string, string) {
		var out, errb bytes.Buffer
		if err := run(t.Context(), []string{"-grid", "fig8-5d", "-parallel", parallel, "-stats"}, &out, &errb); err != nil {
			t.Fatal(err)
		}
		return out.String(), errb.String()
	}
	seq, seqStats := runGrid("1")
	par, parStats := runGrid("8")
	if seq != par {
		t.Error("parallel output differs from sequential")
	}
	if !strings.Contains(seq, "skip: ") || !strings.Contains(seq, "(C2)") {
		t.Error("skips not reported in table output")
	}
	for _, stats := range []string{seqStats, parStats} {
		if !strings.Contains(stats, "/ 45 misses") {
			t.Errorf("cache stats = %q, want exactly 45 misses (shared baselines simulated once)", stats)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-grid", "nope"},
		{"-models", "GPT-17"},
		{"-gpus", "TPU"},
		{"-fabrics", "teleport"},
		{"-latencies", "x"},
		{"-latencies", "-4"},
		{"-par", "4:2"},
		{"-schedules", "zigzag"},
		{"-eager", "maybe"},
		{"-nic", "3x133"},
		{"-format", "yaml", "-iters", "1"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(t.Context(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestListCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig8-5d", "Llama3-8B", "A100", "provisioned"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog missing %q:\n%s", want, out.String())
		}
	}
}
