package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"photonrail/internal/goldentest"
)

// TestGoldenOutputs pins railgrid's three output formats for a small
// canonical grid, byte for byte. The simulator is deterministic, so any
// diff is a real output change; regenerate intentionally with
// `go test ./cmd/railgrid -run Golden -update`.
func TestGoldenOutputs(t *testing.T) {
	base := []string{
		"-models", "Llama3-8B", "-par", "4:2:2",
		"-fabrics", "electrical,photonic,static", "-latencies", "5", "-iters", "1",
	}
	for _, format := range []string{"table", "csv", "json"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(t.Context(), append(base, "-format", format), &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", "small."+format))
		})
	}
}
