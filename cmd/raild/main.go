// Command raild is the long-running experiment-serving daemon: it
// listens for scenario-grid and registry-experiment requests on the
// opusnet framed protocol, shards each request's jobs across a shared
// worker pool, keeps the simulation cache warm across requests
// (bounded, so the daemon is safe to run indefinitely), deduplicates
// identical in-flight requests across concurrent clients, streams
// progress back, and honors per-request deadlines and client cancel
// frames (stopping only the requesting client's wait).
//
// With -coordinator the daemon also joins a railfleet coordinator's
// elastic fleet: it registers itself (identity, serving address,
// worker-pool capacity), heartbeats with its serving stats piggybacked,
// and on SIGTERM drains gracefully — it tells the coordinator to stop
// assigning it cells, finishes its in-flight work, and leaves without
// tripping failover. A second signal forces immediate shutdown.
//
// Usage:
//
//	raild                            # listen on 127.0.0.1:9090
//	raild -addr :7070 -parallel 8    # custom address and pool size
//	raild -cache 4096                # cache at most 4096 simulation units
//	raild -metrics-addr :9190        # also serve /metrics and /events over HTTP
//	raild -coordinator 10.0.0.9:9091 -id node-a   # join an elastic fleet
//
// Drive it with cmd/railclient, which accepts railgrid's dimension
// flags for grid sweeps and -exp for any registered experiment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/railctl"
	"photonrail/internal/railserve"
)

func main() {
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		fmt.Fprintf(os.Stderr, "raild: %v\n", err)
		os.Exit(1)
	}
}

// run starts the daemon and serves until stop delivers. It is the
// testable core: main wires OS signals in, tests feed the channel
// directly.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("raild", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:9090", "TCP listen address")
		parallel    = fs.Int("parallel", 0, "worker count (0 = NumCPU)")
		cache       = fs.Int64("cache", 4096, "max cached simulation cost in units (0 = unbounded)")
		metrics     = fs.String("metrics-addr", "", "HTTP address for /metrics and /events (empty = disabled)")
		verbose     = fs.Bool("verbose", false, "log each served request to stderr")
		coordinator = fs.String("coordinator", "", "railfleet coordinator to register with (empty = standalone)")
		identity    = fs.String("id", "", "stable fleet identity (default hostname/listen-address); keeps this daemon's shard across restarts")
		advertise   = fs.String("advertise", "", "address the coordinator dials for cells (default the actual listen address)")
		heartbeat   = fs.Duration("heartbeat", railctl.DefaultHeartbeatInterval, "fleet heartbeat interval")
		drainTO     = fs.Duration("drain-timeout", time.Minute, "bound on finishing in-flight work during a graceful drain")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (raild takes flags only)", fs.Args())
	}
	if *cache < 0 {
		return fmt.Errorf("-cache must be >= 0, got %d", *cache)
	}
	if *coordinator == "" && (*identity != "" || *advertise != "") {
		return fmt.Errorf("-id/-advertise only make sense with -coordinator")
	}
	if *heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be > 0, got %v", *heartbeat)
	}
	cfg := railserve.Config{
		Addr:         *addr,
		Workers:      *parallel,
		MaxCacheCost: *cache,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	s, err := railserve.NewServer(cfg)
	if err != nil {
		return err
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			_ = s.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		hs := &http.Server{Handler: s.Telemetry().Handler()}
		go func() { _ = hs.Serve(ln) }() // Serve returns once hs is closed below
		defer func() { _ = hs.Close() }()
		fmt.Fprintf(stdout, "raild: metrics on http://%s/metrics\n", ln.Addr())
	}
	var agent *railctl.Agent
	if *coordinator != "" {
		serveAddr := *advertise
		if serveAddr == "" {
			serveAddr = s.Addr()
		}
		id := *identity
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s/%s", host, serveAddr)
		}
		agent, err = railctl.StartAgent(railctl.AgentConfig{
			Coordinator: *coordinator,
			ID:          id,
			Addr:        serveAddr,
			Capacity:    s.Capacity(),
			Interval:    *heartbeat,
			Stats:       func() opusnet.CacheStatsPayload { return s.Stats() },
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, format+"\n", args...)
			},
		})
		if err != nil {
			_ = s.Close()
			return err
		}
		fmt.Fprintf(stdout, "raild: joining fleet at %s as %s (capacity %d)\n", *coordinator, id, s.Capacity())
	}
	fmt.Fprintf(stdout, "raild: listening on %s\n", s.Addr())
	<-stop
	if agent != nil {
		// Graceful drain: announce the departure, finish what's in
		// flight, then leave — the coordinator hands any unstarted cells
		// to the next wave without counting a failover. A second signal
		// (or the -drain-timeout bound) forces shutdown.
		fmt.Fprintf(stdout, "raild: draining (finishing in-flight work, bound %v)\n", *drainTO)
		done := make(chan struct{})
		go func() {
			defer close(done)
			//lint:allow ctxbg the drain outlives no one: run() blocks on it right below
			ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
			defer cancel()
			if err := agent.Drain(ctx, "sigterm"); err != nil {
				fmt.Fprintf(stderr, "raild: drain announce: %v\n", err)
			}
			if err := s.DrainCtx(ctx); err != nil {
				fmt.Fprintf(stderr, "raild: drain wait: %v\n", err)
			}
		}()
		select {
		case <-done:
		case <-stop:
			fmt.Fprintf(stdout, "raild: second signal: forcing shutdown\n")
		}
		agent.Close()
	}
	fmt.Fprintf(stdout, "raild: shutting down\n")
	return s.Close()
}
