package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes to it
// from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesUntilStopped(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-cache", "64"}, &out, &errb, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported listening; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-cache", "-1"},
		{"-addr", "not:an:addr:at:all"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(args, &out, &errb, stop); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesMetrics: with -metrics-addr the daemon also exposes the
// observability surface over HTTP — /metrics in Prometheus text format
// and /events as an SSE stream.
func TestRunServesMetrics(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, &out, &errb, stop)
	}()
	defer func() {
		stop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never shut down")
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`metrics on (http://[^/\s]+)/metrics`)
	var base string
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its metrics address; out: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"raild_requests_inflight", "raild_cache_hits_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %s:\n%s", want, body)
		}
	}
}
