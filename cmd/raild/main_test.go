package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"photonrail/internal/railfleet"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes to it
// from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunServesUntilStopped(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-cache", "64"}, &out, &errb, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported listening; stderr: %s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-cache", "-1"},
		{"-addr", "not:an:addr:at:all"},
		{"positional"},
		{"-id", "x"},        // -id without -coordinator
		{"-advertise", "y"}, // -advertise without -coordinator
		{"-coordinator", "127.0.0.1:1", "-heartbeat", "-1s"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(args, &out, &errb, stop); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesMetrics: with -metrics-addr the daemon also exposes the
// observability surface over HTTP — /metrics in Prometheus text format
// and /events as an SSE stream.
func TestRunServesMetrics(t *testing.T) {
	stop := make(chan os.Signal, 1)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, &out, &errb, stop)
	}()
	defer func() {
		stop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never shut down")
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`metrics on (http://[^/\s]+)/metrics`)
	var base string
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its metrics address; out: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"raild_requests_inflight", "raild_cache_hits_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %s:\n%s", want, body)
		}
	}
}

// TestRunJoinsFleetAndDrainsOnSignal: -coordinator makes the daemon a
// fleet member — it registers with a live railfleet coordinator and
// heartbeats — and SIGTERM drains it gracefully: the departure is
// announced (a drain event, not a failover) before shutdown.
func TestRunJoinsFleetAndDrainsOnSignal(t *testing.T) {
	f, err := railfleet.New(railfleet.Config{Addr: "127.0.0.1:0", AllowRegistration: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close(); f.Drain() })

	stop := make(chan os.Signal, 2)
	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-coordinator", f.Addr(),
			"-id", "cli-node", "-heartbeat", "20ms", "-drain-timeout", "30s"}, &out, &errb, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "joining fleet at") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced the fleet join; out: %s stderr: %s", out.String(), errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The coordinator's membership view picks the daemon up.
	for {
		healthy := false
		for _, b := range f.Stats().Backends {
			if b.ID == "cli-node" && b.Healthy {
				healthy = true
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw cli-node healthy; out: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining (finishing in-flight work") {
		t.Errorf("no drain announcement in output: %q", out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown line in output: %q", out.String())
	}
	var sawDrain bool
	for _, ev := range f.Telemetry().Events.Snapshot() {
		if ev.Type == "failover" {
			t.Errorf("graceful drain tripped a failover: %+v", ev)
		}
		if ev.Type == "drain" && ev.Member == "cli-node" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Error("coordinator never recorded the drain event")
	}
}
