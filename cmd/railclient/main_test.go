package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"photonrail"
	"photonrail/internal/opusnet"
	"photonrail/internal/railfleet"
	"photonrail/internal/railserve"
)

func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := railserve.NewServer(railserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s.Addr()
}

func TestRemoteSweepCSV(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	err := run(t.Context(), []string{"-addr", addr, "-par", "4:2:2", "-latencies", "5", "-iters", "1", "-format", "csv"},
		&out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + electrical + photonic@5
		t.Fatalf("csv lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "cell,model,gpu,fabric,latency_ms") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRemoteStats(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-par", "4:2:2", "-latencies", "5", "-iters", "1",
		"-format", "csv", "-stats", "-progress"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "grids 1 executed") {
		t.Errorf("stats = %q", errb.String())
	}
	if !strings.Contains(errb.String(), "railclient: ") {
		t.Errorf("no progress lines in %q", errb.String())
	}
	var so, se bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-daemon-stats"}, &so, &se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(so.String(), "daemon: cache") {
		t.Errorf("daemon-stats = %q", so.String())
	}
}

func TestRemoteExperimentMatchesLocal(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-exp", "table3", "-timeout", "1m"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	e, ok := photonrail.Lookup("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	res, err := e.Run(context.Background(), photonrail.NewEngine(1), photonrail.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.RenderText(&want); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Errorf("remote table3 diverged from local:\n got: %q\nwant: %q", out.String(), want.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	addr := startDaemon(t)
	cases := [][]string{
		{"-addr", addr, "-models", "GPT-17"},
		{"-addr", addr, "-format", "yaml"},
		{"-addr", "127.0.0.1:1", "-par", "4:2:2"}, // nothing listening
		{"positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(t.Context(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestListCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig8-5d") {
		t.Errorf("catalog = %q", out.String())
	}
}

func TestPrintMemberFormatting(t *testing.T) {
	var b strings.Builder
	if err := printMember(&b, opusnet.BackendStatsPayload{
		Addr: "10.0.0.1:9090", ID: "s0", Static: true, Capacity: 1,
		Healthy: true, State: "healthy", Cells: 48,
	}); err != nil {
		t.Fatal(err)
	}
	if err := printMember(&b, opusnet.BackendStatsPayload{
		Addr: "10.0.0.2:9090", ID: "node-a", Capacity: 4, State: "draining",
		LastHeartbeatAgeMS: 1500, Cells: 7, Failures: 1,
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("printed %d lines, want 2:\n%s", len(lines), b.String())
	}
	if want := "  s0 (10.0.0.1:9090): static healthy, capacity 1, cells 48, failures 0"; lines[0] != want {
		t.Errorf("static line = %q, want %q", lines[0], want)
	}
	if want := "  node-a (10.0.0.2:9090): dynamic draining, capacity 4, cells 7, failures 1, heartbeat 1.5s ago"; lines[1] != want {
		t.Errorf("dynamic line = %q, want %q", lines[1], want)
	}
	if strings.Contains(lines[0], "heartbeat") {
		t.Error("static members have no heartbeat; the line must not claim one")
	}
}

// TestDaemonStatsFleetMembership: -daemon-stats against a railfleet
// coordinator prints the per-backend membership view; against a plain
// daemon (TestRemoteStats) it prints none.
func TestDaemonStatsFleetMembership(t *testing.T) {
	backendAddr := startDaemon(t)
	f, err := railfleet.New(railfleet.Config{Addr: "127.0.0.1:0", Backends: []string{backendAddr}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close(); f.Drain() })
	// Run a sweep through the coordinator so the static member has been
	// probed healthy and credited cells.
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-addr", f.Addr(), "-par", "4:2:2", "-latencies", "5", "-iters", "1",
		"-format", "csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	var so, se bytes.Buffer
	if err := run(t.Context(), []string{"-addr", f.Addr(), "-daemon-stats"}, &so, &se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(so.String(), "fleet: 1 members") {
		t.Fatalf("daemon-stats = %q, want a fleet membership section", so.String())
	}
	if !strings.Contains(so.String(), "s0 ("+backendAddr+"): static healthy") {
		t.Errorf("daemon-stats = %q, want the static member's line", so.String())
	}
}
