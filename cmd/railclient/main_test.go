package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"photonrail"
	"photonrail/internal/railserve"
)

func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := railserve.NewServer(railserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s.Addr()
}

func TestRemoteSweepCSV(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	err := run(t.Context(), []string{"-addr", addr, "-par", "4:2:2", "-latencies", "5", "-iters", "1", "-format", "csv"},
		&out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + electrical + photonic@5
		t.Fatalf("csv lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "cell,model,gpu,fabric,latency_ms") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRemoteStats(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-par", "4:2:2", "-latencies", "5", "-iters", "1",
		"-format", "csv", "-stats", "-progress"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "grids 1 executed") {
		t.Errorf("stats = %q", errb.String())
	}
	if !strings.Contains(errb.String(), "railclient: ") {
		t.Errorf("no progress lines in %q", errb.String())
	}
	var so, se bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-daemon-stats"}, &so, &se); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(so.String(), "daemon: cache") {
		t.Errorf("daemon-stats = %q", so.String())
	}
}

func TestRemoteExperimentMatchesLocal(t *testing.T) {
	addr := startDaemon(t)
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-addr", addr, "-exp", "table3", "-timeout", "1m"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	e, ok := photonrail.Lookup("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	res, err := e.Run(context.Background(), photonrail.NewEngine(1), photonrail.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.RenderText(&want); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Errorf("remote table3 diverged from local:\n got: %q\nwant: %q", out.String(), want.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	addr := startDaemon(t)
	cases := [][]string{
		{"-addr", addr, "-models", "GPT-17"},
		{"-addr", addr, "-format", "yaml"},
		{"-addr", "127.0.0.1:1", "-par", "4:2:2"}, // nothing listening
		{"positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(t.Context(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestListCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig8-5d") {
		t.Errorf("catalog = %q", out.String())
	}
}
