package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"photonrail/internal/goldentest"
)

// TestGoldenLoopback pins the full daemon loopback path byte for byte:
// railclient submits cmd/railgrid's canonical small grid to an
// in-process raild server and every output format must match this
// corpus — which is itself byte-identical to railgrid's, proving a
// remote sweep renders exactly like a local one. CI runs this test as
// its daemon-loopback golden step. Regenerate intentionally with
// `go test ./cmd/railclient -run Golden -update`.
func TestGoldenLoopback(t *testing.T) {
	addr := startDaemon(t)
	base := []string{
		"-addr", addr,
		"-models", "Llama3-8B", "-par", "4:2:2",
		"-fabrics", "electrical,photonic,static", "-latencies", "5", "-iters", "1",
	}
	for _, format := range []string{"table", "csv", "json"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(t.Context(), append(base, "-format", format), &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", "small."+format))
		})
		// The generic experiment path (exp_req + server-side rendering)
		// must hit the same corpus byte for byte.
		t.Run("exp-"+format, func(t *testing.T) {
			var out, errb bytes.Buffer
			args := append(append([]string{}, base...), "-exp", "grid", "-timeout", "5m", "-format", format)
			if err := run(t.Context(), args, &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", "small."+format))
		})
	}
}
