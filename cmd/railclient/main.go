// Command railclient runs scenario-grid sweeps against a raild daemon.
// It accepts the same dimension flags and produces byte-identical
// output to cmd/railgrid — the difference is where the cells simulate:
// railgrid runs them in-process and forgets its cache on exit, while
// railclient shares a daemon whose cache stays warm across invocations
// and whose request-level deduplication coalesces identical concurrent
// sweeps from any number of clients.
//
// Usage:
//
//	railclient -addr 127.0.0.1:9090 -grid fig8-5d
//	railclient -fabrics electrical,photonic -latencies 1,10 -format csv
//	railclient -daemon-stats            # print serving telemetry only
//
// Parallelism coordinates are TP:DP:PP[:CP[:EP]], as in railgrid.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"photonrail/internal/gridcli"
	"photonrail/internal/railserve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railclient: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railclient", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dims := gridcli.Register(fs)
	var (
		addr      = fs.String("addr", "127.0.0.1:9090", "raild daemon address")
		list      = fs.Bool("list", false, "list built-in grids and presets, then exit")
		format    = fs.String("format", "table", "output format: table, csv, or json")
		progress  = fs.Bool("progress", false, "print per-cell progress to stderr as the daemon streams it")
		stats     = fs.Bool("stats", false, "print daemon serving stats to stderr after the run")
		statsOnly = fs.Bool("daemon-stats", false, "print daemon serving stats and exit (no sweep)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railclient [flags]\nparallelism coordinates are TP:DP:PP[:CP[:EP]]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railclient takes flags only)", fs.Args())
	}
	if *list {
		gridcli.PrintCatalog(stdout)
		return nil
	}
	if err := gridcli.CheckFormat(*format); err != nil {
		return err
	}

	printStats := func(c *railserve.Client, w io.Writer) error {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "daemon: cache %d hits / %d misses / %d evictions, %d in flight; grids %d executed / %d deduped\n",
			st.Hits, st.Misses, st.Evictions, st.InFlight, st.GridsExecuted, st.GridsDeduped)
		return err
	}

	if *statsOnly {
		c, err := railserve.Dial(*addr)
		if err != nil {
			return err
		}
		defer c.Close()
		return printStats(c, stdout)
	}

	spec, _, err := dims.Spec()
	if err != nil {
		return err
	}
	c, err := railserve.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	var onProgress func(done, total int)
	if *progress {
		onProgress = func(done, total int) { fmt.Fprintf(stderr, "railclient: %d/%d cells\n", done, total) }
	}
	run, err := c.RunGrid(spec, onProgress)
	if err != nil {
		return err
	}
	if run.Shared {
		fmt.Fprintf(stderr, "railclient: joined an identical in-flight sweep\n")
	}
	if err := gridcli.RenderRows(stdout, *format, run.Name, run.Rows); err != nil {
		return err
	}
	if *stats {
		if err := printStats(c, stderr); err != nil {
			return err
		}
	}
	return nil
}
