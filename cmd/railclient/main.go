// Command railclient runs experiments against a raild daemon. Grid
// sweeps accept the same dimension flags and produce byte-identical
// output to cmd/railgrid — the difference is where the cells simulate:
// railgrid runs them in-process and forgets its cache on exit, while
// railclient shares a daemon whose cache stays warm across invocations
// and whose request-level deduplication coalesces identical concurrent
// requests from any number of clients.
//
// With -exp, railclient runs any experiment in the photonrail registry
// remotely (fig8, fig4, table1-3, window-analysis, bom, grids, …); the
// daemon renders the result server-side, so the bytes match the local
// CLI twin exactly. -timeout bounds the wait client- and server-side
// (the daemon honors it as a per-request deadline), and a cancelled
// wait sends a protocol cancel frame so the daemon stops only this
// request's wait.
//
// Usage:
//
//	railclient -addr 127.0.0.1:9090 -grid fig8-5d
//	railclient -fabrics electrical,photonic -latencies 1,10 -format csv
//	railclient -exp fig8 -timeout 60s       # any registry experiment
//	railclient -daemon-stats                # print serving telemetry only
//
// Parallelism coordinates are TP:DP:PP[:CP[:EP]], as in railgrid.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photonrail"
	"photonrail/internal/gridcli"
	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
)

func main() {
	// Ctrl-C and SIGTERM cancel the run through the same context the
	// -timeout flag bounds; a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railclient: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railclient", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dims := gridcli.Register(fs)
	var (
		addr      = fs.String("addr", "127.0.0.1:9090", "raild daemon address")
		list      = fs.Bool("list", false, "list built-in grids and presets, then exit")
		format    = fs.String("format", "table", "output format: table, csv, or json")
		progress  = fs.Bool("progress", false, "print per-cell progress to stderr as the daemon streams it")
		stats     = fs.Bool("stats", false, "print daemon serving stats to stderr after the run")
		statsOnly = fs.Bool("daemon-stats", false, "print daemon serving stats and exit (no sweep)")
		expName   = fs.String("exp", "", "run this registry experiment remotely instead of a grid sweep")
		timeout   = fs.Duration("timeout", 0, "deadline for the request, enforced client- and server-side (0 = none)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: railclient [flags]\nparallelism coordinates are TP:DP:PP[:CP[:EP]]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railclient takes flags only)", fs.Args())
	}
	if *list {
		gridcli.PrintCatalog(stdout)
		fmt.Fprintf(stdout, "experiments (-exp):\n")
		return photonrail.DescribeExperiments(stdout)
	}
	if err := gridcli.CheckFormat(*format); err != nil {
		return err
	}

	printStats := func(c *railserve.Client, w io.Writer) error {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "daemon: cache %d hits / %d misses / %d evictions, %d in flight; grids %d executed / %d deduped; exps %d executed / %d deduped\n",
			st.Hits, st.Misses, st.Evictions, st.InFlight,
			st.GridsExecuted, st.GridsDeduped, st.ExpsExecuted, st.ExpsDeduped); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "stages: build %d/%d, provision %d/%d (seeds %d/%d), time %d/%d (hits/misses)\n",
			st.BuildHits, st.BuildMisses,
			st.ProvisionHits, st.ProvisionMisses, st.SeedHits, st.SeedMisses,
			st.TimeHits, st.TimeMisses); err != nil {
			return err
		}
		// A fleet coordinator's stats carry the per-backend membership
		// view; a plain daemon's carry no backends and print nothing
		// extra.
		if len(st.Backends) > 0 {
			if _, err = fmt.Fprintf(w, "fleet: %d members\n", len(st.Backends)); err != nil {
				return err
			}
			for _, b := range st.Backends {
				if err = printMember(w, b); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if *statsOnly {
		c, err := railserve.Dial(*addr)
		if err != nil {
			return err
		}
		defer c.Close()
		return printStats(c, stdout)
	}

	ctx, cancel := gridcli.WithTimeout(ctx, *timeout)
	defer cancel()

	var onProgress func(done, total int)
	if *progress {
		onProgress = func(done, total int) { fmt.Fprintf(stderr, "railclient: %d/%d cells\n", done, total) }
	}

	if *expName != "" {
		return runExperiment(ctx, *expName, dims, *addr, *format, *timeout, onProgress, printStats, *stats, stdout, stderr)
	}

	spec, _, err := dims.Spec()
	if err != nil {
		return err
	}
	c, err := railserve.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()

	run, err := c.RunGridCtx(ctx, spec, onProgress)
	if err != nil {
		return err
	}
	if run.Shared {
		fmt.Fprintf(stderr, "railclient: joined an identical in-flight sweep\n")
	}
	if err := gridcli.RenderRows(stdout, *format, run.Name, run.Rows); err != nil {
		return err
	}
	if *stats {
		if err := printStats(c, stderr); err != nil {
			return err
		}
	}
	return nil
}

// printMember renders one fleet member's membership line: identity,
// kind, state, capacity, execution counters, and — for heartbeat-kept
// dynamic members — the age of the newest heartbeat.
func printMember(w io.Writer, b opusnet.BackendStatsPayload) error {
	id := b.ID
	if id == "" {
		id = b.Addr
	}
	kind := "dynamic"
	if b.Static {
		kind = "static"
	}
	state := b.State
	if state == "" {
		if b.Healthy {
			state = "healthy"
		} else {
			state = "unknown"
		}
	}
	line := fmt.Sprintf("  %s (%s): %s %s, capacity %d, cells %d, failures %d",
		id, b.Addr, kind, state, b.Capacity, b.Cells, b.Failures)
	if !b.Static {
		line += fmt.Sprintf(", heartbeat %s ago", (time.Duration(b.LastHeartbeatAgeMS) * time.Millisecond).Round(time.Millisecond))
	}
	_, err := fmt.Fprintln(w, line)
	return err
}

// runExperiment serves -exp: any registry experiment over the exp_req
// path, with the request deadline forwarded to the daemon and the
// server-rendered bytes printed verbatim (identical to the local CLI).
func runExperiment(ctx context.Context, name string, dims *gridcli.Dimensions, addr, format string,
	timeout time.Duration, onProgress func(done, total int),
	printStats func(*railserve.Client, io.Writer) error, stats bool, stdout, stderr io.Writer) error {
	req := opusnet.ExpRequestPayload{Name: name, TimeoutMS: timeout.Milliseconds()}
	if photonrail.IsGridExperiment(name) {
		// Grid experiments reuse railgrid's dimension flags; a built-in
		// grid name seeds the axes the flags overlay, so
		// `-exp fig8-5d -latencies 99` behaves like
		// `-grid fig8-5d -latencies 99`.
		if name != "grid" {
			dims.DefaultGridName(name)
		}
		spec, _, err := dims.Spec()
		if err != nil {
			return err
		}
		req.Grid = &spec
	} else {
		// Non-grid experiments honor the sweep-shaped flags, so a remote
		// run matches its local railsweep twin.
		p, err := dims.SweepParams()
		if err != nil {
			return err
		}
		req.Iterations = p.Iterations
		req.LatenciesMS = p.LatenciesMS
	}
	c, err := railserve.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	run, err := c.RunExperiment(ctx, req, onProgress)
	if err != nil {
		return err
	}
	if run.Shared {
		fmt.Fprintf(stderr, "railclient: joined an identical in-flight request\n")
	}
	switch format {
	case "table":
		_, err = io.WriteString(stdout, run.Rendered)
	case "csv":
		_, err = io.WriteString(stdout, run.RenderedCSV)
	case "json":
		_, err = io.WriteString(stdout, run.RowsJSON)
	}
	if err != nil {
		return err
	}
	if stats {
		return printStats(c, stderr)
	}
	return nil
}
