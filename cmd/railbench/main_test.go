package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"photonrail/internal/railserve"
)

// benchTarget is an in-process raild plus an HTTP server exposing its
// telemetry — the pair railbench drives in production.
func benchTarget(tb testing.TB) (*railserve.Server, *httptest.Server) {
	tb.Helper()
	s, err := railserve.NewServer(railserve.Config{Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	hs := httptest.NewServer(s.Telemetry().Handler())
	tb.Cleanup(func() {
		hs.Close()
		_ = s.Close()
		s.Drain()
	})
	return s, hs
}

// TestRunCrossChecksScrape is the load generator's acceptance loop:
// 8 concurrent clients issue a mixed deterministic stream, and the
// daemon's scraped request-duration histogram must have counted
// exactly the issued requests — every admitted request sampled exactly
// once, none lost, none double-counted.
func TestRunCrossChecksScrape(t *testing.T) {
	s, hs := benchTarget(t)
	var out, errb bytes.Buffer
	err := run([]string{
		"-addr", s.Addr(), "-clients", "8", "-requests", "24",
		"-metrics", hs.URL, "-json",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report %q: %v", out.String(), err)
	}
	if rep.Requests != 24 || rep.Errors != 0 {
		t.Errorf("report = %+v, want 24 requests, 0 errors", rep)
	}
	if rep.ScrapedSamples != 24 {
		t.Errorf("scraped samples = %v, want 24", rep.ScrapedSamples)
	}
	if rep.P50Sec <= 0 || rep.P99Sec < rep.P50Sec {
		t.Errorf("quantiles p50=%v p99=%v", rep.P50Sec, rep.P99Sec)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputRPS)
	}
}

// TestRunTextReport covers the human-readable output path.
func TestRunTextReport(t *testing.T) {
	s, _ := benchTarget(t)
	var out, errb bytes.Buffer
	if err := run([]string{"-addr", s.Addr(), "-clients", "2", "-requests", "4", "-mix", "small"},
		&out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"4 requests", "2 clients", "p50", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunDeterministicMix: the same seed draws the same request
// stream; a different seed draws a different one (cells differ).
func TestRunDeterministicMix(t *testing.T) {
	cellsFor := func(seed string) int {
		t.Helper()
		s, _ := benchTarget(t)
		var out, errb bytes.Buffer
		if err := run([]string{"-addr", s.Addr(), "-requests", "12", "-seed", seed, "-json"},
			&out, &errb); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, errb.String())
		}
		var rep report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Cells
	}
	a1, a2 := cellsFor("42"), cellsFor("42")
	if a1 != a2 {
		t.Errorf("same seed drew different mixes: %d vs %d cells", a1, a2)
	}
}

// TestRunRejectsBadFlags: flag validation fails before any dialing.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{}, // no addr
		{"-addr", "x", "-clients", "0"},
		{"-addr", "x", "-requests", "0"},
		{"-addr", "x", "-mix", "nonsense"},
		{"-addr", "x", "-mix", " , "},
		{"-addr", "x", "positional"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// BenchmarkRailbenchSmoke is the CI perf-trajectory point for the
// request path: one small mixed load against an in-process daemon.
func BenchmarkRailbenchSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := railserve.NewServer(railserve.Config{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var out, errb bytes.Buffer
		if err := run([]string{"-addr", s.Addr(), "-clients", "4", "-requests", "8", "-json"},
			&out, &errb); err != nil {
			b.Fatalf("run: %v\nstderr: %s", err, errb.String())
		}
		b.StopTimer()
		_ = s.Close()
		s.Drain()
		b.StartTimer()
	}
}
