// Command railbench is a synthetic load generator for raild and
// railfleet: it drives N concurrent clients issuing a deterministic
// mixed stream of grid requests of varying sizes against one daemon,
// then reports client-side latency quantiles (p50/p99) and throughput.
// With -metrics it also scrapes the daemon's /metrics endpoint and
// cross-checks that the daemon's request-duration histogram counted
// exactly the requests railbench issued — the end-to-end proof that
// the observability layer samples every admitted request exactly once.
//
// Usage:
//
//	railbench -addr 127.0.0.1:9090                        # 4 clients, 32 requests
//	railbench -addr :9090 -clients 8 -requests 128
//	railbench -addr :9090 -mix small,large -seed 7        # constrain & reseed the mix
//	railbench -addr :9090 -metrics http://127.0.0.1:9190  # scrape cross-check
//	railbench -addr :9090 -json                           # machine-readable report
//
// Each request gets a unique grid name, so requests never coalesce via
// request-level singleflight: the daemon executes every one (cells
// still hit its warm memo cache, so railbench measures request-path
// overhead, not simulation time).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"photonrail/internal/metrics"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railbench: %v\n", err)
		os.Exit(1)
	}
}

// workload is one named request shape in the mix.
type workload struct {
	name string
	grid scenario.Grid
}

// mixCatalog is the full set of request shapes -mix selects from.
// Sizes are chosen so a mixed run exercises both near-instant and
// multi-cell requests without making a smoke run slow.
func mixCatalog() []workload {
	return []workload{
		{"small", scenario.Grid{LatenciesMS: []float64{5}, Iterations: 1}},                                                                                                         // 1 cell
		{"medium", scenario.Grid{LatenciesMS: []float64{5, 20}, Iterations: 1, Fabrics: []scenario.FabricKind{scenario.Electrical, scenario.Photonic}}},                            // 4 cells
		{"large", scenario.Grid{LatenciesMS: []float64{1, 5, 20}, Iterations: 1, Fabrics: []scenario.FabricKind{scenario.Electrical, scenario.Photonic, scenario.PhotonicStatic}}}, // 9 cells
	}
}

// report is railbench's result document (-json emits it verbatim).
type report struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Cells          int     `json:"cells"`
	DurationSec    float64 `json:"duration_seconds"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Sec         float64 `json:"p50_seconds"`
	P99Sec         float64 `json:"p99_seconds"`
	ScrapedSamples float64 `json:"scraped_samples,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "", "daemon address to load (required)")
		clients  = fs.Int("clients", 4, "concurrent client connections")
		requests = fs.Int("requests", 32, "total requests across all clients")
		seed     = fs.Int64("seed", 1, "PRNG seed for the request mix")
		mix      = fs.String("mix", "small,medium,large", "comma-separated workload names to draw from")
		metricsU = fs.String("metrics", "", "daemon /metrics base URL: cross-check scraped sample count (optional)")
		asJSON   = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (railbench takes flags only)", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("no daemon: pass -addr host:port")
	}
	if *clients <= 0 || *requests <= 0 {
		return fmt.Errorf("-clients and -requests must be > 0, got %d and %d", *clients, *requests)
	}
	catalog := mixCatalog()
	var pool []workload
	for _, name := range strings.Split(*mix, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, w := range catalog {
			if w.name == name {
				pool = append(pool, w)
				found = true
			}
		}
		if !found {
			known := make([]string, len(catalog))
			for i, w := range catalog {
				known[i] = w.name
			}
			return fmt.Errorf("unknown workload %q in -mix (have %s)", name, strings.Join(known, ", "))
		}
	}
	if len(pool) == 0 {
		return fmt.Errorf("-mix selects no workloads")
	}

	// The request stream is fully determined by (-seed, -mix, -requests)
	// before any client dials, so runs are reproducible whatever the
	// scheduling: each request is a unique grid (no singleflight
	// coalescing) drawn from the pool.
	rng := rand.New(rand.NewSource(*seed))
	specs := make([]scenario.Spec, *requests)
	totalCells := 0
	for i := range specs {
		w := pool[rng.Intn(len(pool))]
		g := w.grid
		g.Name = fmt.Sprintf("bench-%s#%d", w.name, i)
		specs[i] = scenario.SpecOf(g)
		resolved, err := specs[i].Resolve()
		if err != nil {
			return fmt.Errorf("workload %s: %w", w.name, err)
		}
		totalCells += len(resolved.Expand())
	}

	conns := make([]*railserve.Client, *clients)
	for i := range conns {
		c, err := railserve.Dial(*addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", *addr, err)
		}
		defer c.Close()
		conns[i] = c
	}

	var (
		mu        sync.Mutex
		latencies []float64
		errCount  int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range conns {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				_, err := c.RunGrid(specs[i], nil)
				d := time.Since(t0).Seconds()
				mu.Lock()
				if err != nil {
					errCount++
					fmt.Fprintf(stderr, "railbench: request %d: %v\n", i, err)
				} else {
					latencies = append(latencies, d)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := report{
		Clients:     *clients,
		Requests:    *requests,
		Errors:      errCount,
		Cells:       totalCells,
		DurationSec: elapsed,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(*requests-errCount) / elapsed
	}
	if len(latencies) > 0 {
		cdf := metrics.NewCDF(latencies)
		rep.P50Sec = cdf.Quantile(0.50)
		rep.P99Sec = cdf.Quantile(0.99)
	}

	if *metricsU != "" {
		n, err := scrapedRequestSamples(*metricsU)
		if err != nil {
			return fmt.Errorf("scrape cross-check: %w", err)
		}
		rep.ScrapedSamples = n
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "railbench: %d requests (%d cells) over %d clients in %.3fs: %.1f req/s, %d errors\n",
			rep.Requests, rep.Cells, rep.Clients, rep.DurationSec, rep.ThroughputRPS, rep.Errors)
		fmt.Fprintf(stdout, "latency: p50 %.2fms  p99 %.2fms\n", rep.P50Sec*1e3, rep.P99Sec*1e3)
		if *metricsU != "" {
			fmt.Fprintf(stdout, "scrape: %.0f histogram samples\n", rep.ScrapedSamples)
		}
	}
	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, *requests)
	}
	if *metricsU != "" && rep.ScrapedSamples != float64(*requests) {
		return fmt.Errorf("scraped request-duration histogram has %.0f samples, railbench issued %d — the daemon lost or double-counted requests",
			rep.ScrapedSamples, *requests)
	}
	return nil
}

// scrapedRequestSamples GETs the daemon's /metrics endpoint and sums
// the *_request_duration_seconds_count series across experiment labels
// — the daemon-side count of admitted requests.
func scrapedRequestSamples(base string) (float64, error) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape returned %s", resp.Status)
	}
	samples, err := telemetry.ParseSamples(resp.Body)
	if err != nil {
		return 0, err
	}
	var n float64
	for name, v := range samples {
		series := name
		if i := strings.IndexByte(series, '{'); i >= 0 {
			series = series[:i]
		}
		if strings.HasSuffix(series, "_request_duration_seconds_count") {
			n += v
		}
	}
	return n, nil
}
