package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultPrintsTable3AndFig7(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), nil, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Piezo (Polatis)", "Fig. 7", "8192"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("default output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBOM(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-bom", "-gpus", "1024"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fat-tree bill of materials (1024 GPUs)",
		"TOTAL",
		"Opus vs rail-optimized at 1024 GPUs",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bom output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(t.Context(), []string{"-table3", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 || !strings.Contains(lines[0], ",") {
		t.Errorf("csv shape:\n%s", out.String())
	}
	if strings.Contains(out.String(), "---") {
		t.Error("csv output contains table separator")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-gpus", "0", "-bom"},
		{"-nope"},
		{"positional"},
	} {
		var out, errb bytes.Buffer
		if err := run(t.Context(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
