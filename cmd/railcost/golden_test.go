package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"photonrail/internal/goldentest"
)

// TestGoldenOutputs pins railcost's canonical invocations byte for
// byte: the default Table 3 + Fig. 7 pair in text and CSV, and the
// per-design bills of materials at a small cluster size. Regenerate
// intentionally with `go test ./cmd/railcost -run Golden -update`.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"default.table", nil},
		{"default.csv", []string{"-csv"}},
		{"bom.table", []string{"-bom", "-gpus", "1024"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if err := run(t.Context(), tc.args, &out, &errb); err != nil {
				t.Fatal(err)
			}
			goldentest.Check(t, out.Bytes(), filepath.Join("testdata", "golden", tc.name))
		})
	}
}
