// Command railcost reproduces the paper's fabric economics: the Fig. 7
// cost/power comparison across cluster sizes and the Table 3 OCS
// scalability–latency tradeoff.
//
// Usage:
//
//	railcost -fig7
//	railcost -table3
//	railcost -bom -gpus 8192     # per-design bills of materials
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"photonrail"
	"photonrail/internal/cost"
	"photonrail/internal/report"
	"photonrail/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("railcost: ")
	var (
		fig7   = flag.Bool("fig7", false, "print the Fig. 7 comparison")
		table3 = flag.Bool("table3", false, "print Table 3")
		bom    = flag.Bool("bom", false, "print per-design bills of materials")
		gpus   = flag.Int("gpus", 8192, "cluster size for -bom")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	if !*fig7 && !*table3 && !*bom {
		*fig7, *table3 = true, true
	}
	render := func(t *report.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *table3 {
		render(photonrail.Table3())
	}
	if *fig7 {
		t, err := photonrail.Fig7Table()
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *bom {
		cat := cost.DefaultCatalog()
		ft, err := cost.FatTree(*gpus, cat)
		if err != nil {
			log.Fatal(err)
		}
		rail, err := cost.RailOptimized(*gpus, topo.DGXH200GPUsPerNode, cat)
		if err != nil {
			log.Fatal(err)
		}
		op, err := cost.Opus(*gpus, topo.DGXH200GPUsPerNode, cat)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range []cost.BOM{ft, rail, op} {
			t := report.NewTable(fmt.Sprintf("%s bill of materials (%d GPUs)", b.Design, b.GPUs),
				"Component", "Count", "Unit price", "Unit power")
			for _, it := range b.Items {
				t.AddRow(it.Device.Name, it.Count, it.Device.Price, it.Device.Power)
			}
			t.AddRow("TOTAL", "", b.TotalCost(), b.TotalPower())
			render(t)
		}
		costFrac, powerFrac := cost.Savings(rail, op)
		fmt.Printf("Opus vs rail-optimized at %d GPUs: cost -%.1f%%, power -%.2f%% (paper: up to -70.5%% / -95.84%%)\n",
			*gpus, 100*costFrac, 100*powerFrac)
	}
}
