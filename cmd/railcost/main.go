// Command railcost reproduces the paper's fabric economics: the Fig. 7
// cost/power comparison across cluster sizes and the Table 3 OCS
// scalability–latency tradeoff.
//
// Usage:
//
//	railcost -fig7
//	railcost -table3
//	railcost -bom -gpus 8192     # per-design bills of materials
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"photonrail"
	"photonrail/internal/cost"
	"photonrail/internal/report"
	"photonrail/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railcost: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railcost", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig7   = fs.Bool("fig7", false, "print the Fig. 7 comparison")
		table3 = fs.Bool("table3", false, "print Table 3")
		bom    = fs.Bool("bom", false, "print per-design bills of materials")
		gpus   = fs.Int("gpus", 8192, "cluster size for -bom")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if !*fig7 && !*table3 && !*bom {
		*fig7, *table3 = true, true
	}
	render := func(t *report.Table) error {
		var err error
		if *csv {
			err = t.CSV(stdout)
		} else {
			err = t.Render(stdout)
		}
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(stdout)
		return err
	}
	if *table3 {
		if err := render(photonrail.Table3()); err != nil {
			return err
		}
	}
	if *fig7 {
		t, err := photonrail.Fig7Table()
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if *bom {
		if *gpus <= 0 {
			return fmt.Errorf("-gpus must be positive, got %d", *gpus)
		}
		cat := cost.DefaultCatalog()
		ft, err := cost.FatTree(*gpus, cat)
		if err != nil {
			return err
		}
		rail, err := cost.RailOptimized(*gpus, topo.DGXH200GPUsPerNode, cat)
		if err != nil {
			return err
		}
		op, err := cost.Opus(*gpus, topo.DGXH200GPUsPerNode, cat)
		if err != nil {
			return err
		}
		for _, b := range []cost.BOM{ft, rail, op} {
			t := report.NewTable(fmt.Sprintf("%s bill of materials (%d GPUs)", b.Design, b.GPUs),
				"Component", "Count", "Unit price", "Unit power")
			for _, it := range b.Items {
				t.AddRow(it.Device.Name, it.Count, it.Device.Price, it.Device.Power)
			}
			t.AddRow("TOTAL", "", b.TotalCost(), b.TotalPower())
			if err := render(t); err != nil {
				return err
			}
		}
		costFrac, powerFrac := cost.Savings(rail, op)
		fmt.Fprintf(stdout, "Opus vs rail-optimized at %d GPUs: cost -%.1f%%, power -%.2f%% (paper: up to -70.5%% / -95.84%%)\n",
			*gpus, 100*costFrac, 100*powerFrac)
	}
	return nil
}
