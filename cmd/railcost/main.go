// Command railcost reproduces the paper's fabric economics: the Fig. 7
// cost/power comparison across cluster sizes, the Table 3 OCS
// scalability–latency tradeoff, and the per-design bills of materials —
// each served by its photonrail registry experiment (fig7, table3,
// bom), so railcost is flag parsing plus Lookup(name).Run plus
// rendering.
//
// Usage:
//
//	railcost -fig7
//	railcost -table3
//	railcost -bom -gpus 8192     # per-design bills of materials
//	railcost -fig7 -timeout 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"photonrail"
	"photonrail/internal/gridcli"
)

func main() {
	// Ctrl-C and SIGTERM cancel the run through the same context the
	// -timeout flag bounds; a second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "railcost: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("railcost", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig7    = fs.Bool("fig7", false, "print the Fig. 7 comparison")
		table3  = fs.Bool("table3", false, "print Table 3")
		bom     = fs.Bool("bom", false, "print per-design bills of materials")
		gpus    = fs.Int("gpus", 8192, "cluster size for -bom")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		timeout = fs.Duration("timeout", 0, "overall deadline for the invocation (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if !*fig7 && !*table3 && !*bom {
		*fig7, *table3 = true, true
	}
	if *bom && *gpus <= 0 {
		return fmt.Errorf("-gpus must be positive, got %d", *gpus)
	}

	var selected []string
	if *table3 {
		selected = append(selected, "table3")
	}
	if *fig7 {
		selected = append(selected, "fig7")
	}
	if *bom {
		selected = append(selected, "bom")
	}

	ctx, cancel := gridcli.WithTimeout(ctx, *timeout)
	defer cancel()
	return gridcli.RunExperiments(ctx, photonrail.NewEngine(0), selected,
		photonrail.Params{GPUs: *gpus}, *csv, stdout)
}
