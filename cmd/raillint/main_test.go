package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestVersionHandshake covers the `-V=full` leg of the vet protocol:
// the go command requires a stable, buildID-bearing version line to key
// its cache on.
func TestVersionHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-V=full) = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "raillint version ") || !strings.Contains(out, "buildID=") {
		t.Errorf("version line %q lacks the name/buildID shape the go command requires", out)
	}
}

// TestFlagsHandshake covers the `-flags` leg: raillint takes no
// analyzer flags, so the go command must be told the empty list.
func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-flags) = %d, stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("run(-flags) printed %q, want []", got)
	}
}

// TestStandaloneCleanPackage runs the real loader + suite over a small
// package with no concurrency at all, which must come back clean.
func TestStandaloneCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"photonrail/internal/units"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run(internal/units) = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", stdout.String())
	}
}

// TestStandaloneFlagsDistilledDeadlock runs the binary's own standalone
// path over the lockedblock corpus — the distilled PR 2
// reply-under-mutex deadlock — and requires the nonzero exit and the
// finding on stdout. This is the end-to-end guarantee that the shipped
// tool, not just the analyzer under analysistest, catches the
// historical bug class.
func TestStandaloneFlagsDistilledDeadlock(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"photonrail/internal/lint/lockedblock/testdata/src/lockedrepro"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run(lockedrepro) = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "lockedblock:") || !strings.Contains(out, "channel send while") {
		t.Errorf("repro corpus findings missing the deadlock diagnostic:\n%s", out)
	}
}
