// Command raillint runs photonrail's concurrency/determinism analyzer
// suite (internal/lint/...) in two modes:
//
// Standalone, over package patterns:
//
//	raillint ./...
//
// loads and typechecks every matched package and prints surviving
// findings as file:line:col: analyzer: message, exiting 1 if there are
// any.
//
// As a vet tool:
//
//	go build -o /tmp/raillint ./cmd/raillint
//	go vet -vettool=/tmp/raillint ./...
//
// speaks the go vet unit-checker protocol: the -V=full version
// handshake for the build cache, then one JSON config file per
// package, with diagnostics on stderr and exit status 2 when there are
// findings.
//
// Suppressions use `//lint:allow <analyzer> <reason>` — see
// internal/lint/allow; the reason is mandatory, and malformed or
// unknown-analyzer annotations are themselves findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"photonrail/internal/lint/driver"
	"photonrail/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the version handshake, vet-config mode, and
// standalone pattern mode, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return version(stdout, stderr)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The go command asks which analyzer flags the tool accepts;
		// raillint has none, so the answer is the empty JSON list.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0], stderr)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns, stdout, stderr)
}

// version implements the `-V=full` handshake: the go command hashes
// this line into its build cache key, and for a "devel" version
// requires a buildID field, so the binary's own digest is the honest
// answer.
func version(stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "raillint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// standalone loads patterns through the go command and checks every
// directly matched package.
func standalone(patterns []string, stdout, stderr io.Writer) int {
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	suite := driver.Suite()
	exit := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "raillint: %s: %v\n", pkg.ImportPath, terr)
			}
			exit = 1
			continue
		}
		findings, err := driver.CheckPackage(pkg, suite)
		if err != nil {
			fmt.Fprintf(stderr, "raillint: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}

// vetConfig is the subset of the go vet unit-checker config raillint
// consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit checks the single package described by a vet config file.
// In the test variant the go command pre-merges in-package _test.go
// sources into GoFiles; raillint re-partitions them by suffix so the
// analyzers see the same Files/TestFiles split the standalone loader
// produces — test code is evidence (seed-corpus ledgers), not a
// subject of the concurrency checks.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "raillint: %s: %v\n", cfgPath, err)
		return 1
	}

	// Export data for direct imports under their source spelling, plus
	// every transitive dependency under its canonical path (the gc
	// importer asks for both).
	exports := make(map[string]string, len(cfg.ImportMap)+len(cfg.PackageFile))
	for canonical, file := range cfg.PackageFile {
		exports[canonical] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	// The go command expects the facts (vetx) output to exist even
	// though raillint's analyzers carry no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "raillint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	var goFiles, testGoFiles []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			testGoFiles = append(testGoFiles, f)
		} else {
			goFiles = append(goFiles, f)
		}
	}
	pkg, err := loader.CheckFiles(cfg.ImportPath, "", cfg.Dir, goFiles, testGoFiles, exports)
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "raillint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 1
	}
	findings, err := driver.CheckPackage(pkg, driver.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "raillint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
