package photonrail

import (
	"photonrail/internal/exp"
	"photonrail/internal/netsim"
)

// Engine runs the package's figure/table experiments on a concurrent
// worker pool with a memoizing simulation cache. Independent simulation
// jobs (the sweep's latency points, the cost comparison's cluster
// sizes) execute in parallel; shared sub-results — above all the
// electrical baseline every sweep point normalizes against — are
// simulated exactly once per engine and reused across experiments.
//
// Output is deterministic and order-stable: results are gathered by
// submission index, never completion order, so an Engine with N workers
// produces byte-identical results to an Engine with one.
type Engine struct {
	pool *exp.Engine
}

// NewEngine builds an engine with the given worker count; workers <= 0
// selects runtime.NumCPU(). Each engine owns an independent cache.
func NewEngine(workers int) *Engine {
	return &Engine{pool: exp.New(workers)}
}

// defaultEngine backs the package-level experiment functions
// (SweepReconfigLatency, AnalyzeWindows, CostComparison), which keep
// their historical signatures and semantics on top of it.
var defaultEngine = NewEngine(0)

// DefaultEngine returns the process-wide engine used by the
// package-level experiment functions. Its cache retains every distinct
// (Workload, Fabric) result — including full traces for AnalyzeWindows
// — for the life of the process; long-running callers iterating over
// many distinct workloads should call ResetCache between batches or
// use a dedicated NewEngine per batch.
func DefaultEngine() *Engine { return defaultEngine }

// Workers reports the pool size.
func (en *Engine) Workers() int { return en.pool.Workers() }

// CacheStats is the engine's memoization telemetry: Hits counts
// requests served from a memoized (or in-flight) simulation, Misses
// counts simulations actually run.
type CacheStats struct {
	Hits, Misses uint64
}

// CacheStats reports the telemetry accumulated since construction.
func (en *Engine) CacheStats() CacheStats {
	st := en.pool.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses}
}

// ResetCache drops all memoized simulation results (telemetry counters
// keep accumulating).
func (en *Engine) ResetCache() { en.pool.ResetCache() }

// Simulate is the memoized form of the package-level Simulate: the
// result of each distinct (Workload, Fabric) pair is computed once per
// engine and shared. Treat the returned Result as read-only.
func (en *Engine) Simulate(w Workload, f Fabric) (*Result, error) {
	return exp.Cached(en.pool, exp.Key("simulate", w, f), func() (*Result, error) {
		return Simulate(w, f)
	})
}

// provisionedStable is the memoized simulateProvisionedStable.
func (en *Engine) provisionedStable(w Workload, latencyMS float64) (*Result, error) {
	return exp.Cached(en.pool, exp.Key("provisioned-stable", w, latencyMS), func() (*Result, error) {
		return simulateProvisionedStable(w, latencyMS)
	})
}

// simulateTraced is the memoized trace-recording electrical-baseline
// run that the window analysis consumes.
func (en *Engine) simulateTraced(w Workload) (*netsim.Result, error) {
	return exp.Cached(en.pool, exp.Key("simulate-traced", w), func() (*netsim.Result, error) {
		_, inner, err := simulate(w, Fabric{Kind: ElectricalRail}, true)
		return inner, err
	})
}
