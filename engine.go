package photonrail

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"photonrail/internal/exp"
	"photonrail/internal/netsim"
	"photonrail/internal/topo"
	"photonrail/internal/units"
	"photonrail/internal/workload"
)

// Engine runs the package's figure/table experiments on a concurrent
// worker pool with a memoizing simulation cache. Independent simulation
// jobs (the sweep's latency points, the cost comparison's cluster
// sizes) execute in parallel; shared sub-results — above all the
// electrical baseline every sweep point normalizes against — are
// simulated exactly once per engine and reused across experiments.
//
// Output is deterministic and order-stable: results are gathered by
// submission index, never completion order, so an Engine with N workers
// produces byte-identical results to an Engine with one.
//
// Simulation runs as a staged pipeline with one memo entry per stage,
// all under the engine's single bounded LRU via hierarchical keys:
//
//	build:     Workload → *workload.Program (pure per workload and
//	           topology kind; one immutable Program is shared by every
//	           fabric/latency variant)
//	provision: (Workload, latency) → the provisioned-stable schedule,
//	           whose converged per-rail Profile also lands in a
//	           latency-free seed cache keyed on the Workload alone
//	time:      (Workload, Fabric) → one timed execution
//
// Each stage consults the stage below it through the same cache, so a
// 48-cell grid compiles each workload once, runs each reactive
// simulation once, and reuses both across every latency point.
type Engine struct {
	pool *exp.Engine

	// profMu guards the Provision stage's latency-free caches: interned
	// canonical profiles (content-equal profiles share one object, and
	// therefore one memoized speculation plan) and the converged-profile
	// seeds consulted when a new latency point starts its convergence
	// loop.
	profMu   sync.Mutex
	profiles map[string]*netsim.Profile
	seeds    map[string]*netsim.Profile

	seedHits, seedMisses atomic.Uint64
}

// Cache entry costs, in simulation units: a traced result pins the full
// per-op trace (orders of magnitude more memory than the timing
// summary), so it weighs more against a bounded engine's budget.
const (
	costSim     = 1
	costTraced  = 8
	costProgram = 1
)

// maxInternedProfiles caps the Provision stage's profile intern table.
// Interning is purely an optimization (sharing memoized speculation
// plans between content-equal profiles), so when a long-running engine
// crosses the cap the table is simply dropped and restarted.
const maxInternedProfiles = 4096

// NewEngine builds an engine with the given worker count and an
// unbounded cache; workers <= 0 selects runtime.NumCPU(). Each engine
// owns an independent cache.
func NewEngine(workers int) *Engine {
	return newEngine(exp.New(workers))
}

// NewBoundedEngine builds an engine whose memo cache is capped at
// maxCost simulation units, evicting least-recently-used results once
// the cap is exceeded (plain simulations cost 1 unit, trace-recording
// runs cost more). maxCost <= 0 means unbounded. Bounded engines are
// what long-running servers (cmd/raild) use to stay memory-safe
// indefinitely; one-shot CLI runs keep the unbounded default.
func NewBoundedEngine(workers int, maxCost int64) *Engine {
	return newEngine(exp.NewBounded(workers, maxCost))
}

func newEngine(pool *exp.Engine) *Engine {
	return &Engine{
		pool:     pool,
		profiles: make(map[string]*netsim.Profile),
		seeds:    make(map[string]*netsim.Profile),
	}
}

// defaultEngine backs the package-level experiment functions
// (SweepReconfigLatency, AnalyzeWindows, CostComparison), which keep
// their historical signatures and semantics on top of it.
var defaultEngine = NewEngine(0)

// DefaultEngine returns the process-wide engine used by the
// package-level experiment functions. Its cache is unbounded: it
// retains every distinct (Workload, Fabric) result — including full
// traces for AnalyzeWindows — for the life of the process. Long-running
// callers iterating over many distinct workloads should use a dedicated
// NewBoundedEngine, which evicts cold results automatically; ResetCache
// remains available to drop everything at a batch boundary and is safe
// to call concurrently with in-flight work (running simulations are
// kept, so singleflight deduplication holds across the reset).
func DefaultEngine() *Engine { return defaultEngine }

// Workers reports the pool size.
func (en *Engine) Workers() int { return en.pool.Workers() }

// StageStats is one pipeline stage's share of the cache telemetry.
type StageStats struct {
	Hits, Misses uint64
}

// CacheStats is the engine's memoization telemetry: Hits counts
// requests served from a memoized (or in-flight) simulation, Misses
// counts simulations actually run, Evictions counts results dropped by
// a bounded engine's LRU cap, and InFlight is the number of simulations
// currently running.
//
// Build, Provision, and Time break the aggregate Hits/Misses down by
// pipeline stage. SeedHits counts provisioned-stable convergence loops
// that started from a neighboring latency's converged profile;
// SeedMisses counts loops that had to start from the reactive profile.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	InFlight                int64

	Build, Provision, Time StageStats

	SeedHits, SeedMisses uint64
}

// CacheStats reports the telemetry accumulated since construction.
func (en *Engine) CacheStats() CacheStats {
	st := en.pool.Stats()
	stages := en.pool.StageStats()
	stage := func(name string) StageStats {
		s := stages[name]
		return StageStats{Hits: s.Hits, Misses: s.Misses}
	}
	return CacheStats{
		Hits:       st.Hits,
		Misses:     st.Misses,
		Evictions:  st.Evictions,
		InFlight:   st.InFlight,
		Build:      stage("build"),
		Provision:  stage("provision"),
		Time:       stage("time"),
		SeedHits:   en.seedHits.Load(),
		SeedMisses: en.seedMisses.Load(),
	}
}

// SetStageObserver installs (or, with nil, removes) a hook receiving
// the wall-clock duration of every simulation actually computed
// (cache misses only), labeled with its pipeline stage ("build",
// "provision", "time"; "" for unstaged keys). The daemon uses it to
// feed per-stage compute-latency histograms. The hook runs on the
// computation goroutine with no engine lock held; it must be cheap and
// non-blocking.
func (en *Engine) SetStageObserver(fn func(stage string, seconds float64)) {
	en.pool.SetObserver(fn)
}

// ResetCache drops all memoized simulation results (telemetry counters
// keep accumulating). In-flight simulations survive: their callers
// still get results, and concurrent requests for an in-flight key keep
// joining the running computation instead of duplicating it.
func (en *Engine) ResetCache() {
	en.pool.ResetCache()
	en.profMu.Lock()
	en.profiles = make(map[string]*netsim.Profile)
	en.seeds = make(map[string]*netsim.Profile)
	en.profMu.Unlock()
}

// Simulate is the memoized form of the package-level Simulate: the
// result of each distinct (Workload, Fabric) pair is computed once per
// engine and shared. Treat the returned Result as read-only.
func (en *Engine) Simulate(w Workload, f Fabric) (*Result, error) {
	return en.SimulateCtx(context.Background(), w, f)
}

// SimulateCtx is Simulate under a context, with the engine cache's
// detached-singleflight semantics: a cancelled caller returns ctx.Err()
// promptly, but a simulation other callers have joined keeps running
// for them, and its result still lands in the cache. The simulation
// itself becomes cancellable only once its last waiter departs.
//
// This is the pipeline's Time stage: the compiled Program comes from
// the Build stage's memo (shared across every fabric/latency variant of
// the workload on the same topology kind), and only the timed execution
// runs here.
func (en *Engine) SimulateCtx(ctx context.Context, w Workload, f Fabric) (*Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, "time:"+exp.Key("simulate", w, f), costSim, func(cctx context.Context) (*Result, error) {
		topoKind, mode, err := fabricRealization(f)
		if err != nil {
			return nil, err
		}
		prog, err := en.programCtx(cctx, w, topoKind)
		if err != nil {
			return nil, err
		}
		res, _, err := runProgram(prog, mode, f, false)
		return res, err
	})
}

// programCtx is the Build stage: Workload → compiled immutable
// *workload.Program, memoized per canonical workload key and topology
// kind. Every Time- and Provision-stage run of the workload shares the
// one cached Program.
func (en *Engine) programCtx(ctx context.Context, w Workload, kind topo.FabricKind) (*workload.Program, error) {
	return exp.CachedCostCtx(ctx, en.pool, "build:"+exp.Key(w, int(kind)), costProgram, func(context.Context) (*workload.Program, error) {
		return w.build(kind)
	})
}

// provisionedStableCtx is the memoized provisioned-stable run — the
// pipeline's Provision stage. The memo key carries the latency, but the
// stage reuses everything latency-independent from below it: the Build
// stage's Program, the Time stage's reactive run at this latency (the
// same entry a Photonic grid cell uses), and — across latencies — the
// latency-free seed cache of converged profiles.
//
// Convergence seeding contract: a converged profile stored by one
// latency may seed another latency's convergence loop only when it is
// content-equal to that loop's own starting profile (the reactive
// profile). Equal starting content means the pass trajectory is
// byte-identical to the unseeded one, so seeding can only ever share
// memoized speculation work, never change a result. When the seed
// doesn't match, the loop falls back to full passes from the reactive
// profile.
func (en *Engine) provisionedStableCtx(ctx context.Context, w Workload, latencyMS float64) (*Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, "provision:"+exp.Key("provisioned-stable", w, latencyMS), costSim, func(cctx context.Context) (*Result, error) {
		return en.provisionedStableStaged(cctx, w, latencyMS)
	})
}

func (en *Engine) provisionedStableStaged(ctx context.Context, w Workload, latencyMS float64) (*Result, error) {
	prog, err := en.programCtx(ctx, w, topo.FabricPhotonicRail)
	if err != nil {
		return nil, err
	}
	// Profiling pass (reactive) — also the fallback schedule. Fetched
	// through the Time stage, so a grid's Photonic cell at the same
	// latency and this stage share one simulation.
	reactive, err := en.SimulateCtx(ctx, w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: latencyMS})
	if err != nil {
		return nil, err
	}
	wkey := exp.Key("provision-seed", w)
	best := reactive.inner
	profile := en.internProfile(wkey, best.Profile)
	if seed := en.lookupSeed(wkey); seed != nil && seed.Equal(profile) {
		en.seedHits.Add(1)
		// Same content as the reactive profile, so the trajectory is
		// unchanged; adopting the seed object shares its memoized
		// speculation plans.
		profile = seed
	} else {
		en.seedMisses.Add(1)
	}
	latency := units.FromMilliseconds(latencyMS)
	converged := false
	for pass := 0; pass < 3; pass++ {
		res, err := netsim.Run(prog, netsim.Options{
			Mode:            netsim.Photonic,
			ReconfigLatency: latency,
			Provision:       true,
			Profile:         profile,
		})
		if err != nil {
			return nil, err
		}
		if res.Total < best.Total {
			best = res
		}
		next := en.internProfile(wkey, res.Profile)
		if next.Equal(profile) {
			converged = true
			break
		}
		profile = next
	}
	if converged {
		en.storeSeed(wkey, profile)
	}
	return wrapResult(best), nil
}

// internProfile canonicalizes a profile by content within one
// workload's namespace: the first profile seen with a given fingerprint
// becomes the shared object all content-equal later ones resolve to, so
// its memoized speculation plans are computed once. Pure optimization —
// profiles are immutable in content and the memo is latency-free.
func (en *Engine) internProfile(wkey string, p *netsim.Profile) *netsim.Profile {
	if p == nil {
		return nil
	}
	key := wkey + "|" + p.Fingerprint()
	en.profMu.Lock()
	defer en.profMu.Unlock()
	if c, ok := en.profiles[key]; ok {
		return c
	}
	if len(en.profiles) >= maxInternedProfiles {
		en.profiles = make(map[string]*netsim.Profile)
	}
	en.profiles[key] = p
	return p
}

func (en *Engine) lookupSeed(wkey string) *netsim.Profile {
	en.profMu.Lock()
	defer en.profMu.Unlock()
	return en.seeds[wkey]
}

func (en *Engine) storeSeed(wkey string, p *netsim.Profile) {
	en.profMu.Lock()
	defer en.profMu.Unlock()
	if len(en.seeds) >= maxInternedProfiles {
		en.seeds = make(map[string]*netsim.Profile)
	}
	en.seeds[wkey] = p
}

// provisionedStable is provisionedStableCtx without cancellation.
func (en *Engine) provisionedStable(w Workload, latencyMS float64) (*Result, error) {
	return en.provisionedStableCtx(context.Background(), w, latencyMS)
}

// simulateTracedCtx is the memoized trace-recording electrical-baseline
// run that the window analysis consumes. Traced results carry the full
// per-op trace, so they weigh costTraced units in a bounded cache.
func (en *Engine) simulateTracedCtx(ctx context.Context, w Workload) (*netsim.Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, "time:"+exp.Key("simulate-traced", w), costTraced, func(cctx context.Context) (*netsim.Result, error) {
		prog, err := en.programCtx(cctx, w, topo.FabricElectricalRail)
		if err != nil {
			return nil, err
		}
		_, inner, err := runProgram(prog, netsim.Electrical, Fabric{Kind: ElectricalRail}, true)
		return inner, err
	})
}

// CompiledWorkload is a workload captured together with its Build-stage
// output: one immutable compiled Program on a fixed topology kind,
// reusable across every fabric variant that realizes on that kind.
type CompiledWorkload struct {
	w    Workload
	kind topo.FabricKind
	prog *workload.Program
}

// Workload returns the workload this compilation came from.
func (cw *CompiledWorkload) Workload() Workload { return cw.w }

// Compile runs only the Build stage for the workload on the fabric's
// topology kind. See CompileCtx.
func (en *Engine) Compile(w Workload, f Fabric) (*CompiledWorkload, error) {
	return en.CompileCtx(context.Background(), w, f)
}

// CompileCtx runs only the pipeline's Build stage: it compiles (or
// fetches from the build memo) the workload's Program on the topology
// kind the fabric realizes on. The result can be passed to
// SimulateCompiledCtx with any fabric sharing that kind — e.g. compile
// once, then sweep reconfiguration latencies.
func (en *Engine) CompileCtx(ctx context.Context, w Workload, f Fabric) (*CompiledWorkload, error) {
	kind, _, err := fabricRealization(f)
	if err != nil {
		return nil, err
	}
	prog, err := en.programCtx(ctx, w, kind)
	if err != nil {
		return nil, err
	}
	return &CompiledWorkload{w: w, kind: kind, prog: prog}, nil
}

// SimulateCompiled is SimulateCompiledCtx without cancellation.
func (en *Engine) SimulateCompiled(cw *CompiledWorkload, f Fabric) (*Result, error) {
	return en.SimulateCompiledCtx(context.Background(), cw, f)
}

// SimulateCompiledCtx runs the Time stage for a pre-compiled workload.
// The fabric must realize on the same topology kind the workload was
// compiled for. Results are identical to SimulateCtx(cw.Workload(), f)
// and share its memo entries.
func (en *Engine) SimulateCompiledCtx(ctx context.Context, cw *CompiledWorkload, f Fabric) (*Result, error) {
	kind, _, err := fabricRealization(f)
	if err != nil {
		return nil, err
	}
	if kind != cw.kind {
		return nil, fmt.Errorf("photonrail: workload compiled for topology kind %d, fabric realizes on %d", cw.kind, kind)
	}
	return en.SimulateCtx(ctx, cw.w, f)
}
