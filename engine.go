package photonrail

import (
	"context"

	"photonrail/internal/exp"
	"photonrail/internal/netsim"
)

// Engine runs the package's figure/table experiments on a concurrent
// worker pool with a memoizing simulation cache. Independent simulation
// jobs (the sweep's latency points, the cost comparison's cluster
// sizes) execute in parallel; shared sub-results — above all the
// electrical baseline every sweep point normalizes against — are
// simulated exactly once per engine and reused across experiments.
//
// Output is deterministic and order-stable: results are gathered by
// submission index, never completion order, so an Engine with N workers
// produces byte-identical results to an Engine with one.
type Engine struct {
	pool *exp.Engine
}

// Cache entry costs, in simulation units: a traced result pins the full
// per-op trace (orders of magnitude more memory than the timing
// summary), so it weighs more against a bounded engine's budget.
const (
	costSim    = 1
	costTraced = 8
)

// NewEngine builds an engine with the given worker count and an
// unbounded cache; workers <= 0 selects runtime.NumCPU(). Each engine
// owns an independent cache.
func NewEngine(workers int) *Engine {
	return &Engine{pool: exp.New(workers)}
}

// NewBoundedEngine builds an engine whose memo cache is capped at
// maxCost simulation units, evicting least-recently-used results once
// the cap is exceeded (plain simulations cost 1 unit, trace-recording
// runs cost more). maxCost <= 0 means unbounded. Bounded engines are
// what long-running servers (cmd/raild) use to stay memory-safe
// indefinitely; one-shot CLI runs keep the unbounded default.
func NewBoundedEngine(workers int, maxCost int64) *Engine {
	return &Engine{pool: exp.NewBounded(workers, maxCost)}
}

// defaultEngine backs the package-level experiment functions
// (SweepReconfigLatency, AnalyzeWindows, CostComparison), which keep
// their historical signatures and semantics on top of it.
var defaultEngine = NewEngine(0)

// DefaultEngine returns the process-wide engine used by the
// package-level experiment functions. Its cache is unbounded: it
// retains every distinct (Workload, Fabric) result — including full
// traces for AnalyzeWindows — for the life of the process. Long-running
// callers iterating over many distinct workloads should use a dedicated
// NewBoundedEngine, which evicts cold results automatically; ResetCache
// remains available to drop everything at a batch boundary and is safe
// to call concurrently with in-flight work (running simulations are
// kept, so singleflight deduplication holds across the reset).
func DefaultEngine() *Engine { return defaultEngine }

// Workers reports the pool size.
func (en *Engine) Workers() int { return en.pool.Workers() }

// CacheStats is the engine's memoization telemetry: Hits counts
// requests served from a memoized (or in-flight) simulation, Misses
// counts simulations actually run, Evictions counts results dropped by
// a bounded engine's LRU cap, and InFlight is the number of simulations
// currently running.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	InFlight                int64
}

// CacheStats reports the telemetry accumulated since construction.
func (en *Engine) CacheStats() CacheStats {
	st := en.pool.Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		InFlight:  st.InFlight,
	}
}

// ResetCache drops all memoized simulation results (telemetry counters
// keep accumulating). In-flight simulations survive: their callers
// still get results, and concurrent requests for an in-flight key keep
// joining the running computation instead of duplicating it.
func (en *Engine) ResetCache() { en.pool.ResetCache() }

// Simulate is the memoized form of the package-level Simulate: the
// result of each distinct (Workload, Fabric) pair is computed once per
// engine and shared. Treat the returned Result as read-only.
func (en *Engine) Simulate(w Workload, f Fabric) (*Result, error) {
	return en.SimulateCtx(context.Background(), w, f)
}

// SimulateCtx is Simulate under a context, with the engine cache's
// detached-singleflight semantics: a cancelled caller returns ctx.Err()
// promptly, but a simulation other callers have joined keeps running
// for them, and its result still lands in the cache. The simulation
// itself becomes cancellable only once its last waiter departs.
func (en *Engine) SimulateCtx(ctx context.Context, w Workload, f Fabric) (*Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, exp.Key("simulate", w, f), costSim, func(context.Context) (*Result, error) {
		return Simulate(w, f)
	})
}

// provisionedStableCtx is the memoized simulateProvisionedStable.
func (en *Engine) provisionedStableCtx(ctx context.Context, w Workload, latencyMS float64) (*Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, exp.Key("provisioned-stable", w, latencyMS), costSim, func(context.Context) (*Result, error) {
		return simulateProvisionedStable(w, latencyMS)
	})
}

// provisionedStable is provisionedStableCtx without cancellation.
func (en *Engine) provisionedStable(w Workload, latencyMS float64) (*Result, error) {
	return en.provisionedStableCtx(context.Background(), w, latencyMS)
}

// simulateTracedCtx is the memoized trace-recording electrical-baseline
// run that the window analysis consumes. Traced results carry the full
// per-op trace, so they weigh costTraced units in a bounded cache.
func (en *Engine) simulateTracedCtx(ctx context.Context, w Workload) (*netsim.Result, error) {
	return exp.CachedCostCtx(ctx, en.pool, exp.Key("simulate-traced", w), costTraced, func(context.Context) (*netsim.Result, error) {
		_, inner, err := simulate(w, Fabric{Kind: ElectricalRail}, true)
		return inner, err
	})
}
