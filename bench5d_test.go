package photonrail

import (
	"fmt"
	"testing"

	"photonrail/internal/report"
)

// fourD returns the 4D workload: Llama3-8B with TP=4 (intra-node), CP=2,
// FSDP=2, PP=2 on 8 nodes — three scale-out axes.
func fourD(iterations int) Workload {
	w := PaperWorkload(iterations)
	w.NumNodes = 8
	w.CP = 2
	w.Microbatches = 4
	return w
}

// BenchmarkExtension5DParallelism answers the paper's §3 question — "can
// we reconfigure the OCSes during a job to enable 5D parallelisms?" —
// by running a 4D (TP+CP+FSDP+PP) job that static circuits cannot host
// (C2) under Opus across the OCS technology classes.
func BenchmarkExtension5DParallelism(b *testing.B) {
	w := fourD(2)
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		b.Fatal(err)
	}
	_, staticErr := Simulate(w, Fabric{Kind: PhotonicStaticPartition})
	type row struct {
		label string
		norm  float64
		rec   int
	}
	var rows []row
	for _, cfg := range []struct {
		label string
		lat   float64
	}{
		{"PLZT/SiP-class (0.01ms)", 0.01},
		{"3D MEMS (15ms)", 15},
		{"Piezo (25ms)", 25},
	} {
		res, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: cfg.lat, Provision: true})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{cfg.label, res.MeanIterationSeconds / base.MeanIterationSeconds, res.Reconfigurations})
	}
	emit("extension-5d", func() string {
		t := report.NewTable("Extension: 4D parallelism (TP=4, CP=2, FSDP=2, PP=2) on photonic rails",
			"Fabric", "Normalized iter time", "Reconfigurations")
		t.AddRow("electrical (reference)", "1.000", 0)
		staticCell := "n/a"
		if staticErr != nil {
			staticCell = "INFEASIBLE (C2)"
		}
		t.AddRow("photonic static partition", staticCell, 0)
		for _, r := range rows {
			t.AddRow("photonic + Opus, "+r.label, fmt.Sprintf("%.4f", r.norm), r.rec)
		}
		return t.String() + "\nThree scale-out axes need 6 static ports; Opus time-multiplexes them over 2.\n"
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 0.01, Provision: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPipelineSchedule compares 1F1B against GPipe on
// photonic rails: GPipe's phase structure (all forwards, then all
// backwards) produces fewer parallelism interleavings — fewer
// reconfigurations — at the price of a larger pipeline bubble.
func BenchmarkAblationPipelineSchedule(b *testing.B) {
	// A deeper pipeline (PP=4) makes the schedule choice visible: the
	// GPipe bubble grows with PP while 1F1B's stays one fill/drain.
	oneF := PaperWorkload(2)
	oneF.NumNodes = 8
	oneF.PP = 4
	oneF.Microbatches = 8
	gp := oneF
	gp.UseGPipe = true
	run := func(w Workload) (*Result, *Result) {
		base, err := Simulate(w, Fabric{Kind: ElectricalRail})
		if err != nil {
			b.Fatal(err)
		}
		ph, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25, Provision: true})
		if err != nil {
			b.Fatal(err)
		}
		return base, ph
	}
	base1, ph1 := run(oneF)
	baseG, phG := run(gp)
	emit("ablation-schedule", func() string {
		t := report.NewTable("Ablation: pipeline schedule on photonic rails (Piezo 25ms, provisioned)",
			"Schedule", "Baseline iter (s)", "Photonic iter (s)", "Overhead", "Reconfigurations")
		t.AddRow("1F1B",
			fmt.Sprintf("%.3f", base1.MeanIterationSeconds),
			fmt.Sprintf("%.3f", ph1.MeanIterationSeconds),
			fmt.Sprintf("%.2f%%", 100*(ph1.MeanIterationSeconds/base1.MeanIterationSeconds-1)),
			ph1.Reconfigurations)
		t.AddRow("GPipe",
			fmt.Sprintf("%.3f", baseG.MeanIterationSeconds),
			fmt.Sprintf("%.3f", phG.MeanIterationSeconds),
			fmt.Sprintf("%.2f%%", 100*(phG.MeanIterationSeconds/baseG.MeanIterationSeconds-1)),
			phG.Reconfigurations)
		return t.String()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(gp, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25}); err != nil {
			b.Fatal(err)
		}
	}
}
