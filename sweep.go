package photonrail

import (
	"context"
	"fmt"

	"photonrail/internal/exp"
)

// SweepPoint is one x-axis point of Fig. 8: the iteration time of the
// photonic fabric at a given reconfiguration latency, normalized to the
// fully-connected (electrical) baseline, with and without provisioning.
type SweepPoint struct {
	// LatencyMS is the OCS switching latency.
	LatencyMS float64
	// Reactive is normalized iteration time without provisioning.
	Reactive float64
	// Provisioned is normalized iteration time with provisioning.
	Provisioned float64
	// ReactiveReconfigs and ProvisionedReconfigs count physical
	// reconfigurations per run.
	ReactiveReconfigs, ProvisionedReconfigs int
}

// PaperLatenciesMS returns Fig. 8's x-axis: reconfiguration latencies in
// milliseconds. Latency 0 is the baseline itself.
func PaperLatenciesMS() []float64 {
	return []float64{0, 0.1, 1, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// SweepReconfigLatency regenerates Fig. 8: it simulates the workload on
// the electrical baseline once, then on photonic rails at each latency,
// reactive and provisioned, and reports normalized mean iteration times.
// The latency-0 point is simulated like any other; the photonic fabric
// at zero switching latency reproduces the baseline timing exactly, so
// it normalizes to exactly 1.0.
//
// The sweep runs on DefaultEngine: latency points simulate in parallel
// and the shared electrical baseline is simulated exactly once per
// batch. Output is deterministic and identical to a sequential run.
func SweepReconfigLatency(w Workload, latenciesMS []float64) ([]SweepPoint, error) {
	return DefaultEngine().SweepReconfigLatency(w, latenciesMS)
}

// SweepReconfigLatency is the engine form of the package-level function:
// same semantics, with fan-out bounded by the engine's worker count and
// results shared through its cache.
func (en *Engine) SweepReconfigLatency(w Workload, latenciesMS []float64) ([]SweepPoint, error) {
	return en.SweepReconfigLatencyCtx(context.Background(), w, latenciesMS)
}

// SweepReconfigLatencyCtx is SweepReconfigLatency under a context: a
// cancelled ctx stops scheduling latency points and returns ctx.Err()
// promptly, and the first point error stops the remaining points
// (fail-fast). Simulations other callers share are never killed by this
// caller's cancellation — see SimulateCtx.
func (en *Engine) SweepReconfigLatencyCtx(ctx context.Context, w Workload, latenciesMS []float64) ([]SweepPoint, error) {
	if len(latenciesMS) == 0 {
		latenciesMS = PaperLatenciesMS()
	}
	return exp.MapCtx(ctx, en.pool, len(latenciesMS), func(ctx context.Context, i int) (SweepPoint, error) {
		lat := latenciesMS[i]
		// Every point fetches the baseline through the cache: the first
		// request simulates it, the rest share the result.
		base, err := en.SimulateCtx(ctx, w, Fabric{Kind: ElectricalRail})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("photonrail: baseline: %w", err)
		}
		baseIter := base.MeanIterationSeconds
		if baseIter <= 0 {
			return SweepPoint{}, fmt.Errorf("photonrail: degenerate baseline iteration time")
		}
		reactive, err := en.SimulateCtx(ctx, w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: lat})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("photonrail: latency %vms reactive: %w", lat, err)
		}
		provisioned, err := en.provisionedStableCtx(ctx, w, lat)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("photonrail: latency %vms provisioned: %w", lat, err)
		}
		return SweepPoint{
			LatencyMS:            lat,
			Reactive:             reactive.MeanIterationSeconds / baseIter,
			Provisioned:          provisioned.MeanIterationSeconds / baseIter,
			ReactiveReconfigs:    reactive.Reconfigurations,
			ProvisionedReconfigs: provisioned.Reconfigurations,
		}, nil
	})
}
