package photonrail

import "fmt"

// SweepPoint is one x-axis point of Fig. 8: the iteration time of the
// photonic fabric at a given reconfiguration latency, normalized to the
// fully-connected (electrical) baseline, with and without provisioning.
type SweepPoint struct {
	// LatencyMS is the OCS switching latency.
	LatencyMS float64
	// Reactive is normalized iteration time without provisioning.
	Reactive float64
	// Provisioned is normalized iteration time with provisioning.
	Provisioned float64
	// ReactiveReconfigs and ProvisionedReconfigs count physical
	// reconfigurations per run.
	ReactiveReconfigs, ProvisionedReconfigs int
}

// PaperLatenciesMS returns Fig. 8's x-axis: reconfiguration latencies in
// milliseconds. Latency 0 is the baseline itself.
func PaperLatenciesMS() []float64 {
	return []float64{0, 0.1, 1, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// SweepReconfigLatency regenerates Fig. 8: it simulates the workload on
// the electrical baseline once, then on photonic rails at each latency,
// reactive and provisioned, and reports normalized mean iteration times.
// At latency 0 the paper defines the point as the baseline (normalized
// 1.0), and our photonic fabric at zero latency reproduces the baseline
// timing exactly.
func SweepReconfigLatency(w Workload, latenciesMS []float64) ([]SweepPoint, error) {
	if len(latenciesMS) == 0 {
		latenciesMS = PaperLatenciesMS()
	}
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		return nil, fmt.Errorf("photonrail: baseline: %w", err)
	}
	baseIter := base.MeanIterationSeconds
	if baseIter <= 0 {
		return nil, fmt.Errorf("photonrail: degenerate baseline iteration time")
	}
	var points []SweepPoint
	for _, lat := range latenciesMS {
		if lat == 0 {
			points = append(points, SweepPoint{LatencyMS: 0, Reactive: 1, Provisioned: 1})
			continue
		}
		reactive, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: lat})
		if err != nil {
			return nil, fmt.Errorf("photonrail: latency %vms reactive: %w", lat, err)
		}
		provisioned, err := simulateProvisionedStable(w, lat)
		if err != nil {
			return nil, fmt.Errorf("photonrail: latency %vms provisioned: %w", lat, err)
		}
		points = append(points, SweepPoint{
			LatencyMS:            lat,
			Reactive:             reactive.MeanIterationSeconds / baseIter,
			Provisioned:          provisioned.MeanIterationSeconds / baseIter,
			ReactiveReconfigs:    reactive.Reconfigurations,
			ProvisionedReconfigs: provisioned.Reconfigurations,
		})
	}
	return points, nil
}
