package photonrail

import (
	"context"
	"fmt"
	"strings"

	"photonrail/internal/cost"
	"photonrail/internal/exp"
	"photonrail/internal/metrics"
	"photonrail/internal/ocs"
	"photonrail/internal/parallelism"
	"photonrail/internal/report"
	"photonrail/internal/topo"
	"photonrail/internal/trace"
	"photonrail/internal/units"
)

// Table1 renders the rule-of-thumb LLM parallelism strategies (paper
// Table 1), generated from the planner rather than hard-coded.
func Table1() *report.Table {
	t := report.NewTable("Table 1: rule-of-thumb LLM parallelism strategies",
		"Model size", "Compute (N GPUs)", "Practices")
	type row struct {
		size   string
		params int64
		n      int
		nLabel string
	}
	const b = 1_000_000_000
	rows := []row{
		{"Small (<10B)", 8 * b, 8, "N <= 8"},
		{"Large (>10B)", 70 * b, 512, "8 < N <= 512"},
		{"Large (>10B)", 70 * b, 1024, "512 < N <= 1024"},
		{"Large (>10B)", 405 * b, 4096, "N > 1024"},
	}
	for _, r := range rows {
		recs := parallelism.Plan(r.params, r.n)
		var parts []string
		for _, rec := range recs {
			axes := make([]string, len(rec))
			for i, a := range rec {
				axes[i] = a.String()
			}
			// Paper wording: "TP & PP" for pairs, "TP, DP & PP" for
			// triples.
			if len(axes) > 1 {
				parts = append(parts, strings.Join(axes[:len(axes)-1], ", ")+" & "+axes[len(axes)-1])
			} else {
				parts = append(parts, axes[0])
			}
		}
		t.AddRow(r.size, r.nLabel, strings.Join(parts, ", "))
	}
	return t
}

// Table2 renders the per-parallelism communication characteristics
// (paper Table 2) from the parallelism package's model.
func Table2() *report.Table {
	t := report.NewTable("Table 2: characteristics of parallelism strategies",
		"Parallelism", "Memory reduction", "Compute reduction", "Communication type and frequency")
	for _, c := range parallelism.AllCharacteristics() {
		var comms []string
		for _, cm := range c.Comms {
			comms = append(comms, fmt.Sprintf("%v %v %v", cm.Phase, cm.Kind, cm.Freq))
		}
		t.AddRow(c.Axis, strings.Join(c.MemoryReduction, ", "),
			strings.Join(c.ComputeReduction, ", "), strings.Join(comms, "; "))
	}
	return t
}

// Table3 renders the OCS scalability–latency tradeoff (paper Table 3):
// #GPUs = scale-up size × radix/2 for GB200 (72) and H200 (8) domains.
func Table3() *report.Table {
	t := report.NewTable("Table 3: Opus scalability-latency tradeoff",
		"OCS Tech", "Reconfig. time (ms)", "Radix (ports)", "# GPUs (GB200)", "# GPUs (H200)")
	for _, tech := range ocs.Catalog() {
		t.AddRow(tech.String(),
			fmt.Sprintf("%g", tech.ReconfigTime.Milliseconds()),
			tech.Radix,
			tech.MaxGPUs(72),
			tech.MaxGPUs(8))
	}
	return t
}

// CostComparison regenerates Fig. 7 at the paper's cluster sizes and
// returns the rows for custom rendering. It runs on DefaultEngine: the
// cluster sizes are evaluated in parallel and each (size, catalog) BOM
// row is memoized across experiments.
func CostComparison() ([]cost.Fig7Row, error) {
	return DefaultEngine().CostComparison()
}

// CostComparison is the engine form of the package-level function.
func (en *Engine) CostComparison() ([]cost.Fig7Row, error) {
	return en.CostComparisonCtx(context.Background())
}

// CostComparisonCtx is CostComparison under a context: cancellation
// stops scheduling cluster sizes and returns ctx.Err() promptly.
func (en *Engine) CostComparisonCtx(ctx context.Context) ([]cost.Fig7Row, error) {
	sizes := cost.PaperSizes()
	cat := cost.DefaultCatalog()
	return exp.MapCtx(ctx, en.pool, len(sizes), func(ctx context.Context, i int) (cost.Fig7Row, error) {
		return exp.CachedCtx(ctx, en.pool, exp.Key("fig7-row", sizes[i], topo.DGXH200GPUsPerNode, cat),
			func(context.Context) (cost.Fig7Row, error) {
				rows, err := cost.Fig7([]int{sizes[i]}, topo.DGXH200GPUsPerNode, cat)
				if err != nil {
					return cost.Fig7Row{}, err
				}
				return rows[0], nil
			})
	})
}

// Fig7Table renders the Fig. 7 comparison with per-design cost/power and
// Opus's savings versus the rail-optimized fabric.
func Fig7Table() (*report.Table, error) {
	rows, err := CostComparison()
	if err != nil {
		return nil, err
	}
	return Fig7RowsTable(rows), nil
}

// Fig7RowsTable renders already-computed Fig. 7 rows (e.g. from an
// Engine's CostComparison).
func Fig7RowsTable(rows []cost.Fig7Row) *report.Table {
	t := report.NewTable("Fig. 7: GPU-backend network cost and power (DGX H200, 400G)",
		"GPUs", "Fat-tree cost", "Rail cost", "Opus cost", "Cost saving",
		"Fat-tree power", "Rail power", "Opus power", "Power saving")
	for _, r := range rows {
		costFrac, powerFrac := cost.Savings(r.Rail, r.Opus)
		t.AddRow(r.GPUs,
			r.FatTree.TotalCost(), r.Rail.TotalCost(), r.Opus.TotalCost(),
			fmt.Sprintf("%.1f%%", 100*costFrac),
			r.FatTree.TotalPower(), r.Rail.TotalPower(), r.Opus.TotalPower(),
			fmt.Sprintf("%.2f%%", 100*powerFrac))
	}
	return t
}

// Fig8Table renders a latency sweep as the Fig. 8 series.
func Fig8Table(points []SweepPoint) *report.Table {
	t := report.NewTable("Fig. 8: normalized iteration time vs reconfiguration latency",
		"Latency (ms)", "Without provisioning", "With provisioning", "Reconfigs (reactive)")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%g", p.LatencyMS),
			fmt.Sprintf("%.3f", p.Reactive),
			fmt.Sprintf("%.3f", p.Provisioned),
			p.ReactiveReconfigs)
	}
	return t
}

// Fig4Tables renders the window analysis: (a) CDF quantiles per rail,
// (b) the rail-0 per-class breakdown.
func Fig4Tables(rep *WindowReport) (cdf, breakdown *report.Table) {
	cdf = report.NewTable("Fig. 4a: window-size CDF per rail (ms)",
		"Rail", "N", "p10", "p25", "p50", "p75", "p90", "max", ">1ms")
	for rail := 0; ; rail++ {
		c, ok := rep.PerRailCDF[rail]
		if !ok {
			break
		}
		cdf.AddRow(fmt.Sprintf("rail%d", rail+1), c.N(),
			fmt.Sprintf("%.3g", c.Quantile(0.10)),
			fmt.Sprintf("%.3g", c.Quantile(0.25)),
			fmt.Sprintf("%.3g", c.Quantile(0.50)),
			fmt.Sprintf("%.3g", c.Quantile(0.75)),
			fmt.Sprintf("%.3g", c.Quantile(0.90)),
			fmt.Sprintf("%.3g", c.Quantile(1)),
			fmt.Sprintf("%.0f%%", 100*c.FractionAbove(1)))
	}
	breakdown = report.NewTable("Fig. 4b: rail-0 windows by following traffic (one iteration)",
		"Traffic class", "Count / iter", "Avg window (ms)", "Avg traffic after")
	for _, b := range rep.Breakdown.Buckets() {
		vol := units.ByteSize(rep.BreakdownBytes[b.Label])
		breakdown.AddRow(b.Label, b.Count, fmt.Sprintf("%.3g", b.Mean()), vol)
	}
	return cdf, breakdown
}

// TimelineTable renders the Fig. 3-style communication pattern of one
// rail and iteration: each scale-out op with its phase, groups, bounds,
// and volume, in start order.
func TimelineTable(tr *trace.Trace, rail, iteration int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. 3: rail %d communication pattern (iteration %d)", rail, iteration),
		"Start (ms)", "End (ms)", "Phase", "Op", "Group", "Bytes")
	for _, s := range tr.RailSpans(topo.RailID(rail), iteration) {
		t.AddRow(
			fmt.Sprintf("%.2f", s.Start.Milliseconds()),
			fmt.Sprintf("%.2f", s.End.Milliseconds()),
			s.Phase, s.Label, s.Group, s.Bytes)
	}
	return t
}

// WindowCount evaluates the paper's Eq. 1 formula.
func WindowCount(pp, layers, microbatches int, hasCP, hasEP bool) (int, error) {
	return parallelism.WindowCount(parallelism.WindowCountConfig{
		PP: pp, Layers: layers, Microbatches: microbatches, HasCP: hasCP, HasEP: hasEP,
	})
}

// NewCDF exposes the metrics CDF for downstream analysis of custom
// samples.
func NewCDF(samples []float64) *metrics.CDF { return metrics.NewCDF(samples) }
