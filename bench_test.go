// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// prints the regenerated artifact once (the same rows/series the paper
// reports) and then times the computation that produces it.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package photonrail

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"photonrail/internal/collective"
	"photonrail/internal/model"
	"photonrail/internal/ocs"
	"photonrail/internal/parallelism"
	"photonrail/internal/report"
	"photonrail/internal/units"
)

// printOnce guards each artifact's printout so repeated benchmark
// iterations (and -count runs) emit it a single time.
var printOnce sync.Map

func emit(key string, render func() string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n%s\n", render())
	}
}

// BenchmarkTable1ParallelismPlanner regenerates Table 1 (rule-of-thumb
// parallelism strategies) from the planner.
func BenchmarkTable1ParallelismPlanner(b *testing.B) {
	emit("table1", func() string { return Table1().String() })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = parallelism.Plan(405_000_000_000, 8192)
	}
}

// BenchmarkTable2Characteristics regenerates Table 2 (per-parallelism
// communication characteristics).
func BenchmarkTable2Characteristics(b *testing.B) {
	emit("table2", func() string { return Table2().String() })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = parallelism.AllCharacteristics()
	}
}

// BenchmarkTable3OCSScalability regenerates Table 3 (OCS technology
// scalability–latency tradeoff).
func BenchmarkTable3OCSScalability(b *testing.B) {
	emit("table3", func() string { return Table3().String() })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tech := range ocs.Catalog() {
			_ = tech.MaxGPUs(72)
			_ = tech.MaxGPUs(8)
		}
	}
}

// BenchmarkEq1WindowCount evaluates the Eq. 1 window-count formula on
// the paper's configurations, including the Llama3.1-405B example.
func BenchmarkEq1WindowCount(b *testing.B) {
	emit("eq1", func() string {
		t := report.NewTable("Eq. 1: reconfiguration windows per iteration",
			"Workload", "PP", "Layers", "µbatches", "CP", "EP", "Windows", "Windows/s @ iter time")
		n1, _ := WindowCount(2, 32, 12, false, false)
		t.AddRow("Llama3-8B (paper §3.1)", 2, 32, 12, false, false, n1, "-")
		n2, _ := WindowCount(16, 126, 16, true, false)
		t.AddRow("Llama3.1-405B (1k H100)", 16, 126, 16, true, false, n2,
			fmt.Sprintf("%.1f/s @ 20s (paper: 127 windows, ≈6/s)",
				parallelism.WindowsPerSecond(n2, 20)))
		n3, _ := WindowCount(4, 32, 8, true, true)
		t.AddRow("5D (CP+EP) example", 4, 32, 8, true, true, n3, "-")
		return t.String()
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WindowCount(16, 126, 16, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3CommPattern regenerates the Fig. 3 rail-0 communication
// pattern (the per-op timeline with warm-up/steady/cool-down/sync
// phases) for the §3.1 workload.
func BenchmarkFig3CommPattern(b *testing.B) {
	w := PaperWorkload(2)
	rep, err := AnalyzeWindows(w)
	if err != nil {
		b.Fatal(err)
	}
	emit("fig3", func() string {
		tbl := TimelineTable(rep.Trace, 0, 1)
		if len(tbl.Rows) > 48 {
			// The steady phase repeats; show the head of the iteration.
			tbl.Rows = tbl.Rows[:48]
			tbl.Title += " (first 48 ops)"
		}
		return tbl.String()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.Trace.RailSpans(0, 1)
	}
}

// BenchmarkFig4Windows regenerates Fig. 4: the window-size CDF over 10
// iterations per rail and the rail-0 breakdown by following traffic.
func BenchmarkFig4Windows(b *testing.B) {
	w := PaperWorkload(10) // the paper analyzes 10 iterations
	rep, err := AnalyzeWindows(w)
	if err != nil {
		b.Fatal(err)
	}
	emit("fig4", func() string {
		cdf, breakdown := Fig4Tables(rep)
		return cdf.String() + "\n" + breakdown.String() +
			fmt.Sprintf("\nwindows over 1ms: %.0f%% (paper: >75%%)\n", 100*rep.FractionOver1ms)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range rep.PerRailCDF {
			_ = c.Quantile(0.75)
		}
	}
}

// BenchmarkFig7CostPower regenerates Fig. 7: cost and power of
// fat-tree vs rail-optimized vs Opus at 1024–8192 GPUs.
func BenchmarkFig7CostPower(b *testing.B) {
	emit("fig7", func() string {
		tbl, err := Fig7Table()
		if err != nil {
			return err.Error()
		}
		return tbl.String()
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CostComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LatencySweep regenerates Fig. 8: normalized iteration
// time across the paper's eleven reconfiguration latencies, with and
// without provisioning.
func BenchmarkFig8LatencySweep(b *testing.B) {
	w := PaperWorkload(2)
	points, err := SweepReconfigLatency(w, PaperLatenciesMS())
	if err != nil {
		b.Fatal(err)
	}
	emit("fig8", func() string {
		return Fig8Table(points).String() +
			"\npaper reference: 1.01/1.01 @20ms, 1.03/1.02 @50ms, 1.06/1.03 @100ms, 1.13/1.08 @200ms, 1.32/1.23 @500ms, 1.65/1.47 @1000ms\n"
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One representative photonic run (the sweep's unit of work).
		if _, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 100, Provision: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStaticPartition quantifies constraint C3: static
// NIC-port partitioning versus Opus time-multiplexing on a 4×100G NIC.
func BenchmarkAblationStaticPartition(b *testing.B) {
	w := PaperWorkload(2)
	w.NIC = FourPort100G
	static, err := Simulate(w, Fabric{Kind: PhotonicStaticPartition})
	if err != nil {
		b.Fatal(err)
	}
	opusRes, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 1, Provision: true})
	if err != nil {
		b.Fatal(err)
	}
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		b.Fatal(err)
	}
	emit("ablation-static", func() string {
		t := report.NewTable("Ablation: C3 bandwidth fragmentation (4x100G NIC)",
			"Fabric", "Mean iter (s)", "Normalized")
		t.AddRow("electrical (baseline)", fmt.Sprintf("%.4f", base.MeanIterationSeconds), "1.000")
		t.AddRow("photonic static partition", fmt.Sprintf("%.4f", static.MeanIterationSeconds),
			fmt.Sprintf("%.4f", static.MeanIterationSeconds/base.MeanIterationSeconds))
		t.AddRow("photonic + Opus @1ms", fmt.Sprintf("%.4f", opusRes.MeanIterationSeconds),
			fmt.Sprintf("%.4f", opusRes.MeanIterationSeconds/base.MeanIterationSeconds))
		return t.String()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, Fabric{Kind: PhotonicStaticPartition}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOCSTechnologies ties Table 3 to Fig. 8: the §3.1
// workload's normalized iteration time under each commercial OCS
// technology's switching latency (with provisioning).
func BenchmarkAblationOCSTechnologies(b *testing.B) {
	w := PaperWorkload(2)
	base, err := Simulate(w, Fabric{Kind: ElectricalRail})
	if err != nil {
		b.Fatal(err)
	}
	type row struct {
		tech ocs.Technology
		norm float64
	}
	var rows []row
	for _, tech := range ocs.Catalog() {
		if tech.ReconfigTime > 10*units.Second {
			continue // robotic patch panels are not in-job devices
		}
		res, err := Simulate(w, Fabric{
			Kind:              PhotonicRail,
			ReconfigLatencyMS: tech.ReconfigTime.Milliseconds(),
			Provision:         true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{tech, res.MeanIterationSeconds / base.MeanIterationSeconds})
	}
	emit("ablation-ocs", func() string {
		t := report.NewTable("Ablation: OCS technology vs iteration overhead (provisioned)",
			"OCS Tech", "Reconfig (ms)", "Normalized iter time")
		for _, r := range rows {
			t.AddRow(r.tech.String(), fmt.Sprintf("%g", r.tech.ReconfigTime.Milliseconds()),
				fmt.Sprintf("%.4f", r.norm))
		}
		return t.String()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25, Provision: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllToAll compares the §5 strategies for expert-
// parallel AllToAll on photonic rails: direct circuits (infeasible
// degree), multi-hop forwarding over the ring (bandwidth tax k/2), and
// offloading to the scale-up interconnect.
func BenchmarkAblationAllToAll(b *testing.B) {
	m := model.Mixtral8x7B
	const ep = 8
	// Per-rank AllToAll buffer: the layer's token activations routed to
	// experts (mbs=2 sequences).
	bytes := m.ActivationBytes(2)
	scaleOut := 400 * units.Gbps
	scaleUp := 2400 * units.Gbps
	alpha := 5 * units.Microsecond
	direct, err := collective.Time(collective.AllToAll, collective.Direct, ep, bytes, scaleOut, alpha)
	if err != nil {
		b.Fatal(err)
	}
	multihop, err := collective.Time(collective.AllToAll, collective.MultiHopRing, ep, bytes, scaleOut, alpha)
	if err != nil {
		b.Fatal(err)
	}
	offload, err := collective.Time(collective.AllToAll, collective.Direct, ep, bytes, scaleUp, alpha)
	if err != nil {
		b.Fatal(err)
	}
	emit("ablation-a2a", func() string {
		t := report.NewTable("Ablation: EP AllToAll strategies (Mixtral-8x7B, EP=8, per-layer)",
			"Strategy", "Feasible on 2-port OCS?", "Time", "vs direct")
		t.AddRow("direct circuits (electrical-style)",
			collective.Direct.FeasibleOnCircuits(ep, 2), direct, "1.00x")
		t.AddRow("multi-hop over ring circuits",
			collective.MultiHopRing.FeasibleOnCircuits(ep, 2), multihop,
			fmt.Sprintf("%.2fx", float64(multihop)/float64(direct)))
		t.AddRow("offload to scale-up interconnect", true, offload,
			fmt.Sprintf("%.2fx", float64(offload)/float64(direct)))
		return t.String()
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := collective.Time(collective.AllToAll, collective.MultiHopRing, ep, bytes, scaleOut, alpha); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEagerRS compares the trace-matched pipeline-drain
// ReduceScatter against eager per-layer issue: eager RS overlaps PP
// traffic (shrinking the big pre-RS window of Fig. 4) but raises
// conflict-driven reconfigurations.
func BenchmarkAblationEagerRS(b *testing.B) {
	drained := PaperWorkload(2)
	eager := drained
	eager.EagerRS = true
	resD, err := Simulate(drained, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25, Provision: true})
	if err != nil {
		b.Fatal(err)
	}
	resE, err := Simulate(eager, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25, Provision: true})
	if err != nil {
		b.Fatal(err)
	}
	emit("ablation-eager", func() string {
		t := report.NewTable("Ablation: ReduceScatter issue policy (photonic @25ms, provisioned)",
			"Policy", "Mean iter (s)", "Reconfigurations", "Blocked (s)")
		t.AddRow("after pipeline drain (trace-matched)",
			fmt.Sprintf("%.4f", resD.MeanIterationSeconds), resD.Reconfigurations,
			fmt.Sprintf("%.3f", resD.BlockedSeconds))
		t.AddRow("eager per-layer",
			fmt.Sprintf("%.4f", resE.MeanIterationSeconds), resE.Reconfigurations,
			fmt.Sprintf("%.3f", resE.BlockedSeconds))
		return t.String()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(eager, Fabric{Kind: PhotonicRail, ReconfigLatencyMS: 25}); err != nil {
			b.Fatal(err)
		}
	}
}
