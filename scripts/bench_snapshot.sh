#!/usr/bin/env bash
# bench_snapshot.sh — record one point of the performance trajectory.
#
# Runs the module's short benchmarks (the same suite CI's perf gate,
# scripts/bench_diff.sh, runs) and writes a machine-readable snapshot to
# BENCH_<N>.json at the repo root, so successive PRs leave a comparable
# series (BENCH_5.json, BENCH_6.json, ...) instead of only transient CI
# artifacts. ns_per_op is the MIN wall time over three one-shot runs
# (-benchtime 1x -count 3): the min discards GC/scheduling flukes, so
# the series tracks trends and regressions at coarse grain without
# recording a noisy outlier as the trajectory. bytes_per_op /
# allocs_per_op (-benchmem) are close to deterministic and comparable
# at much finer grain; they are taken from the same run as the min.
#
# Usage: scripts/bench_snapshot.sh [output.json]
# Default output: BENCH_<N+1>.json where N is the highest snapshot
# number present at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
    out="$1"
else
    # Derive the next snapshot number from the highest existing one.
    last="$(ls BENCH_*.json 2>/dev/null | sed -E 's/^BENCH_([0-9]+)\.json$/\1/' | sort -n | tail -1)"
    out="BENCH_$((${last:-0} + 1)).json"
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -short -run '^$' -bench . -benchtime 1x -count 3 -benchmem ./... | tee "$raw"

goversion="$(go env GOVERSION)"
awk -v out="$out" -v goversion="$goversion" '
    /^Benchmark/ && NF >= 4 && $4 == "ns/op" {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
        ns = $3 + 0
        if (!(name in min) || ns < min[name]) {
            min[name] = ns
            iters[name] = $2
            mem[name] = ""
            if (NF >= 8 && $6 == "B/op" && $8 == "allocs/op") {
                mem[name] = sprintf(", \"bytes_per_op\": %s, \"allocs_per_op\": %s", $5, $7)
            }
        }
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        for (i = 1; i <= n; i++) {
            name = order[i]
            line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, iters[name], min[name], mem[name])
            benches = benches sep line
            sep = ",\n"
        }
        printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"1x -short (min of 3)\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", goversion, benches > out
    }
' "$raw"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
