#!/usr/bin/env bash
# bench_snapshot.sh — record one point of the performance trajectory.
#
# Runs the module's short benchmarks once (the same invocation CI's
# short-benchmark step uses) and writes a machine-readable snapshot to
# BENCH_<N>.json at the repo root, so successive PRs leave a comparable
# series (BENCH_5.json, BENCH_6.json, ...) instead of only transient CI
# artifacts. ns_per_op is wall time of ONE run (-benchtime 1x): it
# tracks trends and regressions at coarse grain, not microbenchmark
# precision.
#
# Usage: scripts/bench_snapshot.sh [output.json]   (default BENCH_5.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -short -run '^$' -bench . -benchtime 1x ./... | tee "$raw"

goversion="$(go env GOVERSION)"
awk -v out="$out" -v goversion="$goversion" '
    /^Benchmark/ && NF >= 4 && $4 == "ns/op" {
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
        benches = benches sep line
        sep = ",\n"
    }
    END {
        printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"1x -short\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", goversion, benches > out
    }
' "$raw"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
