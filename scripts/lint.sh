#!/usr/bin/env bash
# lint.sh — the repo's one static-analysis entry point, run by the CI
# `lint` job and by hand before sending a change:
#
#   scripts/lint.sh
#
# Stages, in order:
#
#   1. gofmt (strict: any diff fails, testdata corpora included)
#   2. go vet (the stock analyzers)
#   3. raillint — photonrail's own go/analysis-style suite
#      (internal/lint/...): lockedblock, ctxbg, maporder,
#      goroutinejoin, protoconsistency. Run both standalone and through
#      `go vet -vettool` so the unit-checker protocol stays honest.
#   4. staticcheck (pinned version, when installable/installed)
#   5. govulncheck (pinned version, when installable/installed)
#
# Stages 4–5 need tools outside the standard distribution. When the
# tool is already on PATH it runs unconditionally; otherwise lint.sh
# tries one `go install` of the pinned version and — in sandboxes with
# no module proxy — degrades to a loud NOTICE instead of a failure, so
# the hermetic stages still gate offline development while CI gets the
# full set.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2024.1.1
GOVULNCHECK_VERSION=v1.1.3

fail=0

echo "==> gofmt (strict)"
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_out" >&2
    fail=1
fi

echo "==> go vet"
go vet ./... || fail=1

echo "==> raillint (standalone)"
go build -o .bin/raillint ./cmd/raillint
./.bin/raillint ./... || fail=1

echo "==> raillint (go vet -vettool)"
go vet -vettool="$(pwd)/.bin/raillint" ./... || fail=1

# ensure_tool NAME MODULE@VERSION — resolves NAME onto PATH, installing
# the pinned version if absent; returns 1 (with a NOTICE) when the tool
# is unavailable and cannot be fetched (offline sandbox).
ensure_tool() {
    local name="$1" mod="$2"
    if command -v "$name" >/dev/null 2>&1; then
        return 0
    fi
    # CI restores previously installed pins into .bin (keyed on this
    # script, so a version bump misses the cache and reinstalls).
    if [ -x ".bin/$name" ]; then
        PATH="$(pwd)/.bin:$PATH"
        return 0
    fi
    if GOBIN="$(pwd)/.bin" go install "$mod" >/dev/null 2>&1; then
        PATH="$(pwd)/.bin:$PATH"
        return 0
    fi
    echo "NOTICE: $name unavailable and $mod not installable (offline?); skipping" >&2
    return 1
}

echo "==> staticcheck"
if ensure_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}"; then
    staticcheck ./... || fail=1
fi

echo "==> govulncheck"
if ensure_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}"; then
    govulncheck ./... || fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: ok"
