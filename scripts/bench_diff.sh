#!/usr/bin/env bash
# bench_diff.sh — CI performance gate against the committed trajectory.
#
# Runs the short benchmarks fresh and compares each against the latest
# committed BENCH_<N>.json snapshot by name, failing when ns/op regresses
# more than the threshold. To keep one-shot (-benchtime 1x) noise from
# tripping the gate:
#   - the fresh value is the MIN over -count runs (min is the robust
#     statistic for "has the code gotten slower");
#   - benchmarks faster than MIN_NS are skipped (sub-millisecond one-shot
#     timings are dominated by scheduling noise, and a regression there
#     is invisible in wall time);
#   - the threshold is generous (25%): this is a trajectory guard against
#     real regressions, not a microbenchmark tribunal.
#
# Usage: scripts/bench_diff.sh [baseline.json]
# Default baseline: the highest-numbered BENCH_<N>.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${BENCH_DIFF_THRESHOLD_PCT:-25}"
MIN_NS="${BENCH_DIFF_MIN_NS:-1000000}" # skip benchmarks under 1ms
COUNT="${BENCH_DIFF_COUNT:-3}"

if [ $# -ge 1 ]; then
    baseline="$1"
else
    baseline="$(ls BENCH_*.json 2>/dev/null | sed -E 's/^BENCH_([0-9]+)\.json$/\1/' | sort -n | tail -1)"
    [ -n "$baseline" ] || { echo "bench_diff: no BENCH_<N>.json baseline found" >&2; exit 1; }
    baseline="BENCH_${baseline}.json"
fi
echo "bench_diff: baseline $baseline, threshold ${THRESHOLD_PCT}%, min ${MIN_NS} ns, count ${COUNT}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -short -run '^$' -bench . -benchtime 1x -count "$COUNT" ./... | tee "$raw"

awk -v baseline="$baseline" -v thresh="$THRESHOLD_PCT" -v minns="$MIN_NS" '
    # Pass 1: committed baseline ns/op by benchmark name.
    FILENAME == baseline {
        if (match($0, /"name": "[^"]+"/)) {
            name = substr($0, RSTART + 9, RLENGTH - 10)
            if (match($0, /"ns_per_op": [0-9]+/)) {
                base[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
            }
        }
        next
    }
    # Pass 2: fresh runs; keep the min ns/op per name.
    /^Benchmark/ && NF >= 4 && $4 == "ns/op" {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = $3 + 0
        if (!(name in fresh) || ns < fresh[name]) fresh[name] = ns
    }
    END {
        fail = 0
        for (name in fresh) {
            if (!(name in base)) {
                printf "new:  %-50s %12d ns/op (no baseline)\n", name, fresh[name]
                continue
            }
            b = base[name]; f = fresh[name]
            if (b < minns && f < minns) {
                printf "skip: %-50s %12d -> %12d ns/op (tiny)\n", name, b, f
                continue
            }
            pct = (f - b) * 100.0 / b
            if (pct > thresh) {
                printf "FAIL: %-50s %12d -> %12d ns/op (%+.1f%% > %d%%)\n", name, b, f, pct, thresh
                fail = 1
            } else {
                printf "ok:   %-50s %12d -> %12d ns/op (%+.1f%%)\n", name, b, f, pct
            }
        }
        for (name in base) {
            if (!(name in fresh)) {
                printf "FAIL: %-50s gone (present in %s, not in fresh run)\n", name, baseline
                fail = 1
            }
        }
        exit fail
    }
' "$baseline" "$raw"
