#!/usr/bin/env bash
# check_coverage.sh — per-package test-coverage floors.
#
# Runs `go test -coverprofile` across the module and fails if any listed
# package drops below its floor. Floors start a few points under the
# levels at the time a package lands, so new packages cannot land
# untested and existing ones cannot silently decay; ratchet a floor up
# when a package's coverage durably improves.
#
# Usage: scripts/check_coverage.sh [coverage-output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-coverage.txt}"

# pkg (module-relative)  floor (percent)
floors="
photonrail 85
photonrail/cmd/opusim 25
photonrail/cmd/railbench 78
photonrail/cmd/railclient 70
photonrail/cmd/railcost 70
photonrail/cmd/raild 55
photonrail/cmd/raillint 28
photonrail/cmd/railfleet 60
photonrail/cmd/railgate 75
photonrail/cmd/railgrid 60
photonrail/cmd/railsweep 60
photonrail/cmd/railwindows 70
photonrail/internal/collective 90
photonrail/internal/cost 90
photonrail/internal/exp 90
photonrail/internal/faultnet 80
photonrail/internal/gridcli 85
photonrail/internal/lint/allow 88
photonrail/internal/lint/analysis 90
photonrail/internal/lint/analysistest 78
photonrail/internal/lint/ctxbg 90
photonrail/internal/lint/driver 78
photonrail/internal/lint/goroutinejoin 88
photonrail/internal/lint/loader 80
photonrail/internal/lint/lockedblock 65
photonrail/internal/lint/maporder 82
photonrail/internal/lint/protoconsistency 84
photonrail/internal/metrics 90
photonrail/internal/model 80
photonrail/internal/netsim 87
photonrail/internal/ocs 90
photonrail/internal/opus 84
photonrail/internal/opusnet 82
photonrail/internal/parallelism 90
photonrail/internal/railctl 88
photonrail/internal/railfleet 80
photonrail/internal/railgate 88
photonrail/internal/railserve 80
photonrail/internal/report 95
photonrail/internal/resultstore 82
photonrail/internal/scenario 93
photonrail/internal/sim 88
photonrail/internal/telemetry 85
photonrail/internal/topo 90
photonrail/internal/trace 86
photonrail/internal/units 93
photonrail/internal/workload 90
"

go test -coverprofile=cover.out ./... | tee "$out"

fail=0
while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    line="$(grep -E "^ok[[:space:]]+${pkg}[[:space:]]" "$out" || true)"
    if [ -z "$line" ]; then
        echo "FAIL: no coverage result for ${pkg} (package removed? update scripts/check_coverage.sh)" >&2
        fail=1
        continue
    fi
    pct="$(echo "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+')"
    if [ -z "$pct" ]; then
        echo "FAIL: no coverage percentage for ${pkg} in: ${line}" >&2
        fail=1
        continue
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "FAIL: ${pkg} coverage ${pct}% below floor ${floor}%" >&2
        fail=1
    else
        echo "ok:   ${pkg} ${pct}% >= ${floor}%"
    fi
done <<EOF
$floors
EOF

# Every package must carry a floor, so a new untested package cannot
# land silently. Exceptions: examples (runnable docs), cmd/opusctl (no
# tests since the seed; add a floor when it gains some), and
# internal/goldentest (test infrastructure, exercised by the cmd golden
# tests which Go does not count as its own coverage).
exempt="photonrail/cmd/opusctl photonrail/internal/goldentest"
for pkg in $(go list ./... | grep -v '/examples/'); do
    case " $exempt " in *" $pkg "*) continue ;; esac
    if ! printf '%s\n' "$floors" | grep -qE "^${pkg} "; then
        echo "FAIL: package ${pkg} has no coverage floor (add one to scripts/check_coverage.sh)" >&2
        fail=1
    fi
done

exit "$fail"
