package opus

import (
	"testing"

	"photonrail/internal/collective"
	"photonrail/internal/parallelism"
	"photonrail/internal/sim"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

const ms = units.Millisecond

// rig is a 4-node, 4-GPU/node photonic cluster with 2-port NICs and the
// §3.1 rail-0 groups: FSDP rings {n0,n1} and {n2,n3}, PP rings {n0,n2}
// and {n1,n3}.
type rig struct {
	engine *sim.Engine
	plan   PortPlan
	ctrl   *Controller
	fsdp0  *collective.Group // GPUs 0, 4 (nodes 0, 1)
	fsdp1  *collective.Group // GPUs 8, 12 (nodes 2, 3)
	pp0    *collective.Group // GPUs 0, 8 (nodes 0, 2)
	pp1    *collective.Group // GPUs 4, 12 (nodes 1, 3)
}

func newRig(t *testing.T, latency units.Duration) *rig {
	t.Helper()
	cl := topo.MustNew(topo.Config{NumNodes: 4, GPUsPerNode: 4, Fabric: topo.FabricPhotonicRail})
	engine := sim.NewEngine()
	plan := PortPlan{Cluster: cl, PortsPerGPU: 2}
	ctrl, err := NewController(SimClock(engine), plan, latency)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		engine: engine,
		plan:   plan,
		ctrl:   ctrl,
		fsdp0:  &collective.Group{Name: "fsdp.s0.r0", Axis: parallelism.FSDP, Ranks: []topo.GPUID{0, 4}},
		fsdp1:  &collective.Group{Name: "fsdp.s1.r0", Axis: parallelism.FSDP, Ranks: []topo.GPUID{8, 12}},
		pp0:    &collective.Group{Name: "pp.d0.r0", Axis: parallelism.PP, Ranks: []topo.GPUID{0, 8}},
		pp1:    &collective.Group{Name: "pp.d1.r0", Axis: parallelism.PP, Ranks: []topo.GPUID{4, 12}},
	}
}

func TestPortPlanCircuits(t *testing.T) {
	r := newRig(t, 0)
	m, err := r.plan.CircuitsFor(r.fsdp0)
	if err != nil {
		t.Fatal(err)
	}
	// Ring over nodes 0,1: (n0.tx=0 <-> n1.rx=3), (n1.tx=2 <-> n0.rx=1).
	if m.Circuits() != 2 {
		t.Fatalf("circuits = %d, want 2", m.Circuits())
	}
	if p, ok := m.Peer(0); !ok || p != 3 {
		t.Errorf("peer(0) = %d, want 3", p)
	}
	if p, ok := m.Peer(2); !ok || p != 1 {
		t.Errorf("peer(2) = %d, want 1", p)
	}
	// PP pair gets 2 circuits between its endpoints.
	mp, err := r.plan.CircuitsFor(r.pp0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.plan.CircuitsBetween(mp, 0, 8); got != 2 {
		t.Errorf("circuits between pp pair = %d, want 2", got)
	}
	if got := r.plan.CircuitsBetween(mp, 0, 4); got != 0 {
		t.Errorf("circuits between unrelated pair = %d, want 0", got)
	}
}

func TestPortPlanRejectsCrossRailGroup(t *testing.T) {
	r := newRig(t, 0)
	bad := &collective.Group{Name: "bad", Ranks: []topo.GPUID{0, 5}} // rails 0 and 1
	if _, err := r.plan.CircuitsFor(bad); err == nil {
		t.Error("cross-rail group accepted")
	}
	single := &collective.Group{Name: "solo", Ranks: []topo.GPUID{0}}
	if _, err := r.plan.CircuitsFor(single); err == nil {
		t.Error("1-member group accepted")
	}
}

func TestPortPlanStaticPartition(t *testing.T) {
	cl := topo.MustNew(topo.Config{NumNodes: 4, GPUsPerNode: 4, NIC: topo.FourPort100G, Fabric: topo.FabricPhotonicRail})
	g := &collective.Group{Name: "g", Ranks: []topo.GPUID{0, 4}}
	p0 := PortPlan{Cluster: cl, PortsPerGPU: 4, PortBase: 0}
	p1 := PortPlan{Cluster: cl, PortsPerGPU: 4, PortBase: 2}
	m0, err := p0.CircuitsFor(g)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := p1.CircuitsFor(g)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint port ranges: the two partitions never conflict.
	if conflicts(m0, m1) {
		t.Errorf("static partitions share ports: %v vs %v", m0, m1)
	}
	bad := PortPlan{Cluster: cl, PortsPerGPU: 4, PortBase: 3}
	if bad.Validate() == nil {
		t.Error("port base 3 of 4 accepted (needs 2 ports)")
	}
}

func TestAcquireInstallsAndFastGrants(t *testing.T) {
	r := newRig(t, 15*ms)
	var grantedAt []units.Duration
	acquire := func(g *collective.Group) {
		if err := r.ctrl.Acquire(0, g, func() {
			grantedAt = append(grantedAt, r.engine.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.engine.At(0, func() { acquire(r.fsdp0) })
	r.engine.Run()
	if len(grantedAt) != 1 || grantedAt[0] != 15*ms {
		t.Fatalf("first acquire granted at %v, want 15ms", grantedAt)
	}
	// Second acquire of the same group: fast path, no new reconfig.
	r.engine.At(20*ms, func() { acquire(r.fsdp0) })
	r.engine.Run()
	if len(grantedAt) != 2 || grantedAt[1] != 20*ms {
		t.Fatalf("second acquire granted at %v, want 20ms", grantedAt)
	}
	st := r.ctrl.Stats()
	if st.Reconfigurations != 1 || st.FastGrants != 1 || st.QueuedGrants != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !r.ctrl.Installed(0, "fsdp.s0.r0") {
		t.Error("group not installed")
	}
}

func TestConflictingGroupWaitsForTraffic(t *testing.T) {
	r := newRig(t, 10*ms)
	var ppGrantedAt units.Duration = -1
	r.engine.At(0, func() {
		// fsdp0 installs (10ms) and holds traffic until 50ms.
		_ = r.ctrl.Acquire(0, r.fsdp0, func() {
			r.engine.At(50*ms, func() { _ = r.ctrl.Release(0, r.fsdp0) })
		})
	})
	// pp0 conflicts with fsdp0 at node 0's ports; requested at 20ms.
	r.engine.At(20*ms, func() {
		_ = r.ctrl.Acquire(0, r.pp0, func() { ppGrantedAt = r.engine.Now() })
	})
	r.engine.Run()
	// Tear-down can only start at 50ms (traffic done) + 10ms latency.
	if ppGrantedAt != 60*ms {
		t.Errorf("pp granted at %v, want 60ms", ppGrantedAt)
	}
	if r.ctrl.Installed(0, "fsdp.s0.r0") {
		t.Error("conflicting fsdp circuits still installed")
	}
	st := r.ctrl.Stats()
	// 10ms for fsdp0's initial install + 40ms for pp0's conflict wait.
	if st.BlockedTime != 50*ms {
		t.Errorf("blocked time = %v, want 50ms", st.BlockedTime)
	}
}

func TestNonConflictingGroupsCoexist(t *testing.T) {
	r := newRig(t, 10*ms)
	var grants []string
	r.engine.At(0, func() {
		_ = r.ctrl.Acquire(0, r.fsdp0, func() { grants = append(grants, "fsdp0") })
		_ = r.ctrl.Acquire(0, r.fsdp1, func() { grants = append(grants, "fsdp1") })
	})
	r.engine.Run()
	// fsdp0 (nodes 0,1) and fsdp1 (nodes 2,3) use disjoint ports: both
	// install; the second waits only for the first's reconfiguration
	// slot (one reconfig at a time per rail).
	if len(grants) != 2 {
		t.Fatalf("grants = %v", grants)
	}
	if !r.ctrl.Installed(0, "fsdp.s0.r0") || !r.ctrl.Installed(0, "fsdp.s1.r0") {
		t.Error("both non-conflicting groups should be installed")
	}
}

func TestZeroLatencyActsAsFullConnectivity(t *testing.T) {
	r := newRig(t, 0)
	var order []string
	seq := []*collective.Group{r.fsdp0, r.pp0, r.fsdp1, r.pp1, r.fsdp0}
	r.engine.At(0, func() {
		for _, g := range seq {
			g := g
			_ = r.ctrl.Acquire(0, g, func() {
				order = append(order, g.Name)
				_ = r.ctrl.Release(0, g)
			})
		}
	})
	end := r.engine.Run()
	if end != 0 {
		t.Errorf("zero-latency run advanced the clock to %v", end)
	}
	if len(order) != len(seq) {
		t.Errorf("grants = %v", order)
	}
}

func TestProvisionHidesLatency(t *testing.T) {
	// Without provisioning: pp0's request at its arrival (100ms) grants
	// at 100ms+latency. With a provisioned request at 40ms (when fsdp0's
	// traffic ended), the reconfiguration overlaps the window and the
	// arrival finds circuits ready.
	for _, provision := range []bool{false, true} {
		r := newRig(t, 25*ms)
		var ppGranted units.Duration = -1
		r.engine.At(0, func() {
			_ = r.ctrl.Acquire(0, r.fsdp0, func() {
				r.engine.At(40*ms, func() {
					_ = r.ctrl.Release(0, r.fsdp0)
					if provision {
						_ = r.ctrl.Provision(0, r.pp0)
					}
				})
			})
		})
		r.engine.At(100*ms, func() {
			_ = r.ctrl.Acquire(0, r.pp0, func() { ppGranted = r.engine.Now() })
		})
		r.engine.Run()
		want := 125 * ms // 100 arrival + 25 reconfig
		if provision {
			want = 100 * ms // reconfig (40->65ms) hidden in the window
		}
		if ppGranted != want {
			t.Errorf("provision=%v: granted at %v, want %v", provision, ppGranted, want)
		}
		if provision && r.ctrl.Stats().ProvisionedRequests != 1 {
			t.Errorf("provisioned requests = %d", r.ctrl.Stats().ProvisionedRequests)
		}
	}
}

func TestProvisionDedupes(t *testing.T) {
	r := newRig(t, 10*ms)
	r.engine.At(0, func() {
		_ = r.ctrl.Provision(0, r.pp0)
		_ = r.ctrl.Provision(0, r.pp0) // duplicate: no second request
	})
	r.engine.Run()
	if got := r.ctrl.Stats().ProvisionedRequests; got != 1 {
		t.Errorf("provisioned requests = %d, want 1", got)
	}
	// Provision of an installed group is a no-op.
	r.engine.Immediately(func() { _ = r.ctrl.Provision(0, r.pp0) })
	r.engine.Run()
	if got := r.ctrl.Stats().ProvisionedRequests; got != 1 {
		t.Errorf("after no-op provision: %d, want 1", got)
	}
}

func TestFCFSOrdering(t *testing.T) {
	// Requests are served in arrival order even when a later request's
	// circuits would be free sooner.
	r := newRig(t, 10*ms)
	var order []string
	hold := func(g *collective.Group, until units.Duration) func() {
		return func() {
			order = append(order, g.Name)
			r.engine.At(until, func() { _ = r.ctrl.Release(0, g) })
		}
	}
	r.engine.At(0, func() { _ = r.ctrl.Acquire(0, r.fsdp0, hold(r.fsdp0, 100*ms)) })
	// pp0 conflicts with fsdp0 (busy until 100ms): queued first.
	r.engine.At(20*ms, func() { _ = r.ctrl.Acquire(0, r.pp0, hold(r.pp0, 200*ms)) })
	// fsdp1 is conflict-free but arrives later: FC-FS means it waits
	// behind pp0.
	r.engine.At(30*ms, func() { _ = r.ctrl.Acquire(0, r.fsdp1, hold(r.fsdp1, 300*ms)) })
	r.engine.Run()
	want := []string{"fsdp.s0.r0", "pp.d0.r0", "fsdp.s1.r0"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

func TestAcquireAttachesToPendingRequest(t *testing.T) {
	r := newRig(t, 10*ms)
	grants := 0
	r.engine.At(0, func() {
		_ = r.ctrl.Provision(0, r.pp0)
		// Two collectives of the same group arrive while the provisioned
		// request is in flight: both attach to it.
		_ = r.ctrl.Acquire(0, r.pp0, func() { grants++ })
		_ = r.ctrl.Acquire(0, r.pp0, func() { grants++ })
	})
	r.engine.Run()
	if grants != 2 {
		t.Errorf("grants = %d, want 2", grants)
	}
	if got := r.ctrl.Stats().Reconfigurations; got != 1 {
		t.Errorf("reconfigurations = %d, want 1 (shared)", got)
	}
}

func TestFastPathBlockedByPendingConflict(t *testing.T) {
	// fsdp0 installed and idle; pp0 queued (conflicts). A new fsdp0
	// acquisition must NOT fast-grant past the queued pp0 (that would
	// starve it); it queues behind and re-installs after.
	r := newRig(t, 10*ms)
	var order []string
	r.engine.At(0, func() {
		_ = r.ctrl.Acquire(0, r.fsdp0, func() {
			order = append(order, "fsdp0-a")
			_ = r.ctrl.Release(0, r.fsdp0)
		})
	})
	r.engine.At(20*ms, func() {
		_ = r.ctrl.Acquire(0, r.pp0, func() {
			order = append(order, "pp0")
			r.engine.At(50*ms, func() { _ = r.ctrl.Release(0, r.pp0) })
		})
		_ = r.ctrl.Acquire(0, r.fsdp0, func() {
			order = append(order, "fsdp0-b")
			_ = r.ctrl.Release(0, r.fsdp0)
		})
	})
	r.engine.Run()
	want := []string{"fsdp0-a", "pp0", "fsdp0-b"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestReleaseErrors(t *testing.T) {
	r := newRig(t, 0)
	if err := r.ctrl.Release(0, r.fsdp0); err == nil {
		t.Error("release of inactive group accepted")
	}
	if err := r.ctrl.Release(99, r.fsdp0); err == nil {
		t.Error("release on unknown rail accepted")
	}
	if err := r.ctrl.Acquire(99, r.fsdp0, func() {}); err == nil {
		t.Error("acquire on unknown rail accepted")
	}
	if err := r.ctrl.Provision(99, r.fsdp0); err == nil {
		t.Error("provision on unknown rail accepted")
	}
}

func TestControllerValidation(t *testing.T) {
	cl := topo.MustNew(topo.Config{NumNodes: 2, GPUsPerNode: 2})
	e := sim.NewEngine()
	if _, err := NewController(SimClock(e), PortPlan{Cluster: cl, PortsPerGPU: 2}, -ms); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewController(SimClock(e), PortPlan{Cluster: cl, PortsPerGPU: 0}, 0); err == nil {
		t.Error("0-port plan accepted")
	}
	if _, err := NewController(SimClock(e), PortPlan{}, 0); err == nil {
		t.Error("nil-cluster plan accepted")
	}
}
