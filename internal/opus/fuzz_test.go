package opus

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"photonrail/internal/collective"
	"photonrail/internal/ocs"
	"photonrail/internal/parallelism"
	"photonrail/internal/sim"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

// TestControllerRandomWorkloadProperty fuzzes the controller with random
// acquire/hold/release schedules over random rail-aligned ring groups
// and checks the core invariants:
//
//   - liveness: every acquisition is eventually granted and the engine
//     drains (no deadlock, no lost requests);
//   - safety: two groups whose circuits share a port are never active
//     at the same time (Objective 3 — no circuit conflicts).
func TestControllerRandomWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := rng.Intn(6) + 2
		cl := topo.MustNew(topo.Config{NumNodes: nodes, GPUsPerNode: 2, Fabric: topo.FabricPhotonicRail})
		engine := sim.NewEngine()
		plan := PortPlan{Cluster: cl, PortsPerGPU: 2}
		latency := units.Duration(rng.Int63n(int64(20 * units.Millisecond)))
		ctrl, err := NewController(SimClock(engine), plan, latency)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		// Random rail-0 groups: rings over random node subsets.
		numGroups := rng.Intn(4) + 2
		groups := make([]*collective.Group, 0, numGroups)
		circuits := make(map[string]ocs.Matching, numGroups)
		for i := 0; i < numGroups; i++ {
			size := rng.Intn(nodes-1) + 2
			perm := rng.Perm(nodes)[:size]
			ranks := make([]topo.GPUID, size)
			for j, n := range perm {
				ranks[j] = cl.GPUAt(topo.NodeID(n), 0)
			}
			g := &collective.Group{
				Name:  fmt.Sprintf("g%d", i),
				Axis:  parallelism.FSDP,
				Ranks: ranks,
			}
			m, err := plan.CircuitsFor(g)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			groups = append(groups, g)
			circuits[g.Name] = m
		}
		conflictPair := func(a, b string) bool {
			for p := range circuits[a] {
				if _, ok := circuits[b].Peer(p); ok {
					return true
				}
			}
			return false
		}

		requested, granted := 0, 0
		active := make(map[string]int)
		safetyOK := true
		ops := rng.Intn(60) + 10
		for i := 0; i < ops; i++ {
			g := groups[rng.Intn(len(groups))]
			at := units.Duration(rng.Int63n(int64(200 * units.Millisecond)))
			hold := units.Duration(rng.Int63n(int64(10 * units.Millisecond)))
			requested++
			engine.At(at, func() {
				err := ctrl.Acquire(0, g, func() {
					granted++
					// Safety: no conflicting group is active right now.
					for name, n := range active {
						if n > 0 && name != g.Name && conflictPair(name, g.Name) {
							safetyOK = false
						}
					}
					active[g.Name]++
					engine.After(hold, func() {
						active[g.Name]--
						if err := ctrl.Release(0, g); err != nil {
							safetyOK = false
						}
					})
				})
				if err != nil {
					safetyOK = false
				}
			})
			// Occasionally mix in speculative requests.
			if rng.Intn(4) == 0 {
				sg := groups[rng.Intn(len(groups))]
				engine.At(at, func() {
					if err := ctrl.Provision(0, sg); err != nil {
						safetyOK = false
					}
				})
			}
		}
		engine.Run()
		if granted != requested {
			t.Logf("seed %d: granted %d of %d (deadlock or loss)", seed, granted, requested)
			return false
		}
		return safetyOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
