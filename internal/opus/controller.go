package opus

import (
	"fmt"

	"photonrail/internal/collective"
	"photonrail/internal/ocs"
	"photonrail/internal/sim"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

// Clock abstracts time for the controller: the discrete-event engine in
// simulation, wall-clock timers in the real (TCP) control plane. After
// must run fn later than (or, for d == 0, after the caller returns at)
// the current instant; Immediately is After(0).
type Clock interface {
	Now() units.Duration
	After(d units.Duration, fn func())
	Immediately(fn func())
}

// engineClock adapts *sim.Engine to Clock via the pooled fire-and-forget
// scheduling calls: the controller never cancels a scheduled callback,
// so it needs no event handles and its events recycle within the run.
type engineClock struct{ e *sim.Engine }

func (c engineClock) Now() units.Duration               { return c.e.Now() }
func (c engineClock) After(d units.Duration, fn func()) { c.e.PostAfter(d, fn) }
func (c engineClock) Immediately(fn func())             { c.e.PostNow(fn) }

// SimClock wraps a discrete-event engine as a controller Clock.
func SimClock(e *sim.Engine) Clock { return engineClock{e} }

// Stats aggregates controller telemetry across rails.
type Stats struct {
	// Reconfigurations counts completed circuit reconfigurations.
	Reconfigurations int
	// FastGrants counts acquisitions served from already-installed
	// circuits (Objective 2: reconfigure only when the demand changes).
	FastGrants int
	// QueuedGrants counts acquisitions that had to wait.
	QueuedGrants int
	// BlockedTime sums, over queued acquisitions, the delay between the
	// collective's arrival and its grant — the reconfiguration overhead
	// visible to the application.
	BlockedTime units.Duration
	// ProvisionedRequests counts speculative (shim-issued) requests.
	ProvisionedRequests int
}

// request is one queued circuit acquisition on a rail.
type request struct {
	group    *collective.Group
	circuits ocs.Matching
	// waiters are grant callbacks attached by Acquire; a purely
	// speculative (provisioned) request may have none yet.
	waiters []func()
	// arrivals records when each waiter's collective arrived, for
	// BlockedTime accounting.
	arrivals []units.Duration
	// inFlight marks the request as part of the reconfiguration batch
	// currently actuating; such requests can no longer be cancelled.
	inFlight bool
}

// railState is the controller's per-rail view.
type railState struct {
	// sw is the device; its matching is the union of installed groups'
	// circuits.
	sw *ocs.Switch
	// installed maps group name -> its circuits, currently set up.
	installed map[string]ocs.Matching
	// active counts in-flight transfers per installed group.
	active map[string]int
	// queue is the FC-FS request queue.
	queue []*request
	// reconfiguring marks an in-progress switch reconfiguration.
	reconfiguring bool
	// processScheduled marks a pending deferred queue scan; deferring to
	// the end of the current instant lets same-instant requests coalesce
	// into one physical reconfiguration.
	processScheduled bool
}

// Controller is the Opus controller: it owns every rail's OCS and serves
// circuit acquisitions from the shims.
type Controller struct {
	clock   Clock
	plan    PortPlan
	table   *CircuitTable
	latency units.Duration
	rails   map[topo.RailID]*railState
	stats   Stats
}

// NewController builds a controller for every rail of the plan's
// cluster, with the given reconfiguration latency. The OCS radix is
// sized to the plan (tech describes latency/radix bookkeeping only; the
// latency argument wins so sweeps can explore Fig. 8's x-axis).
func NewController(clock Clock, plan PortPlan, latency units.Duration) (*Controller, error) {
	return NewControllerWithTable(clock, NewCircuitTable(plan), latency)
}

// NewControllerWithTable is NewController over a shared circuit table:
// callers that run many simulations of one program (a latency sweep,
// repeated provisioning passes) pass the same table to every controller
// so ring matchings and conflict checks are derived once, not per run.
func NewControllerWithTable(clock Clock, table *CircuitTable, latency units.Duration) (*Controller, error) {
	plan := table.Plan()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if latency < 0 {
		return nil, fmt.Errorf("opus: negative reconfiguration latency")
	}
	c := &Controller{
		clock:   clock,
		plan:    plan,
		table:   table,
		latency: latency,
		rails:   make(map[topo.RailID]*railState),
	}
	tech := ocs.Technology{Name: "sweep", Vendor: "sim", ReconfigTime: latency, Radix: plan.Radix()}
	for r := 0; r < plan.Cluster.NumRails(); r++ {
		c.rails[topo.RailID(r)] = &railState{
			sw:        ocs.NewSwitch(fmt.Sprintf("rail%d-ocs", r), tech),
			installed: make(map[string]ocs.Matching),
			active:    make(map[string]int),
		}
	}
	return c, nil
}

// Stats returns a copy of the accumulated telemetry.
func (c *Controller) Stats() Stats { return c.stats }

// Latency returns the configured reconfiguration latency.
func (c *Controller) Latency() units.Duration { return c.latency }

// Installed reports whether the group's circuits are currently set up.
func (c *Controller) Installed(rail topo.RailID, group string) bool {
	rs := c.rails[rail]
	if rs == nil {
		return false
	}
	_, ok := rs.installed[group]
	return ok
}

// Acquire requests circuits for group on rail. granted runs (possibly
// immediately) once the circuits are installed; the caller must pair it
// with Release when the transfer completes.
func (c *Controller) Acquire(rail topo.RailID, group *collective.Group, granted func()) error {
	return c.AcquireArg(rail, group, ignoreArg, granted)
}

// ignoreArg adapts a no-argument grant callback to AcquireArg.
func ignoreArg(arg any) { arg.(func())() }

// AcquireArg is Acquire for a grant callback taking one argument. A hot
// caller (the network executor grants one acquisition per scale-out
// collective) passes one long-lived callback with a per-acquisition
// argument, so the fast path — circuits already installed — allocates
// nothing.
func (c *Controller) AcquireArg(rail topo.RailID, group *collective.Group, granted func(any), arg any) error {
	rs := c.rails[rail]
	if rs == nil {
		return fmt.Errorf("opus: unknown rail %d", rail)
	}
	if live, ok := rs.installed[group.Name]; ok {
		// Speculation yields to demand: a queued waiterless (shim-
		// provisioned) request that would tear our live circuits was a
		// mis-prediction — cancel it rather than stall real traffic
		// behind it. It re-enters when its group actually communicates.
		c.cancelSpeculation(rs, live)
		if !c.pendingConflicts(rs, group.Name) {
			// Fast path: circuits live and no queued demand
			// reconfiguration is about to tear them down ahead of us.
			c.stats.FastGrants++
			rs.active[group.Name]++
			granted(arg)
			return nil
		}
	}
	c.stats.QueuedGrants++
	arrival := c.clock.Now()
	wrapped := func() {
		rs.active[group.Name]++
		c.stats.BlockedTime += c.clock.Now() - arrival
		granted(arg)
	}
	if req := c.findPending(rs, group.Name); req != nil {
		req.waiters = append(req.waiters, wrapped)
		req.arrivals = append(req.arrivals, arrival)
	} else {
		circuits, err := c.table.CircuitsFor(group)
		if err != nil {
			return err
		}
		rs.queue = append(rs.queue, &request{
			group:    group,
			circuits: circuits,
			waiters:  []func(){wrapped},
			arrivals: []units.Duration{arrival},
		})
	}
	c.process(rs)
	return nil
}

// Provision enqueues a speculative request for group on rail without a
// waiter: the shim predicts the group is about to communicate, so the
// controller can overlap the reconfiguration with the current
// inter-parallelism window (Fig. 5b).
func (c *Controller) Provision(rail topo.RailID, group *collective.Group) error {
	rs := c.rails[rail]
	if rs == nil {
		return fmt.Errorf("opus: unknown rail %d", rail)
	}
	if _, ok := rs.installed[group.Name]; ok && !c.pendingConflicts(rs, group.Name) {
		return nil // already live
	}
	if c.findPending(rs, group.Name) != nil {
		return nil // already requested
	}
	circuits, err := c.table.CircuitsFor(group)
	if err != nil {
		return err
	}
	c.stats.ProvisionedRequests++
	rs.queue = append(rs.queue, &request{group: group, circuits: circuits})
	c.process(rs)
	return nil
}

// Release marks one transfer of group on rail complete and lets the
// controller make progress on queued reconfigurations.
func (c *Controller) Release(rail topo.RailID, group *collective.Group) error {
	rs := c.rails[rail]
	if rs == nil {
		return fmt.Errorf("opus: unknown rail %d", rail)
	}
	if rs.active[group.Name] <= 0 {
		return fmt.Errorf("opus: release of inactive group %s on rail %d", group.Name, rail)
	}
	rs.active[group.Name]--
	if rs.active[group.Name] == 0 {
		delete(rs.active, group.Name)
	}
	c.process(rs)
	return nil
}

// cancelSpeculation removes queued waiterless requests whose circuits
// conflict with the given live circuits. An in-flight reconfiguration
// cannot be recalled; only still-queued speculation is dropped.
func (c *Controller) cancelSpeculation(rs *railState, live ocs.Matching) {
	kept := rs.queue[:0]
	for _, req := range rs.queue {
		if len(req.waiters) == 0 && !req.inFlight && conflicts(req.circuits, live) {
			continue
		}
		kept = append(kept, req)
	}
	rs.queue = kept
}

// findPending returns the queued request for the named group, if any.
func (c *Controller) findPending(rs *railState, group string) *request {
	for _, r := range rs.queue {
		if r.group.Name == group {
			return r
		}
	}
	return nil
}

// pendingConflicts reports whether any queued request will tear down the
// named installed group. Granting past it would let traffic pin circuits
// the head-of-line reconfiguration is waiting to remove, starving it —
// the control divergence Objective 3 forbids.
func (c *Controller) pendingConflicts(rs *railState, group string) bool {
	installed, ok := rs.installed[group]
	if !ok {
		return false
	}
	for _, req := range rs.queue {
		if conflicts(installed, req.circuits) {
			return true
		}
	}
	return false
}

// conflicts reports whether two matchings share any port.
func conflicts(a, b ocs.Matching) bool {
	for p := range a {
		if _, ok := b.Peer(p); ok {
			return true
		}
	}
	return false
}

// process schedules a deferred queue scan at the end of the current
// instant, so requests issued together (e.g. both data shards of one
// parallelism phase) coalesce into a single physical reconfiguration.
func (c *Controller) process(rs *railState) {
	if rs.reconfiguring || rs.processScheduled || len(rs.queue) == 0 {
		return
	}
	rs.processScheduled = true
	c.clock.Immediately(func() {
		rs.processScheduled = false
		c.processNow(rs)
	})
}

// processNow drives the FC-FS queue of one rail. It serves the longest
// serviceable prefix of the queue in one reconfiguration: an OCS moves
// any number of ports in a single switching actuation, so batching
// compatible requests costs one latency, not one per group.
func (c *Controller) processNow(rs *railState) {
	if rs.reconfiguring {
		return
	}
	// Serve queued requests whose circuits are already installed
	// (a previous batch may have covered them).
	for len(rs.queue) > 0 {
		if _, ok := rs.installed[rs.queue[0].group.Name]; !ok {
			break
		}
		c.grant(rs, rs.queue[0])
	}
	if len(rs.queue) == 0 {
		return
	}
	// Grow the batch from the head: stop at the first request that
	// conflicts with the batch or whose tear-down targets are busy.
	// Stopping (rather than skipping) preserves FC-FS order.
	var batch []*request
	pending := ocs.Matching{} // union of the batch's new circuits
	tearDown := map[string]bool{}
	for _, req := range rs.queue {
		if conflicts(req.circuits, pending) {
			break
		}
		serviceable := true
		var reqTears []string
		for name, m := range rs.installed {
			if tearDown[name] {
				continue // already being torn down by this batch
			}
			if conflicts(m, req.circuits) {
				if rs.active[name] > 0 {
					serviceable = false
					break
				}
				reqTears = append(reqTears, name) //lint:allow maporder reqTears is consumed into the tearDown set; order is immaterial
			}
		}
		if !serviceable {
			break
		}
		for _, name := range reqTears {
			tearDown[name] = true
		}
		for p, q := range req.circuits {
			pending[p] = q
		}
		req.inFlight = true
		batch = append(batch, req)
	}
	if len(batch) == 0 {
		return // head blocked on busy circuits: retry on Release
	}
	// One physical reconfiguration: tear down, wait the switching
	// latency, set up, grant in queue order.
	rs.reconfiguring = true
	next := rs.sw.Current()
	for name := range tearDown {
		for p := range rs.installed[name] {
			next.Disconnect(p)
		}
		delete(rs.installed, name)
	}
	if err := rs.sw.ApplyOwned(next); err != nil {
		panic(fmt.Sprintf("opus: tear-down of idle circuits failed: %v", err))
	}
	c.clock.After(c.latency, func() {
		next := rs.sw.Current()
		for _, req := range batch {
			for p, q := range req.circuits {
				if p < q {
					if err := next.Connect(p, q); err != nil {
						panic(fmt.Sprintf("opus: set-up failed: %v", err))
					}
				}
			}
		}
		if err := rs.sw.ApplyOwned(next); err != nil {
			panic(fmt.Sprintf("opus: set-up apply failed: %v", err))
		}
		for _, req := range batch {
			rs.installed[req.group.Name] = req.circuits
		}
		rs.reconfiguring = false
		c.stats.Reconfigurations++
		for range batch {
			c.grant(rs, rs.queue[0])
		}
		c.processNow(rs)
	})
}

// grant pops the head request (which must be installed) and runs its
// waiters in arrival order.
func (c *Controller) grant(rs *railState, head *request) {
	if rs.queue[0] != head {
		panic("opus: grant out of FC-FS order")
	}
	rs.queue = rs.queue[1:]
	for _, w := range head.waiters {
		w()
	}
}
