package opus

import (
	"sync"

	"photonrail/internal/collective"
	"photonrail/internal/ocs"
)

// CircuitTable memoizes a PortPlan's circuit derivations. The ring
// matching of a group — and whether two groups' matchings collide — is
// a pure function of the plan and the group membership, yet the
// provisioning path recomputes both on every speculation decision
// (thousands of times per run). The table computes each once.
//
// A table is safe for concurrent use and is shared across every
// simulation run of one compiled program, so a latency sweep pays the
// matching construction cost once, not once per (latency, pass).
//
// Matchings returned by CircuitsFor are shared: callers must treat them
// as read-only (the controller installs and diffs them but only ever
// mutates clones taken from the switch).
type CircuitTable struct {
	plan PortPlan

	mu        sync.Mutex
	circuits  map[string]ocs.Matching
	errs      map[string]error
	conflicts map[conflictKey]conflictResult
}

// conflictKey orders the two group names so GroupsConflict(a, b) and
// GroupsConflict(b, a) share one slot (conflict is symmetric).
type conflictKey struct{ a, b string }

type conflictResult struct {
	conflict bool
	err      error
}

// NewCircuitTable builds an empty table over the plan.
func NewCircuitTable(plan PortPlan) *CircuitTable {
	return &CircuitTable{
		plan:      plan,
		circuits:  make(map[string]ocs.Matching),
		errs:      make(map[string]error),
		conflicts: make(map[conflictKey]conflictResult),
	}
}

// Plan returns the port plan the table derives circuits from.
func (t *CircuitTable) Plan() PortPlan { return t.plan }

// CircuitsFor is PortPlan.CircuitsFor, memoized by group name (group
// names are unique within a program). Errors are memoized too: the
// derivation is deterministic, so retrying cannot succeed.
func (t *CircuitTable) CircuitsFor(g *collective.Group) (ocs.Matching, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.circuitsForLocked(g)
}

func (t *CircuitTable) circuitsForLocked(g *collective.Group) (ocs.Matching, error) {
	if m, ok := t.circuits[g.Name]; ok {
		return m, nil
	}
	if err, ok := t.errs[g.Name]; ok {
		return nil, err
	}
	m, err := t.plan.CircuitsFor(g)
	if err != nil {
		t.errs[g.Name] = err
		return nil, err
	}
	t.circuits[g.Name] = m
	return m, nil
}

// GroupsConflict is PortPlan.GroupsConflict, memoized by the unordered
// group-name pair.
func (t *CircuitTable) GroupsConflict(a, b *collective.Group) (bool, error) {
	key := conflictKey{a.Name, b.Name}
	if key.b < key.a {
		key.a, key.b = key.b, key.a
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.conflicts[key]; ok {
		return r.conflict, r.err
	}
	ma, err := t.circuitsForLocked(a)
	if err == nil {
		var mb ocs.Matching
		mb, err = t.circuitsForLocked(b)
		if err == nil {
			r := conflictResult{conflict: conflicts(ma, mb)}
			t.conflicts[key] = r
			return r.conflict, nil
		}
	}
	t.conflicts[key] = conflictResult{err: err}
	return false, err
}
