package opus

import (
	"reflect"
	"testing"

	"photonrail/internal/collective"
	"photonrail/internal/parallelism"
	"photonrail/internal/topo"
)

func TestGroupsConflict(t *testing.T) {
	r := newRig(t, 0)
	// fsdp0 and pp0 both use GPU 0's ports; fsdp0 and fsdp1 are disjoint.
	if c, err := r.plan.GroupsConflict(r.fsdp0, r.pp0); err != nil || !c {
		t.Errorf("GroupsConflict(fsdp0, pp0) = %v, %v; want true", c, err)
	}
	if c, err := r.plan.GroupsConflict(r.fsdp0, r.fsdp1); err != nil || c {
		t.Errorf("GroupsConflict(fsdp0, fsdp1) = %v, %v; want false", c, err)
	}
	// A group spanning rails is underivable; the error propagates.
	bad := &collective.Group{Name: "bad", Axis: parallelism.TP, Ranks: []topo.GPUID{0, 1}}
	if _, err := r.plan.GroupsConflict(bad, r.fsdp0); err == nil {
		t.Error("GroupsConflict with an underivable first group did not error")
	}
	if _, err := r.plan.GroupsConflict(r.fsdp0, bad); err == nil {
		t.Error("GroupsConflict with an underivable second group did not error")
	}
}

func TestCircuitTableMemoizes(t *testing.T) {
	r := newRig(t, 0)
	tab := NewCircuitTable(r.plan)
	if tab.Plan().Cluster != r.plan.Cluster {
		t.Error("Plan() does not return the constructed plan")
	}
	m1, err := tab.CircuitsFor(r.fsdp0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tab.CircuitsFor(r.fsdp0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(m1).Pointer() != reflect.ValueOf(m2).Pointer() {
		t.Error("CircuitsFor recomputed instead of returning the memoized matching")
	}
	// Conflict results are memoized under the unordered name pair.
	c1, err := tab.GroupsConflict(r.fsdp0, r.pp0)
	if err != nil || !c1 {
		t.Fatalf("GroupsConflict = %v, %v; want true", c1, err)
	}
	c2, err := tab.GroupsConflict(r.pp0, r.fsdp0)
	if err != nil || !c2 {
		t.Fatalf("reversed GroupsConflict = %v, %v; want true", c2, err)
	}
	if len(tab.conflicts) != 1 {
		t.Errorf("conflict cache has %d entries, want 1 (symmetric key)", len(tab.conflicts))
	}
	if c, err := tab.GroupsConflict(r.fsdp0, r.fsdp1); err != nil || c {
		t.Errorf("GroupsConflict(fsdp0, fsdp1) = %v, %v; want false", c, err)
	}
}

func TestCircuitTableMemoizesErrors(t *testing.T) {
	r := newRig(t, 0)
	tab := NewCircuitTable(r.plan)
	bad := &collective.Group{Name: "bad", Axis: parallelism.TP, Ranks: []topo.GPUID{0, 1}}
	_, err1 := tab.CircuitsFor(bad)
	if err1 == nil {
		t.Fatal("cross-rail group did not error")
	}
	_, err2 := tab.CircuitsFor(bad)
	if err2 != err1 {
		t.Error("error not memoized: second derivation returned a fresh error")
	}
	if _, err := tab.GroupsConflict(bad, r.fsdp0); err == nil {
		t.Error("GroupsConflict with underivable group did not error")
	}
	if _, err := tab.GroupsConflict(r.fsdp0, bad); err == nil {
		t.Error("GroupsConflict with underivable second group did not error")
	}
	// The memoized error is replayed for the pair, too.
	if _, err := tab.GroupsConflict(bad, r.fsdp0); err == nil {
		t.Error("memoized conflict error not replayed")
	}
}

func TestControllerLatencyAccessor(t *testing.T) {
	r := newRig(t, 3*ms)
	if got := r.ctrl.Latency(); got != 3*ms {
		t.Errorf("Latency() = %v, want %v", got, 3*ms)
	}
}
