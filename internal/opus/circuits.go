// Package opus implements the paper's control plane for photonic rails:
// a per-rail circuit controller that time-multiplexes optical circuit
// switches across the communication groups of a hybrid-parallel ML job.
//
// The controller realizes the design sketch of §4.1:
//
//   - communication groups map deterministically to ring circuits on
//     their rail (the circuit lookup table);
//   - requests are served first-come-first-served within each rail
//     (Objective 3's conflict avoidance);
//   - a reconfiguration may only begin once the circuits it tears down
//     are idle, and costs the OCS technology's switching latency;
//   - with provisioning, the shim issues speculative requests as soon as
//     the previous parallelism phase's traffic completes, hiding the
//     switching latency inside the inter-parallelism window (Fig. 5).
package opus

import (
	"fmt"

	"photonrail/internal/collective"
	"photonrail/internal/ocs"
	"photonrail/internal/topo"
)

// PortPlan maps GPUs to OCS ports on their rail. Every GPU owns
// PortsPerGPU consecutive ports starting at node-index × PortsPerGPU;
// PortBase shifts the pair used, which realizes static NIC-port
// partitioning (constraint C3: axis a uses ports {base, base+1}).
type PortPlan struct {
	Cluster     *topo.Cluster
	PortsPerGPU int
	// PortBase selects the first of the GPU's ports the circuits use
	// (0 for Opus time multiplexing; 2·axisIndex for static splits).
	PortBase int
	// RingPairs is how many parallel rings a group's circuits stripe
	// across (each ring consumes a tx/rx port pair per member). Opus
	// gives the active group the whole NIC (Ports/2 pairs); a static
	// partition pins each axis to one pair — constraint C3's bandwidth
	// fragmentation. Zero means 1.
	RingPairs int
}

// ringPairs normalizes the zero value.
func (p PortPlan) ringPairs() int {
	if p.RingPairs <= 0 {
		return 1
	}
	return p.RingPairs
}

// Validate checks the plan fits the NIC.
func (p PortPlan) Validate() error {
	if p.Cluster == nil {
		return fmt.Errorf("opus: port plan without cluster")
	}
	if p.PortsPerGPU <= 0 {
		return fmt.Errorf("opus: %d ports per GPU", p.PortsPerGPU)
	}
	if p.PortBase < 0 || p.PortBase+2*p.ringPairs() > p.PortsPerGPU {
		return fmt.Errorf("opus: port base %d + %d ring pairs outside %d-port NIC",
			p.PortBase, p.ringPairs(), p.PortsPerGPU)
	}
	return nil
}

// TxPort returns the "toward ring successor" port of g for ring pair j.
func (p PortPlan) TxPort(g topo.GPUID, j int) ocs.Port {
	return ocs.Port(int(p.Cluster.Node(g))*p.PortsPerGPU + p.PortBase + 2*j)
}

// RxPort returns the "from ring predecessor" port of g for ring pair j.
func (p PortPlan) RxPort(g topo.GPUID, j int) ocs.Port {
	return ocs.Port(int(p.Cluster.Node(g))*p.PortsPerGPU + p.PortBase + 2*j + 1)
}

// Radix returns the rail switch radix the plan requires.
func (p PortPlan) Radix() int { return p.Cluster.NumNodes * p.PortsPerGPU }

// CircuitsFor returns the ring matching a communication group needs on
// its rail: member i's tx port connects to member i+1's rx port. All
// group members must share one rail (rail-aligned groups are the
// defining property of the rail-optimized layout).
func (p PortPlan) CircuitsFor(g *collective.Group) (ocs.Matching, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(g.Ranks) < 2 {
		return nil, fmt.Errorf("opus: group %s has no peers", g.Name)
	}
	rail := p.Cluster.Rail(g.Ranks[0])
	for _, r := range g.Ranks {
		if p.Cluster.Rail(r) != rail {
			return nil, fmt.Errorf("opus: group %s spans rails %d and %d", g.Name, rail, p.Cluster.Rail(r))
		}
	}
	m := ocs.Matching{}
	n := len(g.Ranks)
	for j := 0; j < p.ringPairs(); j++ {
		for i, a := range g.Ranks {
			b := g.Ranks[(i+1)%n]
			if err := m.Connect(p.TxPort(a, j), p.RxPort(b, j)); err != nil {
				return nil, fmt.Errorf("opus: group %s: %w", g.Name, err)
			}
		}
	}
	return m, nil
}

// GroupsConflict reports whether two groups' circuits share any switch
// port (and therefore cannot be installed simultaneously).
func (p PortPlan) GroupsConflict(a, b *collective.Group) (bool, error) {
	ma, err := p.CircuitsFor(a)
	if err != nil {
		return false, err
	}
	mb, err := p.CircuitsFor(b)
	if err != nil {
		return false, err
	}
	for port := range ma {
		if _, ok := mb.Peer(port); ok {
			return true, nil
		}
	}
	return false, nil
}

// CircuitsBetween counts the circuits of matching m that join GPUs a and
// b under this plan; a pipeline Send/Recv's bandwidth is this count times
// the per-port rate.
func (p PortPlan) CircuitsBetween(m ocs.Matching, a, b topo.GPUID) int {
	count := 0
	for j := 0; j < p.ringPairs(); j++ {
		pairs := [][2]ocs.Port{
			{p.TxPort(a, j), p.RxPort(b, j)},
			{p.TxPort(b, j), p.RxPort(a, j)},
		}
		for _, pr := range pairs {
			if peer, ok := m.Peer(pr[0]); ok && peer == pr[1] {
				count++
			}
		}
	}
	return count
}
