package gridcli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"photonrail/internal/scenario"
)

func specFromArgs(t *testing.T, args ...string) (scenario.Spec, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	spec, g, err := d.Spec()
	if err == nil {
		// The returned grid is the spec's resolution — callers rely on
		// them agreeing.
		want, rerr := spec.Resolve()
		if rerr != nil {
			t.Fatalf("returned spec does not resolve: %v", rerr)
		}
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("returned grid diverges from spec resolution")
		}
	}
	return spec, err
}

func TestSpecFromFlags(t *testing.T) {
	spec, err := specFromArgs(t,
		"-models", "Llama3-8B", "-fabrics", "electrical,photonic",
		"-latencies", "5,20", "-par", "4:2:2,4:1:2:2", "-nic", "2x200", "-iters", "3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "custom" {
		t.Errorf("name = %q", spec.Name)
	}
	if len(spec.Parallelisms) != 2 || spec.Parallelisms[1].CP != 2 {
		t.Errorf("parallelisms = %+v", spec.Parallelisms)
	}
	if spec.NICPorts != 2 || spec.NICPerPortBps != 200e9 {
		t.Errorf("nic = %d x %d bps", spec.NICPorts, spec.NICPerPortBps)
	}
	if spec.Iterations != 3 {
		t.Errorf("iterations = %d", spec.Iterations)
	}
	if _, err := spec.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecNamedGridWithOverrides(t *testing.T) {
	spec, err := specFromArgs(t, "-grid", "fig8-5d", "-latencies", "7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "fig8-5d" {
		t.Errorf("name = %q", spec.Name)
	}
	if len(spec.LatenciesMS) != 1 || spec.LatenciesMS[0] != 7 {
		t.Errorf("latencies = %v, want the override", spec.LatenciesMS)
	}
	if len(spec.Models) != 2 {
		t.Errorf("models = %v, want the named grid's", spec.Models)
	}
}

func TestSpecRejectsBadDimensions(t *testing.T) {
	cases := [][]string{
		{"-grid", "nope"},
		{"-models", "GPT-17"},
		{"-gpus", "TPU"},
		{"-fabrics", "teleport"},
		{"-latencies", "x"},
		{"-latencies", "-4"},
		{"-par", "4:2"},
		{"-schedules", "zigzag"},
		{"-jitters", "2"},
		{"-eager", "maybe"},
		{"-nic", "3x133"},
	}
	for _, args := range cases {
		if _, err := specFromArgs(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseParallelism(t *testing.T) {
	p, err := ParseParallelism("4:2:2")
	if err != nil || (p != scenario.Parallelism{TP: 4, DP: 2, PP: 2}) {
		t.Errorf("got %+v, %v", p, err)
	}
	p, err = ParseParallelism("4:1:2:2:1")
	if err != nil || p.CP != 2 || p.EP != 1 {
		t.Errorf("5D got %+v, %v", p, err)
	}
	for _, bad := range []string{"", "4", "4:2", "4:2:2:2:2:2", "4:x:2"} {
		if _, err := ParseParallelism(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRenderRowsFormats(t *testing.T) {
	rows := []scenario.Row{
		{Cell: "c1", Model: "Llama3-8B", GPU: "A100", Fabric: "photonic", LatencyMS: 10,
			TP: 4, DP: 2, PP: 2, Schedule: "1F1B", Status: "ok",
			MeanIterationSeconds: 1.5, Slowdown: 1.01},
		{Cell: "c2", Model: "Llama3-8B", GPU: "A100", Fabric: "static",
			TP: 4, DP: 2, PP: 2, Schedule: "1F1B", Status: "skip", SkipReason: "C2"},
	}
	var table, csv, js bytes.Buffer
	if err := RenderRows(&table, "table", "g", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), `Scenario grid "g"`) ||
		!strings.Contains(table.String(), "2 cells: 1 ok, 1 skipped") {
		t.Errorf("table:\n%s", table.String())
	}
	if err := RenderRows(&csv, "csv", "g", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "cell,model,gpu,fabric,latency_ms") {
		t.Errorf("csv:\n%s", csv.String())
	}
	if err := RenderRows(&js, "json", "g", rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Grid  string         `json:"grid"`
		Cells []scenario.Row `json:"cells"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Grid != "g" || len(doc.Cells) != 2 {
		t.Errorf("json doc = %+v", doc)
	}
	if err := RenderRows(io.Discard, "yaml", "g", rows); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPrintCatalog(t *testing.T) {
	var out bytes.Buffer
	PrintCatalog(&out)
	for _, want := range []string{"fig8-5d", "Llama3-8B", "A100", "provisioned", "GPipe"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog missing %q", want)
		}
	}
}
