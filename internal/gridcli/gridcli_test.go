package gridcli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"photonrail"
	"photonrail/internal/scenario"
)

func specFromArgs(t *testing.T, args ...string) (scenario.Spec, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	spec, g, err := d.Spec()
	if err == nil {
		// The returned grid is the spec's resolution — callers rely on
		// them agreeing.
		want, rerr := spec.Resolve()
		if rerr != nil {
			t.Fatalf("returned spec does not resolve: %v", rerr)
		}
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("returned grid diverges from spec resolution")
		}
	}
	return spec, err
}

func TestSpecFromFlags(t *testing.T) {
	spec, err := specFromArgs(t,
		"-models", "Llama3-8B", "-fabrics", "electrical,photonic",
		"-latencies", "5,20", "-par", "4:2:2,4:1:2:2", "-nic", "2x200", "-iters", "3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "custom" {
		t.Errorf("name = %q", spec.Name)
	}
	if len(spec.Parallelisms) != 2 || spec.Parallelisms[1].CP != 2 {
		t.Errorf("parallelisms = %+v", spec.Parallelisms)
	}
	if spec.NICPorts != 2 || spec.NICPerPortBps != 200e9 {
		t.Errorf("nic = %d x %d bps", spec.NICPorts, spec.NICPerPortBps)
	}
	if spec.Iterations != 3 {
		t.Errorf("iterations = %d", spec.Iterations)
	}
	if _, err := spec.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecNamedGridWithOverrides(t *testing.T) {
	spec, err := specFromArgs(t, "-grid", "fig8-5d", "-latencies", "7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "fig8-5d" {
		t.Errorf("name = %q", spec.Name)
	}
	if len(spec.LatenciesMS) != 1 || spec.LatenciesMS[0] != 7 {
		t.Errorf("latencies = %v, want the override", spec.LatenciesMS)
	}
	if len(spec.Models) != 2 {
		t.Errorf("models = %v, want the named grid's", spec.Models)
	}
}

func TestSpecRejectsBadDimensions(t *testing.T) {
	cases := [][]string{
		{"-grid", "nope"},
		{"-models", "GPT-17"},
		{"-gpus", "TPU"},
		{"-fabrics", "teleport"},
		{"-latencies", "x"},
		{"-latencies", "-4"},
		{"-par", "4:2"},
		{"-schedules", "zigzag"},
		{"-jitters", "2"},
		{"-eager", "maybe"},
		{"-nic", "3x133"},
	}
	for _, args := range cases {
		if _, err := specFromArgs(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseParallelism(t *testing.T) {
	p, err := ParseParallelism("4:2:2")
	if err != nil || (p != scenario.Parallelism{TP: 4, DP: 2, PP: 2}) {
		t.Errorf("got %+v, %v", p, err)
	}
	p, err = ParseParallelism("4:1:2:2:1")
	if err != nil || p.CP != 2 || p.EP != 1 {
		t.Errorf("5D got %+v, %v", p, err)
	}
	for _, bad := range []string{"", "4", "4:2", "4:2:2:2:2:2", "4:x:2"} {
		if _, err := ParseParallelism(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRenderRowsFormats(t *testing.T) {
	rows := []scenario.Row{
		{Cell: "c1", Model: "Llama3-8B", GPU: "A100", Fabric: "photonic", LatencyMS: 10,
			TP: 4, DP: 2, PP: 2, Schedule: "1F1B", Status: "ok",
			MeanIterationSeconds: 1.5, Slowdown: 1.01},
		{Cell: "c2", Model: "Llama3-8B", GPU: "A100", Fabric: "static",
			TP: 4, DP: 2, PP: 2, Schedule: "1F1B", Status: "skip", SkipReason: "C2"},
	}
	var table, csv, js bytes.Buffer
	if err := RenderRows(&table, "table", "g", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), `Scenario grid "g"`) ||
		!strings.Contains(table.String(), "2 cells: 1 ok, 1 skipped") {
		t.Errorf("table:\n%s", table.String())
	}
	if err := RenderRows(&csv, "csv", "g", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "cell,model,gpu,fabric,latency_ms") {
		t.Errorf("csv:\n%s", csv.String())
	}
	if err := RenderRows(&js, "json", "g", rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Grid  string         `json:"grid"`
		Cells []scenario.Row `json:"cells"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Grid != "g" || len(doc.Cells) != 2 {
		t.Errorf("json doc = %+v", doc)
	}
	if err := RenderRows(io.Discard, "yaml", "g", rows); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPrintCatalog(t *testing.T) {
	var out bytes.Buffer
	PrintCatalog(&out)
	for _, want := range []string{"fig8-5d", "Llama3-8B", "A100", "provisioned", "GPipe"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalog missing %q", want)
		}
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(t.Context(), time.Hour)
	if _, ok := ctx.Deadline(); !ok {
		t.Error("positive timeout produced no deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel did not cancel the deadline context")
	}
	ctx, cancel = WithTimeout(t.Context(), 0)
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout produced a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel did not cancel the plain context")
	}
}

func TestWithTimeoutInheritsParentCancellation(t *testing.T) {
	parent, stop := context.WithCancel(t.Context())
	ctx, cancel := WithTimeout(parent, time.Hour)
	defer cancel()
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Error("cancelling the parent did not cancel the derived context")
	}
}

func TestRunExperiments(t *testing.T) {
	en := photonrail.NewEngine(1)
	var text, csv bytes.Buffer
	if err := RunExperiments(context.Background(), en, []string{"table1", "table3"}, photonrail.Params{}, false, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Table 1") || !strings.Contains(text.String(), "Table 3") {
		t.Errorf("text output = %.120q", text.String())
	}
	if err := RunExperiments(context.Background(), en, []string{"table1"}, photonrail.Params{}, true, &csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), ",") {
		t.Errorf("csv output = %.120q", csv.String())
	}
	if err := RunExperiments(context.Background(), en, []string{"nope"}, photonrail.Params{}, false, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "not registered") {
		t.Errorf("unknown experiment error = %v", err)
	}
}

func TestDefaultGridName(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	d.DefaultGridName("fig8-5d")
	spec, _, err := d.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "fig8-5d" {
		t.Errorf("defaulted grid = %q, want fig8-5d", spec.Name)
	}
	// An explicit -grid wins over the default.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	d2 := Register(fs2)
	if err := fs2.Parse([]string{"-grid", "fig8-5d", "-latencies", "7"}); err != nil {
		t.Fatal(err)
	}
	d2.DefaultGridName("other")
	spec2, _, err := d2.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Name != "fig8-5d" || !reflect.DeepEqual(spec2.LatenciesMS, []float64{7}) {
		t.Errorf("spec = %+v", spec2)
	}
}

func TestSweepParams(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := Register(fs)
	if err := fs.Parse([]string{"-latencies", "0,10", "-iters", "3"}); err != nil {
		t.Fatal(err)
	}
	p, err := d.SweepParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 3 || !reflect.DeepEqual(p.LatenciesMS, []float64{0, 10}) {
		t.Errorf("params = %+v", p)
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	d2 := Register(fs2)
	if err := fs2.Parse([]string{"-latencies", "zzz"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.SweepParams(); err == nil {
		t.Error("bad latency accepted")
	}
}

func TestCheckFormat(t *testing.T) {
	for _, ok := range []string{"table", "csv", "json"} {
		if err := CheckFormat(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	if err := CheckFormat("yaml"); err == nil {
		t.Error("yaml accepted")
	}
}
