// Package gridcli is the shared command-line surface of the
// experiment CLIs: cmd/railgrid (local execution) and cmd/railclient
// (remote execution against a raild daemon) register the same
// dimension flags, build the same wire-encodable scenario.Spec from
// them, and render results through the same table/CSV/JSON renderers,
// so a railgrid invocation and its railclient twin differ only in
// where the cells simulate. The registry-driven one-shot CLIs
// (railcost, railwindows) share their run loop here too.
package gridcli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"photonrail"
	"photonrail/internal/model"
	"photonrail/internal/report"
	"photonrail/internal/scenario"
	"photonrail/internal/topo"
)

// WithTimeout returns a context bounded by d, derived from parent;
// d <= 0 means no deadline (the returned cancel func is still
// non-nil). The shared -timeout plumbing of every experiment CLI. The
// parent is the CLI main's signal context, so Ctrl-C cancels a run
// whether or not a -timeout was set — manufacturing a root here was
// exactly the detachment raillint's ctxbg now bans.
func WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(parent, d)
	}
	return context.WithCancel(parent)
}

// RunExperiments looks up and runs each named registry experiment on
// the engine with the same params, rendering each result to w (CSV
// when csv is set) — the shared body of the one-shot registry CLIs
// (railcost, railwindows).
func RunExperiments(ctx context.Context, en *photonrail.Engine, names []string, p photonrail.Params, csv bool, w io.Writer) error {
	for _, name := range names {
		e, ok := photonrail.Lookup(name)
		if !ok {
			return fmt.Errorf("experiment %q not registered", name)
		}
		res, err := e.Run(ctx, en, p)
		if err != nil {
			return err
		}
		if csv {
			err = res.RenderCSV(w)
		} else {
			err = res.RenderText(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Dimensions holds the registered dimension flag values.
type Dimensions struct {
	gridName  *string
	models    *string
	gpus      *string
	fabrics   *string
	latencies *string
	par       *string
	schedules *string
	jitters   *string
	eager     *string
	nic       *string
	mb        *int
	mbs       *int
	iters     *int
}

// DefaultGridName sets the -grid flag's value when the user did not
// supply one. railclient's `-exp <built-in grid>` path uses it so the
// dimension flags overlay that grid's axes — exactly what
// `-grid <name>` would do — instead of the paper-default custom grid.
func (d *Dimensions) DefaultGridName(name string) {
	if *d.gridName == "" {
		*d.gridName = name
	}
}

// Register installs the grid dimension flags on fs and returns their
// holder; call Spec after fs.Parse.
func Register(fs *flag.FlagSet) *Dimensions {
	return &Dimensions{
		gridName:  fs.String("grid", "", "built-in grid name (see -list); dimension flags override its axes"),
		models:    fs.String("models", "", "comma-separated model presets (e.g. Llama3-8B,Mixtral-8x7B)"),
		gpus:      fs.String("gpus", "", "comma-separated GPU presets (e.g. A100,H100)"),
		fabrics:   fs.String("fabrics", "", "comma-separated fabric kinds: electrical,photonic,provisioned,static"),
		latencies: fs.String("latencies", "", "comma-separated reconfiguration latencies in ms"),
		par:       fs.String("par", "", "comma-separated parallelisms TP:DP:PP[:CP[:EP]] (e.g. 4:2:2,4:1:2:2)"),
		schedules: fs.String("schedules", "", "comma-separated pipeline schedules: 1F1B,GPipe"),
		jitters:   fs.String("jitters", "", "comma-separated compute jitter fractions (e.g. 0,0.03)"),
		eager:     fs.String("eager", "", "comma-separated EagerRS values: false,true"),
		nic:       fs.String("nic", "", "NIC port split: 1x400, 2x200, or 4x100"),
		mb:        fs.Int("mb", 0, "microbatches per iteration (0 = grid default)"),
		mbs:       fs.Int("mbs", 0, "microbatch size (0 = grid default)"),
		iters:     fs.Int("iters", 0, "training iterations per cell (0 = grid default)"),
	}
}

// Spec builds the wire-encodable grid spec the flags describe — a named
// grid's axes when -grid was given (the zero grid's paper defaults
// otherwise), overlaid with every non-empty dimension flag — along with
// its resolved, validated Grid. Unknown names and malformed dimensions
// fail here, not at execution time; railgrid runs the returned grid
// locally, railclient sends the spec to a daemon.
func (d *Dimensions) Spec() (scenario.Spec, scenario.Grid, error) {
	var spec scenario.Spec
	if *d.gridName != "" {
		mk, ok := scenario.Grids()[*d.gridName]
		if !ok {
			return scenario.Spec{}, scenario.Grid{}, fmt.Errorf("unknown grid %q (built-ins: %s)", *d.gridName, strings.Join(GridNames(), ", "))
		}
		spec = scenario.SpecOf(mk())
	}
	if *d.models != "" {
		spec.Models = splitList(*d.models)
	}
	if *d.gpus != "" {
		spec.GPUs = splitList(*d.gpus)
	}
	if *d.fabrics != "" {
		spec.Fabrics = splitList(*d.fabrics)
	}
	if *d.latencies != "" {
		spec.LatenciesMS = nil
		for _, s := range splitList(*d.latencies) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return scenario.Spec{}, scenario.Grid{}, fmt.Errorf("bad latency %q: %w", s, err)
			}
			spec.LatenciesMS = append(spec.LatenciesMS, v)
		}
	}
	if *d.par != "" {
		spec.Parallelisms = nil
		for _, s := range splitList(*d.par) {
			p, err := ParseParallelism(s)
			if err != nil {
				return scenario.Spec{}, scenario.Grid{}, err
			}
			spec.Parallelisms = append(spec.Parallelisms, p)
		}
	}
	if *d.schedules != "" {
		spec.Schedules = splitList(*d.schedules)
	}
	if *d.jitters != "" {
		spec.JitterFracs = nil
		for _, s := range splitList(*d.jitters) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return scenario.Spec{}, scenario.Grid{}, fmt.Errorf("bad jitter %q: %w", s, err)
			}
			spec.JitterFracs = append(spec.JitterFracs, v)
		}
	}
	if *d.eager != "" {
		spec.EagerRS = nil
		for _, s := range splitList(*d.eager) {
			v, err := strconv.ParseBool(s)
			if err != nil {
				return scenario.Spec{}, scenario.Grid{}, fmt.Errorf("bad eager value %q: %w", s, err)
			}
			spec.EagerRS = append(spec.EagerRS, v)
		}
	}
	if *d.nic != "" {
		var pc topo.PortConfig
		switch *d.nic {
		case "1x400":
			pc = topo.OnePort400G
		case "2x200":
			pc = topo.TwoPort200G
		case "4x100":
			pc = topo.FourPort100G
		default:
			return scenario.Spec{}, scenario.Grid{}, fmt.Errorf("unknown NIC split %q (want 1x400, 2x200, 4x100)", *d.nic)
		}
		spec.NICPorts = pc.Ports
		spec.NICPerPortBps = int64(pc.PerPort)
	}
	if *d.mb > 0 {
		spec.Microbatches = *d.mb
	}
	if *d.mbs > 0 {
		spec.MicrobatchSize = *d.mbs
	}
	if *d.iters > 0 {
		spec.Iterations = *d.iters
	}
	if spec.Name == "" {
		spec.Name = "custom"
	}
	// Fail fast on unknown names and malformed grids: the daemon would
	// reject them too, but a CLI should not need a round trip to say so.
	g, err := spec.Resolve()
	if err != nil {
		return scenario.Spec{}, scenario.Grid{}, err
	}
	if err := g.Validate(); err != nil {
		return scenario.Spec{}, scenario.Grid{}, err
	}
	return spec, g, nil
}

// SweepParams maps the dimension flags a non-grid experiment honors
// onto registry params: -latencies becomes LatenciesMS and -iters
// becomes Iterations (railclient's `-exp fig8 -latencies 0,10
// -iters 1` must match its local `railsweep` twin instead of silently
// running paper defaults). Flags with no non-grid meaning are left at
// their registry defaults.
func (d *Dimensions) SweepParams() (photonrail.Params, error) {
	p := photonrail.Params{Iterations: *d.iters}
	if *d.latencies != "" {
		for _, s := range splitList(*d.latencies) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return photonrail.Params{}, fmt.Errorf("bad latency %q: %w", s, err)
			}
			p.LatenciesMS = append(p.LatenciesMS, v)
		}
	}
	return p, nil
}

// ParseParallelism parses TP:DP:PP[:CP[:EP]].
func ParseParallelism(s string) (scenario.Parallelism, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return scenario.Parallelism{}, fmt.Errorf("bad parallelism %q: want TP:DP:PP[:CP[:EP]]", s)
	}
	vals := make([]int, 5)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return scenario.Parallelism{}, fmt.Errorf("bad parallelism %q: %w", s, err)
		}
		vals[i] = v
	}
	return scenario.Parallelism{TP: vals[0], DP: vals[1], PP: vals[2], CP: vals[3], EP: vals[4]}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// CheckFormat validates a -format value.
func CheckFormat(format string) error {
	switch format {
	case "table", "csv", "json":
		return nil
	}
	return fmt.Errorf("unknown format %q (want table, csv, json)", format)
}

// RenderRows writes executed grid rows in the chosen format — the
// aligned table (with an ok/skip footer), the fully numeric CSV, or the
// {"grid", "cells"} JSON document. railgrid renders local results,
// railclient renders daemon results; the bytes are identical.
func RenderRows(w io.Writer, format, name string, rows []scenario.Row) error {
	switch format {
	case "table":
		if err := scenario.TableFromRows(name, rows).Render(w); err != nil {
			return err
		}
		skipped := 0
		for _, row := range rows {
			if row.Status == "skip" {
				skipped++
			}
		}
		_, err := fmt.Fprintf(w, "\n%d cells: %d ok, %d skipped\n", len(rows), len(rows)-skipped, skipped)
		return err
	case "csv":
		return scenario.CSVTableFromRows(rows).CSV(w)
	case "json":
		out := struct {
			Grid  string         `json:"grid"`
			Cells []scenario.Row `json:"cells"`
		}{name, rows}
		return report.JSON(w, out)
	}
	return CheckFormat(format)
}

// GridNames lists the built-in grids, sorted.
func GridNames() []string {
	var names []string
	for name := range scenario.Grids() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PrintCatalog lists the built-in grids and the preset spellings every
// dimension flag accepts.
func PrintCatalog(w io.Writer) {
	fmt.Fprintf(w, "built-in grids: %s\n", strings.Join(GridNames(), ", "))
	var ms, gs []string
	for _, m := range model.Presets() {
		ms = append(ms, m.Name)
	}
	for _, g := range model.GPUPresets() {
		gs = append(gs, g.Name)
	}
	fmt.Fprintf(w, "model presets:  %s\n", strings.Join(ms, ", "))
	fmt.Fprintf(w, "gpu presets:    %s\n", strings.Join(gs, ", "))
	fmt.Fprintf(w, "fabric kinds:   electrical, photonic, provisioned, static\n")
	fmt.Fprintf(w, "schedules:      1F1B, GPipe\n")
	fmt.Fprintf(w, "nic splits:     1x400, 2x200, 4x100\n")
}
