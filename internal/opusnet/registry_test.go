package opusnet

import (
	"strings"
	"testing"

	"photonrail/internal/scenario"
)

// setPayload sets the payload pointer named by wire tag on m.
func setPayload(t *testing.T, m *Message, tag string) {
	t.Helper()
	switch tag {
	case "stats":
		m.Stats = &StatsPayload{}
	case "spec":
		m.Spec = &scenario.Spec{}
	case "progress":
		m.Progress = &GridProgress{}
	case "grid":
		m.Grid = &GridResultPayload{}
	case "cache":
		m.Cache = &CacheStatsPayload{}
	case "exp":
		m.Exp = &ExpRequestPayload{}
	case "expResult":
		m.ExpResult = &ExpResultPayload{}
	case "cells":
		m.Cells = &CellsRequestPayload{}
	case "cellsResult":
		m.CellsResult = &CellsResultPayload{}
	case "fleetReg":
		m.FleetReg = &FleetRegisterPayload{}
	case "heartbeat":
		m.Heartbeat = &HeartbeatPayload{}
	case "drain":
		m.DrainReq = &DrainPayload{}
	default:
		t.Fatalf("registry names unknown payload tag %q", tag)
	}
}

// TestRegistryAndDispatchAgree cross-checks the protocol's ledgers at
// runtime: every registered type must validate once its registered
// payloads are attached, and whatever payload the ValidatePayload
// switch demands must be one the registry granted — so the map and the
// switch cannot drift apart without a test failure.
func TestRegistryAndDispatchAgree(t *testing.T) {
	for mt, allowed := range payloadRegistry {
		full := &Message{Type: mt, Seq: 1}
		for _, tag := range allowed {
			setPayload(t, full, tag)
		}
		if err := ValidatePayload(full); err != nil {
			t.Errorf("%s with all registered payloads: %v", mt, err)
		}

		// An empty frame either passes (envelope-only type) or fails
		// demanding a payload — and that payload must be registered.
		bare := &Message{Type: mt, Seq: 1}
		if err := ValidatePayload(bare); err != nil {
			registered := false
			for _, tag := range allowed {
				if strings.Contains(err.Error(), `"`+tag+`"`) {
					registered = true
				}
			}
			if !registered {
				t.Errorf("%s: dispatch requires a payload the registry does not grant: %v", mt, err)
			}
		}
	}
}

func TestValidatePayloadRejectsUnknownType(t *testing.T) {
	err := ValidatePayload(&Message{Type: MsgType("bogus")})
	if err == nil || !strings.Contains(err.Error(), "unknown message type") {
		t.Fatalf("got %v, want unknown-message-type error", err)
	}
}

func TestValidatePayloadRejectsForeignPayload(t *testing.T) {
	m := &Message{Type: MsgAck, Seq: 1, Stats: &StatsPayload{}}
	err := ValidatePayload(m)
	if err == nil || !strings.Contains(err.Error(), "unregistered payload") {
		t.Fatalf("got %v, want unregistered-payload error", err)
	}
}

func TestValidatePayloadRequiresPrimaryPayload(t *testing.T) {
	err := ValidatePayload(&Message{Type: MsgGridReq, Seq: 1})
	if err == nil || !strings.Contains(err.Error(), `missing its "spec" payload`) {
		t.Fatalf("got %v, want missing-spec error", err)
	}
}
