package opusnet

import (
	"photonrail/internal/telemetry"
)

// RegisterStatsMetrics mirrors a CacheStatsPayload producer into reg
// as sampled Prometheus metrics under the given prefix ("raild",
// "railfleet"). One OnScrape hook calls stats() per scrape and copies
// the payload into the registered series, so a `/metrics` scrape and a
// `stats_resp` frame taken from the same quiescent process report
// exactly the same numbers — the endpoint is a second view of the
// existing telemetry, not a second bookkeeping of it, and the framed
// stats protocol keeps working unchanged.
//
// Registered families (the backend ones render only when the payload
// carries per-backend health, i.e. on a fleet coordinator):
//
//	{prefix}_cache_hits_total / _misses_total / _evictions_total
//	{prefix}_cache_inflight
//	{prefix}_grids_executed_total / _deduped_total
//	{prefix}_exps_executed_total / _deduped_total
//	{prefix}_cells_executed_total / _deduped_total
//	{prefix}_stage_hits_total{stage=...} / _stage_misses_total{stage=...}
//	{prefix}_backend_cells_total{backend=...}
//	{prefix}_backend_failures_total{backend=...}
//	{prefix}_backend_healthy{backend=...}
func RegisterStatsMetrics(reg *telemetry.Registry, prefix string, stats func() CacheStatsPayload) {
	cacheHits := reg.Counter(prefix+"_cache_hits_total", "Memo-cache hits, as reported in stats_resp.")
	cacheMisses := reg.Counter(prefix+"_cache_misses_total", "Memo-cache misses (computations run), as reported in stats_resp.")
	cacheEvictions := reg.Counter(prefix+"_cache_evictions_total", "Memo-cache LRU evictions, as reported in stats_resp.")
	cacheInflight := reg.Gauge(prefix+"_cache_inflight", "Simulations currently computing, as reported in stats_resp.")
	gridsExecuted := reg.Counter(prefix+"_grids_executed_total", "Grid executions started (request-level singleflight wins excluded).")
	gridsDeduped := reg.Counter(prefix+"_grids_deduped_total", "Grid requests coalesced onto an identical in-flight execution.")
	expsExecuted := reg.Counter(prefix+"_exps_executed_total", "Experiment executions started.")
	expsDeduped := reg.Counter(prefix+"_exps_deduped_total", "Experiment requests coalesced onto an identical in-flight execution.")
	cellsExecuted := reg.Counter(prefix+"_cells_executed_total", "Grid cells executed through the cells_req subset path.")
	cellsDeduped := reg.Counter(prefix+"_cells_deduped_total", "Cell-subset requests coalesced onto an identical in-flight execution.")
	stageHits := reg.CounterVec(prefix+"_stage_hits_total", "Staged-pipeline cache hits by stage.", "stage")
	stageMisses := reg.CounterVec(prefix+"_stage_misses_total", "Staged-pipeline cache misses by stage.", "stage")
	backendCells := reg.CounterVec(prefix+"_backend_cells_total", "Grid cells executed per fleet backend (coordinator view).", "backend")
	backendFailures := reg.CounterVec(prefix+"_backend_failures_total", "Mid-request failures per fleet backend (coordinator view).", "backend")
	backendHealthy := reg.GaugeVec(prefix+"_backend_healthy", "Fleet backend health: 1 healthy, 0 unreachable or failed.", "backend")
	reg.OnScrape(func() {
		st := stats()
		cacheHits.Set(st.Hits)
		cacheMisses.Set(st.Misses)
		cacheEvictions.Set(st.Evictions)
		cacheInflight.Set(float64(st.InFlight))
		gridsExecuted.Set(st.GridsExecuted)
		gridsDeduped.Set(st.GridsDeduped)
		expsExecuted.Set(st.ExpsExecuted)
		expsDeduped.Set(st.ExpsDeduped)
		cellsExecuted.Set(st.CellsExecuted)
		cellsDeduped.Set(st.CellsDeduped)
		stageHits.With("build").Set(st.BuildHits)
		stageMisses.With("build").Set(st.BuildMisses)
		stageHits.With("provision").Set(st.ProvisionHits)
		stageMisses.With("provision").Set(st.ProvisionMisses)
		stageHits.With("time").Set(st.TimeHits)
		stageMisses.With("time").Set(st.TimeMisses)
		stageHits.With("seed").Set(st.SeedHits)
		stageMisses.With("seed").Set(st.SeedMisses)
		for _, b := range st.Backends {
			backendCells.With(b.Addr).Set(b.Cells)
			backendFailures.With(b.Addr).Set(b.Failures)
			healthy := 0.0
			if b.Healthy {
				healthy = 1
			}
			backendHealthy.With(b.Addr).Set(healthy)
		}
	})
}
