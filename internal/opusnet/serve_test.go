package opusnet

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveTestConn wires ServeConn to one end of a pipe with the given
// dispatch and returns the peer end plus a done channel.
func serveTestConn(dispatch func(msg *Message, reply func(*Message, bool), cs *ConnState)) (net.Conn, chan struct{}) {
	peer, served := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer served.Close()
		ServeConn(served, dispatch)
	}()
	return peer, done
}

// TestServeConnRoundTrip: requests dispatch and required replies reach
// the peer, correlated by seq.
func TestServeConnRoundTrip(t *testing.T) {
	peer, done := serveTestConn(func(msg *Message, reply func(*Message, bool), cs *ConnState) {
		reply(&Message{Type: MsgAck, Seq: msg.Seq}, true)
	})
	defer peer.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: seq}); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadMessage(peer)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != MsgAck || resp.Seq != seq {
			t.Fatalf("reply = %+v", resp)
		}
	}
	_ = peer.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after the peer closed")
	}
}

// TestServeConnCancelRegistry: a registered wait is cancelled by a
// MsgCancel frame for its seq, and every still-registered wait is
// cancelled when the connection tears down.
func TestServeConnCancelRegistry(t *testing.T) {
	type wait struct {
		seq uint64
		ctx context.Context
	}
	waits := make(chan wait, 4)
	peer, done := serveTestConn(func(msg *Message, reply func(*Message, bool), cs *ConnState) {
		switch msg.Type {
		case MsgCancel:
			cs.CancelSeq(msg.Seq)
		default:
			ctx, cancel := context.WithCancel(context.Background())
			if !cs.Register(msg.Seq, cancel) {
				cancel()
				return
			}
			waits <- wait{msg.Seq, ctx}
		}
	})
	for seq := uint64(1); seq <= 2; seq++ {
		if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	w1, w2 := <-waits, <-waits
	if err := WriteMessage(peer, &Message{Type: MsgCancel, Seq: w1.seq}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w1.ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("MsgCancel did not cancel the registered wait")
	}
	if w2.ctx.Err() != nil {
		t.Fatal("cancel for seq 1 leaked to seq 2")
	}
	// Cancelling an unknown seq is a no-op.
	if err := WriteMessage(peer, &Message{Type: MsgCancel, Seq: 99}); err != nil {
		t.Fatal(err)
	}
	// Teardown cancels the survivors.
	_ = peer.Close()
	select {
	case <-w2.ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("connection teardown did not cancel the remaining wait")
	}
	<-done
	// After teardown, Register refuses (the unregister path is also
	// exercised: an unregistered seq stays cancellable-as-no-op).
	var cs *ConnState
	// Grab a fresh ConnState through a second served conn to check
	// Unregister explicitly.
	peer2, done2 := serveTestConn(func(msg *Message, reply func(*Message, bool), s *ConnState) {
		cs = s
		_, cancel := context.WithCancel(context.Background())
		s.Register(msg.Seq, cancel)
		s.Unregister(msg.Seq)
		reply(&Message{Type: MsgAck, Seq: msg.Seq}, true)
	})
	if err := WriteMessage(peer2, &Message{Type: MsgStatsReq, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(peer2); err != nil {
		t.Fatal(err)
	}
	cs.CancelSeq(7) // unregistered: must be a no-op, not a panic
	_ = peer2.Close()
	<-done2
	if cs.Register(8, func() {}) {
		t.Fatal("Register succeeded on a torn-down connection")
	}
}

// TestServeConnLateRepliesDropped: replies issued after the read loop
// exits are dropped without panicking — the fan-out-broadcasts-late
// scenario.
func TestServeConnLateRepliesDropped(t *testing.T) {
	var mu sync.Mutex
	var lateReply func(*Message, bool)
	peer, done := serveTestConn(func(msg *Message, reply func(*Message, bool), cs *ConnState) {
		mu.Lock()
		lateReply = reply
		mu.Unlock()
		reply(&Message{Type: MsgAck, Seq: msg.Seq}, true)
	})
	if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(peer); err != nil {
		t.Fatal(err)
	}
	_ = peer.Close()
	<-done
	mu.Lock()
	reply := lateReply
	mu.Unlock()
	reply(&Message{Type: MsgGridProgress, Seq: 1, Progress: &GridProgress{Done: 1, Total: 2}}, false)
	reply(&Message{Type: MsgAck, Seq: 1}, true) // must not panic on the closed queue
}

// TestServeConnClosesOnUnwritableReply: a reply that cannot be encoded
// (oversized frame) closes the connection so the peer sees an error
// instead of waiting forever.
func TestServeConnClosesOnUnwritableReply(t *testing.T) {
	huge := strings.Repeat("x", maxFrame+1)
	peer, done := serveTestConn(func(msg *Message, reply func(*Message, bool), cs *ConnState) {
		reply(&Message{Type: MsgErr, Seq: msg.Seq, Error: huge}, true)
	})
	if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(peer); err == nil {
		t.Fatal("peer received a reply that should have been unencodable")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not wind down after the write error")
	}
}

// TestServeConnWedgedPeerClosed: a peer that stops reading while
// required replies pile up past the queue bound gets its connection
// closed (it observes an error) instead of wedging the server.
func TestServeConnWedgedPeerClosed(t *testing.T) {
	flood := serveReplyBuffer + 8
	peer, done := serveTestConn(func(msg *Message, reply func(*Message, bool), cs *ConnState) {
		go func() {
			for i := 0; i < flood; i++ {
				reply(&Message{Type: MsgAck, Seq: msg.Seq}, true)
			}
		}()
	})
	if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Never read a reply: the writer blocks on the pipe, the queue
	// fills, and the overflowing required reply closes the conn.
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wedged peer did not get its connection closed")
	}
	// The peer's next write observes the closed pipe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := WriteMessage(peer, &Message{Type: MsgStatsReq, Seq: 2}); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("peer writes kept succeeding on a closed connection")
		}
	}
}
