package opusnet

import (
	"errors"
	"net"
	"time"
)

// acceptBackoff is the retry delay after a transient Accept error.
// Persistent errors (e.g. fd exhaustion) would otherwise busy-spin the
// loop and flood the log.
const acceptBackoff = 10 * time.Millisecond

// AcceptLoop runs the accept loop shared by every photonrail daemon
// (raild, the fleet coordinator, and the opusnet server itself):
// accept until the listener closes or closed() reports shutdown, and
// hand each connection to register.
//
// register owns the locked closed-vs-track decision: it returns false
// when the server began shutting down between Accept and registration,
// and the loop then closes the connection and exits. Otherwise
// register is expected to track the connection and start its handler.
//
// Accept errors other than listener closure are reported to logf (when
// non-nil) and retried after a short backoff.
func AcceptLoop(ln net.Listener, closed func() bool, logf func(err error), register func(net.Conn) bool) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if closed() {
				return
			}
			if logf != nil {
				logf(err)
			}
			time.Sleep(acceptBackoff)
			continue
		}
		if !register(conn) {
			_ = conn.Close()
			return
		}
	}
}
