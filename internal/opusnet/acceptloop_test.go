package opusnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// scriptedListener feeds AcceptLoop a fixed sequence of Accept
// results.
type scriptedListener struct {
	net.Listener
	script []acceptResult
	i      int
}

type acceptResult struct {
	conn net.Conn
	err  error
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.i >= len(l.script) {
		return nil, net.ErrClosed
	}
	r := l.script[l.i]
	l.i++
	return r.conn, r.err
}

// stubConn only needs Close for these tests.
type stubConn struct {
	net.Conn
	closed bool
}

func (c *stubConn) Close() error {
	c.closed = true
	return nil
}

func TestAcceptLoopHandsConnsToRegister(t *testing.T) {
	a, b := &stubConn{}, &stubConn{}
	ln := &scriptedListener{script: []acceptResult{{conn: a}, {conn: b}}}
	var got []net.Conn
	AcceptLoop(ln,
		func() bool { return false },
		nil,
		func(conn net.Conn) bool {
			got = append(got, conn)
			return true
		})
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("register saw %v, want [a b]", got)
	}
}

func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	transient := errors.New("too many open files")
	c := &stubConn{}
	ln := &scriptedListener{script: []acceptResult{{err: transient}, {conn: c}}}
	var logged []error
	var got int
	AcceptLoop(ln,
		func() bool { return false },
		func(err error) { logged = append(logged, err) },
		func(conn net.Conn) bool {
			got++
			return true
		})
	if got != 1 {
		t.Fatalf("register ran %d times, want 1 (after retrying the transient error)", got)
	}
	if len(logged) != 1 || !errors.Is(logged[0], transient) {
		t.Fatalf("logged %v, want the transient error once", logged)
	}
}

func TestAcceptLoopStopsWhenClosedReports(t *testing.T) {
	// A non-closure error with closed() true must exit without logging
	// or retrying — the shutdown path.
	ln := &scriptedListener{script: []acceptResult{{err: errors.New("boom")}, {conn: &stubConn{}}}}
	var logged int
	AcceptLoop(ln,
		func() bool { return true },
		func(err error) { logged++ },
		func(conn net.Conn) bool { t.Fatal("register after shutdown"); return false })
	if logged != 0 {
		t.Fatalf("logged %d errors during shutdown, want 0", logged)
	}
	if ln.i != 1 {
		t.Fatalf("accept called %d times, want 1", ln.i)
	}
}

func TestAcceptLoopClosesConnWhenRegisterRefuses(t *testing.T) {
	c := &stubConn{}
	ln := &scriptedListener{script: []acceptResult{{conn: c}}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		AcceptLoop(ln,
			func() bool { return true },
			nil,
			func(conn net.Conn) bool { return false })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptLoop did not exit after register refused")
	}
	if !c.closed {
		t.Fatal("refused connection was not closed")
	}
}
