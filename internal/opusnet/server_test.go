package opusnet

import (
	"net"
	"testing"
	"time"
)

// TestDeadConnectionDoesNotDeadlockServer is the regression test for
// the reply-under-mutex deadlock: dispatch used to hold s.mu while
// sending on the per-connection out channel, so once a connection's
// writer stopped consuming (dead or wedged socket) and the buffer
// filled, the next reply blocked forever with the server mutex held —
// wedging every other connection process-wide.
//
// The test drives one connection over net.Pipe (fully synchronous, so
// the writer goroutine is wedged the moment the test stops reading),
// parks a grant on it, floods it with more replies than the buffer
// holds, and then requires a healthy TCP client to still complete a
// full register/acquire/stats round.
func TestDeadConnectionDoesNotDeadlockServer(t *testing.T) {
	s := newTestServer(t, 0)
	p1, p2 := net.Pipe()
	defer p2.Close()
	s.mu.Lock()
	s.conns[p1] = true
	s.mu.Unlock()
	s.wg.Add(1)
	go s.handle(p1)

	// Register rank 0's group, consuming the one reply we ever read:
	// after this the test never reads p2 again, so the connection's
	// writer blocks on its first reply and the out buffer only fills.
	if err := WriteMessage(p2, &Message{Type: MsgRegister, Seq: 1, Rank: 0, Group: "g", Ranks: []int{0, 4}}); err != nil {
		t.Fatal(err)
	}
	if ack, err := ReadMessage(p2); err != nil || ack.Type != MsgAck {
		t.Fatalf("register reply = %+v, %v", ack, err)
	}
	// Park a pending acquire so the eventual grant targets the dead
	// connection too.
	if err := WriteMessage(p2, &Message{Type: MsgAcquire, Seq: 2, Rank: 0, Rail: 0, Group: "g"}); err != nil {
		t.Fatal(err)
	}

	// Flood more replies than the buffer holds. Pre-fix, dispatch blocks
	// on reply ~replyBuffer+2 with s.mu held and this goroutine never
	// finishes (its pipe write waits on the stuck read loop). Post-fix
	// the server drops the overflow and closes the wedged connection, so
	// the flood either completes or fails fast with a write error — only
	// a timeout means the deadlock is back.
	floodDone := make(chan error, 1)
	go func() {
		for i := 0; i < replyBuffer+20; i++ {
			if err := WriteMessage(p2, &Message{Type: MsgStatsReq, Seq: uint64(100 + i)}); err != nil {
				floodDone <- err
				return
			}
		}
		floodDone <- nil
	}()
	select {
	case <-floodDone:
	case <-time.After(5 * time.Second):
		t.Fatal("server wedged ingesting requests from a non-reading connection (reply blocked under s.mu)")
	}

	// A healthy client must still get served, including the group grant
	// that also targets the dead connection.
	c4 := dialRank(t, s, 4)
	if err := c4.RegisterGroup("g", 0, 0, []int{0, 4}); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- c4.Acquire("g", 0) }()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy client's acquire blocked behind a dead connection")
	}
	// Kill the wedged client mid-everything; the server stays up.
	_ = p2.Close()
	if _, err := c4.Stats(); err != nil {
		t.Fatal(err)
	}
}
