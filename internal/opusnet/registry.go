package opusnet

import "fmt"

// payloadRegistry is the protocol's declarative payload ledger: for
// every message type, the wire tags of the Message payload pointers
// its frames may carry. A type mapping to nil rides on the envelope's
// scalar fields alone (Seq/Rank/Rail/Group/Error and friends).
//
// Adding a MsgType means touching three ledgers in this package — this
// map, the ValidatePayload switch, and the round-trip/fuzz seed corpus
// in fuzz_test.go. raillint's protoconsistency analyzer fails the
// build if any of the three is forgotten.
var payloadRegistry = map[MsgType][]string{
	MsgRegister:      nil,
	MsgAcquire:       nil,
	MsgRelease:       nil,
	MsgProvision:     nil,
	MsgStatsReq:      nil,
	MsgAck:           nil,
	MsgErr:           nil,
	MsgStatsResp:     {"stats", "cache"},
	MsgGridReq:       {"spec"},
	MsgGridProgress:  {"progress"},
	MsgGridResult:    {"grid"},
	MsgExpReq:        {"exp"},
	MsgExpProgress:   {"progress"},
	MsgExpResult:     {"expResult"},
	MsgCancel:        nil,
	MsgCellsReq:      {"cells"},
	MsgCellsResult:   {"cellsResult"},
	MsgFleetRegister: {"fleetReg"},
	MsgHeartbeat:     {"heartbeat"},
	MsgDrain:         {"drain"},
}

// presentPayloads lists the wire tags of the payload pointers set on
// m, in Message field order.
func presentPayloads(m *Message) []string {
	var out []string
	if m.Stats != nil {
		out = append(out, "stats")
	}
	if m.Spec != nil {
		out = append(out, "spec")
	}
	if m.Progress != nil {
		out = append(out, "progress")
	}
	if m.Grid != nil {
		out = append(out, "grid")
	}
	if m.Cache != nil {
		out = append(out, "cache")
	}
	if m.Exp != nil {
		out = append(out, "exp")
	}
	if m.ExpResult != nil {
		out = append(out, "expResult")
	}
	if m.Cells != nil {
		out = append(out, "cells")
	}
	if m.CellsResult != nil {
		out = append(out, "cellsResult")
	}
	if m.FleetReg != nil {
		out = append(out, "fleetReg")
	}
	if m.Heartbeat != nil {
		out = append(out, "heartbeat")
	}
	if m.DrainReq != nil {
		out = append(out, "drain")
	}
	return out
}

// ValidatePayload checks m's payload pointers against the protocol:
// the type must be known, every payload present must be one the type
// registered, and the type's primary payload must be present. It is a
// diagnostic for handlers and tests — ReadMessage deliberately does
// not call it, so wire acceptance is unchanged and a newer peer's
// extra payloads fail loudly at dispatch rather than silently at
// framing.
func ValidatePayload(m *Message) error {
	allowed, known := payloadRegistry[m.Type]
	if !known {
		return fmt.Errorf("opusnet: unknown message type %q", m.Type)
	}

	// The operational ledger: which payload each type cannot do
	// without. Response types carry their result; requests with a body
	// carry their spec; the rest are envelope-only.
	var required string
	switch m.Type {
	case MsgRegister, MsgAcquire, MsgRelease, MsgProvision, MsgStatsReq,
		MsgAck, MsgErr, MsgCancel:
		required = ""
	case MsgStatsResp:
		required = "stats"
	case MsgGridReq:
		required = "spec"
	case MsgGridProgress, MsgExpProgress:
		required = "progress"
	case MsgGridResult:
		required = "grid"
	case MsgExpReq:
		required = "exp"
	case MsgExpResult:
		required = "expResult"
	case MsgCellsReq:
		required = "cells"
	case MsgCellsResult:
		required = "cellsResult"
	case MsgFleetRegister:
		required = "fleetReg"
	case MsgHeartbeat:
		required = "heartbeat"
	case MsgDrain:
		required = "drain"
	default:
		return fmt.Errorf("opusnet: message type %q registered but not dispatched", m.Type)
	}

	present := presentPayloads(m)
	isAllowed := func(tag string) bool {
		for _, a := range allowed {
			if a == tag {
				return true
			}
		}
		return false
	}
	for _, tag := range present {
		if !isAllowed(tag) {
			return fmt.Errorf("opusnet: %s frame carries unregistered payload %q", m.Type, tag)
		}
	}
	if required != "" {
		for _, tag := range present {
			if tag == required {
				return nil
			}
		}
		return fmt.Errorf("opusnet: %s frame is missing its %q payload", m.Type, required)
	}
	return nil
}
