package opusnet

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"photonrail/internal/scenario"
)

// seedFrame encodes m as one frame for the fuzz corpus.
func seedFrame(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMessageRoundTrip feeds arbitrary bytes to the frame decoder and
// checks the codec invariants: decoding never panics; any byte stream
// the decoder accepts re-encodes to a frame that decodes to the same
// message (re-encode/re-decode fixpoint); and the re-encoded stream is
// fully consumed (framing stays self-delimiting). Seeds cover every
// message type, including the raild grid request/progress/result
// frames.
func FuzzMessageRoundTrip(f *testing.F) {
	seeds := []*Message{
		{Type: MsgRegister, Seq: 1, Rank: 3, Rail: 0, Group: "fsdp.s0.r0", Ranks: []int{0, 4, 8, 12}, Axis: 1},
		{Type: MsgAcquire, Seq: 2, Rank: 4, Rail: 1, Group: "tp"},
		{Type: MsgRelease, Seq: 3, Rank: 4, Rail: 1, Group: "tp"},
		{Type: MsgProvision, Seq: 4, Rank: 0, Rail: 0, Group: "pp"},
		{Type: MsgAck, Seq: 5},
		{Type: MsgErr, Seq: 6, Error: "circuit conflict"},
		{Type: MsgStatsReq, Seq: 7},
		{Type: MsgStatsResp, Seq: 8, Stats: &StatsPayload{Reconfigurations: 9, FastGrants: 12, QueuedGrants: 3, BlockedTimeNS: 1e6, ProvisionedRequests: 2}},
		{Type: MsgGridReq, Seq: 9, Spec: &scenario.Spec{
			Name: "fig8-5d", Models: []string{"Llama3-8B", "Mixtral-8x7B"}, GPUs: []string{"A100"},
			Fabrics:      []string{"electrical", "photonic", "provisioned", "static"},
			LatenciesMS:  []float64{1, 10, 100},
			Parallelisms: []scenario.Parallelism{{TP: 4, DP: 2, PP: 2}, {TP: 4, DP: 1, CP: 2, PP: 2}},
			Schedules:    []string{"1F1B"}, NICPorts: 2, NICPerPortBps: 200e9,
			Microbatches: 12, MicrobatchSize: 2, Iterations: 2,
		}},
		{Type: MsgGridProgress, Seq: 10, Progress: &GridProgress{Done: 17, Total: 48}},
		{Type: MsgGridResult, Seq: 11, Grid: &GridResultPayload{
			Name: "fig8-5d",
			Rows: []scenario.Row{
				{Cell: "a/b/tp4-dp2-pp2/1F1B/photonic@10ms", Model: "Llama3-8B", GPU: "A100",
					Fabric: "photonic", LatencyMS: 10, TP: 4, DP: 2, PP: 2, Schedule: "1F1B",
					Status: "ok", MeanIterationSeconds: 12.3, Slowdown: 1.002, Reconfigurations: 52},
				{Cell: "a/b/tp4-dp2-pp2/1F1B/static", Status: "skip", SkipReason: "C2"},
			},
			Shared: true,
		}},
		{Type: MsgStatsResp, Seq: 12, Cache: &CacheStatsPayload{Hits: 100, Misses: 7, Evictions: 3, InFlight: 2, GridsExecuted: 4, GridsDeduped: 9, ExpsExecuted: 2, ExpsDeduped: 5}},
		{Type: MsgExpReq, Seq: 13, Exp: &ExpRequestPayload{
			Name: "fig8", TimeoutMS: 5000, Iterations: 2, LatenciesMS: []float64{0, 10, 100}, Rail: 1}},
		{Type: MsgExpReq, Seq: 14, Exp: &ExpRequestPayload{
			Name: "grid", Grid: &scenario.Spec{Name: "custom", Models: []string{"Llama3-8B"}, LatenciesMS: []float64{5}}}},
		{Type: MsgExpProgress, Seq: 13, Progress: &GridProgress{Done: 2, Total: 3}},
		{Type: MsgExpResult, Seq: 13, ExpResult: &ExpResultPayload{
			Name: "fig8", Grid: "", Rendered: "Fig. 8\ncol  col\n", RenderedCSV: "a,b\n1,2\n",
			RowsJSON: "{\n  \"iterations\": 2\n}\n", Shared: true}},
		{Type: MsgCancel, Seq: 13},
		{Type: MsgCellsReq, Seq: 15, Cells: &CellsRequestPayload{
			Spec:    &scenario.Spec{Name: "fig8-5d", Models: []string{"Llama3-8B"}, LatenciesMS: []float64{1, 10}},
			Indices: []int{0, 3, 7, 41}, TimeoutMS: 30_000}},
		{Type: MsgCellsResult, Seq: 15, CellsResult: &CellsResultPayload{
			Name: "fig8-5d", Indices: []int{0, 3},
			Rows: []scenario.Row{
				{Cell: "a/b/tp4-dp2-pp2/1F1B/electrical", Status: "ok", MeanIterationSeconds: 11.5, Slowdown: 1},
				{Cell: "a/b/tp4-dp2-pp2/1F1B/static", Status: "skip", SkipReason: "C2"},
			},
			Shared: true}},
		{Type: MsgStatsResp, Seq: 16, Cache: &CacheStatsPayload{
			Hits: 3, Misses: 2, GridsExecuted: 1, CellsExecuted: 17, CellsDeduped: 2,
			Backends: []BackendStatsPayload{
				{Addr: "127.0.0.1:9090", Healthy: true, Cells: 12},
				{Addr: "127.0.0.1:9091", Healthy: false, Cells: 5, Failures: 1},
			}}},
		{Type: MsgFleetRegister, Seq: 17, FleetReg: &FleetRegisterPayload{
			ID: "node-a", Addr: "10.0.0.7:9090", Capacity: 16}},
		{Type: MsgHeartbeat, Seq: 18, Heartbeat: &HeartbeatPayload{
			ID: "node-a", Capacity: 16,
			Stats: &CacheStatsPayload{Hits: 9, Misses: 4, InFlight: 1, CellsExecuted: 6}}},
		{Type: MsgDrain, Seq: 19, DrainReq: &DrainPayload{ID: "node-a", Reason: "sigterm"}},
	}
	for _, m := range seeds {
		f.Add(seedFrame(f, m))
	}
	// Adversarial seeds: truncated header, zero length, oversized length,
	// non-JSON body, two concatenated frames.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', 'x'})
	f.Add(append(seedFrame(f, &Message{Type: MsgAck, Seq: 1}), seedFrame(f, &Message{Type: MsgErr, Seq: 2, Error: "e"})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		msg, err := ReadMessage(r)
		if err != nil {
			return // rejected input: only the no-panic invariant applies
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v\nmsg: %+v", err, msg)
		}
		again, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		// Compare canonical encodings, not structs: an accepted "[]"
		// decodes to an empty slice that re-decodes to nil — the same
		// wire bytes either way.
		first, err := json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip diverged:\n first: %s\nsecond: %s", first, second)
		}
		if buf.Len() != 0 {
			t.Fatalf("re-encoded frame left %d trailing bytes", buf.Len())
		}
	})
}

// TestGridMessagesRoundTrip pins the raild frames outside the fuzzer:
// exact field-level equality through the wire, including nested spec,
// row, and experiment payloads. The experiment result's pre-rendered
// strings must survive verbatim (they are the client's output bytes).
func TestGridMessagesRoundTrip(t *testing.T) {
	spec := scenario.SpecOf(scenario.Fig8Grid5D())
	msgs := []*Message{
		{Type: MsgGridReq, Seq: 21, Spec: &spec},
		{Type: MsgGridProgress, Seq: 21, Progress: &GridProgress{Done: 3, Total: 48}},
		{Type: MsgGridResult, Seq: 21, Grid: &GridResultPayload{Name: "fig8-5d", Shared: true,
			Rows: []scenario.Row{{Cell: "c", Status: "ok", Slowdown: 1.25}}}},
		{Type: MsgStatsResp, Seq: 22, Cache: &CacheStatsPayload{Hits: 5, GridsExecuted: 1, GridsDeduped: 1, ExpsExecuted: 3, ExpsDeduped: 2}},
		{Type: MsgExpReq, Seq: 23, Exp: &ExpRequestPayload{
			Name: "window-analysis", TimeoutMS: 30_000, WindowIterations: 4, GPUs: 1024, Grid: &spec}},
		{Type: MsgExpProgress, Seq: 23, Progress: &GridProgress{Done: 1, Total: 9}},
		{Type: MsgExpResult, Seq: 23, ExpResult: &ExpResultPayload{
			Name: "window-analysis", Grid: "fig8-5d",
			Rendered:    "Fig. 4a: window-size CDF per rail (ms)\nRail  N\n----  -\n\n",
			RenderedCSV: "rail,n\nrail1,6\n",
			RowsJSON:    "{\n  \"fractionOver1ms\": 1\n}\n",
			Shared:      true}},
		{Type: MsgCancel, Seq: 23},
		{Type: MsgCellsReq, Seq: 24, Cells: &CellsRequestPayload{
			Spec: &spec, Indices: []int{1, 2, 40}, TimeoutMS: 60_000}},
		{Type: MsgCellsResult, Seq: 24, CellsResult: &CellsResultPayload{
			Name: "fig8-5d", Indices: []int{1, 2, 40},
			Rows:   []scenario.Row{{Cell: "c1", Status: "ok", Slowdown: 1.5}, {Cell: "c2", Status: "skip", SkipReason: "EP"}, {Cell: "c40", Status: "ok"}},
			Shared: true}},
		{Type: MsgStatsResp, Seq: 25, Cache: &CacheStatsPayload{
			CellsExecuted: 9, CellsDeduped: 1,
			Backends: []BackendStatsPayload{{Addr: "b0", Healthy: true, Cells: 9, Failures: 2}}}},
		{Type: MsgFleetRegister, Seq: 26, FleetReg: &FleetRegisterPayload{
			ID: "node-b", Addr: "b1", Capacity: 4}},
		{Type: MsgHeartbeat, Seq: 27, Heartbeat: &HeartbeatPayload{
			ID: "node-b", Capacity: 4, Stats: &CacheStatsPayload{Misses: 3, CellsExecuted: 5}}},
		{Type: MsgDrain, Seq: 28, DrainReq: &DrainPayload{ID: "node-b", Reason: "-drain"}},
		{Type: MsgStatsResp, Seq: 29, Cache: &CacheStatsPayload{
			Backends: []BackendStatsPayload{
				{Addr: "b0", Healthy: true, Cells: 9, ID: "s0", Capacity: 1, State: "healthy", Static: true},
				{Addr: "b1", Healthy: true, Cells: 5, ID: "node-b", Capacity: 4, State: "draining", LastHeartbeatAgeMS: 1200},
			}}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverged:\n got: %s\nwant: %s", dump(t, got), dump(t, want))
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("stream not fully consumed: %v", err)
	}
}

func dump(t *testing.T, m *Message) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
