package opusnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail/internal/opus"
	"photonrail/internal/units"
)

// Client is one rank's shim connection to the Opus controller.
type Client struct {
	rank int
	conn net.Conn

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan *Message
	readErr error
	closed  chan struct{}
}

// Dial connects rank's shim to the controller at addr.
func Dial(addr string, rank int) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		rank:    rank,
		conn:    conn,
		pending: make(map[uint64]chan *Message),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down and joins the read loop; outstanding
// calls fail. Closing the socket forces the loop's pending ReadMessage
// to error out, so the receive cannot hang — and once Close returns, no
// goroutine of this client is left running (the raild client leaked its
// reader here before PR 5-style joining; raillint's goroutinejoin
// guards the shape now).
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.closed
	return err
}

// Rank returns the client's global rank.
func (c *Client) Rank() int { return c.rank }

func (c *Client) readLoop() {
	for {
		msg, err := ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = make(map[uint64]chan *Message)
			c.mu.Unlock()
			close(c.closed)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		if ok {
			delete(c.pending, msg.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// call sends a request and blocks for its reply.
func (c *Client) call(m *Message) (*Message, error) {
	ch := make(chan *Message, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("opusnet: connection down: %w", err)
	}
	c.seq++
	m.Seq = c.seq
	m.Rank = c.rank
	c.pending[m.Seq] = ch
	c.mu.Unlock()
	if err := WriteMessage(c.conn, m); err != nil {
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("opusnet: connection closed awaiting reply")
	}
	if resp.Type == MsgErr {
		return nil, fmt.Errorf("opusnet: %s", resp.Error)
	}
	return resp, nil
}

// RegisterGroup declares a communication group in the controller's
// comm-group table. Every member's shim registers the same definition.
func (c *Client) RegisterGroup(name string, rail int, axis int, ranks []int) error {
	_, err := c.call(&Message{Type: MsgRegister, Group: name, Rail: rail, Axis: axis, Ranks: ranks})
	return err
}

// Acquire blocks until the group's circuits are granted to this rank.
// Per the §4.1 group-sync step, the grant arrives only once every member
// rank has called Acquire and the rail reconfigured if needed.
func (c *Client) Acquire(group string, rail int) error {
	_, err := c.call(&Message{Type: MsgAcquire, Group: group, Rail: rail})
	return err
}

// Release reports this rank's transfer on the group's circuits is done.
func (c *Client) Release(group string, rail int) error {
	_, err := c.call(&Message{Type: MsgRelease, Group: group, Rail: rail})
	return err
}

// Provision sends the shim's speculative reconfiguration intent.
func (c *Client) Provision(group string, rail int) error {
	_, err := c.call(&Message{Type: MsgProvision, Group: group, Rail: rail})
	return err
}

// Stats fetches controller telemetry.
func (c *Client) Stats() (opus.Stats, error) {
	resp, err := c.call(&Message{Type: MsgStatsReq})
	if err != nil {
		return opus.Stats{}, err
	}
	if resp.Stats == nil {
		return opus.Stats{}, fmt.Errorf("opusnet: stats reply without payload")
	}
	return opus.Stats{
		Reconfigurations:    resp.Stats.Reconfigurations,
		FastGrants:          resp.Stats.FastGrants,
		QueuedGrants:        resp.Stats.QueuedGrants,
		BlockedTime:         units.Duration(resp.Stats.BlockedTimeNS),
		ProvisionedRequests: resp.Stats.ProvisionedRequests,
	}, nil
}
