package opusnet

import (
	"fmt"
	"sort"
	"sync"

	"photonrail/internal/topo"
	"photonrail/internal/workload"
)

// Replay drives a workload program's scale-out collectives through a
// live controller at addr: one shim client per participating GPU, every
// group registered, and every collective acquired and released in
// dependency order. It exercises the full wire protocol — registration,
// group sync, FC-FS reconfiguration, release — against the real server,
// making it an end-to-end integration check of the control plane against
// the same programs the simulator runs.
//
// Replay does not simulate time: collectives complete as fast as the
// controller grants circuits. It returns the number of collectives
// driven.
func Replay(addr string, p *workload.Program) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// One client per GPU that participates in any scale-out collective.
	clients := make(map[topo.GPUID]*Client)
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	clientFor := func(g topo.GPUID) (*Client, error) {
		if c, ok := clients[g]; ok {
			return c, nil
		}
		c, err := Dial(addr, int(g))
		if err != nil {
			return nil, err
		}
		clients[g] = c
		return c, nil
	}

	// Register every group once per member.
	groupNames := make([]string, 0, len(p.Groups))
	for name := range p.Groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		g := p.Groups[name]
		rail := int(p.Cluster.Rail(g.Ranks[0]))
		members := make([]int, len(g.Ranks))
		for i, r := range g.Ranks {
			members[i] = int(r)
		}
		for _, r := range g.Ranks {
			c, err := clientFor(r)
			if err != nil {
				return 0, err
			}
			if err := c.RegisterGroup(name, rail, int(g.Axis), members); err != nil {
				return 0, fmt.Errorf("opusnet: register %s for rank %d: %w", name, r, err)
			}
		}
	}

	// Walk the DAG in dependency order; compute tasks complete
	// instantly, collectives acquire+release over the wire. Collectives
	// whose dependencies are met run concurrently (their group-sync and
	// FC-FS ordering is the controller's job).
	remaining := make([]int, len(p.Tasks))
	ready := make(chan workload.TaskID, len(p.Tasks))
	var mu sync.Mutex
	for _, t := range p.Tasks {
		remaining[t.ID] = len(t.Deps)
		if len(t.Deps) == 0 {
			ready <- t.ID
		}
	}
	succ := make([][]workload.TaskID, len(p.Tasks))
	for _, t := range p.Tasks {
		for _, d := range t.Deps {
			succ[d] = append(succ[d], t.ID)
		}
	}
	complete := func(id workload.TaskID) {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range succ[id] {
			remaining[s]--
			if remaining[s] == 0 {
				ready <- s //lint:allow lockedblock ready is buffered to len(p.Tasks) and each task enqueues once, so the send never blocks
			}
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	// Ops of one communication group serialize (NCCL orders kernels per
	// communicator); concurrent acquires for the same group by one rank
	// would also violate the server's pending-acquire rule.
	groupMu := make(map[string]*sync.Mutex, len(p.Groups))
	for name := range p.Groups {
		groupMu[name] = &sync.Mutex{}
	}
	collectives := 0
	done := 0
	for done < len(p.Tasks) {
		select {
		case err := <-errCh:
			return collectives, err
		case id := <-ready:
			done++
			t := p.Tasks[id]
			if !t.IsCollective() || t.ScaleUp {
				complete(id) // compute and scale-up ops are immediate
				continue
			}
			collectives++
			wg.Add(1)
			go func(t *workload.Task) {
				defer wg.Done()
				mu := groupMu[t.Group.Name]
				mu.Lock()
				defer mu.Unlock()
				rail := int(t.Rail)
				// Every member of the group acquires (group sync needs
				// all of them), then releases.
				var gwg sync.WaitGroup
				for _, r := range t.Group.Ranks {
					c := clients[r]
					gwg.Add(1)
					go func(c *Client) {
						defer gwg.Done()
						if err := c.Acquire(t.Group.Name, rail); err != nil {
							fail(fmt.Errorf("opusnet: %s acquire: %w", t.Label, err))
							return
						}
						if err := c.Release(t.Group.Name, rail); err != nil {
							fail(fmt.Errorf("opusnet: %s release: %w", t.Label, err))
						}
					}(c)
				}
				gwg.Wait()
				complete(t.ID)
			}(t)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return collectives, err
	default:
	}
	return collectives, nil
}
