package opusnet

import (
	"context"
	"net"
	"sync"
)

// serveReplyBuffer bounds a served connection's reply queue: results
// and progress frames queue here while the socket drains.
const serveReplyBuffer = 256

// ConnState tracks one served connection's cancellable request waits:
// each outstanding request's waiter context is cancellable by a
// MsgCancel frame carrying the request's Seq, and tearing the
// connection down cancels them all, so a dropped client stops holding
// executions alive. Both raild (internal/railserve) and the fleet
// coordinator (internal/railfleet) rely on it for the shared
// cancellation contract.
type ConnState struct {
	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
	closed  bool
}

// Register installs a request's cancel func; it reports false (without
// installing) when the connection is already torn down.
func (cs *ConnState) Register(seq uint64, cancel context.CancelFunc) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return false
	}
	cs.cancels[seq] = cancel
	return true
}

// Unregister drops a completed request's cancel func.
func (cs *ConnState) Unregister(seq uint64) {
	cs.mu.Lock()
	delete(cs.cancels, seq)
	cs.mu.Unlock()
}

// CancelSeq fires the cancel for one outstanding request; unknown or
// completed Seqs are ignored (the cancel raced the result).
func (cs *ConnState) CancelSeq(seq uint64) {
	cs.mu.Lock()
	cancel := cs.cancels[seq]
	cs.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// teardown cancels every outstanding wait on a dying connection.
func (cs *ConnState) teardown() {
	cs.mu.Lock()
	cs.closed = true
	cancels := make([]context.CancelFunc, 0, len(cs.cancels))
	for _, c := range cs.cancels {
		cancels = append(cancels, c) //lint:allow maporder a set of cancel funcs; invocation order is immaterial
	}
	cs.cancels = make(map[uint64]context.CancelFunc)
	cs.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// ServeConn drives the server side of one framed connection: it reads
// messages until the peer disconnects and hands each to dispatch along
// with a reply function and the connection's ConnState.
//
// Replies are serialized through a per-connection writer goroutine so
// fan-out (which may run on worker pools) never blocks on the socket.
// A required frame (result, error) that cannot be queued — the peer is
// dead or wedged — closes the connection, so the peer sees an error
// instead of waiting forever on a dropped reply; advisory frames
// (required=false, e.g. progress ticks) are dropped silently. Late
// replies after the read loop exits are dropped too (the peer is gone
// either way). ServeConn returns when the read side ends, after the
// writer has drained and every outstanding wait has been cancelled;
// the caller still owns (and closes) conn.
//
// dispatch must not block the read loop: long work belongs on its own
// goroutine, replying via the provided function when done.
func ServeConn(conn net.Conn, dispatch func(msg *Message, reply func(*Message, bool), cs *ConnState)) {
	out := make(chan *Message, serveReplyBuffer)
	var wout sync.WaitGroup
	wout.Add(1)
	go func() {
		defer wout.Done()
		dead := false
		for m := range out {
			if dead {
				continue // drain so senders never block on a dead socket
			}
			if err := WriteMessage(conn, m); err != nil {
				// The error may be pre-write (e.g. an oversized frame)
				// with the socket itself still healthy; close it anyway,
				// because the peer is now missing a reply it would wait
				// on forever.
				dead = true
				_ = conn.Close()
			}
		}
	}()
	// Fan-out a request subscribed to may still broadcast after the
	// read loop exits; sending on the closed writer channel would
	// panic. sendClosed gates every reply.
	var sendMu sync.Mutex
	sendClosed := false
	defer wout.Wait()
	defer func() {
		sendMu.Lock()
		sendClosed = true
		sendMu.Unlock()
		close(out)
	}()
	reply := func(m *Message, required bool) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if sendClosed {
			return
		}
		select {
		case out <- m:
		default:
			if required {
				// serveReplyBuffer outstanding frames: the peer is dead
				// or wedged. Close the connection so it sees an error
				// instead of waiting forever on the dropped reply.
				_ = conn.Close()
			}
			// Advisory frames are dropped silently.
		}
	}
	cs := &ConnState{cancels: make(map[uint64]context.CancelFunc)}
	defer cs.teardown()
	for {
		msg, err := ReadMessage(conn)
		if err != nil {
			return
		}
		dispatch(msg, reply, cs)
	}
}
