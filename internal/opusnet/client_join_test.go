package opusnet

import (
	"net"
	"testing"
	"time"
)

// TestClientCloseJoinsReadLoop pins the PR 5-class fix in Client.Close:
// after Close returns, the read loop has fully exited (its error path
// ran and recorded the connection error), so no client goroutine
// outlives the handle.
func TestClientCloseJoinsReadLoop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	c, err := Dial(ln.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case conn := <-accepted:
		defer conn.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("server never accepted the dial")
	}

	done := make(chan error, 1)
	go func() { done <- c.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; read-loop join hangs")
	}

	// The join guarantee: the loop's teardown already happened by the
	// time Close returned — no sleep or retry needed to observe it.
	c.mu.Lock()
	readErr := c.readErr
	c.mu.Unlock()
	if readErr == nil {
		t.Fatal("Close returned before the read loop recorded its exit")
	}

	// Double Close stays safe: the joined channel is closed, so the
	// second receive returns immediately.
	if err := c.Close(); err == nil {
		t.Fatal("second Close reported nil; want the net.ErrClosed from the already-closed conn")
	}
}
