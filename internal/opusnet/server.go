package opusnet

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"photonrail/internal/collective"
	"photonrail/internal/opus"
	"photonrail/internal/parallelism"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

// realClock drives the opus controller with wall-clock timers. All
// callbacks run under the server mutex, preserving the controller's
// single-threaded discipline.
type realClock struct {
	mu    *sync.Mutex
	start time.Time
}

func (c *realClock) Now() units.Duration { return units.Duration(time.Since(c.start).Nanoseconds()) }

func (c *realClock) After(d units.Duration, fn func()) {
	time.AfterFunc(time.Duration(d), func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
}

func (c *realClock) Immediately(fn func()) {
	// The controller defers queue processing through Immediately so that
	// same-instant requests coalesce; in real time "the same instant" is
	// the current mutex critical section, so running inline is correct —
	// the caller already holds the lock.
	fn()
}

// Server is the Opus controller as a TCP service.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	ctrl   *opus.Controller
	plan   opus.PortPlan
	groups map[string]*collective.Group // the comm-group table (§4.1)
	// pendingSync[group] collects per-rank acquire arrivals until the
	// whole group has checked in (the group-sync step).
	pendingSync map[string]*groupSync

	wg     sync.WaitGroup
	conns  map[net.Conn]bool
	closed bool
}

type groupSync struct {
	waiting map[int]func(*Message) // rank -> reply sender
	seqs    map[int]uint64
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Cluster shapes the rails and port plan.
	Cluster *topo.Cluster
	// ReconfigLatency is the emulated OCS switching time.
	ReconfigLatency units.Duration
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
}

// NewServer starts the controller and listens. Close stops it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("opusnet: nil cluster")
	}
	s := &Server{
		groups:      make(map[string]*collective.Group),
		pendingSync: make(map[string]*groupSync),
		conns:       make(map[net.Conn]bool),
	}
	clock := &realClock{mu: &s.mu, start: time.Now()}
	plan := opus.PortPlan{
		Cluster:     cfg.Cluster,
		PortsPerGPU: cfg.Cluster.NIC.Ports,
		RingPairs:   cfg.Cluster.NIC.Ports / 2,
	}
	ctrl, err := opus.NewController(clock, plan, cfg.ReconfigLatency)
	if err != nil {
		return nil, err
	}
	s.ctrl = ctrl
	s.plan = plan
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, tears down live connections, and waits for
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	AcceptLoop(s.ln,
		func() bool {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.closed
		},
		func(err error) { log.Printf("opusnet: accept: %v", err) },
		func(conn net.Conn) bool {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return false
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go s.handle(conn)
			return true
		})
}

// replyBuffer bounds the per-connection reply queue. A healthy shim has
// at most a handful of outstanding requests, so a connection this many
// replies behind has a dead or wedged socket.
const replyBuffer = 64

// handle serves one shim connection. Replies for a connection are
// serialized through a per-connection writer goroutine so that grant
// callbacks (which fire under the server mutex) never block on the
// socket.
//
// Two rules keep a sick connection from wedging the whole server:
// the writer keeps draining out after a socket error (discarding
// messages) until the channel closes, and reply never blocks — if the
// buffer is full the connection is dead or wedged, so the reply is
// dropped and the connection closed (surfacing an error to the peer)
// rather than parked under s.mu, where it would deadlock every other
// connection's dispatch.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	out := make(chan *Message, replyBuffer)
	var wout sync.WaitGroup
	wout.Add(1)
	go func() {
		defer wout.Done()
		dead := false
		for m := range out {
			if dead {
				continue // drain so reply senders never block on a dead socket
			}
			if err := WriteMessage(conn, m); err != nil {
				dead = true
			}
		}
	}()
	defer wout.Wait()
	defer close(out)
	reply := func(m *Message) {
		defer func() { recover() }() // connection torn down mid-grant
		select {
		case out <- m:
		default:
			// replyBuffer outstanding replies: the peer is dead or
			// wedged. Close the connection so its shim sees an error
			// instead of waiting forever on the dropped reply (and so
			// the read loop tears the handler down).
			_ = conn.Close()
		}
	}
	for {
		msg, err := ReadMessage(conn)
		if err != nil {
			return
		}
		s.dispatch(msg, reply)
	}
}

func (s *Server) dispatch(msg *Message, reply func(*Message)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := func(err error) {
		reply(&Message{Type: MsgErr, Seq: msg.Seq, Error: err.Error()})
	}
	switch msg.Type {
	case MsgRegister:
		if _, err := s.registerLocked(msg); err != nil {
			fail(err)
			return
		}
		reply(&Message{Type: MsgAck, Seq: msg.Seq})
	case MsgAcquire:
		if err := s.acquireLocked(msg, reply); err != nil {
			fail(err)
		}
	case MsgRelease:
		g, ok := s.groups[msg.Group]
		if !ok {
			fail(fmt.Errorf("opusnet: release of unknown group %q", msg.Group))
			return
		}
		if err := s.ctrl.Release(topo.RailID(msg.Rail), g); err != nil {
			fail(err)
			return
		}
		reply(&Message{Type: MsgAck, Seq: msg.Seq})
	case MsgProvision:
		g, ok := s.groups[msg.Group]
		if !ok {
			fail(fmt.Errorf("opusnet: provision of unknown group %q", msg.Group))
			return
		}
		if err := s.ctrl.Provision(topo.RailID(msg.Rail), g); err != nil {
			fail(err)
			return
		}
		reply(&Message{Type: MsgAck, Seq: msg.Seq})
	case MsgStatsReq:
		st := s.ctrl.Stats()
		reply(&Message{Type: MsgStatsResp, Seq: msg.Seq, Stats: &StatsPayload{
			Reconfigurations:    st.Reconfigurations,
			FastGrants:          st.FastGrants,
			QueuedGrants:        st.QueuedGrants,
			BlockedTimeNS:       int64(st.BlockedTime),
			ProvisionedRequests: st.ProvisionedRequests,
		}})
	default:
		fail(fmt.Errorf("opusnet: unknown message type %q", msg.Type))
	}
}

// registerLocked installs a group in the comm-group table, verifying
// idempotent re-registration.
func (s *Server) registerLocked(msg *Message) (*collective.Group, error) {
	if msg.Group == "" || len(msg.Ranks) < 2 {
		return nil, fmt.Errorf("opusnet: register needs a name and at least 2 ranks")
	}
	ranks := make([]topo.GPUID, len(msg.Ranks))
	for i, r := range msg.Ranks {
		ranks[i] = topo.GPUID(r)
	}
	g := &collective.Group{Name: msg.Group, Axis: parallelism.Axis(msg.Axis), Ranks: ranks}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if _, err := s.plan.CircuitsFor(g); err != nil {
		return nil, err
	}
	if old, ok := s.groups[msg.Group]; ok {
		if len(old.Ranks) != len(g.Ranks) {
			return nil, fmt.Errorf("opusnet: group %q re-registered with different members", msg.Group)
		}
		for i := range old.Ranks {
			if old.Ranks[i] != g.Ranks[i] {
				return nil, fmt.Errorf("opusnet: group %q re-registered with different members", msg.Group)
			}
		}
		return old, nil
	}
	s.groups[msg.Group] = g
	return g, nil
}

// acquireLocked implements group sync: the controller-level Acquire
// fires only when every member rank has asked, and its grant
// acknowledges all of them (§4.1 steps 2–5).
func (s *Server) acquireLocked(msg *Message, reply func(*Message)) error {
	g, ok := s.groups[msg.Group]
	if !ok {
		return fmt.Errorf("opusnet: acquire of unregistered group %q", msg.Group)
	}
	if !g.Contains(topo.GPUID(msg.Rank)) {
		return fmt.Errorf("opusnet: rank %d is not a member of %q", msg.Rank, msg.Group)
	}
	sync, ok := s.pendingSync[msg.Group]
	if !ok {
		sync = &groupSync{waiting: make(map[int]func(*Message)), seqs: make(map[int]uint64)}
		s.pendingSync[msg.Group] = sync
	}
	if _, dup := sync.waiting[msg.Rank]; dup {
		return fmt.Errorf("opusnet: rank %d already has a pending acquire for %q", msg.Rank, msg.Group)
	}
	sync.waiting[msg.Rank] = reply
	sync.seqs[msg.Rank] = msg.Seq
	if len(sync.waiting) < g.Size() {
		return nil // wait for the slowest rank (group sync)
	}
	delete(s.pendingSync, msg.Group)
	// One controller-level acquisition per member keeps the
	// active-transfer accounting symmetric with per-rank releases.
	// Ranks are issued in sorted order: the controller runs grant
	// callbacks in attach order, so iterating the waiting map directly
	// would make queue order and grant telemetry vary run to run.
	ranks := make([]int, 0, len(sync.waiting))
	for rank := range sync.waiting {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		send := sync.waiting[rank]
		seq := sync.seqs[rank]
		cb := func() { send(&Message{Type: MsgAck, Seq: seq}) }
		if err := s.ctrl.Acquire(topo.RailID(msg.Rail), g, cb); err != nil {
			return err
		}
	}
	return nil
}
