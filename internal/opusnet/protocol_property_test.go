package opusnet

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

// Property: WriteMessage/ReadMessage round-trip any message, and
// consecutive frames on one stream stay delimited.
func TestProtocolRoundTripProperty(t *testing.T) {
	f := func(typ string, seq uint64, rank, rail int, group string, ranks []int, errStr string) bool {
		in := &Message{
			Type:  MsgType(typ),
			Seq:   seq,
			Rank:  rank,
			Rail:  rail,
			Group: group,
			Ranks: ranks,
			Error: errStr,
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			return false
		}
		// A second frame back-to-back.
		second := &Message{Type: MsgAck, Seq: seq + 1}
		if err := WriteMessage(&buf, second); err != nil {
			return false
		}
		out, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		if out.Type != in.Type || out.Seq != in.Seq || out.Rank != in.Rank ||
			out.Rail != in.Rail || out.Group != in.Group || out.Error != in.Error {
			return false
		}
		if len(out.Ranks) != len(in.Ranks) {
			return false
		}
		for i := range in.Ranks {
			if out.Ranks[i] != in.Ranks[i] {
				return false
			}
		}
		out2, err := ReadMessage(&buf)
		if err != nil || out2.Type != MsgAck || out2.Seq != seq+1 {
			return false
		}
		// Stream fully consumed.
		_, err = ReadMessage(&buf)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: group-sync grants are issued to member ranks in sorted rank
// order, every time. The controller runs grant callbacks in attach
// order, so acquireLocked iterating its waiting map directly made queue
// order and grant telemetry vary run to run; issuing per-rank Acquires
// in sorted order pins it. Ranks arrive in a scrambled order and the
// check repeats across fresh servers to catch map-iteration randomness.
func TestAcquireGrantOrderProperty(t *testing.T) {
	members := []int{0, 4, 8, 12} // rail 0 of the 4x4 cluster
	arrival := []int{12, 0, 8, 4}
	for trial := 0; trial < 10; trial++ {
		s := newTestServer(t, 0)
		fatal := make(chan string, 8)
		granted := make(chan int, len(members))
		s.dispatch(&Message{Type: MsgRegister, Seq: 1, Rank: 0, Group: "g", Ranks: members},
			func(m *Message) {
				if m.Type == MsgErr {
					fatal <- m.Error
				}
			})
		for i, r := range arrival {
			r := r
			s.dispatch(&Message{Type: MsgAcquire, Seq: uint64(2 + i), Rank: r, Rail: 0, Group: "g"},
				func(m *Message) {
					if m.Type == MsgErr {
						fatal <- m.Error
						return
					}
					granted <- r
				})
		}
		var got []int
		for range members {
			select {
			case r := <-granted:
				got = append(got, r)
			case msg := <-fatal:
				t.Fatalf("trial %d: %s", trial, msg)
			case <-time.After(2 * time.Second):
				t.Fatalf("trial %d: grant never arrived (got %v)", trial, got)
			}
		}
		for i, r := range got {
			if r != members[i] {
				t.Fatalf("trial %d: grant order %v, want %v", trial, got, members)
			}
		}
		_ = s.Close()
	}
}

// Property: truncating a valid frame at any byte yields an error, never
// a wrong message.
func TestProtocolTruncationProperty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgAcquire, Seq: 42, Group: "fsdp.s0.r0", Ranks: []int{0, 4, 8}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes produced a message", cut, len(full))
		}
	}
	if m, err := ReadMessage(bytes.NewReader(full)); err != nil || m.Seq != 42 {
		t.Fatalf("full frame failed: %v", err)
	}
}
