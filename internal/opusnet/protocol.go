// Package opusnet is the Opus control plane as deployable software: the
// controller runs as a TCP server ("the control plane remains electrical
// and host-driven", §2.1) and every scale-up domain's shim connects as a
// client. The wire protocol is length-prefixed JSON.
//
// The server reuses the exact FC-FS controller logic of internal/opus
// (driven by a wall-clock Clock instead of the discrete-event engine)
// and adds the §4.1 group-sync step: a reconfiguration request is acted
// on only once every rank of the communication group has issued it, and
// all ranks are acknowledged together.
//
// The same framed protocol also carries the raild experiment-serving
// messages. The historical grid path (MsgGridReq/MsgGridProgress/
// MsgGridResult) submits one scenario grid; the general path
// (MsgExpReq/MsgExpProgress/MsgExpResult) runs any experiment in the
// photonrail registry, honors a per-request deadline (TimeoutMS), and
// supports client-initiated cancellation: a MsgCancel frame carrying a
// request's Seq stops that request's wait — and only that request's;
// an execution other clients joined keeps running for them. See
// internal/railserve.
package opusnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"photonrail/internal/scenario"
)

// MsgType discriminates wire messages.
type MsgType string

// The protocol messages. Clients send Register/Acquire/Release/
// Provision/StatsReq; the server replies with Ack/Err/StatsResp.
const (
	// MsgRegister declares a communication group (name, rail, members).
	// Idempotent; all members must register identically.
	MsgRegister MsgType = "register"
	// MsgAcquire asks for the group's circuits; acknowledged when every
	// member rank has asked and the circuits are installed.
	MsgAcquire MsgType = "acquire"
	// MsgRelease reports the rank's transfer on the group's circuits is
	// done.
	MsgRelease MsgType = "release"
	// MsgProvision is the shim's speculative reconfiguration intent.
	MsgProvision MsgType = "provision"
	// MsgStatsReq asks for controller telemetry.
	MsgStatsReq MsgType = "stats"
	// MsgAck acknowledges an Acquire (circuits granted), Register,
	// Release, or Provision.
	MsgAck MsgType = "ack"
	// MsgErr reports a request failure.
	MsgErr MsgType = "error"
	// MsgStatsResp carries telemetry.
	MsgStatsResp MsgType = "stats_resp"

	// MsgGridReq submits a scenario grid for execution on a raild
	// daemon; Spec carries the grid's wire form.
	MsgGridReq MsgType = "grid_req"
	// MsgGridProgress streams per-cell completion counts for a running
	// grid request (correlated by Seq; advisory, may be dropped on a
	// slow connection).
	MsgGridProgress MsgType = "grid_progress"
	// MsgGridResult carries a completed grid's rows.
	MsgGridResult MsgType = "grid_result"

	// MsgExpReq submits a registered photonrail experiment by name; Exp
	// carries the parameters and optional per-request deadline.
	MsgExpReq MsgType = "exp_req"
	// MsgExpProgress streams completion counts for a running experiment
	// request (grid experiments tick per cell; advisory, like
	// MsgGridProgress).
	MsgExpProgress MsgType = "exp_progress"
	// MsgExpResult carries a completed experiment's renderings and rows.
	MsgExpResult MsgType = "exp_result"
	// MsgCancel cancels the sender's outstanding request with the same
	// Seq: that request terminates promptly with MsgErr, while an
	// execution other requests joined keeps running for them. Unknown or
	// already-completed Seqs are ignored; MsgCancel itself has no reply.
	MsgCancel MsgType = "cancel"

	// MsgCellsReq submits a *subset* of a scenario grid's cells for
	// execution — the fleet coordinator's fan-out frame: the coordinator
	// expands a grid once, shards the expansion-order cell indices
	// across backend daemons, and sends each backend one cells_req per
	// batch. Cells carries the grid spec and the indices.
	MsgCellsReq MsgType = "cells_req"
	// MsgCellsResult carries the executed subset's rows, in the order
	// the request's indices listed them. Progress for a running subset
	// streams as MsgGridProgress frames (done/total over the subset).
	MsgCellsResult MsgType = "cells_result"

	// MsgFleetRegister announces a raild backend to a fleet
	// coordinator: identity, the address the coordinator should dial
	// for cells, and capacity (worker-pool size). Acknowledged with
	// MsgAck; refused with MsgErr when the coordinator does not accept
	// registrations. Re-registering the same identity upserts (a
	// restarted daemon rejoins under its old identity).
	MsgFleetRegister MsgType = "fleet_register"
	// MsgHeartbeat refreshes a registered backend's liveness, carrying
	// its current capacity and the same Stats() snapshot that serves
	// stats_resp. A coordinator marks a backend dead when heartbeats
	// stop. Acknowledged with MsgAck; a heartbeat for an identity the
	// coordinator does not know is refused with MsgErr so the sender
	// re-registers.
	MsgHeartbeat MsgType = "heartbeat"
	// MsgDrain announces a registered backend's graceful departure: the
	// coordinator stops assigning it new work (in-flight batches finish
	// or hand off to the next wave without counting as failover) and
	// acknowledges with MsgAck once the mark is durable.
	MsgDrain MsgType = "drain"
)

// Message is the single wire envelope.
type Message struct {
	Type MsgType `json:"type"`
	// Seq correlates a request with its ack; unique per connection.
	Seq uint64 `json:"seq"`
	// Rank is the sender's global rank.
	Rank int `json:"rank,omitempty"`
	// Rail is the rail the request concerns.
	Rail int `json:"rail,omitempty"`
	// Group names the communication group.
	Group string `json:"group,omitempty"`
	// Ranks lists group members (Register only).
	Ranks []int `json:"ranks,omitempty"`
	// Axis is the parallelism axis of the group (Register only).
	Axis int `json:"axis,omitempty"`
	// Error carries the failure reason (MsgErr).
	Error string `json:"error,omitempty"`
	// Stats carries telemetry (MsgStatsResp).
	Stats *StatsPayload `json:"stats,omitempty"`
	// Spec declares the requested scenario grid (MsgGridReq).
	Spec *scenario.Spec `json:"spec,omitempty"`
	// Progress reports cells completed so far (MsgGridProgress).
	Progress *GridProgress `json:"progress,omitempty"`
	// Grid carries an executed grid's rows (MsgGridResult).
	Grid *GridResultPayload `json:"grid,omitempty"`
	// Cache carries a raild daemon's serving telemetry (MsgStatsResp).
	Cache *CacheStatsPayload `json:"cache,omitempty"`
	// Exp declares the requested experiment (MsgExpReq).
	Exp *ExpRequestPayload `json:"exp,omitempty"`
	// ExpResult carries a completed experiment (MsgExpResult).
	ExpResult *ExpResultPayload `json:"expResult,omitempty"`
	// Cells declares a requested cell subset (MsgCellsReq).
	Cells *CellsRequestPayload `json:"cells,omitempty"`
	// CellsResult carries an executed cell subset (MsgCellsResult).
	CellsResult *CellsResultPayload `json:"cellsResult,omitempty"`
	// FleetReg announces a backend to a coordinator (MsgFleetRegister).
	FleetReg *FleetRegisterPayload `json:"fleetReg,omitempty"`
	// Heartbeat refreshes a registered backend (MsgHeartbeat).
	Heartbeat *HeartbeatPayload `json:"heartbeat,omitempty"`
	// DrainReq announces a graceful departure (MsgDrain).
	DrainReq *DrainPayload `json:"drain,omitempty"`
}

// FleetRegisterPayload is a backend's registration: who it is, where
// the coordinator dials it, and how much it can run.
type FleetRegisterPayload struct {
	// ID is the backend's stable identity — stable across restarts and
	// listener port choices, so its rendezvous shard survives both.
	ID string `json:"id"`
	// Addr is the address the coordinator dials for cells_req batches
	// (the backend's serving listener, not the registration conn).
	Addr string `json:"addr"`
	// Capacity is the backend's worker-pool size; capacity-weighted
	// sharding assigns cells proportionally to it (minimum 1).
	Capacity int `json:"capacity"`
}

// HeartbeatPayload refreshes a registration. Capacity may change
// between heartbeats (a resized pool re-weights the shard); Stats
// piggybacks the backend's serving telemetry so the coordinator's
// aggregated stats_resp needs no extra round trip to dynamic members.
type HeartbeatPayload struct {
	ID       string             `json:"id"`
	Capacity int                `json:"capacity,omitempty"`
	Stats    *CacheStatsPayload `json:"stats,omitempty"`
}

// DrainPayload announces a graceful departure of a registered backend.
type DrainPayload struct {
	ID string `json:"id"`
	// Reason is a human-readable cause ("sigterm", "-drain", ...).
	Reason string `json:"reason,omitempty"`
}

// CellsRequestPayload asks a daemon to execute the subset of a grid's
// cells named by expansion-order indices — the partial-execution unit
// a fleet coordinator shards a grid into. Indices must be in-range,
// duplicate-free positions of the resolved grid's expansion.
type CellsRequestPayload struct {
	// Spec is the grid whose expansion the indices select from.
	Spec *scenario.Spec `json:"spec"`
	// Indices are expansion-order cell positions to execute.
	Indices []int `json:"indices"`
	// TimeoutMS, when positive, bounds this request's wait server-side,
	// exactly like ExpRequestPayload.TimeoutMS.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`
}

// CellsResultPayload is one executed cell subset in wire form.
type CellsResultPayload struct {
	// Name is the resolved grid's name.
	Name string `json:"name"`
	// Indices echo the request's cell positions.
	Indices []int `json:"indices"`
	// Rows are the executed cells, ordered as Indices listed them.
	Rows []scenario.Row `json:"rows"`
	// Shared reports the request was coalesced onto an identical
	// in-flight subset request (request-level singleflight).
	Shared bool `json:"shared,omitempty"`
}

// BackendStatsPayload is one fleet backend's health as the coordinator
// sees it: whether its last contact succeeded, how many cells it has
// executed for the coordinator, and how many times it failed mid-request
// (each failure re-shards its cells to the survivors). For coordinators
// with an elastic control plane the membership fields carry the
// registry view; older coordinators omit them.
type BackendStatsPayload struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Cells    uint64 `json:"cells"`
	Failures uint64 `json:"failures"`
	// ID is the backend's stable identity: the registered identity for
	// dynamic members, the positional "s<i>" for static -backends
	// entries.
	ID string `json:"id,omitempty"`
	// Capacity is the weight capacity-weighted sharding uses (static
	// backends weigh 1).
	Capacity int `json:"capacity,omitempty"`
	// State is the membership state: "healthy", "draining", "drained",
	// or "dead".
	State string `json:"state,omitempty"`
	// Static marks a -backends flag entry (probed by dialing) as
	// opposed to a self-registered member (liveness from heartbeats).
	Static bool `json:"static,omitempty"`
	// LastHeartbeatAgeMS is the age of the newest heartbeat for dynamic
	// members; absent for static backends, which do not heartbeat.
	LastHeartbeatAgeMS int64 `json:"lastHeartbeatAgeMS,omitempty"`
}

// ExpRequestPayload names a registered photonrail experiment and its
// parameters in wire form. Zero-valued parameters take the
// experiment's documented defaults, mirroring photonrail.Params.
type ExpRequestPayload struct {
	// Name is the registry name (photonrail.Lookup).
	Name string `json:"name"`
	// TimeoutMS, when positive, is the per-request deadline: the daemon
	// abandons this request's wait (with MsgErr) once it elapses.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`

	Iterations       int            `json:"iterations,omitempty"`
	WindowIterations int            `json:"windowIterations,omitempty"`
	LatenciesMS      []float64      `json:"latenciesMS,omitempty"`
	Rail             int            `json:"rail,omitempty"`
	GPUs             int            `json:"gpus,omitempty"`
	Grid             *scenario.Spec `json:"grid,omitempty"`
}

// ExpResultPayload is a completed experiment in wire form. The daemon
// renders once and ships the exact bytes each output format prints, so
// a remote invocation is byte-identical to its local twin without the
// client re-implementing any renderer.
type ExpResultPayload struct {
	// Name is the experiment that ran.
	Name string `json:"name"`
	// Grid is the executed grid's name for grid experiments.
	Grid string `json:"gridName,omitempty"`
	// Rendered is the aligned-text rendering.
	Rendered string `json:"rendered,omitempty"`
	// RenderedCSV is the CSV rendering.
	RenderedCSV string `json:"renderedCSV,omitempty"`
	// RowsJSON is the indented-JSON rendering of the structured rows
	// (carried as a string so re-encoding the frame cannot re-compact
	// the exact bytes).
	RowsJSON string `json:"rowsJSON,omitempty"`
	// Shared reports the request was coalesced onto an identical
	// in-flight request from another client.
	Shared bool `json:"shared,omitempty"`
}

// GridProgress is one per-cell progress tick of a running grid.
type GridProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// GridResultPayload is the executed grid in wire form: the flat rows
// every renderer consumes, plus the daemon's dedup verdict.
type GridResultPayload struct {
	Name string         `json:"name"`
	Rows []scenario.Row `json:"rows"`
	// Shared reports the request was coalesced onto an identical
	// in-flight request from another client (request-level singleflight)
	// instead of executing the grid again.
	Shared bool `json:"shared,omitempty"`
}

// CacheStatsPayload mirrors the daemon's engine and serving telemetry
// over the wire: the memo-cache counters plus the request-level grid,
// experiment, and cell-subset dedup counters. A fleet coordinator's
// stats additionally carry per-backend health (Backends) with the
// cache counters summed across the backends it could reach.
type CacheStatsPayload struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	InFlight      int64  `json:"inFlight"`
	GridsExecuted uint64 `json:"gridsExecuted"`
	GridsDeduped  uint64 `json:"gridsDeduped"`
	ExpsExecuted  uint64 `json:"expsExecuted,omitempty"`
	ExpsDeduped   uint64 `json:"expsDeduped,omitempty"`
	// CellsExecuted counts cells executed through the cells_req subset
	// path; CellsDeduped counts subset requests coalesced onto an
	// identical in-flight one.
	CellsExecuted uint64 `json:"cellsExecuted,omitempty"`
	CellsDeduped  uint64 `json:"cellsDeduped,omitempty"`
	// Per-stage counters of the staged simulation pipeline (Build →
	// Provision → Time). They partition Hits/Misses by the pipeline
	// stage the lookup belongs to; older daemons omit them.
	BuildHits       uint64 `json:"buildHits,omitempty"`
	BuildMisses     uint64 `json:"buildMisses,omitempty"`
	ProvisionHits   uint64 `json:"provisionHits,omitempty"`
	ProvisionMisses uint64 `json:"provisionMisses,omitempty"`
	TimeHits        uint64 `json:"timeHits,omitempty"`
	TimeMisses      uint64 `json:"timeMisses,omitempty"`
	// SeedHits/SeedMisses count Provision-stage convergence seeding: a
	// hit adopts a neighboring latency's converged per-rail profile
	// (sharing its memoized speculation plans), a miss falls back to
	// converging from the reactive profile alone.
	SeedHits   uint64 `json:"seedHits,omitempty"`
	SeedMisses uint64 `json:"seedMisses,omitempty"`
	// Backends is the fleet coordinator's per-backend health view
	// (absent on a single daemon's stats).
	Backends []BackendStatsPayload `json:"backends,omitempty"`
}

// StatsPayload mirrors opus.Stats over the wire.
type StatsPayload struct {
	Reconfigurations    int   `json:"reconfigurations"`
	FastGrants          int   `json:"fast_grants"`
	QueuedGrants        int   `json:"queued_grants"`
	BlockedTimeNS       int64 `json:"blocked_time_ns"`
	ProvisionedRequests int   `json:"provisioned_requests"`
}

// maxFrame bounds a frame to keep a malformed peer from ballooning
// memory. Grid results carry one row per cell (~400 bytes each), so
// 8 MiB comfortably frames grids of thousands of cells while still
// rejecting garbage lengths.
const maxFrame = 8 << 20

// WriteMessage frames and writes one message: a 4-byte big-endian length
// followed by the JSON body.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("opusnet: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("opusnet: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("opusnet: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("opusnet: unmarshal: %w", err)
	}
	return &m, nil
}
