package opusnet

import (
	"testing"

	"photonrail/internal/model"
	"photonrail/internal/topo"
	"photonrail/internal/units"
	"photonrail/internal/workload"
)

// TestReplayFullProgram drives a real (small) training program's
// scale-out collectives through the TCP control plane end to end.
func TestReplayFullProgram(t *testing.T) {
	cl, err := topo.Perlmutter(4, topo.FabricPhotonicRail, topo.TwoPort200G)
	if err != nil {
		t.Fatal(err)
	}
	tiny := model.Spec{
		Name: "tiny", Layers: 4, Hidden: 512, FFNHidden: 1408,
		Heads: 8, KVHeads: 4, Vocab: 1000, SeqLen: 512,
		BytesPerParam: 2, BytesPerGrad: 4,
	}
	p := workload.MustBuild(workload.Config{
		Model:          tiny,
		GPU:            model.A100,
		Cluster:        cl,
		TP:             4,
		DP:             2,
		PP:             2,
		Microbatches:   2,
		MicrobatchSize: 1,
		Iterations:     1,
	})
	srv, err := NewServer(ServerConfig{Cluster: cl, ReconfigLatency: units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	driven, err := Replay(srv.Addr(), p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, task := range p.Tasks {
		if task.IsCollective() && !task.ScaleUp {
			want++
		}
	}
	if driven != want {
		t.Errorf("drove %d collectives, want %d", driven, want)
	}
	// Controller saw real work: reconfigurations happened and every
	// acquisition was granted (Replay returned without error).
	c, err := Dial(srv.Addr(), -1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconfigurations == 0 {
		t.Error("no reconfigurations recorded")
	}
	if st.FastGrants+st.QueuedGrants == 0 {
		t.Error("no grants recorded")
	}
}
