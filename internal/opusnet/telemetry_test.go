package opusnet

import (
	"strings"
	"testing"

	"photonrail/internal/telemetry"
)

// TestRegisterStatsMetricsMirrorsPayload pins the scrape-vs-stats-frame
// equivalence at its root: every counter in a CacheStatsPayload must
// come back out of a scrape under its documented metric name with the
// exact same value.
func TestRegisterStatsMetricsMirrorsPayload(t *testing.T) {
	payload := CacheStatsPayload{
		Hits: 11, Misses: 7, Evictions: 3, InFlight: 2,
		GridsExecuted: 4, GridsDeduped: 1,
		ExpsExecuted: 5, ExpsDeduped: 2,
		CellsExecuted: 96, CellsDeduped: 6,
		BuildHits: 30, BuildMisses: 18,
		ProvisionHits: 20, ProvisionMisses: 28,
		TimeHits: 10, TimeMisses: 38,
		SeedHits: 9, SeedMisses: 29,
		Backends: []BackendStatsPayload{
			{Addr: "b0", Healthy: true, Cells: 33, Failures: 0},
			{Addr: "b1", Healthy: false, Cells: 15, Failures: 2},
		},
	}
	reg := telemetry.NewRegistry()
	calls := 0
	RegisterStatsMetrics(reg, "fleet", func() CacheStatsPayload {
		calls++
		return payload
	})
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("stats sampled %d times per scrape, want 1", calls)
	}
	samples, err := telemetry.ParseSamples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"fleet_cache_hits_total":                      11,
		"fleet_cache_misses_total":                    7,
		"fleet_cache_evictions_total":                 3,
		"fleet_cache_inflight":                        2,
		"fleet_grids_executed_total":                  4,
		"fleet_grids_deduped_total":                   1,
		"fleet_exps_executed_total":                   5,
		"fleet_exps_deduped_total":                    2,
		"fleet_cells_executed_total":                  96,
		"fleet_cells_deduped_total":                   6,
		`fleet_stage_hits_total{stage="build"}`:       30,
		`fleet_stage_misses_total{stage="build"}`:     18,
		`fleet_stage_hits_total{stage="provision"}`:   20,
		`fleet_stage_misses_total{stage="provision"}`: 28,
		`fleet_stage_hits_total{stage="time"}`:        10,
		`fleet_stage_misses_total{stage="time"}`:      38,
		`fleet_stage_hits_total{stage="seed"}`:        9,
		`fleet_stage_misses_total{stage="seed"}`:      29,
		`fleet_backend_cells_total{backend="b0"}`:     33,
		`fleet_backend_cells_total{backend="b1"}`:     15,
		`fleet_backend_failures_total{backend="b1"}`:  2,
		`fleet_backend_healthy{backend="b0"}`:         1,
		`fleet_backend_healthy{backend="b1"}`:         0,
	}
	for name, v := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("scrape missing %s", name)
			continue
		}
		if got != v {
			t.Errorf("scrape %s = %v, want %v", name, got, v)
		}
	}
	// A daemon payload without backends must not render backend series.
	reg2 := telemetry.NewRegistry()
	RegisterStatsMetrics(reg2, "raild", func() CacheStatsPayload { return CacheStatsPayload{Hits: 1} })
	sb.Reset()
	if err := reg2.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "backend") {
		t.Errorf("daemon scrape leaked backend families:\n%s", sb.String())
	}
}
