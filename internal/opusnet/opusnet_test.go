package opusnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"photonrail/internal/parallelism"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Type: MsgAcquire, Seq: 7, Rank: 3, Rail: 1, Group: "fsdp.s0.r1", Ranks: []int{1, 5}}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || out.Rank != in.Rank ||
		out.Group != in.Group || len(out.Ranks) != 2 {
		t.Errorf("round trip: %+v", out)
	}
}

func TestReadMessageRejectsBadFrames(t *testing.T) {
	// Zero length.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero frame accepted")
	}
	// Oversized length.
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated body.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 10, 'x'})); err == nil {
		t.Error("truncated frame accepted")
	}
	// Invalid JSON.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 2, '{', 'x'})); err == nil {
		t.Error("bad JSON accepted")
	}
}

func newTestServer(t *testing.T, latency units.Duration) *Server {
	t.Helper()
	cl := topo.MustNew(topo.Config{NumNodes: 4, GPUsPerNode: 4, Fabric: topo.FabricPhotonicRail})
	s, err := NewServer(ServerConfig{Cluster: cl, ReconfigLatency: latency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dialRank(t *testing.T, s *Server, rank int) *Client {
	t.Helper()
	c, err := Dial(s.Addr(), rank)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRegisterValidation(t *testing.T) {
	s := newTestServer(t, 0)
	c := dialRank(t, s, 0)
	// Cross-rail group rejected.
	if err := c.RegisterGroup("bad", 0, int(parallelism.FSDP), []int{0, 5}); err == nil {
		t.Error("cross-rail group registered")
	}
	// Valid group registers, and identical re-registration is fine.
	if err := c.RegisterGroup("fsdp.s0.r0", 0, int(parallelism.FSDP), []int{0, 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("fsdp.s0.r0", 0, int(parallelism.FSDP), []int{0, 4}); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	// Conflicting re-registration rejected.
	if err := c.RegisterGroup("fsdp.s0.r0", 0, int(parallelism.FSDP), []int{0, 8}); err == nil {
		t.Error("conflicting re-register accepted")
	}
	// Unknown group operations rejected.
	if err := c.Release("nope", 0); err == nil {
		t.Error("release of unknown group accepted")
	}
	if err := c.Provision("nope", 0); err == nil {
		t.Error("provision of unknown group accepted")
	}
	// Acquire by a non-member rejected.
	if err := c.RegisterGroup("fsdp.s1.r0", 0, int(parallelism.FSDP), []int{8, 12}); err != nil {
		t.Fatal(err)
	}
	if err := c.Acquire("fsdp.s1.r0", 0); err == nil {
		t.Error("acquire by non-member accepted")
	}
}

// TestGroupSyncAcquire checks §4.1's group sync: the acquire of one rank
// does not complete until the other member asks too.
func TestGroupSyncAcquire(t *testing.T) {
	s := newTestServer(t, 0)
	c0 := dialRank(t, s, 0)
	c4 := dialRank(t, s, 4)
	for _, c := range []*Client{c0, c4} {
		if err := c.RegisterGroup("fsdp.s0.r0", 0, int(parallelism.FSDP), []int{0, 4}); err != nil {
			t.Fatal(err)
		}
	}
	done0 := make(chan error, 1)
	go func() { done0 <- c0.Acquire("fsdp.s0.r0", 0) }()
	select {
	case err := <-done0:
		t.Fatalf("rank 0 granted before rank 4 arrived: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := c4.Acquire("fsdp.s0.r0", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done0:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rank 0 never granted")
	}
	// Release from both sides.
	if err := c0.Release("fsdp.s0.r0", 0); err != nil {
		t.Fatal(err)
	}
	if err := c4.Release("fsdp.s0.r0", 0); err != nil {
		t.Fatal(err)
	}
	st, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconfigurations != 1 {
		t.Errorf("reconfigurations = %d, want 1", st.Reconfigurations)
	}
}

// TestFullIterationOverTCP drives the §3.1 rail-0 phase sequence
// (FSDP -> PP -> FSDP) through the real control plane with 4 ranks.
func TestFullIterationOverTCP(t *testing.T) {
	s := newTestServer(t, 5*units.Millisecond)
	ranks := []int{0, 4, 8, 12} // rail 0 of the 4x4 cluster
	clients := make(map[int]*Client)
	for _, r := range ranks {
		clients[r] = dialRank(t, s, r)
	}
	groups := []struct {
		name    string
		members []int
	}{
		{"fsdp.s0.r0", []int{0, 4}},
		{"fsdp.s1.r0", []int{8, 12}},
		{"pp.d0.r0", []int{0, 8}},
		{"pp.d1.r0", []int{4, 12}},
	}
	for _, g := range groups {
		for _, r := range g.members {
			if err := clients[r].RegisterGroup(g.name, 0, int(parallelism.FSDP), g.members); err != nil {
				t.Fatal(err)
			}
		}
	}
	phase := func(names ...string) {
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for _, name := range names {
			for _, g := range groups {
				if g.name != name {
					continue
				}
				for _, r := range g.members {
					wg.Add(1)
					go func(r int, name string) {
						defer wg.Done()
						if err := clients[r].Acquire(name, 0); err != nil {
							errs <- fmt.Errorf("rank %d acquire %s: %w", r, name, err)
							return
						}
						if err := clients[r].Release(name, 0); err != nil {
							errs <- fmt.Errorf("rank %d release %s: %w", r, name, err)
						}
					}(r, name)
				}
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	phase("fsdp.s0.r0", "fsdp.s1.r0") // AG bursts
	phase("pp.d0.r0", "pp.d1.r0")     // pipeline
	phase("fsdp.s0.r0", "fsdp.s1.r0") // RS bursts
	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconfigurations < 2 || st.Reconfigurations > 6 {
		t.Errorf("reconfigurations = %d, want a handful (2-6)", st.Reconfigurations)
	}
	if st.QueuedGrants == 0 {
		t.Error("no queued grants recorded")
	}
}

// TestProvisionOverTCP verifies a provisioned reconfiguration completes
// before the collective arrives.
func TestProvisionOverTCP(t *testing.T) {
	s := newTestServer(t, 20*units.Millisecond)
	c0 := dialRank(t, s, 0)
	c8 := dialRank(t, s, 8)
	for _, c := range []*Client{c0, c8} {
		if err := c.RegisterGroup("pp.d0.r0", 0, int(parallelism.PP), []int{0, 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c0.Provision("pp.d0.r0", 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the switch reconfigure
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range []*Client{c0, c8} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if err := c.Acquire("pp.d0.r0", 0); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Errorf("acquire after provision took %v; latency not hidden", elapsed)
	}
	st, _ := c0.Stats()
	if st.ProvisionedRequests != 1 {
		t.Errorf("provisioned requests = %d", st.ProvisionedRequests)
	}
}

func TestDuplicateAcquireRejected(t *testing.T) {
	s := newTestServer(t, 0)
	c0 := dialRank(t, s, 0)
	c4 := dialRank(t, s, 4)
	for _, c := range []*Client{c0, c4} {
		if err := c.RegisterGroup("g", 0, 0, []int{0, 4}); err != nil {
			t.Fatal(err)
		}
	}
	go func() { _ = c0.Acquire("g", 0) }()
	time.Sleep(50 * time.Millisecond)
	// Same rank asking again while its first acquire is pending: error.
	if err := c0.Acquire("g", 0); err == nil {
		t.Error("duplicate pending acquire accepted")
	}
	// Unblock the first.
	if err := c4.Acquire("g", 0); err != nil {
		t.Fatal(err)
	}
}

func TestClientSurvivesServerClose(t *testing.T) {
	s := newTestServer(t, 0)
	c := dialRank(t, s, 0)
	_ = s.Close()
	if err := c.RegisterGroup("g", 0, 0, []int{0, 4}); err == nil {
		t.Error("call succeeded after server close")
	}
}
