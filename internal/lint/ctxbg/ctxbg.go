// Package ctxbg defines the raillint analyzer that bans manufactured
// root contexts in internal packages.
//
// Every request path in this codebase is context-threaded end to end
// (PR 4): deadlines, client cancel frames, and connection teardown all
// flow through one ctx chain. A context.Background() (or TODO()) in
// internal/... quietly detaches everything below it from that chain —
// the way internal/gridcli's -timeout plumbing detached CLI runs from
// Ctrl-C. New daemon and fleet code must thread its caller's context;
// the few legitimate roots (a server's lifetime base context, the
// deprecated compatibility wrappers) carry //lint:allow ctxbg
// annotations with reasons. Repo-root compatibility wrappers are
// outside internal/ and out of scope by construction.
package ctxbg

import (
	"go/ast"
	"go/types"
	"strings"

	"photonrail/internal/lint/analysis"
)

// Analyzer flags context.Background()/context.TODO() calls in
// internal packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxbg",
	Doc: "flags context.Background()/context.TODO() inside internal/... packages; " +
		"thread the caller's context instead, or annotate a true root with //lint:allow ctxbg <reason>",
	Run: run,
}

// inScope reports whether an import path is subject to the check.
func inScope(path string) bool {
	return path == "internal" ||
		strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") ||
		strings.HasSuffix(path, "/internal")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Any use of the function object counts — the direct call, an
		// aliased import, or a bound function value (`c := context.TODO`)
		// that escapes to be called elsewhere.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(id.Pos(),
					"context.%s() in internal package %s: thread the caller's context (or annotate a true root: //lint:allow ctxbg <reason>)",
					name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
