// Package ctxbgrepro is the ctxbg corpus: manufactured root contexts
// in an internal package, including the distilled internal/gridcli
// -timeout shape this analyzer exists to catch, plus annotated roots
// that must stay quiet.
package ctxbgrepro

import (
	"context"
	"time"
)

// withTimeout is the distilled pre-fix gridcli.WithTimeout: the CLI's
// -timeout plumbing manufactured its own root, detaching every run
// from signal handling.
func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d) // want `context\.Background\(\) in internal package`
	}
	return context.WithCancel(context.TODO()) // want `context\.TODO\(\) in internal package`
}

// threaded is the fixed shape: the caller's context flows through.
func threaded(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// newServerBase is a legitimate root — a daemon's lifetime context,
// cancelled by Close — and carries the annotation that keeps it quiet.
func newServerBase() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) //lint:allow ctxbg server lifetime base context, cancelled by Close
}

//lint:allow ctxbg compatibility wrapper for pre-ctx callers
func compatWrapper() context.Context {
	return context.Background() // allowed: the func doc annotation covers the whole body
}

// aliased catches the import-alias spelling too.
func aliased() context.Context {
	return bgctx()
}

func bgctx() context.Context {
	c := context.Background // want `context\.Background\(\) in internal package`
	_ = c
	return c()
}
