// Package outside sits outside any internal/ tree: the repo-root
// compatibility wrappers' position. ctxbg must stay quiet here.
package outside

import "context"

// Run manufactures a root context legitimately — public API wrappers
// for pre-context callers do exactly this.
func Run() context.Context {
	return context.Background()
}
