package ctxbg_test

import (
	"testing"

	"photonrail/internal/lint/analysistest"
	"photonrail/internal/lint/ctxbg"
)

func TestCtxbg(t *testing.T) {
	analysistest.Run(t, ctxbg.Analyzer, "internal/ctxbgrepro", "pkg/outside")
}
