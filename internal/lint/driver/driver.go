// Package driver runs the raillint analyzer suite over loaded packages
// and folds the //lint:allow annotation contract into the results: it
// filters suppressed diagnostics, and turns malformed or unknown-name
// annotations into findings of their own. Both raillint front ends —
// the standalone `raillint ./...` walker and the `go vet -vettool`
// unit checker — share this package, so a finding means the same thing
// in either mode.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"photonrail/internal/lint/allow"
	"photonrail/internal/lint/analysis"
	"photonrail/internal/lint/ctxbg"
	"photonrail/internal/lint/goroutinejoin"
	"photonrail/internal/lint/loader"
	"photonrail/internal/lint/lockedblock"
	"photonrail/internal/lint/maporder"
	"photonrail/internal/lint/protoconsistency"
)

// Suite returns the raillint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxbg.Analyzer,
		goroutinejoin.Analyzer,
		lockedblock.Analyzer,
		maporder.Analyzer,
		protoconsistency.Analyzer,
	}
}

// Finding is one surviving diagnostic, resolved to a printable
// position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a finding the way the go toolchain prints
// diagnostics, with the analyzer name spliced in:
// file:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// CheckPackage runs every analyzer in suite over pkg, applies the
// //lint:allow filter, and appends annotation-contract findings (bare
// annotations, unknown analyzer names). Findings come back sorted by
// position. The error is an analyzer crash, not a finding.
func CheckPackage(pkg *loader.Package, suite []*analysis.Analyzer) ([]Finding, error) {
	idx := allow.Build(pkg.Fset, pkg.Files, pkg.TestFiles)
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}

	var out []Finding
	for _, a := range suite {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				if idx.Allowed(a.Name, d.Pos) {
					return
				}
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s failed on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}

	// The annotation contract is itself enforced: a suppression with no
	// analyzer or no reason is a finding, as is one naming an analyzer
	// that does not exist (it suppresses nothing and rots silently).
	for _, ann := range idx.Bare() {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(ann.Pos),
			Analyzer: "allow",
			Message:  "bare //lint:allow: both the analyzer name and a reason are required (//lint:allow <analyzer> <reason>)",
		})
	}
	for _, ann := range idx.Annotations() {
		if !known[ann.Analyzer] {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(ann.Pos),
				Analyzer: "allow",
				Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q; it suppresses nothing", ann.Analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
