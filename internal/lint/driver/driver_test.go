package driver_test

import (
	"path/filepath"
	"strings"
	"testing"

	"photonrail/internal/lint/driver"
	"photonrail/internal/lint/loader"
)

func TestCheckPackageFiltersAndEnforcesAnnotations(t *testing.T) {
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "driverrepro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("corpus does not typecheck: %v", pkg.TypeErrors)
	}
	findings, err := driver.CheckPackage(pkg, driver.Suite())
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	joined := strings.Join(got, "\n")

	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (lockedblock + bare + unknown):\n%s", len(findings), joined)
	}
	// Sorted by position: reply's send, then the bare annotation, then
	// the unknown-analyzer annotation.
	if findings[0].Analyzer != "lockedblock" || !strings.Contains(findings[0].Message, "channel send") {
		t.Errorf("findings[0] = %s, want the lockedblock send", got[0])
	}
	if findings[1].Analyzer != "allow" || !strings.Contains(findings[1].Message, "bare //lint:allow") {
		t.Errorf("findings[1] = %s, want the bare-annotation finding", got[1])
	}
	if findings[2].Analyzer != "allow" || !strings.Contains(findings[2].Message, `unknown analyzer "nosuchcheck"`) {
		t.Errorf("findings[2] = %s, want the unknown-analyzer finding", got[2])
	}
	if strings.Contains(joined, "replyExcused") {
		t.Errorf("suppressed finding leaked through:\n%s", joined)
	}

	// The printable form is the toolchain diagnostic shape.
	if !strings.HasSuffix(findings[0].Pos.Filename, "driverrepro.go") {
		t.Errorf("finding position %v not resolved to the corpus file", findings[0].Pos)
	}
	parts := strings.SplitN(got[0], ": ", 3)
	if len(parts) != 3 || parts[1] != "lockedblock" {
		t.Errorf("String() = %q, want file:line:col: analyzer: message", got[0])
	}
}
