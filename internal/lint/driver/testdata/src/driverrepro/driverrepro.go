// Package driverrepro is the corpus for the driver's own test: one
// real lockedblock finding, one suppressed twin, and the two
// annotation-contract violations (bare, unknown analyzer) the driver
// must surface as findings itself.
package driverrepro

import "sync"

type server struct {
	mu    sync.Mutex
	out   chan int
	state int
}

// reply is the distilled PR 2 shape the driver must report.
func (s *server) reply(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = v
	s.out <- v
}

// replyExcused is the same shape with a justified suppression the
// driver must honor.
func (s *server) replyExcused(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = v
	s.out <- v //lint:allow lockedblock out is buffered to the request cap in this fixture
}

func bareSuppression() int {
	return 1 //lint:allow
}

func unknownAnalyzer() int {
	return 2 //lint:allow nosuchcheck this analyzer does not exist
}
