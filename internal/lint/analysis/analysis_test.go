package analysis

import (
	"go/token"
	"testing"
)

func TestReportfForwardsFormattedDiagnostic(t *testing.T) {
	var got []Diagnostic
	p := &Pass{
		Analyzer: &Analyzer{Name: "demo"},
		Report:   func(d Diagnostic) { got = append(got, d) },
	}
	p.Reportf(token.Pos(42), "bad %s at %d", "send", 7)
	if len(got) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(got))
	}
	if got[0].Pos != token.Pos(42) {
		t.Errorf("Pos = %v, want 42", got[0].Pos)
	}
	if got[0].Message != "bad send at 7" {
		t.Errorf("Message = %q", got[0].Message)
	}
}
