// Package analysis is a standard-library-only miniature of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass/Diagnostic
// surface for the raillint suite (internal/lint/...) to be written in
// the upstream idiom without the external module, which this build
// cannot fetch. An analyzer written against this package ports to the
// real framework by swapping the import and (for cross-test-file
// checks) replacing TestFiles with the [test] package variant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations. By convention a short, lowercase,
	// letters-only word (e.g. "lockedblock").
	Name string
	// Doc is the one-paragraph help text: what invariant the analyzer
	// enforces and why the codebase cares.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. A non-nil error aborts the whole raillint run (it
	// means the analyzer itself failed, not that the code has findings).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed-and-typechecked state through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, typechecked.
	Files []*ast.File
	// TestFiles are the package's in-package _test.go files, parsed but
	// NOT typechecked — cross-file consistency checks (protoconsistency's
	// seed-corpus rule) scan them syntactically. May be empty.
	TestFiles []*ast.File
	// Pkg and TypesInfo describe Files. TypesInfo always has Types,
	// Defs, Uses, and Selections populated.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
