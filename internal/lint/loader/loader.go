// Package loader parses and typechecks Go packages for the raillint
// suite using only the standard library and the go command: package
// metadata and compiled export data come from `go list -export`, and
// go/types consumes the export data through the gc importer. (The
// usual golang.org/x/tools/go/packages stack is unavailable in this
// build; this is the same list-then-typecheck shape, minimized.)
//
// Two entry points:
//
//   - Load resolves package patterns (./... and friends) inside a
//     module and typechecks every non-dependency match — the raillint
//     driver's path;
//   - LoadDir typechecks one directory of sources whose imports are
//     all standard library — the analysistest corpus path, where the
//     corpus lives under testdata/ and is invisible to go list.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed, typechecked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	// Files are the non-test files, typechecked into Types/Info.
	Files []*ast.File
	// TestFiles are in-package _test.go files, parsed only.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects typechecking failures; analyzers still run on
	// what checked (the driver surfaces the errors regardless).
	TypeErrors []error
}

// listPkg is the subset of `go list -json` raillint consumes.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
}

// listFields is the -json field projection matching listPkg.
const listFields = "ImportPath,Name,Dir,Export,GoFiles,TestGoFiles,Standard,DepOnly"

// goList runs `go list -export -deps -json` in dir over args.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json=" + listFields}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// exportLookup builds the gc importer's lookup function over an
// import-path -> export-data-file map.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses files (test files syntax-only) and typechecks the rest
// against exports.
func check(fset *token.FileSet, importPath, name, dir string, goFiles, testGoFiles []string, exports map[string]string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Name: name, Dir: dir, Fset: fset, Info: newInfo()}
	// File lists from `go list` are dir-relative; vet configs hand the
	// tool absolute paths. Accept both.
	abs := func(f string) string {
		if filepath.IsAbs(f) {
			return f
		}
		return filepath.Join(dir, f)
	}
	for _, f := range goFiles {
		af, err := parser.ParseFile(fset, abs(f), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		pkg.Files = append(pkg.Files, af)
	}
	for _, f := range testGoFiles {
		af, err := parser.ParseFile(fset, abs(f), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		pkg.TestFiles = append(pkg.TestFiles, af)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, pkg.Files, pkg.Info) // errors collected above
	pkg.Types = tpkg
	return pkg, nil
}

// Load resolves patterns in the module rooted at (or containing) dir
// and returns every directly matched package, typechecked, in go list
// order. Standard-library matches are skipped — raillint checks this
// module's code, not the toolchain's.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pkg, err := check(fset, p.ImportPath, p.Name, p.Dir, p.GoFiles, p.TestGoFiles, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckFiles parses and typechecks one package from explicit file
// lists and an import-path -> export-data-file map. This is the
// vettool entry point: the go command has already planned the build
// and hands raillint the file and export lists in its vet config.
func CheckFiles(importPath, name, dir string, goFiles, testGoFiles []string, exports map[string]string) (*Package, error) {
	return check(token.NewFileSet(), importPath, name, dir, goFiles, testGoFiles, exports)
}

// stdExports caches standard-library export-data paths across LoadDir
// calls (one `go list` per not-yet-seen import set).
var stdExports = struct {
	sync.Mutex
	m map[string]string
}{m: make(map[string]string)}

// LoadDir typechecks the single package whose sources sit directly in
// dir. Files named *_test.go are parsed but not typechecked; all other
// imports must be standard library. This is the corpus loader for
// analysistest: corpora live under testdata/src/<pkg>/ where the go
// tool does not look.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var goFiles, testGoFiles []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			testGoFiles = append(testGoFiles, e.Name())
		} else {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	sort.Strings(testGoFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("loader: no non-test Go files in %s", dir)
	}

	// Collect the corpus's imports so their export data can be resolved
	// before the real parse-and-check pass.
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, f := range goFiles {
		af, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		for _, imp := range af.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("loader: %w", err)
			}
			imports[path] = true
		}
	}
	exports, err := resolveStdExports(imports)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(dir)
	// A corpus dir under testdata/src/ keeps its src-relative path as
	// the import path, so path-sensitive analyzers (ctxbg's internal/...
	// predicate) see corpora the way they would see real packages.
	importPath := name
	const marker = "testdata/src/"
	if slash := filepath.ToSlash(dir); strings.HasPrefix(slash, marker) {
		importPath = slash[len(marker):]
	} else if i := strings.Index(slash, "/"+marker); i >= 0 {
		importPath = slash[i+1+len(marker):]
	}
	return check(token.NewFileSet(), importPath, name, dir, goFiles, testGoFiles, exports)
}

// resolveStdExports returns export-data paths covering imports and
// their transitive dependencies, consulting and refreshing the
// process-wide cache.
func resolveStdExports(imports map[string]bool) (map[string]string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	var missing []string
	for path := range imports {
		if path == "unsafe" { // resolved by the importer itself
			continue
		}
		if _, ok := stdExports.m[path]; !ok {
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		// Run from the process working directory: corpus imports are
		// standard library, resolvable from any module context.
		listed, err := goList(".", missing...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				stdExports.m[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(stdExports.m))
	for k, v := range stdExports.m {
		out[k] = v
	}
	return out, nil
}
