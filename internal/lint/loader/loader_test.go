package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCorpus lays out a stdlib-only package in a temp dir.
func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirTypechecksAndSplitsTestFiles(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"demo.go": `package demo

import "fmt"

func Hello() string { return fmt.Sprintf("hi %d", 7) }
`,
		"demo_test.go": `package demo

func helper() string { return Hello() }
`,
	})
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) != 1 || len(pkg.TestFiles) != 1 {
		t.Errorf("Files/TestFiles split = %d/%d, want 1/1", len(pkg.Files), len(pkg.TestFiles))
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Hello") == nil {
		t.Error("typechecked package is missing Hello")
	}
}

func TestLoadDirReportsTypeErrors(t *testing.T) {
	dir := writeCorpus(t, map[string]string{
		"bad.go": `package bad

func F() int { return "not an int" }
`,
	})
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("type mismatch produced no TypeErrors")
	}
}

func TestLoadDirDerivesCorpusImportPath(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "testdata", "src", "internal", "demo")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte("package demo\n\nfunc F() {}\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.ImportPath != "internal/demo" {
		t.Errorf("ImportPath = %q, want internal/demo (the src-relative path)", pkg.ImportPath)
	}
}

func TestLoadResolvesModulePackages(t *testing.T) {
	pkgs, err := Load(".", "photonrail/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load matched %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "photonrail/internal/units" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("type errors: %v", pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Error("Load returned package without type information")
	}
}

func TestLoadRejectsUnknownPattern(t *testing.T) {
	_, err := Load(".", "photonrail/internal/doesnotexist")
	if err == nil || !strings.Contains(err.Error(), "go list") {
		t.Errorf("Load(unknown) = %v, want go list error", err)
	}
}
