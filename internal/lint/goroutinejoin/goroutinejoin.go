// Package goroutinejoin defines the raillint analyzer that catches
// goroutines started against a type's state with no join path.
//
// PR 5's fleet client leaked its reader goroutine: Dial started
// `go c.readLoop()`, and Close only closed the socket — it never waited
// for the loop to observe the error and exit. Under churn the leaked
// readers piled up, and the race detector flagged late writes from
// half-dead readers into freshly reused client state. The fix gave the
// client a done channel that Close receives from after closing the
// connection.
//
// The analyzer finds `go` statements whose goroutine touches a
// package-local type's state — a method starting `go r.loop()` or a
// closure over its receiver, or a constructor starting a goroutine
// against the value it is building — and demands join evidence:
//
//   - locally: the same function waits (a WaitGroup Wait, a channel
//     receive, or a range over a channel) — the scoped fan-out/fan-in
//     shape, e.g. Stats() with a local WaitGroup;
//   - or anywhere in the package, keyed by the type: some method of T
//     performs x.f.Wait(), <-x.f, or `for range x.f` — the done-channel
//     Close shape.
//
// A goroutine with neither is flagged at the `go` statement. Fire-and-
// forget goroutines that touch no package-local typed state are out of
// scope — there is no owner whose Close could join them.
package goroutinejoin

import (
	"go/ast"
	"go/types"

	"photonrail/internal/lint/analysis"
)

// Analyzer flags goroutines bound to a package-local type's state with
// no join (Wait, channel receive, or range) locally or on the type.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinejoin",
	Doc: "flags goroutines started against a type's state with no WaitGroup/done-channel " +
		"join in the same function or on the type (the PR 5 goroutine-leak class)",
	Run: run,
}

// candidate is one go statement bound to a package-local named type.
type candidate struct {
	goStmt *ast.GoStmt
	typ    *types.TypeName
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	localPkg := pass.Pkg

	// Pass 1: find go statements — the candidates needing evidence, and
	// the launched bodies themselves (methods and literals), whose
	// channel consumption is the goroutine running, not anyone joining
	// it, and must not count as evidence.
	var cands []candidate
	goMethods := make(map[*types.TypeName]map[string]bool)
	goLits := make(map[*ast.FuncLit]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			localJoin := hasLocalJoin(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					goLits[lit] = true
				}
				t := boundType(g, info, localPkg)
				if t == nil {
					return true
				}
				if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
					if goMethods[t] == nil {
						goMethods[t] = make(map[string]bool)
					}
					goMethods[t][sel.Sel.Name] = true
				}
				if !localJoin {
					cands = append(cands, candidate{g, t})
				}
				return true
			})
		}
	}

	// Pass 2: package-wide join evidence, skipping launched bodies.
	joined := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if t := receiverType(fn, info, localPkg); t != nil && goMethods[t][fn.Name.Name] {
				continue
			}
			collectEvidence(fn.Body, info, localPkg, goLits, joined)
		}
	}

	for _, c := range cands {
		if joined[c.typ] {
			continue
		}
		pass.Reportf(c.goStmt.Pos(),
			"goroutine bound to %s state is never joined: no Wait, channel receive, or range joins it in this function or anywhere on %s; "+
				"add a done channel or WaitGroup and join it in Close (PR 5 reader-leak class)",
			c.typ.Name(), c.typ.Name())
	}
	return nil
}

// hasLocalJoin reports whether a function body itself waits: a .Wait()
// call, a channel receive, or a range over a channel.
func hasLocalJoin(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			// A select blocks on its comm cases; receiving any of them is
			// a join point.
			found = true
		}
		return !found
	})
	return found
}

// boundType resolves the package-local named type whose state the
// goroutine touches, or nil if the goroutine is not bound to one.
func boundType(g *ast.GoStmt, info *types.Info, localPkg *types.Package) *types.TypeName {
	// go x.method(...): bound to x's type.
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if t := localNamedType(info.Uses[id], localPkg); t != nil {
				return t
			}
		}
	}
	// go func() { ... }(): bound to the first package-local typed
	// variable the closure captures.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		var found *types.TypeName
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return found == nil
			}
			if t := localNamedType(info.Uses[id], localPkg); t != nil {
				found = t
			}
			return found == nil
		})
		return found
	}
	return nil
}

// localNamedType returns the named type behind obj's type when that
// type is declared in localPkg (struct-backed state, not funcs).
func localNamedType(obj types.Object, localPkg *types.Package) *types.TypeName {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := n.Obj()
	if tn == nil || tn.Pkg() != localPkg {
		return nil
	}
	return tn
}

// receiverType returns the package-local named type fn is a method
// of, or nil for plain functions.
func receiverType(fn *ast.FuncDecl, info *types.Info, localPkg *types.Package) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return localNamedType(info.Defs[fn.Recv.List[0].Names[0]], localPkg)
}

// collectEvidence records package-wide join evidence: x.f.Wait(),
// <-x.f, or `for range x.f` where x is (a pointer to) a package-local
// named type. Bodies of go-launched function literals are skipped —
// the goroutine consuming its own channels is not a join.
func collectEvidence(body *ast.BlockStmt, info *types.Info, localPkg *types.Package, goLits map[*ast.FuncLit]bool, joined map[*types.TypeName]bool) {
	record := func(e ast.Expr) {
		if t := rootLocalType(e, info, localPkg); t != nil {
			joined[t] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && goLits[lit] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				record(sel.X)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				record(n.X)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					record(n.X)
				}
			}
		}
		return true
	})
}

// rootLocalType walks to the root identifier of a selector chain
// (c.wg -> c) and returns its package-local named type, if any.
func rootLocalType(e ast.Expr, info *types.Info, localPkg *types.Package) *types.TypeName {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return localNamedType(info.Uses[x], localPkg)
		default:
			return nil
		}
	}
}
