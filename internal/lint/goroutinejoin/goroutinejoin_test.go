package goroutinejoin_test

import (
	"testing"

	"photonrail/internal/lint/analysistest"
	"photonrail/internal/lint/goroutinejoin"
)

func TestGoroutinejoin(t *testing.T) {
	analysistest.Run(t, goroutinejoin.Analyzer, "joinrepro")
}
