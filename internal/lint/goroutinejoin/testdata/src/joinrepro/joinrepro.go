// Package joinrepro distills the PR 5 goroutine leak for the
// goroutinejoin analyzer corpus: a client whose Dial starts a reader
// goroutine that Close never joins, alongside the fixed done-channel
// shape and the sanctioned local fan-out/fan-in shape.
package joinrepro

import (
	"net"
	"sync"
)

// leakyClient is the PR 5 bug, distilled: readLoop signals exit on the
// closed channel, but nothing ever receives it — Close tears the
// socket down and returns while the reader is still draining, leaving
// a goroutine (and racy late writes) behind per churned connection.
type leakyClient struct {
	conn   net.Conn
	closed chan struct{}
}

func dialLeaky(addr string) (*leakyClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &leakyClient{conn: conn, closed: make(chan struct{})}
	go c.readLoop() // want `goroutine bound to leakyClient state is never joined`
	return c, nil
}

func (c *leakyClient) readLoop() {
	buf := make([]byte, 1024)
	for {
		if _, err := c.conn.Read(buf); err != nil {
			close(c.closed)
			return
		}
	}
}

func (c *leakyClient) Close() error {
	return c.conn.Close()
}

// joinedClient is the shipped fix: Close closes the socket to unblock
// the reader, then receives on readDone before returning. Must stay
// quiet.
type joinedClient struct {
	conn     net.Conn
	readDone chan struct{}
}

func dialJoined(addr string) (*joinedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &joinedClient{conn: conn, readDone: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

func (c *joinedClient) readLoop() {
	defer close(c.readDone)
	buf := make([]byte, 1024)
	for {
		if _, err := c.conn.Read(buf); err != nil {
			return
		}
	}
}

func (c *joinedClient) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}

// pool fans work out per shard and joins with a local WaitGroup in the
// same function — the Stats() shape. Must stay quiet.
type pool struct {
	shards []net.Conn
	mu     sync.Mutex
	total  int
}

func (p *pool) probeAll(payload []byte) {
	var wg sync.WaitGroup
	for _, conn := range p.shards {
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			n, _ := conn.Write(payload)
			p.mu.Lock()
			p.total += n
			p.mu.Unlock()
		}(conn)
	}
	wg.Wait()
}

// flusher starts a background loop against its own state with no join
// anywhere on the type.
type flusher struct {
	out chan []byte
}

func (f *flusher) start() {
	go f.flushLoop() // want `goroutine bound to flusher state is never joined`
}

func (f *flusher) flushLoop() {
	for range f.out {
	}
}

// detachedNotify is fire-and-forget over plain locals: no package type
// owns the goroutine, so there is no Close to join it in. Out of
// scope; must stay quiet.
func detachedNotify(addr string, payload []byte) {
	go func(a string, b []byte) {
		if conn, err := net.Dial("tcp", a); err == nil {
			conn.Write(b)
			conn.Close()
		}
	}(addr, payload)
}
