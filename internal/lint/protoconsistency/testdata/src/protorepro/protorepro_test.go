package protorepro

import "testing"

// TestDispatchRoundTrip is the seed-corpus ledger: constants named
// here (or in a Fuzz function) count as seeded.
func TestDispatchRoundTrip(t *testing.T) {
	for _, mt := range []MsgType{MsgPing, MsgData, MsgQuit} {
		if Dispatch(mt) == "" {
			t.Fatalf("empty dispatch for %d", mt)
		}
	}
}
