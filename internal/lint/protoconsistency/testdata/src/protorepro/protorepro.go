// Package protorepro exercises the protoconsistency ledgers: four
// message types where one is fully wired and each of the other three
// is missing exactly one ledger.
package protorepro

// MsgType tags a wire frame, as in opusnet.
type MsgType uint8

const (
	// MsgPing is wired into all three ledgers: quiet.
	MsgPing MsgType = iota + 1
	// MsgPong is registered and dispatched but never fuzz-seeded.
	MsgPong // want `MsgType constant MsgPong is missing from the fuzz/round-trip seed corpus`
	// MsgData is registered and seeded but the decode switch forgot it.
	MsgData // want `MsgType constant MsgData is missing from the decode switch`
	// MsgQuit is dispatched and seeded but never made the registry.
	MsgQuit // want `MsgType constant MsgQuit is missing from the payload registry map`
)

// payloadRegistry is the registry ledger.
var payloadRegistry = map[MsgType]string{
	MsgPing: "ping",
	MsgPong: "pong",
	MsgData: "data",
}

// Dispatch is the decode-switch ledger.
func Dispatch(t MsgType) string {
	switch t {
	case MsgPing:
		return payloadRegistry[t]
	case MsgPong:
		return payloadRegistry[t]
	case MsgQuit:
		return "quit"
	default:
		return "unknown"
	}
}
