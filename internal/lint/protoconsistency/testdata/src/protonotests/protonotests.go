// Package protonotests has no test files in view — the vettool
// situation. The seed-corpus ledger must be skipped silently; only the
// registry and switch are checked, and both are complete here.
package protonotests

// MsgType tags a wire frame.
type MsgType uint8

const (
	MsgA MsgType = iota + 1
	MsgB
)

var registry = map[MsgType]bool{
	MsgA: true,
	MsgB: true,
}

// Decode covers every constant.
func Decode(t MsgType) bool {
	switch t {
	case MsgA, MsgB:
		return registry[t]
	}
	return false
}
