package protoconsistency_test

import (
	"testing"

	"photonrail/internal/lint/analysistest"
	"photonrail/internal/lint/protoconsistency"
)

func TestProtoconsistency(t *testing.T) {
	analysistest.Run(t, protoconsistency.Analyzer, "protorepro", "protonotests")
}
