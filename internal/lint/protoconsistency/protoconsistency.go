// Package protoconsistency defines the raillint analyzer that keeps
// the opusnet wire protocol's three ledgers in sync.
//
// Every time a PR added a MsgType (grid messages in PR 5, experiment
// messages in PR 4), the same three places had to be touched by hand:
// the payload registry that says which payload fields a type carries,
// the decode/dispatch switch, and the fuzz/round-trip seed corpus that
// actually exercises the frame on the wire. Forgetting one compiles
// fine and fails later — an unknown type at dispatch, or a frame shape
// the fuzzer has never seen.
//
// For any package that declares a type named MsgType, the analyzer
// collects its constants and requires each one to appear:
//
//   - as a key in some map composite literal keyed by MsgType (the
//     payload registry);
//   - in a case clause of some switch over a MsgType-typed expression
//     (the decode/dispatch switch);
//   - as an identifier inside an in-package test function whose name
//     contains "Fuzz" or "RoundTrip" (the seed corpus). This last
//     check runs only when test files are in view — under `go vet`
//     style drivers that pass none, it is skipped rather than
//     spuriously failed.
//
// Constants missing a ledger are reported at their declaration.
// Packages with no MsgType are out of scope.
package protoconsistency

import (
	"go/ast"
	"go/types"
	"strings"

	"photonrail/internal/lint/analysis"
)

// Analyzer flags MsgType constants absent from the payload registry
// map, the decode switch, or the fuzz/round-trip seed corpus.
var Analyzer = &analysis.Analyzer{
	Name: "protoconsistency",
	Doc: "flags MsgType constants missing from the payload registry map, the decode " +
		"switch, or the fuzz/round-trip seed corpus (the three protocol ledgers)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	obj := pass.Pkg.Scope().Lookup("MsgType")
	msgType, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}

	// The package's MsgType constants, in declaration order.
	var consts []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if named, ok := c.Type().(*types.Named); ok && named.Obj() == msgType {
			consts = append(consts, c)
		}
	}
	if len(consts) == 0 {
		return nil
	}

	isMsgType := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj() == msgType
	}

	inRegistry := make(map[*types.Const]bool)
	inSwitch := make(map[*types.Const]bool)
	markUses := func(e ast.Expr, set map[*types.Const]bool) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
					set[c] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil {
					return true
				}
				m, ok := t.Underlying().(*types.Map)
				if !ok || !isMsgType(m.Key()) {
					return true
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						markUses(kv.Key, inRegistry)
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				t := pass.TypesInfo.TypeOf(n.Tag)
				if t == nil || !isMsgType(t) {
					return true
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							markUses(e, inSwitch)
						}
					}
				}
			}
			return true
		})
	}

	// Seed-corpus ledger: test files are parsed without type
	// information, so membership is by identifier name inside
	// Fuzz*/…RoundTrip* functions.
	seeded := make(map[string]bool)
	haveTests := len(pass.TestFiles) > 0
	for _, f := range pass.TestFiles {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if !strings.Contains(name, "Fuzz") && !strings.Contains(name, "RoundTrip") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					seeded[id.Name] = true
				}
				return true
			})
		}
	}

	for _, c := range consts {
		var missing []string
		if !inRegistry[c] {
			missing = append(missing, "the payload registry map")
		}
		if !inSwitch[c] {
			missing = append(missing, "the decode switch")
		}
		if haveTests && !seeded[c.Name()] {
			missing = append(missing, "the fuzz/round-trip seed corpus")
		}
		if len(missing) > 0 {
			pass.Reportf(c.Pos(),
				"MsgType constant %s is missing from %s; every message type must be registered, dispatched, and seeded",
				c.Name(), strings.Join(missing, " and "))
		}
	}
	return nil
}
