// Package lockedblock defines the raillint analyzer that bans blocking
// operations while a sync.Mutex or sync.RWMutex is held.
//
// PR 2's deadlock came from exactly this: the opusnet server replied to
// clients with an unbuffered channel send while holding the state
// mutex; a slow reader stalled the send, the send kept the mutex, and
// every other connection then queued behind the lock. The shipped fix
// made the reply a select-with-default (drop rather than block) — the
// pattern this analyzer recognizes as safe.
//
// Within each function the analyzer tracks which mutexes are held by
// scanning statements in order: `mu.Lock()`/`mu.RLock()` adds mu to the
// held set, `mu.Unlock()`/`mu.RUnlock()` removes it, and `defer
// mu.Unlock()` leaves it held (the remainder of the function really
// does run under the lock). Branch bodies are scanned with a copy of
// the held set, so an early-unlock-and-return branch does not clear the
// lock for the fallthrough path. Function literals and `go` bodies are
// scanned as fresh functions — they run on their own goroutines or at
// another time, with their own lock discipline.
//
// While any mutex is held, the analyzer flags:
//
//   - a channel send, unless it is the comm case of a select that has a
//     default clause (non-blocking, the PR 2 fix shape);
//   - time.Sleep;
//   - logging: any log-package call, fmt console printing
//     (Print/Printf/Println), or a call through a selector named like a
//     leveled logger (Logf, Errorf, Warnf, Infof, Debugf, logf);
//   - network I/O: Read/Write-family methods on net-package types or
//     the net.Conn interface, and opusnet.ReadMessage/WriteMessage.
//
// Pure computation, map/slice work, and fmt.Sprintf under a lock are
// all fine and not flagged.
package lockedblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"photonrail/internal/lint/analysis"
)

// Analyzer flags blocking operations (sends, sleeps, logging, network
// I/O) performed while a sync mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockedblock",
	Doc: "flags channel sends, time.Sleep, logging, and network I/O while a " +
		"sync.Mutex/RWMutex is held (the PR 2 deadlock class)",
	Run: run,
}

// loggerNames are selector names treated as logging sinks regardless
// of the receiver's type — they cover testing.T, the stdlib logger,
// and this module's logf function fields.
var loggerNames = map[string]bool{
	"Logf": true, "logf": true, "Errorf": true, "Warnf": true,
	"Infof": true, "Debugf": true,
}

// connMethods are the blocking I/O methods recognized on net types.
var connMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadString": true, "WriteString": true, "ReadFull": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &scanner{pass: pass}
			s.block(fn.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
}

// copyHeld clones a held set for a branch scan.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// block scans stmts in order, mutating held as locks are taken and
// released at this nesting level.
func (s *scanner) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		s.stmt(st, held)
	}
}

func (s *scanner) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if name, key, ok := s.lockOp(call); ok {
				switch name {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function exit; other
		// deferred work runs at exit under whatever is then held — out of
		// scope for this in-order scan either way.
	case *ast.GoStmt:
		// The goroutine has its own lock discipline; scan it fresh.
		s.expr(st.Call.Fun, map[string]token.Pos{})
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.SendStmt:
		s.send(st, held)
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if st.Init != nil {
			s.stmt(st.Init, inner)
		}
		if st.Cond != nil {
			s.expr(st.Cond, inner)
		}
		s.block(st.Body.List, inner)
		if st.Post != nil {
			s.stmt(st.Post, inner)
		}
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		s.selectStmt(st, held)
	case *ast.BlockStmt:
		// A bare block shares the sequential flow of its parent.
		s.block(st.List, held)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	}
}

// selectStmt exempts send cases when the select has a default clause
// — a non-blocking send is exactly the sanctioned reply pattern.
func (s *scanner) selectStmt(st *ast.SelectStmt, held map[string]token.Pos) {
	hasDefault := false
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			if !hasDefault {
				s.send(send, held)
			}
			// Value/chan expressions may still hide other sinks.
			s.expr(send.Chan, held)
			s.expr(send.Value, held)
		}
		s.block(cc.Body, copyHeld(held))
	}
}

// send flags a channel send performed under any held mutex.
func (s *scanner) send(send *ast.SendStmt, held map[string]token.Pos) {
	if lock, pos, ok := anyHeld(held); ok {
		s.pass.Reportf(send.Arrow,
			"channel send while %q is held (locked at %s): a stalled receiver keeps the mutex and deadlocks the server (PR 2); "+
				"release the lock first or use a select with default",
			lock, s.pass.Fset.Position(pos))
	}
}

// anyHeld picks a deterministic representative from the held set.
func anyHeld(held map[string]token.Pos) (string, token.Pos, bool) {
	best := ""
	var bestPos token.Pos
	for k, v := range held {
		if best == "" || k < best {
			best, bestPos = k, v
		}
	}
	return best, bestPos, best != ""
}

// expr inspects an expression for sink calls. Function literals are
// scanned as fresh functions.
func (s *scanner) expr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.block(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			s.call(n, held)
		}
		return true
	})
}

// call classifies one call expression as a sink (or not) under held.
func (s *scanner) call(call *ast.CallExpr, held map[string]token.Pos) {
	lock, pos, ok := anyHeld(held)
	if !ok {
		return
	}
	sel, _ := call.Fun.(*ast.SelectorExpr)

	report := func(what string) {
		s.pass.Reportf(call.Pos(),
			"%s while %q is held (locked at %s): blocking under a mutex stalls every other lock holder; release the lock first",
			what, lock, s.pass.Fset.Position(pos))
	}

	// Package-level functions: time.Sleep, log.*, fmt console printing,
	// opusnet frame I/O.
	if fn := s.calleeFunc(call); fn != nil && fn.Pkg() != nil {
		switch path := fn.Pkg().Path(); {
		case path == "time" && fn.Name() == "Sleep":
			report("time.Sleep")
			return
		case path == "log":
			report("log." + fn.Name())
			return
		case path == "fmt" && (fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println"):
			report("fmt." + fn.Name())
			return
		case strings.HasSuffix(path, "/opusnet") && (fn.Name() == "ReadMessage" || fn.Name() == "WriteMessage"):
			report("opusnet." + fn.Name())
			return
		}
		// Any other receiver-less package function — fmt.Errorf,
		// fmt.Sprintf, errors.New — only builds values; the leveled-logger
		// name heuristic below is for methods and func fields.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return
		}
	}

	if sel == nil {
		return
	}
	// Leveled-logger shapes: s.logf(...), t.Logf(...), lg.Errorf(...).
	if loggerNames[sel.Sel.Name] {
		report(sel.Sel.Name)
		return
	}
	// Conn I/O: Read/Write methods whose receiver is a net type.
	if connMethods[sel.Sel.Name] && s.isNetType(s.pass.TypesInfo.TypeOf(sel.X)) {
		report("network " + sel.Sel.Name)
	}
}

// calleeFunc resolves a call's target to a *types.Func when it is a
// direct (possibly selector-qualified) function reference.
func (s *scanner) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := s.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := s.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock where the method
// belongs to package sync, returning the method name and the lock key
// (the receiver expression, printed).
func (s *scanner) lockOp(call *ast.CallExpr) (name, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

// isNetType reports whether t is a type from the net package or the
// net.Conn interface (directly or behind a pointer).
func (s *scanner) isNetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}
