// Package lockedrepro distills the PR 2 deadlock for the lockedblock
// analyzer corpus: a reply channel send made while holding the server
// mutex, alongside the shipped fix (select with default) and the
// surrounding safe/unsafe shapes.
package lockedrepro

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

type reply struct {
	OK bool
}

type server struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	clients map[int]chan reply
	conn    net.Conn
	logf    func(format string, args ...any)
	last    string
}

// replyLocked is the PR 2 bug, distilled: an unbuffered send to the
// client's reply channel while s.mu is held. A stalled client reader
// blocks the send, the send keeps the mutex, and every other
// connection queues behind the lock.
func (s *server) replyLocked(rank int, r reply) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.clients[rank]
	ch <- r // want `channel send while "s.mu" is held`
}

// replyNonBlocking is the shipped fix: the select with a default makes
// the send non-blocking (drop on a full channel), so holding the mutex
// across it is safe. Must stay quiet.
func (s *server) replyNonBlocking(rank int, r reply) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.clients[rank]
	select {
	case ch <- r:
	default:
	}
}

// replyAfterUnlock snapshots under the lock and sends after releasing
// it — the other sanctioned fix. Must stay quiet.
func (s *server) replyAfterUnlock(rank int, r reply) {
	s.mu.Lock()
	ch := s.clients[rank]
	s.mu.Unlock()
	ch <- r
}

// backoffLocked sleeps and logs while holding the mutex.
func (s *server) backoffLocked() {
	s.mu.Lock()
	log.Printf("retrying")            // want `log.Printf while "s.mu" is held`
	time.Sleep(10 * time.Millisecond) // want `time.Sleep while "s.mu" is held`
	s.mu.Unlock()
	time.Sleep(10 * time.Millisecond) // after release: fine
}

// logfLocked calls the server's leveled-logger field under the read
// lock; readers block writers, so this stalls the write path too.
func (s *server) logfLocked() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.logf("state: %s", s.last) // want `logf while "s.rw" is held`
}

// formatLocked only formats under the lock — fmt.Sprintf and
// fmt.Errorf build values without I/O; despite Errorf's leveled-logger
// name, both must stay quiet.
func (s *server) formatLocked() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.clients) == 0 {
		return "", fmt.Errorf("no clients registered")
	}
	return fmt.Sprintf("clients=%d", len(s.clients)), nil
}

// writeFrameLocked performs conn I/O under the mutex: a slow or dead
// peer now holds up every other request.
func (s *server) writeFrameLocked(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b) // want `network Write while "s.mu" is held`
	return err
}

// earlyUnlockBranch releases in the error branch; the send inside that
// branch is fine, but the fallthrough path is still locked.
func (s *server) earlyUnlockBranch(ok bool, ch chan reply, r reply) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		ch <- r // branch released the lock: fine
		return
	}
	ch <- r // want `channel send while "s.mu" is held`
	s.mu.Unlock()
}

// spawnUnderLock starts a goroutine while holding the mutex; the
// goroutine body runs on its own schedule with its own discipline, so
// its send must stay quiet.
func (s *server) spawnUnderLock(ch chan reply, r reply) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- r
	}()
}
