package lockedblock_test

import (
	"testing"

	"photonrail/internal/lint/analysistest"
	"photonrail/internal/lint/lockedblock"
)

func TestLockedblock(t *testing.T) {
	analysistest.Run(t, lockedblock.Analyzer, "lockedrepro")
}
