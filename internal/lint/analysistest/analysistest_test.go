package analysistest_test

import (
	"go/ast"
	"testing"

	"photonrail/internal/lint/analysis"
	"photonrail/internal/lint/analysistest"
)

// paniccheck is a toy analyzer: it flags every panic call. The corpus
// under testdata/src/selftest pairs one flagged call with a // want,
// one with a //lint:allow suppression, and one quiet function — so a
// pass here means want-matching and allow-filtering both work.
var paniccheck = &analysis.Analyzer{
	Name: "paniccheck",
	Doc:  "flags panic calls (analysistest self-test fixture)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pass.Reportf(call.Pos(), "panic call")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunMatchesWantsAndAppliesAllow(t *testing.T) {
	analysistest.Run(t, paniccheck, "selftest")
}
