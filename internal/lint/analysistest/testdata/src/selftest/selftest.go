// Package selftest is the corpus for analysistest's own test: a
// deliberately trivial shape checked by a toy panic-flagging analyzer,
// so the want-matching and allow-filtering machinery is what is under
// test, not a real invariant.
package selftest

func explode() {
	panic("boom") // want `panic call`
}

func excused() {
	panic("fine") //lint:allow paniccheck the toy analyzer is suppressed here on purpose
}

func quiet() int {
	return 1
}
