// Package analysistest runs a raillint analyzer over a corpus package
// and compares its diagnostics against expectations embedded in the
// corpus, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	ch <- v // want `channel send`
//
// A `// want` comment holds one or more backquoted or double-quoted
// regular expressions; each must match exactly one diagnostic reported
// on that line, and every diagnostic must be claimed by a want.
// Diagnostics are filtered through the //lint:allow index first — the
// same filtering the raillint driver applies — so corpora exercise the
// suppression mechanism too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"photonrail/internal/lint/allow"
	"photonrail/internal/lint/analysis"
	"photonrail/internal/lint/loader"
)

// wantRE extracts the quoted expectations of one want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one // want entry awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for each named corpus package (testdata
// is resolved relative to the calling test's working directory, i.e.
// the analyzer package), runs the analyzer, and reports mismatches
// against the corpus's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, a, filepath.Join("testdata", "src", pkg))
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("corpus does not typecheck: %v", terr)
	}
	if t.Failed() {
		return
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		TestFiles: pkg.TestFiles,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s failed: %v", a.Name, err)
	}

	// The driver-identical suppression pass.
	ix := allow.Build(pkg.Fset, pkg.Files, pkg.TestFiles)
	kept := diags[:0]
	for _, d := range diags {
		if !ix.Allowed(a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	diags = kept

	expects := collectWants(t, pkg.Fset, pkg)
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if !claim(expects, p.Filename, p.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", position(p), d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(e.file), e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in the corpus (test files
// included — protoconsistency anchors seed-corpus findings there).
func collectWants(t *testing.T, fset *token.FileSet, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, ok := wantText(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", position(p), pat, err)
					}
					out = append(out, &expectation{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return out
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// wantText returns the expectation patterns of a comment, and whether
// it is a want comment at all.
func wantText(text string) ([]string, bool) {
	const marker = "// want "
	i := strings.Index(text, marker)
	if i < 0 {
		return nil, false
	}
	var pats []string
	for _, m := range wantRE.FindAllStringSubmatch(text[i+len(marker):], -1) {
		if m[1] != "" {
			pats = append(pats, m[1])
		} else {
			pats = append(pats, m[2])
		}
	}
	return pats, len(pats) > 0
}
