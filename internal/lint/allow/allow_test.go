package allow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFile parses src as demo.go and returns an Index over it plus a
// helper resolving (line, col 1) to a token.Pos.
func buildIndex(t *testing.T, src string) (*Index, func(line int) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }
	return Build(fset, []*ast.File{f}), at
}

func TestTrailingAnnotationCoversItsLineAndTheNext(t *testing.T) {
	ix, at := buildIndex(t, `package demo

func f() {
	_ = 1 //lint:allow maporder order is immaterial here
	_ = 2
	_ = 3
}
`)
	if !ix.Allowed("maporder", at(4)) {
		t.Error("annotation line not suppressed")
	}
	if !ix.Allowed("maporder", at(5)) {
		t.Error("line below annotation not suppressed")
	}
	if ix.Allowed("maporder", at(6)) {
		t.Error("two lines below annotation wrongly suppressed")
	}
	if ix.Allowed("lockedblock", at(4)) {
		t.Error("other analyzer wrongly suppressed")
	}
}

func TestFuncDocAnnotationCoversTheDeclaration(t *testing.T) {
	ix, at := buildIndex(t, `package demo

// f does a thing.
//lint:allow ctxbg this is a lifetime root
func f() {
	_ = 1
	_ = 2
}

func g() {
	_ = 3
}
`)
	for line := 5; line <= 8; line++ {
		if !ix.Allowed("ctxbg", at(line)) {
			t.Errorf("line %d inside annotated func not suppressed", line)
		}
	}
	if ix.Allowed("ctxbg", at(11)) {
		t.Error("line in unannotated func wrongly suppressed")
	}
}

func TestFileDocAnnotationCoversTheWholeFile(t *testing.T) {
	ix, at := buildIndex(t, `// Package demo is generated.
//lint:allow maporder generated output, ordering checked upstream
package demo

func f() {
	_ = 1
}
`)
	if !ix.Allowed("maporder", at(6)) {
		t.Error("file-doc annotation did not cover the file body")
	}
}

func TestBareAndUnknownAnnotations(t *testing.T) {
	ix, _ := buildIndex(t, `package demo

func f() {
	_ = 1 //lint:allow
	_ = 2 //lint:allow maporder
	_ = 3 //lint:allow maporder a real reason
}
`)
	if got := len(ix.Bare()); got != 2 {
		t.Errorf("Bare() = %d annotations, want 2 (no-name and no-reason)", got)
	}
	anns := ix.Annotations()
	if len(anns) != 1 || anns[0].Analyzer != "maporder" || anns[0].Reason != "a real reason" {
		t.Errorf("Annotations() = %+v, want one well-formed maporder entry", anns)
	}
}

func TestLookalikePrefixIsNotAnAnnotation(t *testing.T) {
	ix, _ := buildIndex(t, `package demo

func f() {
	_ = 1 //lint:allowed maporder not actually ours
}
`)
	if len(ix.Bare()) != 0 || len(ix.Annotations()) != 0 {
		t.Error("//lint:allowed was parsed as a //lint:allow annotation")
	}
}
