// Package allow implements raillint's suppression annotation:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a bare suppression is itself a lint
// failure — and the annotation's scope follows from where it sits:
//
//   - in a file's doc comment (above the package clause): whole file;
//   - in a func or decl doc comment: that declaration;
//   - anywhere else: the comment's own line and the line below it, so
//     both trailing (`x := f() //lint:allow ...`) and standalone-above
//     placements work.
//
// raillint filters every analyzer's diagnostics through one Index, so
// the mechanism is uniform across the suite, and reports malformed
// annotations (Bare) and annotations naming unknown analyzers as
// findings in their own right.
package allow

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix is the annotation's comment prefix.
const Prefix = "//lint:allow"

// Annotation is one parsed //lint:allow comment.
type Annotation struct {
	// Analyzer is the named analyzer ("" when the annotation is bare).
	Analyzer string
	// Reason is the mandatory justification ("" when bare).
	Reason string
	// Pos locates the annotation comment.
	Pos token.Pos
}

// scope is the region one annotation suppresses: [startLine, endLine]
// of file.
type scope struct {
	file      string
	startLine int
	endLine   int
}

// Index answers "is this diagnostic suppressed?" for a set of files.
type Index struct {
	fset *token.FileSet
	// byAnalyzer maps analyzer name -> suppressed regions.
	byAnalyzer map[string][]scope
	bare       []Annotation
	all        []Annotation
}

// Build scans every comment of every file group for annotations.
// Groups typically separate typechecked files from test files; the
// index treats them identically.
func Build(fset *token.FileSet, groups ...[]*ast.File) *Index {
	ix := &Index{fset: fset, byAnalyzer: make(map[string][]scope)}
	for _, files := range groups {
		for _, f := range files {
			ix.scanFile(f)
		}
	}
	return ix
}

func (ix *Index) scanFile(f *ast.File) {
	// Doc-comment ownership: a comment group that is a file, func, or
	// decl doc widens the annotation's scope to that owner.
	fileDoc := f.Doc
	declDoc := make(map[*ast.CommentGroup]ast.Decl)
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				declDoc[d.Doc] = d
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				declDoc[d.Doc] = d
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ann, ok := parse(c)
			if !ok {
				continue
			}
			ann.Pos = c.Pos()
			if ann.Analyzer == "" || ann.Reason == "" {
				ix.bare = append(ix.bare, ann)
				continue
			}
			ix.all = append(ix.all, ann)
			pos := ix.fset.Position(c.Pos())
			sc := scope{file: pos.Filename, startLine: pos.Line, endLine: pos.Line + 1}
			if cg == fileDoc {
				sc.startLine = 1
				sc.endLine = ix.fset.Position(f.End()).Line
			} else if d, ok := declDoc[cg]; ok {
				sc.startLine = ix.fset.Position(d.Pos()).Line
				sc.endLine = ix.fset.Position(d.End()).Line
			}
			ix.byAnalyzer[ann.Analyzer] = append(ix.byAnalyzer[ann.Analyzer], sc)
		}
	}
}

// parse recognizes an annotation comment; ok reports whether c is one
// at all (well-formed or not).
func parse(c *ast.Comment) (Annotation, bool) {
	text := c.Text
	if !strings.HasPrefix(text, Prefix) {
		return Annotation{}, false
	}
	rest := text[len(Prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return Annotation{}, false // e.g. //lint:allowed — not ours
	}
	fields := strings.Fields(rest)
	ann := Annotation{}
	if len(fields) > 0 {
		ann.Analyzer = fields[0]
	}
	if len(fields) > 1 {
		ann.Reason = strings.Join(fields[1:], " ")
	}
	return ann, true
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by an annotation in scope.
func (ix *Index) Allowed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	for _, sc := range ix.byAnalyzer[analyzer] {
		if sc.file == p.Filename && sc.startLine <= p.Line && p.Line <= sc.endLine {
			return true
		}
	}
	return false
}

// Bare returns the malformed annotations: missing the analyzer name or
// the mandatory reason. raillint reports each as a finding.
func (ix *Index) Bare() []Annotation {
	return ix.bare
}

// Annotations returns the well-formed annotations in position order;
// raillint cross-checks their analyzer names against the suite.
func (ix *Index) Annotations() []Annotation {
	out := append([]Annotation(nil), ix.all...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
