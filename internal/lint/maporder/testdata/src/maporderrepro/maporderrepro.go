// Package maporderrepro distills the PR 2 map-order bug for the
// maporder analyzer corpus: grant callbacks invoked in map-iteration
// order, plus the surrounding shapes (sends, appends, rendering) that
// must or must not flag.
package maporderrepro

import (
	"fmt"
	"sort"
)

type msg struct {
	Rank int
}

// grantAll is the PR 2 bug, distilled: the server ranged over the
// waiting-callback map and invoked each grant callback directly, so
// grant order — observable in telemetry and in which rank won a
// contended window — was randomized per run.
func grantAll(waiting map[int]func(msg)) {
	for rank, send := range waiting {
		send(msg{Rank: rank}) // want `call through a function value selected by map iteration`
	}
}

// grantAllIndirect launders the callback through a local before the
// call; taint must follow the assignment.
func grantAllIndirect(waiting map[int]func(msg)) {
	for rank := range waiting {
		send := waiting[rank]
		send(msg{Rank: rank}) // want `call through a function value selected by map iteration`
	}
}

// grantAllSorted is the shipped fix: collect the ranks, sort them,
// grant in rank order. Must stay quiet — including the key-collecting
// append, because the function sorts that slice.
func grantAllSorted(waiting map[int]func(msg)) {
	ranks := make([]int, 0, len(waiting))
	for rank := range waiting {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		waiting[rank](msg{Rank: rank})
	}
}

// drainToChannel forwards map values to a channel in iteration order.
func drainToChannel(pending map[int]msg, out chan msg) {
	for _, m := range pending {
		out <- m // want `map iteration order reaches a channel send`
	}
}

// collectRows appends map entries to a result slice and never sorts
// it — the caller sees rows in random order.
func collectRows(cells map[string]int) []string {
	var rows []string
	for name, n := range cells {
		rows = append(rows, fmt.Sprintf("%s=%d", name, n)) // want `rows appended in map-iteration order with no sort of "rows"`
	}
	return rows
}

// collectRowsSorted is the same collection with the sort applied
// afterwards; must stay quiet.
func collectRowsSorted(cells map[string]int) []string {
	var rows []string
	for name, n := range cells {
		rows = append(rows, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(rows)
	return rows
}

// collectPairsHelperSorted collects then sorts through a local helper
// — the Matching.Diff shape; the helper's name marks it a sort, so no
// diagnostic.
func collectPairsHelperSorted(cells map[string]int) []string {
	var rows []string
	for name := range cells {
		rows = append(rows, name)
	}
	sortRows(rows)
	return rows
}

func sortRows(rows []string) {
	sort.Strings(rows)
}

// printEntries renders entries straight from the range — the shape
// that makes golden tests flake.
func printEntries(cells map[string]int) {
	for name, n := range cells {
		fmt.Printf("%s: %d\n", name, n) // want `map iteration order reaches fmt.Printf output`
	}
}

// perIterationScratch builds a fresh slice per iteration; its internal
// order is the deterministic body order, so no diagnostic.
func perIterationScratch(cells map[string]int, use func([]int)) {
	for _, n := range cells {
		scratch := []int{}
		scratch = append(scratch, n, n*2)
		use(scratch)
	}
}

// orderNeutral only aggregates: counting and re-keying into another
// map are insensitive to iteration order.
func orderNeutral(cells map[string]int) (int, map[int]string) {
	total := 0
	inverse := make(map[int]string)
	for name, n := range cells {
		total += n
		inverse[n] = name
	}
	return total, inverse
}
