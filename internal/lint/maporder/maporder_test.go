package maporder_test

import (
	"testing"

	"photonrail/internal/lint/analysistest"
	"photonrail/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "maporderrepro")
}
