// Package maporder defines the raillint analyzer that catches map
// iteration order leaking into output.
//
// Go randomizes map iteration order per run. PR 2 shipped exactly this
// bug: the opusnet server iterated its waiting-rank map to issue
// grants, so grant order and telemetry varied run to run — a flake
// golden tests only catch after it ships. The invariant: values that
// flow OUT of a map-range loop in a way where order is observable
// (slice rows, channel sends, rendered output, invoked callbacks) must
// pass through a sort first.
//
// Mechanically, inside each `for ... range m` over a map the analyzer
// taints the iteration variables and everything assigned from them,
// then flags order-observable sinks fed by tainted values:
//
//   - a channel send;
//   - an append to a slice declared outside the loop, unless the
//     enclosing function later passes that slice to sort.*/slices.* —
//     the collect-then-sort idiom is the canonical fix and stays quiet;
//   - a call to a rendering/printing sink (fmt.Print*/Fprint*, or a
//     method named Write/WriteString/Render*/AddRow);
//   - a call THROUGH a tainted function value — the PR 2 shape, where
//     the map value was a per-rank reply callback.
//
// A loop that merely counts, or fills another map, is order-neutral
// and not flagged.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"photonrail/internal/lint/analysis"
)

// Analyzer flags map-iteration order leaking into order-observable
// sinks without an intervening sort.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map-range loops whose iteration order reaches slices, channels, " +
		"output, or callbacks without an intervening sort (nondeterministic output order)",
	Run: run,
}

// sinkMethods are method names whose call renders or emits data in
// call order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "AddRow": true,
	"Render": true, "RenderText": true, "RenderCSV": true, "RenderJSON": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Visit every function body; function literals get their own
		// visit via Inspect reaching nested RangeStmts either way.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc finds map-range loops directly inside fn (not inside
// nested function literals, which get their own checkFunc).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // handled by its own visit
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkLoop(pass, body, rng)
		return true
	})
}

// checkLoop taints the range variables and flags tainted sinks in the
// loop body.
func checkLoop(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	mark(rng.Key)
	mark(rng.Value)

	usesTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Walk the loop body in source order so taint propagates through
	// local assignments (`send := waiting[rank]` taints send).
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a deferred/stored closure is out of scope here
		case *ast.AssignStmt:
			taintedRHS := false
			for _, rhs := range n.Rhs {
				if usesTainted(rhs) {
					taintedRHS = true
				}
				// The append-to-outer-slice sink.
				if call, ok := rhs.(*ast.CallExpr); ok {
					checkAppend(pass, fnBody, rng, call, info, usesTainted)
				}
			}
			if taintedRHS {
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			}
		case *ast.SendStmt:
			if usesTainted(n.Value) || usesTainted(n.Chan) {
				pass.Reportf(n.Pos(),
					"map iteration order reaches a channel send; collect and sort the keys first (map order is randomized per run)")
			}
		case *ast.CallExpr:
			checkCall(pass, n, info, tainted, usesTainted)
		}
		return true
	})
}

// checkAppend flags `outer = append(outer, <tainted>)` when outer is
// declared outside the loop and never sorted in the enclosing
// function.
func checkAppend(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, call *ast.CallExpr, info *types.Info, usesTainted func(ast.Expr) bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	dstID, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	dst := info.Uses[dstID]
	if dst == nil {
		return
	}
	// Per-iteration slices declared inside the loop body reset each
	// pass; their internal order is the (deterministic) body order.
	if rng.Body.Pos() <= dst.Pos() && dst.Pos() <= rng.Body.End() {
		return
	}
	taintedArg := false
	for _, a := range call.Args[1:] {
		if usesTainted(a) {
			taintedArg = true
		}
	}
	if !taintedArg {
		return
	}
	if sortedInFunc(fnBody, info, dst) {
		return
	}
	pass.Reportf(call.Pos(),
		"rows appended in map-iteration order with no sort of %q in this function; sort before use (map order is randomized per run)",
		dst.Name())
}

// sortedInFunc reports whether fn contains a sorting call that
// mentions obj: anything from package sort or slices, or a local
// helper whose name says it sorts (sortPairs and friends).
func sortedInFunc(fnBody *ast.BlockStmt, info *types.Info, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			fn, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return !found
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return !found
			}
		case *ast.Ident:
			if !strings.Contains(strings.ToLower(fun.Name), "sort") {
				return !found
			}
		default:
			return !found
		}
		for _, a := range call.Args {
			mentioned := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkCall flags rendering sinks and calls through tainted function
// values.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, info *types.Info, tainted map[types.Object]bool, usesTainted func(ast.Expr) bool) {
	anyTaintedArg := false
	for _, a := range call.Args {
		if usesTainted(a) {
			anyTaintedArg = true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// A call through a tainted function value: the PR 2 grant-order
		// shape (`send := waiting[rank]; send(msg)`).
		if obj := info.Uses[fun]; obj != nil && tainted[obj] {
			pass.Reportf(call.Pos(),
				"call through a function value selected by map iteration; iterate sorted keys instead (map order is randomized per run)")
			return
		}
	case *ast.SelectorExpr:
		if !anyTaintedArg {
			return
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			pass.Reportf(call.Pos(),
				"map iteration order reaches %s.%s output; sort the keys first (map order is randomized per run)", "fmt", fn.Name())
			return
		}
		if sinkMethods[fun.Sel.Name] {
			if _, isMethod := info.Selections[fun]; isMethod {
				pass.Reportf(call.Pos(),
					"map iteration order reaches a %s call; sort the keys first (map order is randomized per run)", fun.Sel.Name)
			}
		}
	}
}
