package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Event is one structured request-lifecycle record. Seq and Time are
// stamped by the EventLog at Emit; everything else is caller-supplied.
// Fields are omitted from the JSON encoding when zero, so an event
// carries only what its type populates.
type Event struct {
	Seq  uint64 `json:"seq"`
	Time int64  `json:"time_unix_nano"`
	// Type is one of: submitted, deduped, sharded, cell_complete,
	// failover, result, cancel — plus the fleet-membership lifecycle:
	// join, leave, drain, drain_handoff.
	Type string `json:"type"`
	// Req is the server-assigned request id ("r17"); empty for events
	// not tied to one request (failover, sharded waves).
	Req string `json:"req,omitempty"`
	// Exp is the experiment name, or "grid"/"cells" for raw grid paths.
	Exp string `json:"exp,omitempty"`
	// Key is the dedup key of the underlying run, so joiners can be
	// correlated with the execution they attached to.
	Key string `json:"key,omitempty"`
	// Backend is the backend address for sharded/cell_complete/failover.
	Backend string `json:"backend,omitempty"`
	// Cells is the number of grid cells involved (assigned in a wave,
	// completed in a batch, reassigned on failover).
	Cells int `json:"cells,omitempty"`
	// Wave is the failover wave number for sharded/failover events.
	Wave int `json:"wave,omitempty"`
	// DurationNS is the request duration for result/cancel events.
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Err carries the error string for failed results and failovers.
	Err string `json:"err,omitempty"`
	// Member is the stable fleet identity for membership lifecycle
	// events (join/leave/drain/drain_handoff); Backend carries the
	// member's serving address alongside it.
	Member string `json:"member,omitempty"`
	// Capacity is the member's advertised worker-pool size on join/drain.
	Capacity int `json:"capacity,omitempty"`
	// Reason distinguishes membership transitions: a leave is "drained"
	// or "heartbeat timeout"; a drain carries the sender's reason.
	Reason string `json:"reason,omitempty"`
	// Tenant is the requesting tenant for gateway events.
	Tenant string `json:"tenant,omitempty"`
	// Done/Total carry per-cell completion progress for gateway
	// progress events (Done of Total cells finished).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// nower lets tests pin the clock; production uses time.Now.
type nower func() int64

// EventLog is a bounded ring of Events with non-blocking emission.
// When the ring is full the oldest event is dropped and a counter
// incremented — the request hot path never waits on a slow consumer.
// Subscribers receive live events over buffered channels with the same
// drop-oldest-never-block policy applied per subscriber.
type EventLog struct {
	now nower

	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest
	n       int // occupied
	seq     uint64
	dropped uint64
	subs    map[*Subscription]struct{}
}

// NewEventLog builds a ring holding at most capacity events
// (minimum 1).
func NewEventLog(capacity int, now func() int64) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{
		now:  now,
		ring: make([]Event, capacity),
		subs: make(map[*Subscription]struct{}),
	}
}

// Emit stamps the event with the next sequence number and current time
// and appends it, dropping the oldest entry if the ring is full. It
// never blocks: subscriber channels are sent to with select-default,
// counting per-subscriber drops instead of waiting.
func (l *EventLog) Emit(ev Event) {
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.Time = l.now()
	if l.n == len(l.ring) {
		l.start = (l.start + 1) % len(l.ring)
		l.n--
		l.dropped++
	}
	l.ring[(l.start+l.n)%len(l.ring)] = ev
	l.n++
	for s := range l.subs {
		select {
		case s.ch <- ev: //lint:allow maporder every subscriber gets the same event; delivery order across subscribers is immaterial
		default:
			s.dropped++
		}
	}
	l.mu.Unlock()
}

// Dropped reports how many events have been evicted from the ring
// before ever being snapshotted (the ring-full drop-oldest counter).
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *EventLog) snapshotLocked() []Event {
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.ring[(l.start+i)%len(l.ring)]
	}
	return out
}

// Subscription is one live tail of the event log. Events arrive on C;
// if the consumer falls behind its buffer, newer events are counted in
// Dropped rather than blocking the emitter.
type Subscription struct {
	ch      chan Event
	log     *EventLog
	dropped uint64
	replay  []Event
}

// C is the live event channel.
func (s *Subscription) C() <-chan Event { return s.ch }

// Replay returns the ring snapshot taken atomically at subscribe time
// (SubscribeReplay only); these events precede everything on C with no
// gap or overlap.
func (s *Subscription) Replay() []Event { return s.replay }

// Dropped reports how many live events this subscriber missed because
// its buffer was full.
func (s *Subscription) Dropped() uint64 {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription; C is never closed (emitters only
// ever send), so consumers should select on their own done signal.
func (s *Subscription) Close() {
	s.log.mu.Lock()
	delete(s.log.subs, s)
	s.log.mu.Unlock()
}

// Subscribe attaches a live tail with the given channel buffer
// (minimum 1).
func (l *EventLog) Subscribe(buffer int) *Subscription {
	return l.subscribe(buffer, false)
}

// SubscribeReplay is Subscribe plus an atomic snapshot of the ring:
// Replay() holds everything emitted before the subscription, C carries
// everything after, with no gap between them.
func (l *EventLog) SubscribeReplay(buffer int) *Subscription {
	return l.subscribe(buffer, true)
}

func (l *EventLog) subscribe(buffer int, replay bool) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{ch: make(chan Event, buffer), log: l}
	l.mu.Lock()
	if replay {
		s.replay = l.snapshotLocked()
	}
	l.subs[s] = struct{}{}
	l.mu.Unlock()
	return s
}

// ErrEventsDropped reports that a WaitFor observation window lost
// events (ring eviction before replay, or subscriber-buffer overflow),
// so a stateful predicate may have missed matching input.
var ErrEventsDropped = fmt.Errorf("telemetry: events dropped during wait")

// WaitFor blocks until pred returns true, feeding it first the
// retained ring (oldest first) and then live events as they arrive.
// pred may be stateful (e.g. summing cell counts across events). It
// returns ErrEventsDropped if any event in the observation window was
// lost, and ctx.Err() on cancellation — so a successful return is a
// deterministic guarantee that the predicate's inputs were complete.
func (l *EventLog) WaitFor(ctx context.Context, pred func(Event) bool) error {
	sub := l.subscribeWaiter()
	defer sub.Close()
	for _, ev := range sub.replay {
		if pred(ev) {
			return nil
		}
	}
	if sub.Dropped() > 0 {
		return ErrEventsDropped
	}
	for {
		select {
		case ev := <-sub.ch:
			if pred(ev) {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
		if sub.Dropped() > 0 {
			return ErrEventsDropped
		}
	}
}

// subscribeWaiter is SubscribeReplay with a buffer sized to the ring
// and a check that nothing was evicted before the waiter attached: a
// waiter that starts after ring wraparound cannot claim completeness,
// so replay is trimmed to what survived and the caller detects drops
// via Dropped of the subscription (pre-attach ring drops are folded in
// by recording the baseline).
func (l *EventLog) subscribeWaiter() *Subscription {
	l.mu.Lock()
	s := &Subscription{ch: make(chan Event, 4*len(l.ring)), log: l}
	s.replay = l.snapshotLocked()
	s.dropped = l.dropped // ring evictions before attach count as missed input
	l.subs[s] = struct{}{}
	l.mu.Unlock()
	return s
}

// MarshalJSONLines renders events as newline-delimited JSON, the
// format served by the /events endpoint and consumed by tests.
func MarshalJSONLines(events []Event) ([]byte, error) {
	var out []byte
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out, nil
}
