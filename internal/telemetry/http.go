package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Set bundles the two halves of a process's observability surface: a
// metrics registry and an event log. Servers embed one Set and expose
// it over HTTP with Handler.
type Set struct {
	Metrics *Registry
	Events  *EventLog
}

// NewSet builds a registry plus an event ring of the given capacity,
// stamping events with now (nanoseconds since epoch).
func NewSet(eventCapacity int, now func() int64) *Set {
	return &Set{
		Metrics: NewRegistry(),
		Events:  NewEventLog(eventCapacity, now),
	}
}

// Handler serves the observability endpoints:
//
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /events   — SSE tail of the event ring: retained events are
//	                replayed first, then live events stream until the
//	                client disconnects; each frame is one JSON event
//
// The handler holds no locks across writes and a slow /events client
// only ever loses its own events (subscriber-buffer drop), never
// stalls emitters.
func (s *Set) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Metrics.Render(w); err != nil {
			// Client went away mid-scrape; nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		sub := s.Events.SubscribeReplay(256)
		defer sub.Close()
		for _, ev := range sub.Replay() {
			if err := writeSSE(w, ev); err != nil {
				return
			}
		}
		flusher.Flush()
		for {
			select {
			case ev := <-sub.C():
				if err := writeSSE(w, ev); err != nil {
					return
				}
				flusher.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	return mux
}

func writeSSE(w http.ResponseWriter, ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", b)
	return err
}
