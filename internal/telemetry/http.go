package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Set bundles the two halves of a process's observability surface: a
// metrics registry and an event log. Servers embed one Set and expose
// it over HTTP with Handler.
type Set struct {
	Metrics *Registry
	Events  *EventLog
}

// NewSet builds a registry plus an event ring of the given capacity,
// stamping events with now (nanoseconds since epoch).
func NewSet(eventCapacity int, now func() int64) *Set {
	return &Set{
		Metrics: NewRegistry(),
		Events:  NewEventLog(eventCapacity, now),
	}
}

// Handler serves the observability endpoints:
//
//	GET /metrics  — Prometheus text exposition of the registry
//	GET /events   — SSE tail of the event ring: retained events are
//	                replayed first, then live events stream until the
//	                client disconnects; each frame is one JSON event
//
// The handler holds no locks across writes and a slow /events client
// only ever loses its own events (subscriber-buffer drop), never
// stalls emitters.
func (s *Set) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Metrics.Render(w); err != nil {
			// Client went away mid-scrape; nothing to clean up.
			return
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		s.Events.ServeSSE(w, r, nil, nil)
	})
	return mux
}

// ServeSSE streams the event log to one HTTP client as server-sent
// events: the retained ring is replayed first (atomically — no gap or
// overlap with the live tail), then live events stream until the client
// disconnects. Each frame is one JSON event. pred, when non-nil,
// filters which events are sent — the railgate front door streams one
// run's progress by predicating on the event's request id. last, when
// non-nil, is consulted after each sent event; returning true ends the
// stream cleanly — how a per-run stream terminates once the run's
// terminal event has been delivered. A slow client only ever loses its
// own events (subscriber-buffer drop); emitters never block.
func (l *EventLog) ServeSSE(w http.ResponseWriter, r *http.Request, pred func(Event) bool, last func(Event) bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	send := func(ev Event) (done bool, err error) {
		if pred != nil && !pred(ev) {
			return false, nil
		}
		if err := writeSSE(w, ev); err != nil {
			return false, err
		}
		return last != nil && last(ev), nil
	}
	sub := l.SubscribeReplay(256)
	defer sub.Close()
	for _, ev := range sub.Replay() {
		done, err := send(ev)
		if err != nil {
			return
		}
		if done {
			flusher.Flush()
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev := <-sub.C():
			done, err := send(ev)
			if err != nil {
				return
			}
			flusher.Flush()
			if done {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", b)
	return err
}
