package telemetry

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() int64 { return 42 }

func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	g := r.Gauge("test_inflight", "Requests in flight.")
	g.Set(2)
	g.Dec()
	v := r.CounterVec("test_stage_hits_total", "Stage hits.", "stage")
	v.With("build").Add(5)
	v.With("time").Add(7)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_inflight Requests in flight.
# TYPE test_inflight gauge
test_inflight 1
# HELP test_stage_hits_total Stage hits.
# TYPE test_stage_hits_total counter
test_stage_hits_total{stage="build"} 5
test_stage_hits_total{stage="time"} 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "h", []float64{1, 2})
	// A sample exactly on an upper bound counts in that bucket (le
	// semantics).
	h.Observe(1)
	h.Observe(2)
	h.Observe(2.0001)
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`b_seconds_bucket{le="1"} 1`,
		`b_seconds_bucket{le="2"} 2`,
		`b_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
}

func TestOnScrapeSamplesBeforeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sampled_total", "Sampled.")
	authoritative := uint64(0)
	r.OnScrape(func() { c.Set(authoritative) })
	authoritative = 9
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sampled_total 9\n") {
		t.Errorf("OnScrape hook did not run before render:\n%s", sb.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Counter("dup_total", "b")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "e", "name").With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{name="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("escaping wrong:\ngot %s\nwant line %q", sb.String(), want)
	}
}

func TestParseSamplesRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("p_total", "p").Add(4)
	r.HistogramVec("p_seconds", "h", []float64{1}, "exp").With("fig8").Observe(0.5)
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSamples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"p_total":                             4,
		`p_seconds_bucket{exp="fig8",le="1"}`: 1,
		`p_seconds_count{exp="fig8"}`:         1,
		`p_seconds_sum{exp="fig8"}`:           0.5,
	} {
		if got[name] != want {
			t.Errorf("ParseSamples[%q] = %v, want %v (all: %v)", name, got[name], want, got)
		}
	}
}

func TestEventLogDropOldest(t *testing.T) {
	l := NewEventLog(3, fixedNow)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Type: "submitted", Req: fmt.Sprintf("r%d", i)})
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(snap))
	}
	for i, ev := range snap {
		if want := fmt.Sprintf("r%d", i+2); ev.Req != want {
			t.Errorf("snapshot[%d].Req = %q, want %q", i, ev.Req, want)
		}
		if ev.Seq != uint64(i+3) {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, ev.Seq, i+3)
		}
		if ev.Time != 42 {
			t.Errorf("snapshot[%d].Time = %d, want 42", i, ev.Time)
		}
	}
	if l.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", l.Dropped())
	}
}

func TestSubscribeReplayNoGap(t *testing.T) {
	l := NewEventLog(16, fixedNow)
	for i := 0; i < 4; i++ {
		l.Emit(Event{Type: "submitted"})
	}
	sub := l.SubscribeReplay(16)
	defer sub.Close()
	for i := 0; i < 4; i++ {
		l.Emit(Event{Type: "result"})
	}
	var seqs []uint64
	for _, ev := range sub.Replay() {
		seqs = append(seqs, ev.Seq)
	}
	for i := 0; i < 4; i++ {
		ev := <-sub.C()
		seqs = append(seqs, ev.Seq)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("gap or reorder in replay+live: seqs = %v", seqs)
		}
	}
}

func TestSubscriberOverflowNeverBlocksEmit(t *testing.T) {
	l := NewEventLog(64, fixedNow)
	sub := l.Subscribe(1)
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Emit(Event{Type: "submitted"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a full subscriber")
	}
	if sub.Dropped() == 0 {
		t.Error("expected subscriber drops with buffer 1 and 100 events")
	}
}

func TestWaitForStatefulPredicate(t *testing.T) {
	l := NewEventLog(128, fixedNow)
	l.Emit(Event{Type: "cell_complete", Cells: 10})
	errc := make(chan error, 1)
	go func() {
		total := 0
		errc <- l.WaitFor(context.Background(), func(ev Event) bool {
			if ev.Type == "cell_complete" {
				total += ev.Cells
			}
			return total >= 48
		})
	}()
	l.Emit(Event{Type: "cell_complete", Cells: 20})
	l.Emit(Event{Type: "submitted"})
	l.Emit(Event{Type: "cell_complete", Cells: 18})
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("WaitFor: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor never satisfied")
	}
}

func TestWaitForContextCancel(t *testing.T) {
	l := NewEventLog(8, fixedNow)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := l.WaitFor(ctx, func(Event) bool { return false })
	if err != context.DeadlineExceeded {
		t.Fatalf("WaitFor = %v, want DeadlineExceeded", err)
	}
}

func TestWaitForDetectsPreAttachDrops(t *testing.T) {
	l := NewEventLog(2, fixedNow)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Type: "cell_complete", Cells: 1})
	}
	errc := make(chan error, 1)
	go func() {
		total := 0
		errc <- l.WaitFor(context.Background(), func(ev Event) bool {
			total += ev.Cells
			return total >= 5
		})
	}()
	// The waiter can't see the 3 evicted events; the next live event
	// must surface the loss instead of hanging forever.
	l.Emit(Event{Type: "cell_complete", Cells: 0})
	select {
	case err := <-errc:
		if err != ErrEventsDropped {
			t.Fatalf("WaitFor = %v, want ErrEventsDropped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor hung despite dropped events")
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	s := NewSet(16, fixedNow)
	s.Metrics.Counter("h_total", "h").Add(2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples, err := ParseSamples(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if samples["h_total"] != 2 {
		t.Errorf("scraped h_total = %v, want 2", samples["h_total"])
	}
}

func TestHTTPEventsSSEReplayAndLive(t *testing.T) {
	s := NewSet(16, fixedNow)
	s.Events.Emit(Event{Type: "submitted", Req: "r1"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("GET", srv.URL+"/events", nil).WithContext(ctx)
	req.RequestURI = ""
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	s.Events.Emit(Event{Type: "result", Req: "r1"})
	buf := make([]byte, 0, 1024)
	chunk := make([]byte, 256)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(string(buf), `"type":"result"`) {
		if time.Now().After(deadline) {
			t.Fatalf("SSE stream never delivered both events; got: %s", buf)
		}
		n, err := resp.Body.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if err != nil {
			break
		}
	}
	body := string(buf)
	if !strings.Contains(body, `"type":"submitted"`) {
		t.Errorf("SSE replay missing pre-subscribe event: %s", body)
	}
	if !strings.Contains(body, `"type":"result"`) {
		t.Errorf("SSE missing live event: %s", body)
	}
	if !strings.Contains(body, "data: {") {
		t.Errorf("not SSE-framed: %s", body)
	}
}

// TestConcurrentScrapeAndEmitHammer is the -race hammer required by
// the issue: concurrent scrapes, event emission, histogram observes,
// and SSE-style subscribers must never block each other or race.
func TestConcurrentScrapeAndEmitHammer(t *testing.T) {
	s := NewSet(64, func() int64 { return time.Now().UnixNano() })
	h := s.Metrics.HistogramVec("hammer_seconds", "h", DefLatencyBuckets, "exp")
	c := s.Metrics.Counter("hammer_total", "h")
	g := s.Metrics.Gauge("hammer_inflight", "h")
	s.Metrics.OnScrape(func() { c.Set(c.Value()) })

	const emitters = 8
	const perEmitter = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	// Slow subscribers that never read: emitters must not care.
	for i := 0; i < 4; i++ {
		sub := s.Events.Subscribe(1)
		defer sub.Close()
	}
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < perEmitter; j++ {
				g.Inc()
				s.Events.Emit(Event{Type: "submitted", Req: fmt.Sprintf("r%d-%d", i, j)})
				h.With("fig8").Observe(float64(j) / 1000)
				c.Inc()
				s.Events.Emit(Event{Type: "result", Req: fmt.Sprintf("r%d-%d", i, j)})
				g.Dec()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				var sb strings.Builder
				if err := s.Metrics.Render(&sb); err != nil {
					t.Error(err)
					return
				}
				s.Events.Snapshot()
				s.Events.Dropped()
			}
		}()
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hammer deadlocked: emission or scrape blocked")
	}
	if got := c.Value(); got != emitters*perEmitter {
		t.Errorf("hammer_total = %d, want %d", got, emitters*perEmitter)
	}
	if h.With("fig8").Count() != emitters*perEmitter {
		t.Errorf("histogram count = %d, want %d", h.With("fig8").Count(), emitters*perEmitter)
	}
	// Ring is far smaller than the event volume: drops must be counted.
	if s.Events.Dropped() == 0 {
		t.Error("expected ring drops under hammer")
	}
}

func TestMarshalJSONLines(t *testing.T) {
	l := NewEventLog(4, fixedNow)
	l.Emit(Event{Type: "submitted", Req: "r1", Exp: "fig8-5d"})
	b, err := MarshalJSONLines(l.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	if !strings.HasSuffix(got, "\n") || strings.Count(got, "\n") != 1 {
		t.Errorf("not one JSON line: %q", got)
	}
	if !strings.Contains(got, `"exp":"fig8-5d"`) {
		t.Errorf("missing field: %q", got)
	}
}
