// Package telemetry is the fleet-grade observability layer behind
// raild and railfleet: a Prometheus-text-format metrics registry
// (counters, gauges, fixed-bucket histograms — standard library only,
// no client_golang dependency) plus a bounded, non-blocking structured
// event log for request lifecycles. Both are served over an opt-in
// HTTP listener (Handler: GET /metrics for a scrape, GET /events for
// an SSE tail of the event ring).
//
// The registry favors *sampled* metrics for counters that already
// exist elsewhere: an OnScrape hook runs before every render, so a
// server can copy its authoritative counters (e.g. the engine cache
// stats that travel the opusnet stats_resp frame) into the registry at
// scrape time — the scrape and the stats frame can never disagree.
// Live metrics (in-flight gauges, latency histograms) are updated
// inline on the hot path with atomic or short-critical-section
// operations; nothing in this package blocks on a consumer.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets are the fixed histogram bounds (seconds) used for
// request-latency histograms: roughly logarithmic from 1 ms to 60 s,
// bracketing everything from a warm-cache cell subset to a cold
// full-grid fan-out.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Construct with NewRegistry; the zero value
// is not usable. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family          // registration order
	byName   map[string]*family // duplicate-registration guard
	hooks    []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every Render, before
// any family is written. Servers use it to copy authoritative counters
// (engine cache stats, per-backend health) into sampled metrics so a
// scrape always matches the source of truth. Hooks run sequentially in
// registration order, outside the registry lock; they must not call
// Render.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// family is one named metric with a fixed type, help string, and label
// schema; its series are the per-label-value children.
type family struct {
	name, help, typ string
	labelNames      []string
	uppers          []float64 // histogram bucket upper bounds

	mu     sync.Mutex
	series map[string]any // joined label values -> *Counter/*Gauge/*Histogram
}

// register installs a family, panicking on a duplicate name: metric
// names are a fixed, code-defined schema, so a collision is a
// programming error best caught at construction.
func (r *Registry) register(name, help, typ string, labelNames []string, uppers []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames,
		uppers:     uppers,
		series:     make(map[string]any),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// child returns the series for the label values, creating it on first
// use. Label arity is fixed by the family's schema.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := joinLabels(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.series[key]
	if !ok {
		c = make()
		f.series[key] = c
	}
	return c
}

// joinLabels builds the series key from label values; \x1f cannot
// appear in a rendered label, so the join is unambiguous.
func joinLabels(values []string) string { return strings.Join(values, "\x1f") }

// Counter is a monotonically increasing metric. Set exists for sampled
// counters — mirrors of an authoritative counter maintained elsewhere
// (an engine's cache stats, a backend snapshot) copied in by an
// OnScrape hook; inline-updated counters use Inc/Add only.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value (sampled counters only; see type doc).
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value reports the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: Observe assigns a sample
// to the first bucket whose upper bound is >= the value (cumulative
// "le" semantics render at scrape time). The critical section is a few
// loads and stores, so Observe is safe on hot paths.
type Histogram struct {
	uppers []float64 // sorted upper bounds, +Inf implicit

	mu     sync.Mutex
	counts []uint64 // per-bucket (not cumulative); last slot = +Inf overflow
	sum    float64
	total  uint64
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reports the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum, and the total.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.total
}

// Counter registers a label-free counter family and returns its single
// series.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers a label-free gauge family and returns its single
// series.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers a label-free histogram family with the given
// bucket upper bounds (sorted ascending; +Inf is implicit) and returns
// its single series.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, append([]float64(nil), uppers...))
	return f.child(nil, func() any { return newHistogram(f.uppers) }).(*Histogram)
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labelNames, nil)}
}

// With returns the series for the label values, creating it on first
// use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels; With resolves one series.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labelNames, nil)}
}

// With returns the series for the label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels; With resolves one
// series.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with the given
// bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, uppers []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", labelNames, append([]float64(nil), uppers...))}
}

// With returns the series for the label values, creating it on first
// use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any { return newHistogram(v.f.uppers) }).(*Histogram)
}

// Render runs the OnScrape hooks, then writes every family in
// registration order — series sorted by label values — in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	var sb strings.Builder
	for _, f := range families {
		f.render(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) render(sb *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	series := make([]any, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		series = append(series, f.series[k])
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.typ)
	for i, k := range keys {
		var values []string
		if k != "" || len(f.labelNames) > 0 {
			values = strings.Split(k, "\x1f")
		}
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(sb, "%s %d\n", seriesName(f.name, f.labelNames, values, "", ""), m.Value())
		case *Gauge:
			fmt.Fprintf(sb, "%s %s\n", seriesName(f.name, f.labelNames, values, "", ""), formatFloat(m.Value()))
		case *Histogram:
			cum, sum, total := m.snapshot()
			for bi, upper := range m.uppers {
				fmt.Fprintf(sb, "%s %d\n",
					seriesName(f.name+"_bucket", f.labelNames, values, "le", formatFloat(upper)), cum[bi])
			}
			fmt.Fprintf(sb, "%s %d\n",
				seriesName(f.name+"_bucket", f.labelNames, values, "le", "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(sb, "%s %s\n", seriesName(f.name+"_sum", f.labelNames, values, "", ""), formatFloat(sum))
			fmt.Fprintf(sb, "%s %d\n", seriesName(f.name+"_count", f.labelNames, values, "", ""), total)
		}
	}
}

// seriesName renders name{label="value",...}, appending the extra
// label (histogram "le") when set.
func seriesName(name string, labelNames, values []string, extraName, extraValue string) string {
	if len(labelNames) == 0 && extraName == "" {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, ln := range labelNames {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(ln)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(labelNames) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseSamples parses a Prometheus text exposition (as Render writes
// it) into a map from full series name — including the {label="..."}
// suffix — to value. Comment and blank lines are skipped. It
// understands exactly the subset Render emits, which is all a
// cross-checking client (railbench, the e2e tests) needs.
func ParseSamples(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("telemetry: unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad value in sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}
