// Package units provides the physical quantities used throughout the
// photonic-rail simulator: byte counts, link bandwidths, virtual-time
// durations, and the dollars/watts used by the fabric cost model.
//
// All simulator time is integer nanoseconds (units.Duration) so that
// discrete-event runs are exactly reproducible; bandwidths are bits per
// second so that transfer times divide out without floating-point
// surprises at the call sites that matter.
package units

import (
	"fmt"
	"math"
)

// ByteSize is a data volume in bytes.
type ByteSize int64

// Common byte quantities.
const (
	Byte ByteSize = 1
	KB            = 1024 * Byte
	MB            = 1024 * KB
	GB            = 1024 * MB
	TB            = 1024 * GB
)

// String renders the size with a binary-prefix unit, e.g. "957.0MB".
func (b ByteSize) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.1fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.1fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.1fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.1fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// Bandwidth is a link or fabric rate in bits per second.
type Bandwidth int64

// Common link rates. Gbps values follow the datasheet (decimal) meaning.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
	Tbps                   = 1000 * Gbps
)

// String renders the bandwidth with a decimal-prefix unit, e.g. "400Gbps".
func (bw Bandwidth) String() string {
	switch {
	case bw >= Tbps:
		return fmt.Sprintf("%gTbps", float64(bw)/float64(Tbps))
	case bw >= Gbps:
		return fmt.Sprintf("%gGbps", float64(bw)/float64(Gbps))
	case bw >= Mbps:
		return fmt.Sprintf("%gMbps", float64(bw)/float64(Mbps))
	default:
		return fmt.Sprintf("%dbps", int64(bw))
	}
}

// Duration is virtual simulator time in nanoseconds. It is deliberately a
// distinct type from time.Duration: simulator time never interacts with the
// wall clock, and keeping the types separate prevents accidental mixing.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds returns the duration in (possibly fractional) milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration in (possibly fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String renders the duration with an adaptive unit, e.g. "25ms" or "1.3s".
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3gms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// FromMilliseconds converts fractional milliseconds into a Duration,
// rounding to the nearest nanosecond.
func FromMilliseconds(ms float64) Duration {
	return Duration(math.Round(ms * float64(Millisecond)))
}

// FromSeconds converts fractional seconds into a Duration, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// TransferTime returns the serialization time of size bytes over bw.
// A zero or negative bandwidth panics: it is always a configuration bug.
func TransferTime(size ByteSize, bw Bandwidth) Duration {
	if bw <= 0 {
		panic(fmt.Sprintf("units: TransferTime with non-positive bandwidth %d", bw))
	}
	if size <= 0 {
		return 0
	}
	bits := float64(size.Bits())
	return Duration(math.Ceil(bits / float64(bw) * float64(Second)))
}

// Dollars is a cost in US dollars. The fabric cost model works in whole
// dollars; catalog prices are integral.
type Dollars int64

// String renders the cost with thousands separators, e.g. "$1,234,567".
func (d Dollars) String() string {
	neg := d < 0
	v := int64(d)
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	out := make([]byte, 0, len(s)+len(s)/3+1)
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-$" + string(out)
	}
	return "$" + string(out)
}

// Watts is electrical power in watts.
type Watts float64

// String renders the power with an adaptive unit, e.g. "1.25MW".
func (w Watts) String() string {
	switch {
	case w >= 1e6:
		return fmt.Sprintf("%.2fMW", float64(w)/1e6)
	case w >= 1e3:
		return fmt.Sprintf("%.2fkW", float64(w)/1e3)
	default:
		return fmt.Sprintf("%.1fW", float64(w))
	}
}
