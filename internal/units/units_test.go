package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.0KB"},
		{1536, "1.5KB"},
		{MB, "1.0MB"},
		{957 * MB, "957.0MB"},
		{3829 * MB, "3.7GB"},
		{GB, "1.0GB"},
		{2 * TB, "2.0TB"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	tests := []struct {
		in   Bandwidth
		want string
	}{
		{400 * Gbps, "400Gbps"},
		{200 * Gbps, "200Gbps"},
		{100 * Gbps, "100Gbps"},
		{Tbps, "1Tbps"},
		{51200 * Gbps, "51.2Tbps"},
		{25 * Mbps, "25Mbps"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Bandwidth.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if got := FromMilliseconds(25).Milliseconds(); got != 25 {
		t.Errorf("FromMilliseconds(25).Milliseconds() = %v, want 25", got)
	}
	if got := FromMilliseconds(0.00001); got != 10 {
		t.Errorf("FromMilliseconds(0.00001) = %d ns, want 10", int64(got))
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := Duration(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		in   Duration
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{25 * Millisecond, "25ms"},
		{1500 * Millisecond, "1.5s"},
		{3 * Microsecond, "3us"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 400 Gbps moves 50 GB (decimal 50e9*8 bits = 4e11 bits) in 1 s.
	size := ByteSize(50_000_000_000)
	if got := TransferTime(size, 400*Gbps); got != Second {
		t.Errorf("TransferTime(50GB, 400Gbps) = %v, want 1s", got)
	}
	// 1 MB over 400 Gbps ~ 20.97 us.
	got := TransferTime(MB, 400*Gbps)
	want := Duration(math.Ceil(float64(MB.Bits()) / 400e9 * 1e9))
	if got != want {
		t.Errorf("TransferTime(1MB, 400Gbps) = %v, want %v", got, want)
	}
	if got := TransferTime(0, 400*Gbps); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
}

func TestTransferTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransferTime with zero bandwidth did not panic")
		}
	}()
	TransferTime(MB, 0)
}

// Property: transfer time is monotone in size and antitone in bandwidth.
func TestTransferTimeMonotonicity(t *testing.T) {
	f := func(a, b uint32, bwSel uint8) bool {
		s1 := ByteSize(a % (1 << 30))
		s2 := ByteSize(b % (1 << 30))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		bws := []Bandwidth{100 * Gbps, 200 * Gbps, 400 * Gbps}
		bw := bws[int(bwSel)%len(bws)]
		if TransferTime(s1, bw) > TransferTime(s2, bw) {
			return false
		}
		// Doubling bandwidth never increases the time.
		return TransferTime(s2, 2*bw) <= TransferTime(s2, bw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDollarsString(t *testing.T) {
	tests := []struct {
		in   Dollars
		want string
	}{
		{0, "$0"},
		{999, "$999"},
		{1000, "$1,000"},
		{1234567, "$1,234,567"},
		{-50000, "-$50,000"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Dollars(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestWattsString(t *testing.T) {
	tests := []struct {
		in   Watts
		want string
	}{
		{45, "45.0W"},
		{1500, "1.50kW"},
		{2.5e6, "2.50MW"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Watts(%v).String() = %q, want %q", float64(tt.in), got, tt.want)
		}
	}
}
