package collective

import (
	"testing"
	"testing/quick"

	"photonrail/internal/parallelism"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

const (
	bw400 = 400 * units.Gbps
	alpha = 5 * units.Microsecond
)

func TestRingAllReduceTime(t *testing.T) {
	// k=4, S=400MB-ish: pick S so S/B is exact. S = 50e9/8... use
	// 50,000,000 bytes -> 1ms at 400Gbps.
	S := units.ByteSize(50_000_000)
	got, err := Time(AllReduce, Ring, 4, S, bw400, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2(k-1)/k * 1ms = 1.5ms.
	want := units.FromMilliseconds(1.5)
	if got != want {
		t.Errorf("ring AR = %v, want %v", got, want)
	}
	// Alpha term: 2(k-1) messages.
	got, _ = Time(AllReduce, Ring, 4, 0, bw400, alpha)
	if got != 6*alpha {
		t.Errorf("ring AR alpha = %v, want %v", got, 6*alpha)
	}
}

func TestRingAGRSTime(t *testing.T) {
	S := units.ByteSize(50_000_000) // 1ms serial
	for _, kind := range []Kind{AllGather, ReduceScatter} {
		got, err := Time(kind, Ring, 4, S, bw400, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := units.FromMilliseconds(0.75) // (k-1)/k
		if got != want {
			t.Errorf("%v ring = %v, want %v", kind, got, want)
		}
	}
	// AG and RS are symmetric halves of AR: AG + RS == AR.
	ag, _ := Time(AllGather, Ring, 8, S, bw400, alpha)
	rs, _ := Time(ReduceScatter, Ring, 8, S, bw400, alpha)
	ar, _ := Time(AllReduce, Ring, 8, S, bw400, alpha)
	if ag+rs != ar {
		t.Errorf("AG+RS = %v, AR = %v; ring AR should equal RS-then-AG", ag+rs, ar)
	}
}

func TestSendRecvTime(t *testing.T) {
	S := units.ByteSize(50_000_000)
	got, err := Time(SendRecv, Direct, 2, S, bw400, alpha)
	if err != nil {
		t.Fatal(err)
	}
	want := alpha + units.FromMilliseconds(1)
	if got != want {
		t.Errorf("Send/Recv = %v, want %v", got, want)
	}
}

func TestTreeVsRingLatencyTradeoff(t *testing.T) {
	// C1's motivation: trees win at small sizes (latency-bound), rings
	// win at large sizes (bandwidth-bound).
	small := units.ByteSize(1024)
	large := units.ByteSize(1 * units.GB)
	k := 64
	ringSmall, _ := Time(AllReduce, Ring, k, small, bw400, alpha)
	treeSmall, _ := Time(AllReduce, Tree, k, small, bw400, alpha)
	if treeSmall >= ringSmall {
		t.Errorf("tree (%v) should beat ring (%v) at small sizes", treeSmall, ringSmall)
	}
	ringLarge, _ := Time(AllReduce, Ring, k, large, bw400, alpha)
	treeLarge, _ := Time(AllReduce, Tree, k, large, bw400, alpha)
	if ringLarge >= treeLarge {
		t.Errorf("ring (%v) should beat tree (%v) at large sizes", ringLarge, treeLarge)
	}
}

func TestAllToAllBandwidthTax(t *testing.T) {
	// Multi-hop ring AllToAll pays a k/2 bandwidth tax over direct.
	S := units.ByteSize(100 * units.MB)
	k := 8
	direct, _ := Time(AllToAll, Direct, k, S, bw400, 0)
	ring, _ := Time(AllToAll, MultiHopRing, k, S, bw400, 0)
	ratio := float64(ring) / float64(direct)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("multi-hop tax = %.2fx, want ≈k/2 = 4x", ratio)
	}
}

func TestSelfCollectiveFree(t *testing.T) {
	got, err := Time(AllReduce, Ring, 1, units.GB, bw400, alpha)
	if err != nil || got != 0 {
		t.Errorf("1-rank collective = %v, %v; want 0, nil", got, err)
	}
}

func TestTimeErrors(t *testing.T) {
	if _, err := Time(AllReduce, Ring, 0, units.MB, bw400, alpha); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Time(AllReduce, Ring, 4, -1, bw400, alpha); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Time(AllGather, Tree, 4, units.MB, bw400, alpha); err == nil {
		t.Error("AG has no tree algorithm; accepted")
	}
	if _, err := Time(AllToAll, Ring, 4, units.MB, bw400, alpha); err == nil {
		t.Error("AllToAll over plain ring accepted")
	}
}

// Property: collective time is monotone in bytes and never negative.
func TestTimeMonotoneProperty(t *testing.T) {
	kinds := []Kind{AllReduce, AllGather, ReduceScatter, SendRecv, AllToAll}
	f := func(a, b uint32, kindSel, kSel uint8) bool {
		kind := kinds[int(kindSel)%len(kinds)]
		alg := DefaultAlgorithm(kind, true)
		k := int(kSel%15) + 2
		if kind == SendRecv {
			k = 2
		}
		s1 := units.ByteSize(a % (1 << 28))
		s2 := units.ByteSize(b % (1 << 28))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		t1, err1 := Time(kind, alg, k, s1, bw400, alpha)
		t2, err2 := Time(kind, alg, k, s2, bw400, alpha)
		if err1 != nil || err2 != nil {
			return false
		}
		return t1 >= 0 && t1 <= t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRequiredDegree(t *testing.T) {
	tests := []struct {
		alg  Algorithm
		k    int
		want int
	}{
		{Ring, 16, 2},
		{MultiHopRing, 16, 2},
		{Tree, 16, 3},
		{RecursiveDoubling, 16, 4},
		{RecursiveDoubling, 5, 3},
		{Direct, 16, 15},
	}
	for _, tt := range tests {
		if got := tt.alg.RequiredDegree(tt.k); got != tt.want {
			t.Errorf("%v.RequiredDegree(%d) = %d, want %d", tt.alg, tt.k, got, tt.want)
		}
	}
}

func TestFeasibleOnCircuits(t *testing.T) {
	// C1: with a 2-port NIC only ring algorithms fit.
	if !Ring.FeasibleOnCircuits(16, 2) {
		t.Error("ring should fit 2 ports")
	}
	if Tree.FeasibleOnCircuits(16, 2) {
		t.Error("tree should not fit 2 ports")
	}
	if RecursiveDoubling.FeasibleOnCircuits(16, 2) {
		t.Error("recursive doubling should not fit 2 ports")
	}
	if Direct.FeasibleOnCircuits(16, 4) {
		t.Error("direct should not fit 4 ports for 16 ranks")
	}
}

func TestGroupNeighbors(t *testing.T) {
	g := &Group{Name: "dp0", Axis: parallelism.FSDP, Ranks: []topo.GPUID{0, 4, 8, 12}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	prev, next, err := g.Neighbors(0)
	if err != nil || prev != 12 || next != 4 {
		t.Errorf("Neighbors(0) = %d,%d,%v", prev, next, err)
	}
	prev, next, err = g.Neighbors(12)
	if err != nil || prev != 8 || next != 0 {
		t.Errorf("Neighbors(12) = %d,%d,%v", prev, next, err)
	}
	if _, _, err := g.Neighbors(99); err == nil {
		t.Error("Neighbors of non-member accepted")
	}
	if !g.Contains(8) || g.Contains(1) {
		t.Error("Contains wrong")
	}
	if g.Size() != 4 {
		t.Error("Size wrong")
	}
}

func TestGroupValidate(t *testing.T) {
	if err := (&Group{Name: "empty"}).Validate(); err == nil {
		t.Error("empty group validated")
	}
	dup := &Group{Name: "dup", Ranks: []topo.GPUID{1, 2, 1}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate-rank group validated")
	}
}

func TestDefaultAlgorithm(t *testing.T) {
	if DefaultAlgorithm(AllReduce, true) != Ring {
		t.Error("AR on circuits should be ring")
	}
	if DefaultAlgorithm(AllToAll, true) != MultiHopRing {
		t.Error("AllToAll on circuits should be multi-hop ring")
	}
	if DefaultAlgorithm(AllToAll, false) != Direct {
		t.Error("AllToAll on packets should be direct")
	}
	if DefaultAlgorithm(SendRecv, false) != Direct {
		t.Error("SendRecv should be direct")
	}
	if DefaultAlgorithm(SendRecv, true) != Ring {
		t.Error("SendRecv on circuits should use the ring circuits")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{Ring, Tree, RecursiveDoubling, Direct, MultiHopRing, Algorithm(42)} {
		if a.String() == "" {
			t.Errorf("Algorithm(%d).String() empty", int(a))
		}
	}
}
