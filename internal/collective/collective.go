// Package collective is a miniature collective-communication library
// model (a simulated NCCL): communication groups, the standard collective
// algorithms, and their α–β cost model.
//
// The package encodes the paper's constraint C1: on an optical circuit
// switch, a GPU's node degree is bounded by its NIC port count, so only
// ring algorithms (degree 2) and point-to-point transfers are feasible
// without per-round reconfiguration; latency-optimized trees and
// recursive doubling require higher fan-out.
package collective

import (
	"fmt"
	"math"

	"photonrail/internal/parallelism"
	"photonrail/internal/topo"
	"photonrail/internal/units"
)

// Kind aliases the collective kinds shared with the parallelism tables.
type Kind = parallelism.CollectiveKind

// Re-exported collective kinds for call-site brevity.
const (
	AllReduce     = parallelism.AllReduce
	AllGather     = parallelism.AllGather
	ReduceScatter = parallelism.ReduceScatter
	SendRecv      = parallelism.SendRecv
	AllToAll      = parallelism.AllToAll
)

// Algorithm selects how a collective is realized on the fabric.
type Algorithm int

// The algorithms the cost model covers.
const (
	// Ring is the bandwidth-optimal, degree-2 algorithm; the only
	// collective algorithm realizable on static optical circuits (C1).
	Ring Algorithm = iota
	// Tree is a latency-optimized double binary tree (NCCL-style).
	Tree
	// RecursiveDoubling is the log-round recursive halving/doubling
	// family.
	RecursiveDoubling
	// Direct is pairwise exchange over full connectivity (AllToAll on a
	// packet switch, or Send/Recv).
	Direct
	// MultiHopRing realizes AllToAll over ring circuits by forwarding
	// through intermediate GPUs, paying the paper's "bandwidth tax"
	// (§3, §5): each byte traverses k/2 links on average.
	MultiHopRing
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	case RecursiveDoubling:
		return "recursive-doubling"
	case Direct:
		return "direct"
	case MultiHopRing:
		return "multi-hop-ring"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// RequiredDegree returns the simultaneous circuit fan-out a participant
// needs to run the algorithm without mid-collective reconfiguration.
func (a Algorithm) RequiredDegree(groupSize int) int {
	switch a {
	case Ring, MultiHopRing:
		return 2
	case Tree:
		return 3 // parent + two children in a binary tree
	case RecursiveDoubling:
		// A different partner each round; all must be reachable.
		if groupSize <= 1 {
			return 0
		}
		return int(math.Ceil(math.Log2(float64(groupSize))))
	case Direct:
		return groupSize - 1
	default:
		return groupSize - 1
	}
}

// FeasibleOnCircuits reports whether the algorithm runs on static optical
// circuits with the given per-GPU port budget (constraint C1).
func (a Algorithm) FeasibleOnCircuits(groupSize, ports int) bool {
	return a.RequiredDegree(groupSize) <= ports
}

// Group is a communication group: an ordered set of GPUs collectively
// communicating along one parallelism axis. Order is ring order.
type Group struct {
	// Name identifies the group, e.g. "fsdp-rail0-shard1".
	Name string
	// Axis is the parallelism dimension that created the group.
	Axis parallelism.Axis
	// Ranks lists members in ring order.
	Ranks []topo.GPUID
}

// Size returns the member count.
func (g *Group) Size() int { return len(g.Ranks) }

// Contains reports whether gpu participates.
func (g *Group) Contains(gpu topo.GPUID) bool {
	for _, r := range g.Ranks {
		if r == gpu {
			return true
		}
	}
	return false
}

// Neighbors returns gpu's ring predecessor and successor in the group.
func (g *Group) Neighbors(gpu topo.GPUID) (prev, next topo.GPUID, err error) {
	for i, r := range g.Ranks {
		if r == gpu {
			n := len(g.Ranks)
			return g.Ranks[(i-1+n)%n], g.Ranks[(i+1)%n], nil
		}
	}
	return 0, 0, fmt.Errorf("collective: gpu %d not in group %s", gpu, g.Name)
}

// Validate checks the group is well-formed: nonempty with distinct ranks.
func (g *Group) Validate() error {
	if len(g.Ranks) == 0 {
		return fmt.Errorf("collective: group %s is empty", g.Name)
	}
	seen := make(map[topo.GPUID]bool, len(g.Ranks))
	for _, r := range g.Ranks {
		if seen[r] {
			return fmt.Errorf("collective: group %s repeats rank %d", g.Name, r)
		}
		seen[r] = true
	}
	return nil
}

// Time returns the α–β model completion time of a collective of the given
// kind and algorithm over k ranks moving `bytes` per rank, on links of
// bandwidth bw with per-message latency alpha.
//
// Formulas (S = bytes, B = bw, k = ranks):
//
//	ring AllReduce:        2(k−1)α + 2(k−1)/k · S/B
//	ring AllGather/RS:      (k−1)α +  (k−1)/k · S/B
//	tree AllReduce:        2⌈log₂k⌉α + 2·S/B       (pipelined double tree)
//	recursive-doubling AR: 2⌈log₂k⌉α + 2(k−1)/k · S/B
//	Send/Recv:              α + S/B
//	direct AllToAll:        (k−1)α + (k−1)/k · S/B  (S = per-rank buffer)
//	multi-hop ring AllToAll:(k−1)α + (k/2)·(k−1)/k · S/B
//
// The multi-hop form carries the average-hop-count bandwidth tax of
// forwarding through intermediate GPUs on a ring (paper §3 and §5).
func Time(kind Kind, alg Algorithm, k int, bytes units.ByteSize, bw units.Bandwidth, alpha units.Duration) (units.Duration, error) {
	if k <= 0 {
		return 0, fmt.Errorf("collective: %v over %d ranks", kind, k)
	}
	if bytes < 0 {
		return 0, fmt.Errorf("collective: negative size %d", bytes)
	}
	if k == 1 {
		return 0, nil // self-collective is free
	}
	serial := units.TransferTime(bytes, bw)
	frac := func(num, den int) units.Duration {
		return units.Duration(float64(serial) * float64(num) / float64(den))
	}
	logk := units.Duration(math.Ceil(math.Log2(float64(k))))

	switch kind {
	case AllReduce:
		switch alg {
		case Ring:
			return units.Duration(2*(k-1))*alpha + frac(2*(k-1), k), nil
		case Tree:
			return 2*logk*alpha + 2*serial, nil
		case RecursiveDoubling:
			return 2*logk*alpha + frac(2*(k-1), k), nil
		}
	case AllGather, ReduceScatter:
		switch alg {
		case Ring:
			return units.Duration(k-1)*alpha + frac(k-1, k), nil
		case RecursiveDoubling:
			return logk*alpha + frac(k-1, k), nil
		}
	case SendRecv:
		if alg == Direct || alg == Ring {
			return alpha + serial, nil
		}
	case AllToAll:
		switch alg {
		case Direct:
			return units.Duration(k-1)*alpha + frac(k-1, k), nil
		case MultiHopRing:
			base := frac(k-1, k)
			return units.Duration(k-1)*alpha + units.Duration(float64(base)*float64(k)/2), nil
		}
	}
	return 0, fmt.Errorf("collective: %v has no %v algorithm", kind, alg)
}

// DefaultAlgorithm returns the algorithm a fabric realization uses for a
// collective kind: rings (and direct P2P/AllToAll-by-forwarding) on
// circuits, NCCL-style defaults on packet switches.
func DefaultAlgorithm(kind Kind, onCircuits bool) Algorithm {
	switch kind {
	case SendRecv:
		if onCircuits {
			return Ring
		}
		return Direct
	case AllToAll:
		if onCircuits {
			return MultiHopRing
		}
		return Direct
	default:
		return Ring
	}
}
