package collective

import (
	"testing"

	"photonrail/internal/topo"
	"photonrail/internal/units"
)

// BenchmarkTimeRingAllReduce measures the α–β cost-model hot path, which
// the network executor calls once per collective.
func BenchmarkTimeRingAllReduce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Time(AllReduce, Ring, 16, units.GB, 400*units.Gbps, 5*units.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeAllToAllMultiHop measures the ring-embedding AllToAll
// path.
func BenchmarkTimeAllToAllMultiHop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Time(AllToAll, MultiHopRing, 16, 100*units.MB, 400*units.Gbps, 5*units.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupNeighbors measures ring-neighbour lookup.
func BenchmarkGroupNeighbors(b *testing.B) {
	g := &Group{Name: "bench"}
	for i := 0; i < 64; i++ {
		g.Ranks = append(g.Ranks, topo.GPUID(i*8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Neighbors(topo.GPUID(256)); err != nil {
			b.Fatal(err)
		}
	}
}
