// Package topo models the cluster topology of a rail-optimized ML fabric:
// scale-up domains (e.g. DGX/HGX nodes) of GPUs joined by a high-bandwidth
// interconnect, and a scale-out network of "rails", where rail r wires
// together the GPUs with local rank r across every scale-up domain
// (Fig. 1 of the paper).
//
// The same logical topology supports three fabric realizations:
//
//   - FabricElectricalRail: each rail is a packet-switched network giving
//     full any-to-any connectivity among same-rank GPUs (the status quo).
//   - FabricPhotonicRail: each rail is an optical circuit switch; a GPU
//     port connects to exactly one peer port at a time (the proposal).
//   - FabricFatTree: a conventional full-bisection Clos connecting every
//     NIC (the cost baseline of Fig. 7).
package topo

import (
	"fmt"

	"photonrail/internal/units"
)

// GPUID is a global GPU rank in [0, NumGPUs).
type GPUID int

// NodeID identifies a scale-up domain in [0, NumNodes).
type NodeID int

// RailID identifies a rail in [0, GPUsPerNode). Rail r contains the GPUs
// whose local rank is r.
type RailID int

// FabricKind selects the scale-out fabric realization.
type FabricKind int

// The fabric realizations compared in the paper.
const (
	FabricElectricalRail FabricKind = iota
	FabricPhotonicRail
	FabricFatTree
)

// String returns the paper's name for the fabric kind.
func (k FabricKind) String() string {
	switch k {
	case FabricElectricalRail:
		return "rail-optimized (electrical)"
	case FabricPhotonicRail:
		return "photonic rail (Opus)"
	case FabricFatTree:
		return "fat-tree"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// PortConfig is a NIC port split. ConnectX-7 exposes one physical 400G
// cage as 1×400G, 2×200G, or 4×100G logical ports (paper §3, refs
// [44,48]).
type PortConfig struct {
	Ports   int             // logical ports per GPU NIC
	PerPort units.Bandwidth // bandwidth of each logical port
}

// The three ConnectX-7 options from the paper's example.
var (
	OnePort400G  = PortConfig{Ports: 1, PerPort: 400 * units.Gbps}
	TwoPort200G  = PortConfig{Ports: 2, PerPort: 200 * units.Gbps}
	FourPort100G = PortConfig{Ports: 4, PerPort: 100 * units.Gbps}
)

// Total returns the aggregate NIC bandwidth across logical ports.
func (p PortConfig) Total() units.Bandwidth {
	return units.Bandwidth(int64(p.Ports) * int64(p.PerPort))
}

// String renders e.g. "2x200Gbps".
func (p PortConfig) String() string {
	return fmt.Sprintf("%dx%v", p.Ports, p.PerPort)
}

// Validate checks the port configuration is physically sensible.
func (p PortConfig) Validate() error {
	if p.Ports <= 0 {
		return fmt.Errorf("topo: port config with %d ports", p.Ports)
	}
	if p.PerPort <= 0 {
		return fmt.Errorf("topo: port config with bandwidth %v", p.PerPort)
	}
	return nil
}

// Cluster describes a rail-organized GPU cluster. It is immutable once
// built with New.
type Cluster struct {
	// NumNodes is the number of scale-up domains.
	NumNodes int
	// GPUsPerNode is the scale-up domain size; it equals the number of
	// rails.
	GPUsPerNode int
	// Fabric is the scale-out realization.
	Fabric FabricKind
	// NIC is the per-GPU scale-out port configuration.
	NIC PortConfig
	// ScaleUpBandwidth is the per-GPU bandwidth of the scale-up
	// interconnect (e.g. NVLink).
	ScaleUpBandwidth units.Bandwidth
	// ScaleUpLatency is the per-message latency inside a scale-up domain.
	ScaleUpLatency units.Duration
	// ScaleOutLatency is the per-message latency across the scale-out
	// fabric (the α term of the collective cost model).
	ScaleOutLatency units.Duration
}

// Config holds the parameters for New; zero latencies/bandwidths take the
// defaults below.
type Config struct {
	NumNodes         int
	GPUsPerNode      int
	Fabric           FabricKind
	NIC              PortConfig
	ScaleUpBandwidth units.Bandwidth
	ScaleUpLatency   units.Duration
	ScaleOutLatency  units.Duration
}

// Defaults (A100/NVLink 3.0-class scale-up, RDMA-class scale-out latency).
const (
	DefaultScaleUpLatency  = 2 * units.Microsecond
	DefaultScaleOutLatency = 5 * units.Microsecond
)

// DefaultScaleUpBandwidth is NVLink 3.0-class per-GPU bandwidth
// (600 GB/s total ≈ 4.8 Tbps; we use the per-direction 300 GB/s = 2.4 Tbps).
const DefaultScaleUpBandwidth = 2400 * units.Gbps

// New validates cfg and returns the cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("topo: NumNodes = %d", cfg.NumNodes)
	}
	if cfg.GPUsPerNode <= 0 {
		return nil, fmt.Errorf("topo: GPUsPerNode = %d", cfg.GPUsPerNode)
	}
	if cfg.NIC == (PortConfig{}) {
		cfg.NIC = TwoPort200G
	}
	if err := cfg.NIC.Validate(); err != nil {
		return nil, err
	}
	if cfg.ScaleUpBandwidth == 0 {
		cfg.ScaleUpBandwidth = DefaultScaleUpBandwidth
	}
	if cfg.ScaleUpBandwidth < 0 {
		return nil, fmt.Errorf("topo: ScaleUpBandwidth = %v", cfg.ScaleUpBandwidth)
	}
	if cfg.ScaleUpLatency == 0 {
		cfg.ScaleUpLatency = DefaultScaleUpLatency
	}
	if cfg.ScaleOutLatency == 0 {
		cfg.ScaleOutLatency = DefaultScaleOutLatency
	}
	if cfg.ScaleUpLatency < 0 || cfg.ScaleOutLatency < 0 {
		return nil, fmt.Errorf("topo: negative latency")
	}
	return &Cluster{
		NumNodes:         cfg.NumNodes,
		GPUsPerNode:      cfg.GPUsPerNode,
		Fabric:           cfg.Fabric,
		NIC:              cfg.NIC,
		ScaleUpBandwidth: cfg.ScaleUpBandwidth,
		ScaleUpLatency:   cfg.ScaleUpLatency,
		ScaleOutLatency:  cfg.ScaleOutLatency,
	}, nil
}

// MustNew is New but panics on error; for tests and examples with literal
// configurations.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NumGPUs returns the total GPU count.
func (c *Cluster) NumGPUs() int { return c.NumNodes * c.GPUsPerNode }

// NumRails returns the rail count (== GPUsPerNode).
func (c *Cluster) NumRails() int { return c.GPUsPerNode }

// Node returns the scale-up domain hosting g.
func (c *Cluster) Node(g GPUID) NodeID { return NodeID(int(g) / c.GPUsPerNode) }

// LocalRank returns g's rank within its scale-up domain; it equals the
// rail g's NIC attaches to.
func (c *Cluster) LocalRank(g GPUID) int { return int(g) % c.GPUsPerNode }

// Rail returns the rail g's NIC attaches to.
func (c *Cluster) Rail(g GPUID) RailID { return RailID(c.LocalRank(g)) }

// GPUAt returns the GPU with the given local rank in the given node.
func (c *Cluster) GPUAt(n NodeID, localRank int) GPUID {
	if localRank < 0 || localRank >= c.GPUsPerNode {
		panic(fmt.Sprintf("topo: local rank %d out of range [0,%d)", localRank, c.GPUsPerNode))
	}
	if int(n) < 0 || int(n) >= c.NumNodes {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", n, c.NumNodes))
	}
	return GPUID(int(n)*c.GPUsPerNode + localRank)
}

// RailMembers returns, in node order, the GPUs on rail r.
func (c *Cluster) RailMembers(r RailID) []GPUID {
	if int(r) < 0 || int(r) >= c.NumRails() {
		panic(fmt.Sprintf("topo: rail %d out of range [0,%d)", r, c.NumRails()))
	}
	out := make([]GPUID, c.NumNodes)
	for n := 0; n < c.NumNodes; n++ {
		out[n] = c.GPUAt(NodeID(n), int(r))
	}
	return out
}

// NodeMembers returns, in local-rank order, the GPUs in node n.
func (c *Cluster) NodeMembers(n NodeID) []GPUID {
	if int(n) < 0 || int(n) >= c.NumNodes {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", n, c.NumNodes))
	}
	out := make([]GPUID, c.GPUsPerNode)
	for r := 0; r < c.GPUsPerNode; r++ {
		out[r] = c.GPUAt(n, r)
	}
	return out
}

// SameNode reports whether two GPUs share a scale-up domain.
func (c *Cluster) SameNode(a, b GPUID) bool { return c.Node(a) == c.Node(b) }

// SameRail reports whether two GPUs attach to the same rail.
func (c *Cluster) SameRail(a, b GPUID) bool { return c.LocalRank(a) == c.LocalRank(b) }

// Contains reports whether g is a valid GPU ID for this cluster.
func (c *Cluster) Contains(g GPUID) bool { return g >= 0 && int(g) < c.NumGPUs() }

// String summarizes the cluster, e.g.
// "16 GPUs (4 nodes x 4), photonic rail (Opus), NIC 2x200Gbps".
func (c *Cluster) String() string {
	return fmt.Sprintf("%d GPUs (%d nodes x %d), %v, NIC %v",
		c.NumGPUs(), c.NumNodes, c.GPUsPerNode, c.Fabric, c.NIC)
}
