package topo

import "photonrail/internal/units"

// Preset scale-up domain sizes used in the paper's analysis.
const (
	// PerlmutterGPUsPerNode matches the §3.1 testbed: 4× A100 per node.
	PerlmutterGPUsPerNode = 4
	// DGXH200GPUsPerNode matches DGX/HGX H200: 8 GPUs per node.
	DGXH200GPUsPerNode = 8
	// GB200GPUsPerNode matches an NVL72 GB200 rack-scale domain.
	GB200GPUsPerNode = 72
)

// Perlmutter returns the §3.1 measurement testbed: numNodes nodes of
// 4× A100 joined by NVLink 3.0, Slingshot-class scale-out, with the given
// fabric. The paper used numNodes = 4 (16 GPUs).
func Perlmutter(numNodes int, fabric FabricKind, nic PortConfig) (*Cluster, error) {
	return New(Config{
		NumNodes:         numNodes,
		GPUsPerNode:      PerlmutterGPUsPerNode,
		Fabric:           fabric,
		NIC:              nic,
		ScaleUpBandwidth: DefaultScaleUpBandwidth, // NVLink 3.0
		ScaleUpLatency:   DefaultScaleUpLatency,
		ScaleOutLatency:  DefaultScaleOutLatency,
	})
}

// DGXH200 returns a DGX H200 cluster (8 GPUs/node, ConnectX-7 NICs,
// NVLink 4.0-class scale-up), the configuration of the paper's §3
// example and the Fig. 7 cost study.
func DGXH200(numNodes int, fabric FabricKind, nic PortConfig) (*Cluster, error) {
	return New(Config{
		NumNodes:         numNodes,
		GPUsPerNode:      DGXH200GPUsPerNode,
		Fabric:           fabric,
		NIC:              nic,
		ScaleUpBandwidth: 3600 * units.Gbps, // NVLink 4.0, 450 GB/s per direction
		ScaleUpLatency:   DefaultScaleUpLatency,
		ScaleOutLatency:  DefaultScaleOutLatency,
	})
}
