package topo

import (
	"testing"
	"testing/quick"

	"photonrail/internal/units"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{NumNodes: 4, GPUsPerNode: 4, Fabric: FabricPhotonicRail})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterShape(t *testing.T) {
	c := testCluster(t)
	if c.NumGPUs() != 16 {
		t.Errorf("NumGPUs = %d, want 16", c.NumGPUs())
	}
	if c.NumRails() != 4 {
		t.Errorf("NumRails = %d, want 4", c.NumRails())
	}
}

func TestGPUMapping(t *testing.T) {
	c := testCluster(t)
	tests := []struct {
		g         GPUID
		node      NodeID
		localRank int
	}{
		{0, 0, 0},
		{3, 0, 3},
		{4, 1, 0},
		{15, 3, 3},
	}
	for _, tt := range tests {
		if got := c.Node(tt.g); got != tt.node {
			t.Errorf("Node(%d) = %d, want %d", tt.g, got, tt.node)
		}
		if got := c.LocalRank(tt.g); got != tt.localRank {
			t.Errorf("LocalRank(%d) = %d, want %d", tt.g, got, tt.localRank)
		}
		if got := c.GPUAt(tt.node, tt.localRank); got != tt.g {
			t.Errorf("GPUAt(%d,%d) = %d, want %d", tt.node, tt.localRank, got, tt.g)
		}
		if got := c.Rail(tt.g); int(got) != tt.localRank {
			t.Errorf("Rail(%d) = %d, want %d", tt.g, got, tt.localRank)
		}
	}
}

func TestRailMembers(t *testing.T) {
	c := testCluster(t)
	got := c.RailMembers(1)
	want := []GPUID{1, 5, 9, 13}
	if len(got) != len(want) {
		t.Fatalf("RailMembers(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RailMembers(1)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// All rail members share a local rank.
	for _, g := range got {
		if c.LocalRank(g) != 1 {
			t.Errorf("rail member %d has local rank %d", g, c.LocalRank(g))
		}
	}
}

func TestNodeMembers(t *testing.T) {
	c := testCluster(t)
	got := c.NodeMembers(2)
	want := []GPUID{8, 9, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NodeMembers(2)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameNodeSameRail(t *testing.T) {
	c := testCluster(t)
	if !c.SameNode(8, 11) || c.SameNode(3, 4) {
		t.Error("SameNode wrong")
	}
	if !c.SameRail(1, 13) || c.SameRail(1, 2) {
		t.Error("SameRail wrong")
	}
}

// Property: GPUAt is the inverse of (Node, LocalRank) for every GPU, and
// rails and nodes partition the GPU set.
func TestMappingBijectionProperty(t *testing.T) {
	f := func(nodes, perNode uint8) bool {
		nn := int(nodes%16) + 1
		pn := int(perNode%16) + 1
		c := MustNew(Config{NumNodes: nn, GPUsPerNode: pn})
		seen := make(map[GPUID]bool)
		for g := GPUID(0); int(g) < c.NumGPUs(); g++ {
			if c.GPUAt(c.Node(g), c.LocalRank(g)) != g {
				return false
			}
			seen[g] = true
		}
		// Rails partition the set.
		count := 0
		for r := 0; r < c.NumRails(); r++ {
			for _, g := range c.RailMembers(RailID(r)) {
				if !seen[g] {
					return false
				}
				delete(seen, g)
				count++
			}
		}
		return count == c.NumGPUs() && len(seen) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPortConfigs(t *testing.T) {
	if OnePort400G.Total() != 400*units.Gbps {
		t.Error("1x400 total")
	}
	if TwoPort200G.Total() != 400*units.Gbps {
		t.Error("2x200 total")
	}
	if FourPort100G.Total() != 400*units.Gbps {
		t.Error("4x100 total")
	}
	if TwoPort200G.String() != "2x200Gbps" {
		t.Errorf("String() = %q", TwoPort200G.String())
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{NumNodes: 0, GPUsPerNode: 4},
		{NumNodes: 4, GPUsPerNode: 0},
		{NumNodes: 4, GPUsPerNode: 4, NIC: PortConfig{Ports: -1, PerPort: units.Gbps}},
		{NumNodes: 4, GPUsPerNode: 4, NIC: PortConfig{Ports: 2, PerPort: -units.Gbps}},
		{NumNodes: 4, GPUsPerNode: 4, ScaleUpLatency: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := MustNew(Config{NumNodes: 2, GPUsPerNode: 2})
	if c.NIC != TwoPort200G {
		t.Errorf("default NIC = %v", c.NIC)
	}
	if c.ScaleUpBandwidth != DefaultScaleUpBandwidth {
		t.Errorf("default scale-up bw = %v", c.ScaleUpBandwidth)
	}
	if c.ScaleUpLatency != DefaultScaleUpLatency || c.ScaleOutLatency != DefaultScaleOutLatency {
		t.Error("default latencies not applied")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := testCluster(t)
	for name, fn := range map[string]func(){
		"GPUAt node":  func() { c.GPUAt(99, 0) },
		"GPUAt rank":  func() { c.GPUAt(0, 99) },
		"RailMembers": func() { c.RailMembers(99) },
		"NodeMembers": func() { c.NodeMembers(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPresets(t *testing.T) {
	p, err := Perlmutter(4, FabricPhotonicRail, FourPort100G)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGPUs() != 16 || p.NumRails() != 4 {
		t.Errorf("Perlmutter(4): %v", p)
	}
	d, err := DGXH200(128, FabricElectricalRail, OnePort400G)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGPUs() != 1024 || d.NumRails() != 8 {
		t.Errorf("DGXH200(128): %v", d)
	}
}

func TestFabricKindString(t *testing.T) {
	if FabricPhotonicRail.String() == "" || FabricFatTree.String() == "" ||
		FabricElectricalRail.String() == "" || FabricKind(99).String() == "" {
		t.Error("FabricKind.String() empty")
	}
}
