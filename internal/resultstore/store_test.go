package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testKey derives a distinct valid (hex) key per name.
func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 8) + strings.Repeat("0123456789abcdef", 2)
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	ent := Entry{
		Experiment: "fig8", Grid: "",
		Rendered: "table\n", RenderedCSV: "a,b\n1,2\n", RowsJSON: "{\n  \"x\": 1\n}\n",
	}
	key := testKey(0)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store served a hit")
	}
	if err := s.Put(key, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry not served")
	}
	if got != ent {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, ent)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("resident bytes = %d, want > 0", st.Bytes)
	}
}

// TestCrossOpenDurability: a fresh Store over the same directory serves
// the previous instance's objects — the restart path the gateway's
// cross-restart dedup rides on.
func TestCrossOpenDurability(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, Config{Dir: dir, Fsync: true})
	ent := Entry{Experiment: "table3", Rendered: "t3\n"}
	if err := s1.Put(testKey(1), ent); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, Config{Dir: dir})
	got, ok := s2.Get(testKey(1))
	if !ok || got != ent {
		t.Fatalf("reopened store Get = %+v, %v; want original entry", got, ok)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("reopened index = %+v, want the surviving object", st)
	}
}

// TestEvictionLRUByMtime: the size bound evicts the least-recently-used
// objects, Get refreshes recency, and the newest write survives its own
// Put.
func TestEvictionLRUByMtime(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	now := func() time.Time { clock = clock.Add(time.Second); return clock }
	pad := strings.Repeat("x", 256)
	ent := Entry{Experiment: "e", Rendered: pad}
	one := int64(len(mustJSON(t, ent)))

	s := openTest(t, Config{MaxBytes: 3 * one, Now: now})
	keys := []string{testKey(0), testKey(1), testKey(2)}
	for _, k := range keys {
		if err := s.Put(k, ent); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so the middle one is now least recent.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("expected resident object")
	}
	if err := s.Put(testKey(3), ent); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("least-recently-used object survived eviction")
	}
	for _, k := range []string{keys[0], keys[2], testKey(3)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("object %s evicted, want resident", k[:8])
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", st)
	}
}

func mustJSON(t *testing.T, ent Entry) []byte {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(5), ent); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(testKey(5)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCorruptObjectSelfHeals: a torn object is a miss, is removed, and
// a subsequent Put+Get serves cleanly.
func TestCorruptObjectSelfHeals(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	key := testKey(2)
	if err := s.Put(key, Entry{Experiment: "e", Rendered: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt object served as a hit")
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Fatalf("corrupt object not removed: %v", err)
	}
	if st := s.Stats(); st.Errors != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 error / 0 entries", st)
	}
	if err := s.Put(key, Entry{Experiment: "e", Rendered: "clean"}); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || got.Rendered != "clean" {
		t.Fatalf("rewritten object Get = %+v, %v", got, ok)
	}
}

// TestOpenRemovesTempFilesAndIgnoresForeign: interrupted-write temp
// files are cleaned up; non-object files are neither indexed nor
// touched.
func TestOpenRemovesTempFilesAndIgnoresForeign(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "NOTHEX!.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, Config{Dir: dir})
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"123")); !os.IsNotExist(err) {
		t.Fatal("interrupted temp file survived Open")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file removed by Open")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign files indexed: %+v", st)
	}
}

func TestInvalidKeysRefused(t *testing.T) {
	s := openTest(t, Config{})
	for _, key := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64), strings.Repeat("a", 200)} {
		if err := s.Put(key, Entry{}); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get served invalid key %q", key)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without a directory accepted")
	}
}

// TestReopenEnforcesBound: an over-bound directory is trimmed at Open,
// oldest mtime first.
func TestReopenEnforcesBound(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1700000000, 0)
	now := func() time.Time { clock = clock.Add(time.Second); return clock }
	big := openTest(t, Config{Dir: dir, Now: now})
	ent := Entry{Experiment: "e", Rendered: strings.Repeat("y", 128)}
	one := int64(len(mustJSON(t, Entry{Experiment: "e", Rendered: strings.Repeat("y", 128)})))
	for i := byte(0); i < 4; i++ {
		if err := big.Put(testKey(i), ent); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Config{Dir: dir, MaxBytes: 2 * one, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Bytes > 2*one {
		t.Fatalf("reopen with bound kept %d entries / %d bytes, want 2 / <= %d", st.Entries, st.Bytes, 2*one)
	}
	for _, k := range []string{testKey(2), testKey(3)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("newest objects should survive the reopen trim (missing %s)", k[:8])
		}
	}
}
