// Package resultstore is the durable, content-addressed result store
// behind the railgate front door: completed experiment renderings are
// spilled to disk keyed by the canonical experiment/params hash the
// engine already computes (photonrail.ExperimentKey), so an identical
// request served by any gateway — including one started after a full
// daemon restart — resolves to the same stored object instead of
// recomputing. The request-level singleflight the daemon applies in
// flight thereby generalizes into cross-restart dedup: same key, same
// bytes, zero new simulations.
//
// Durability contract:
//
//   - writes are atomic: an entry is rendered to a temp file in the
//     store directory and renamed into place, so a crash mid-write
//     leaves either the old object or none — never a torn one (with
//     Fsync set, the file and directory are fsync'd first, so the
//     rename is durable across power loss too);
//   - reads self-heal: a corrupt or unreadable object is dropped and
//     counted, and the caller sees a plain miss;
//   - the store is size-bounded: when the object-byte sum exceeds
//     MaxBytes, least-recently-used objects (by mtime, which Get
//     refreshes) are evicted until it fits, never evicting the object
//     just written.
//
// The store is safe for concurrent use by one process. It deliberately
// holds no cross-process locks: gateways do not share a directory.
package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one stored experiment result: the exact bytes each output
// format serves, rendered once by the daemon (or engine) that computed
// it. Serving a stored entry is byte-identical to serving the original
// run by construction.
type Entry struct {
	// Experiment is the registry name that produced the result.
	Experiment string `json:"experiment"`
	// Grid is the executed grid's name for grid experiments.
	Grid string `json:"gridName,omitempty"`
	// Rendered is the aligned-text rendering.
	Rendered string `json:"rendered"`
	// RenderedCSV is the CSV rendering.
	RenderedCSV string `json:"renderedCSV"`
	// RowsJSON is the indented-JSON rendering of the structured rows.
	RowsJSON string `json:"rowsJSON"`
}

// Config parameterizes Open.
type Config struct {
	// Dir is the store directory (required; created if missing).
	Dir string
	// MaxBytes bounds the object-byte sum (0 = unbounded). Eviction is
	// LRU by object mtime; Get refreshes the mtime of the object it
	// serves, so hot results stay resident.
	MaxBytes int64
	// Fsync, when set, fsyncs each object file and the store directory
	// before the rename that publishes it — crash-durable at the cost of
	// one fsync pair per Put. Off by default: the store is a cache, and
	// a lost object is recomputed, not lost data.
	Fsync bool
	// Now, when non-nil, replaces the wall clock (tests pin LRU order
	// with it).
	Now func() time.Time
}

// Stats is the store's serving telemetry, accumulated since Open.
type Stats struct {
	// Hits counts Gets served from disk; Misses counts Gets that found
	// nothing (including corrupt objects dropped by self-healing).
	Hits, Misses uint64
	// Puts counts objects written; Evictions counts objects dropped by
	// the size bound; Errors counts I/O or decode failures (each also
	// surfaces as a miss or failed Put).
	Puts, Evictions, Errors uint64
	// Entries and Bytes describe the resident set.
	Entries int
	Bytes   int64
}

// object is one resident entry's index record.
type object struct {
	size  int64
	mtime time.Time
}

// Store is a durable content-addressed result store; construct with
// Open.
type Store struct {
	dir   string
	max   int64
	fsync bool
	now   func() time.Time

	mu    sync.Mutex
	index map[string]*object
	bytes int64
	stats Stats
}

// Open creates (or reopens) the store rooted at cfg.Dir, rebuilding the
// index from the objects already on disk — the crash/restart recovery
// path. Leftover temp files from interrupted writes are removed.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("resultstore: no directory configured")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:   cfg.Dir,
		max:   cfg.MaxBytes,
		fsync: cfg.Fsync,
		now:   cfg.Now,
		index: make(map[string]*object),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(filepath.Join(cfg.Dir, name)) // interrupted write
			continue
		}
		key, ok := strings.CutSuffix(name, objSuffix)
		if !ok || !validKey(key) {
			continue // foreign file; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue // raced a concurrent removal
		}
		s.index[key] = &object{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

const (
	tmpPrefix = ".tmp-"
	objSuffix = ".json"
)

// validKey accepts the lowercase-hex hashes photonrail.ExperimentKey
// produces (and nothing that could traverse paths or collide with temp
// files).
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+objSuffix)
}

// Dir reports the store directory.
func (s *Store) Dir() string { return s.dir }

// Stats reports the store telemetry.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	return st
}

// Get returns the entry stored under key, refreshing its recency. A
// corrupt object is removed (self-healing) and reported as a miss.
func (s *Store) Get(key string) (Entry, bool) {
	if !validKey(key) {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return Entry{}, false
	}
	data, err := os.ReadFile(s.path(key))
	var ent Entry
	if err == nil {
		err = json.Unmarshal(data, &ent)
	}
	if err != nil {
		// Torn by an external hand or corrupt on disk: drop the object so
		// the next Put rewrites it cleanly.
		s.dropLocked(key, obj)
		s.stats.Errors++
		s.stats.Misses++
		return Entry{}, false
	}
	now := s.now()
	if chErr := os.Chtimes(s.path(key), now, now); chErr == nil {
		obj.mtime = now
	}
	s.stats.Hits++
	return ent, true
}

// Put stores the entry under key, atomically (write-then-rename), then
// evicts least-recently-used objects if the size bound is exceeded —
// never the object just written.
func (s *Store) Put(key string, ent Entry) error {
	if !validKey(key) {
		return fmt.Errorf("resultstore: invalid key %q (want the canonical experiment hash)", key)
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLocked(key, data); err != nil {
		s.stats.Errors++
		return err
	}
	if old, ok := s.index[key]; ok {
		s.bytes -= old.size
	}
	s.index[key] = &object{size: int64(len(data)), mtime: s.now()}
	s.bytes += int64(len(data))
	s.stats.Puts++
	s.evictLocked(key)
	return nil
}

// writeLocked renders data to a temp file and renames it into place.
func (s *Store) writeLocked(key string, data []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		_ = f.Close()
		_ = os.Remove(tmp)
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if s.fsync {
		if err := f.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("resultstore: fsync %s: %w", key, err)
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("resultstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("resultstore: publish %s: %w", key, err)
	}
	if s.fsync {
		if dir, err := os.Open(s.dir); err == nil {
			_ = dir.Sync()
			_ = dir.Close()
		}
	}
	return nil
}

// dropLocked removes one object from disk and the index.
func (s *Store) dropLocked(key string, obj *object) {
	_ = os.Remove(s.path(key))
	delete(s.index, key)
	s.bytes -= obj.size
}

// evictLocked drops least-recently-used objects (by mtime) until the
// byte sum fits the bound, sparing keep — the eviction contract the
// gateway documents: the store converges to the MaxBytes hottest
// results, and the newest write always survives its own Put.
func (s *Store) evictLocked(keep string) {
	if s.max <= 0 || s.bytes <= s.max {
		return
	}
	type cand struct {
		key string
		obj *object
	}
	cands := make([]cand, 0, len(s.index))
	for key, obj := range s.index { //lint:allow maporder candidates are sorted by mtime (key tiebreak) before use
		if key != keep {
			cands = append(cands, cand{key, obj})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].obj.mtime.Equal(cands[j].obj.mtime) {
			return cands[i].obj.mtime.Before(cands[j].obj.mtime)
		}
		return cands[i].key < cands[j].key
	})
	for _, c := range cands {
		if s.bytes <= s.max {
			return
		}
		s.dropLocked(c.key, c.obj)
		s.stats.Evictions++
	}
}
