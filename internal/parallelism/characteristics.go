package parallelism

// CollectiveKind identifies a collective operation type. It mirrors
// Table 2's abbreviations (AR, AG, RS, Send/Recv, AllToAll).
type CollectiveKind int

// The collective kinds appearing in Table 2.
const (
	AllReduce CollectiveKind = iota
	AllGather
	ReduceScatter
	SendRecv
	AllToAll
)

// String returns the Table 2 abbreviation.
func (k CollectiveKind) String() string {
	switch k {
	case AllReduce:
		return "AR"
	case AllGather:
		return "AG"
	case ReduceScatter:
		return "RS"
	case SendRecv:
		return "Send/Recv"
	case AllToAll:
		return "AllToAll"
	default:
		return "?"
	}
}

// Phase is the training-pass a collective fires in.
type Phase int

// Training phases.
const (
	Forward Phase = iota
	Backward
)

// String returns "fwd" or "bwd".
func (p Phase) String() string {
	if p == Forward {
		return "fwd"
	}
	return "bwd"
}

// Frequency is how often an axis's collectives fire.
type Frequency int

// Collective firing frequencies from Table 2.
const (
	PerLayer Frequency = iota
	PerOperator
	PerMicrobatch
	PerModel
)

// String returns the Table 2 wording.
func (f Frequency) String() string {
	switch f {
	case PerLayer:
		return "per layer"
	case PerOperator:
		return "per operator"
	case PerMicrobatch:
		return "per microbatch"
	case PerModel:
		return "per model"
	default:
		return "?"
	}
}

// Comm is one communication behaviour of an axis: which collective, in
// which phase, how often.
type Comm struct {
	Phase Phase
	Kind  CollectiveKind
	Freq  Frequency
}

// Characteristics is one row of Table 2.
type Characteristics struct {
	Axis Axis
	// MemoryReduction lists the memory terms the axis divides, in the
	// paper's notation (gbs = global batch size, dp/tp/pp/cp/ep =
	// degrees).
	MemoryReduction []string
	// ComputeReduction lists the compute terms the axis divides.
	ComputeReduction []string
	// Comms lists the communication the axis incurs.
	Comms []Comm
}

// table2 is the static content of Table 2 [paper ref 31].
var table2 = map[Axis]Characteristics{
	DP: {
		Axis:             DP,
		MemoryReduction:  []string{"gbs/dp"},
		ComputeReduction: []string{"gbs/dp"},
		Comms: []Comm{
			{Backward, AllReduce, PerLayer},
		},
	},
	FSDP: {
		Axis:             FSDP,
		MemoryReduction:  []string{"gbs/dp", "params/dp"},
		ComputeReduction: []string{"gbs/dp"},
		Comms: []Comm{
			{Forward, AllGather, PerLayer},
			{Backward, ReduceScatter, PerLayer},
		},
	},
	TP: {
		Axis:             TP,
		MemoryReduction:  []string{"params/tp", "grads/tp", "optims/tp"},
		ComputeReduction: []string{"params/tp"},
		Comms: []Comm{
			{Forward, AllReduce, PerOperator},
			{Backward, AllReduce, PerOperator},
		},
	},
	TPSP: {
		Axis:             TPSP,
		MemoryReduction:  []string{"params/tp", "grads/tp", "optims/tp", "activs/tp"},
		ComputeReduction: []string{"params/tp", "activs/tp"},
		Comms: []Comm{
			{Forward, AllGather, PerOperator},
			{Forward, ReduceScatter, PerOperator},
			{Backward, AllGather, PerOperator},
			{Backward, ReduceScatter, PerOperator},
		},
	},
	CP: {
		Axis:             CP,
		MemoryReduction:  []string{"kv_cache/cp", "seq/cp"},
		ComputeReduction: []string{"seq/cp"},
		Comms: []Comm{
			{Forward, AllGather, PerLayer},
			{Backward, ReduceScatter, PerLayer},
		},
	},
	PP: {
		Axis:             PP,
		MemoryReduction:  []string{"params/pp", "grads/pp", "optims/pp", "activs/pp"},
		ComputeReduction: []string{"params/pp"},
		Comms: []Comm{
			{Forward, SendRecv, PerMicrobatch},
			{Backward, SendRecv, PerMicrobatch},
		},
	},
	EP: {
		Axis:             EP,
		MemoryReduction:  []string{"experts/ep"},
		ComputeReduction: []string{"experts/ep"},
		Comms: []Comm{
			{Forward, AllToAll, PerLayer},
			{Backward, AllToAll, PerLayer},
		},
	},
}

// CharacteristicsOf returns the Table 2 row for axis a.
func CharacteristicsOf(a Axis) (Characteristics, bool) {
	c, ok := table2[a]
	return c, ok
}

// AllCharacteristics returns Table 2 in row order.
func AllCharacteristics() []Characteristics {
	out := make([]Characteristics, 0, len(table2))
	for _, a := range Axes() {
		out = append(out, table2[a])
	}
	return out
}
