package parallelism

// Recommendation is one rule-of-thumb strategy combination from Table 1,
// expressed as the set of axes to combine (degrees are workload-specific).
type Recommendation []Axis

// Plan returns the Table 1 rule-of-thumb parallelism strategies for a
// model of modelParams parameters trained on n GPUs:
//
//	Small (<10B),  N ≤ 8:            TP or DP
//	Large (>10B),  8 < N ≤ 512:      TP & PP, TP & DP, or DP
//	Large (>10B),  512 < N ≤ 1024:   DP & PP, or DP & TP
//	Large (>10B),  N > 1024:         TP, DP & PP
//
// Model sizes below 10B on more than 8 GPUs fall back to the large-model
// rules (the table's rows are indexed by compute once N > 8).
func Plan(modelParams int64, n int) []Recommendation {
	const tenB = 10_000_000_000
	small := modelParams < tenB
	switch {
	case n <= 8 && small:
		return []Recommendation{{TP}, {DP}}
	case n <= 512:
		return []Recommendation{{TP, PP}, {TP, DP}, {DP}}
	case n <= 1024:
		return []Recommendation{{DP, PP}, {DP, TP}}
	default:
		return []Recommendation{{TP, DP, PP}}
	}
}

// MaxSimultaneousScaleOutAxes returns how many scale-out parallelism axes
// a GPU can serve with *static* circuits, given its NIC port count and
// ring collectives (two ports per ring). This is constraint C2 of the
// paper: with a 4-port NIC, at most two scale-out axes fit, so adding CP
// to a DP+PP job "would be infeasible without additional NICs or
// switching hardware".
func MaxSimultaneousScaleOutAxes(nicPorts int) int { return nicPorts / 2 }

// FeasibleStatic reports whether strategy s fits a photonic rail fabric
// with nicPorts ports per GPU and *no* in-job reconfiguration: every
// scale-out axis must hold its ring circuits simultaneously.
func FeasibleStatic(s *Strategy, gpusPerNode, nicPorts int) bool {
	return s.RingDegreeRequirement(gpusPerNode) <= nicPorts
}

// FeasibleWithReconfiguration reports whether strategy s fits when Opus
// time-multiplexes the rail: only the axes whose collectives overlap in
// time need simultaneous circuits, and the paper's parallelism-ordering
// observation (§2, §3.1) means at most one scale-out axis communicates at
// a time per rank — so a single ring's worth of ports (2) suffices for
// any dimensionality.
func FeasibleWithReconfiguration(s *Strategy, gpusPerNode, nicPorts int) bool {
	if len(s.ScaleOutAxes(gpusPerNode)) == 0 {
		return true
	}
	return nicPorts >= 2
}
