package parallelism

import (
	"fmt"
	"strings"
)

// Strategy is an ordered hybrid-parallelism layout. Dims are listed
// innermost first: the first axis varies fastest with the global rank.
// The conventional 3D layout {TP, DP, PP} therefore places TP ranks
// adjacent (inside a scale-up domain) and PP outermost, matching the
// rail-optimized mapping of Fig. 1.
type Strategy struct {
	dims []Dim
}

// NewStrategy validates the dims (positive degrees, no repeated axis,
// at most one of DP/FSDP, at most one of TP/TP&SP) and returns the
// strategy.
func NewStrategy(dims ...Dim) (*Strategy, error) {
	seen := make(map[Axis]bool)
	var haveData, haveTensor bool
	for _, d := range dims {
		if d.Degree <= 0 {
			return nil, fmt.Errorf("parallelism: %v has degree %d", d.Axis, d.Degree)
		}
		if seen[d.Axis] {
			return nil, fmt.Errorf("parallelism: axis %v repeated", d.Axis)
		}
		seen[d.Axis] = true
		if d.Axis.IsDataParallel() {
			if haveData {
				return nil, fmt.Errorf("parallelism: both DP and FSDP present")
			}
			haveData = true
		}
		if d.Axis.IsTensorParallel() {
			if haveTensor {
				return nil, fmt.Errorf("parallelism: both TP and TP&SP present")
			}
			haveTensor = true
		}
	}
	cp := make([]Dim, len(dims))
	copy(cp, dims)
	return &Strategy{dims: cp}, nil
}

// MustStrategy is NewStrategy but panics on error.
func MustStrategy(dims ...Dim) *Strategy {
	s, err := NewStrategy(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the dims, innermost first.
func (s *Strategy) Dims() []Dim {
	cp := make([]Dim, len(s.dims))
	copy(cp, s.dims)
	return cp
}

// WorldSize returns the product of all degrees: the GPU count the
// strategy occupies.
func (s *Strategy) WorldSize() int {
	n := 1
	for _, d := range s.dims {
		n *= d.Degree
	}
	return n
}

// Degree returns the degree of axis a, or 1 if the axis is absent
// (an absent axis is a trivial singleton group).
func (s *Strategy) Degree(a Axis) int {
	for _, d := range s.dims {
		if d.Axis == a {
			return d.Degree
		}
	}
	return 1
}

// Has reports whether axis a participates with degree > 1.
func (s *Strategy) Has(a Axis) bool { return s.Degree(a) > 1 }

// axisIndex returns the position of a in dims, or -1.
func (s *Strategy) axisIndex(a Axis) int {
	for i, d := range s.dims {
		if d.Axis == a {
			return i
		}
	}
	return -1
}

// Coordinates decomposes a global rank into per-dim coordinates,
// innermost first.
func (s *Strategy) Coordinates(rank int) []int {
	if rank < 0 || rank >= s.WorldSize() {
		panic(fmt.Sprintf("parallelism: rank %d out of world size %d", rank, s.WorldSize()))
	}
	coords := make([]int, len(s.dims))
	for i, d := range s.dims {
		coords[i] = rank % d.Degree
		rank /= d.Degree
	}
	return coords
}

// Rank recomposes per-dim coordinates into a global rank.
func (s *Strategy) Rank(coords []int) int {
	if len(coords) != len(s.dims) {
		panic(fmt.Sprintf("parallelism: %d coordinates for %d dims", len(coords), len(s.dims)))
	}
	rank := 0
	stride := 1
	for i, d := range s.dims {
		c := coords[i]
		if c < 0 || c >= d.Degree {
			panic(fmt.Sprintf("parallelism: coordinate %d out of range for %v", c, d))
		}
		rank += c * stride
		stride *= d.Degree
	}
	return rank
}

// Coordinate returns rank's position along axis a (0 if absent).
func (s *Strategy) Coordinate(rank int, a Axis) int {
	i := s.axisIndex(a)
	if i < 0 {
		return 0
	}
	return s.Coordinates(rank)[i]
}

// Group returns the communication group of axis a containing rank: the
// ranks whose coordinates agree with rank's on every other axis, ordered
// by their coordinate along a. A GPU belongs to one group per axis —
// this is the "GPU is a member of multiple communication groups" fact
// that drives the paper's degree analysis (§3).
func (s *Strategy) Group(rank int, a Axis) []int {
	i := s.axisIndex(a)
	if i < 0 {
		return []int{rank}
	}
	coords := s.Coordinates(rank)
	group := make([]int, s.dims[i].Degree)
	for c := 0; c < s.dims[i].Degree; c++ {
		coords[i] = c
		group[c] = s.Rank(coords)
	}
	return group
}

// Groups returns every communication group of axis a, each ordered by
// its coordinate along a. For an absent axis it returns one singleton
// group per rank.
func (s *Strategy) Groups(a Axis) [][]int {
	i := s.axisIndex(a)
	world := s.WorldSize()
	if i < 0 {
		out := make([][]int, world)
		for r := 0; r < world; r++ {
			out[r] = []int{r}
		}
		return out
	}
	deg := s.dims[i].Degree
	seen := make(map[int]bool, world)
	var out [][]int
	for r := 0; r < world; r++ {
		if seen[r] {
			continue
		}
		g := s.Group(r, a)
		for _, m := range g {
			seen[m] = true
		}
		out = append(out, g)
		_ = deg
	}
	return out
}

// ScaleOutAxes returns the axes whose groups cross scale-up domains when
// the innermost axes occupying gpusPerNode ranks stay inside a domain.
// With the conventional layout (TP innermost, degree == scale-up size),
// these are the axes whose traffic rides the rails.
func (s *Strategy) ScaleOutAxes(gpusPerNode int) []Axis {
	var out []Axis
	stride := 1
	for _, d := range s.dims {
		if stride >= gpusPerNode && d.Degree > 1 {
			out = append(out, d.Axis)
		}
		stride *= d.Degree
	}
	return out
}

// RingDegreeRequirement returns the node degree a GPU needs to hold
// simultaneous ring circuits for every scale-out axis: two neighbours
// per ring (paper §3: "the degree requirement is 6 in a 3D-parallel job
// using ring-based AllReduce" — two per ring across three axes; here we
// count only scale-out axes, which is what the OCS must provide).
func (s *Strategy) RingDegreeRequirement(gpusPerNode int) int {
	return 2 * len(s.ScaleOutAxes(gpusPerNode))
}

// String renders e.g. "TP=4 x FSDP=2 x PP=2".
func (s *Strategy) String() string {
	parts := make([]string, len(s.dims))
	for i, d := range s.dims {
		parts[i] = d.String()
	}
	return strings.Join(parts, " x ")
}
