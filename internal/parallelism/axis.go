// Package parallelism models hybrid ML parallelism: the axes (DP, FSDP,
// TP, SP, PP, CP, EP), multi-dimensional strategies and their rank ↔
// coordinate mapping, the communication groups each axis induces, the
// paper's Table 1 rule-of-thumb planner, the Table 2 per-axis
// communication characteristics, and the Eq. 1 window-count formula.
package parallelism

import "fmt"

// Axis is one parallelism dimension.
type Axis int

// The parallelism axes of Table 2.
const (
	// DP is data parallelism: replicas exchange gradients with a
	// backward-pass AllReduce per layer/model.
	DP Axis = iota
	// FSDP is fully sharded data parallelism: forward AllGather and
	// backward ReduceScatter per layer/model.
	FSDP
	// TP is tensor parallelism: forward+backward AllReduce per operator.
	TP
	// TPSP is tensor parallelism combined with sequence parallelism:
	// forward+backward AllGather and ReduceScatter per operator.
	TPSP
	// CP is context parallelism: forward AllGather, backward
	// ReduceScatter per layer.
	CP
	// PP is pipeline parallelism: forward+backward Send/Recv per
	// microbatch.
	PP
	// EP is expert parallelism: forward+backward AllToAll per layer.
	EP
)

var axisNames = map[Axis]string{
	DP: "DP", FSDP: "FSDP", TP: "TP", TPSP: "TP&SP", CP: "CP", PP: "PP", EP: "EP",
}

// String returns the axis's conventional abbreviation.
func (a Axis) String() string {
	if n, ok := axisNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// IsDataParallel reports whether the axis replicates data (DP or FSDP).
func (a Axis) IsDataParallel() bool { return a == DP || a == FSDP }

// IsTensorParallel reports whether the axis shards operators (TP or TP&SP).
func (a Axis) IsTensorParallel() bool { return a == TP || a == TPSP }

// Axes lists every axis in Table 2 row order.
func Axes() []Axis { return []Axis{DP, FSDP, TP, TPSP, CP, PP, EP} }

// Dim is one axis of a strategy with its degree (group size).
type Dim struct {
	Axis   Axis
	Degree int
}

// String renders e.g. "TP=4".
func (d Dim) String() string { return fmt.Sprintf("%v=%d", d.Axis, d.Degree) }
