package parallelism

import "fmt"

// WindowCountConfig parameterizes the Eq. 1 window-count formula: the
// number of inter-parallelism reconfiguration windows in one training
// iteration of a job that uses FSDP (the formula's stated assumption)
// plus optionally PP, CP, and EP, with the TP domain inside the scale-up.
type WindowCountConfig struct {
	// PP is the pipeline-parallel degree (1 = no pipeline).
	PP int
	// Layers is the total transformer layer count (n_layer).
	Layers int
	// Microbatches is the number of microbatches per iteration.
	Microbatches int
	// HasCP and HasEP say whether context/expert parallelism are active.
	HasCP, HasEP bool
}

// Validate checks the configuration is meaningful.
func (c WindowCountConfig) Validate() error {
	if c.PP < 1 {
		return fmt.Errorf("parallelism: PP = %d", c.PP)
	}
	if c.Layers < 1 {
		return fmt.Errorf("parallelism: Layers = %d", c.Layers)
	}
	if c.Microbatches < 1 {
		return fmt.Errorf("parallelism: Microbatches = %d", c.Microbatches)
	}
	if c.Layers < c.PP {
		return fmt.Errorf("parallelism: %d layers across %d pipeline stages", c.Layers, c.PP)
	}
	return nil
}

// WindowCount evaluates Eq. 1 of the paper:
//
//	count = 4(PP−1)                         // PP and FSDP fwd/bwd interleave
//	      + 2(n_layer/PP − 1)               // CP/EP and FSDP, 1st µbatch fwd interleave
//	      + 4·n_microbatch                  // CP/EP and PP fwd/bwd interleave
//	      + 2·n_microbatch·(2·n_layer/PP−1) // CP and EP fwd/bwd interleave
//	      + 4                               // PP warm-up/steady/cool-down/sync transitions
//
// Terms involving CP/EP contribute only when those axes are present, and
// the PP terms only when PP > 1; this matches the formula's brace labels.
// The result is the number of opportunities per iteration for Opus to
// reconfigure rails between parallelism phases.
func WindowCount(c WindowCountConfig) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	layersPerStage := c.Layers / c.PP
	count := 0
	if c.PP > 1 {
		count += 4 * (c.PP - 1) // PP and FSDP fwd/bwd interleave
	}
	if c.HasCP || c.HasEP {
		count += 2 * (layersPerStage - 1) // CP/EP and FSDP, 1st microbatch fwd
		if c.PP > 1 {
			count += 4 * c.Microbatches // CP/EP and PP fwd/bwd interleave
		}
	}
	if c.HasCP && c.HasEP {
		count += 2 * c.Microbatches * (2*layersPerStage - 1) // CP and EP fwd/bwd
	}
	// Warm-up, steady, cool-down, and sync state transitions. Without a
	// pipeline only the steady/sync boundary remains.
	if c.PP > 1 {
		count += 4
	} else {
		count += 2
	}
	return count, nil
}

// WindowsPerSecond converts a per-iteration window count and an iteration
// time in seconds into the paper's "windows per second" rate (§3.1 cites
// ≈6 windows/second for Llama3.1-405B on 1k H100s).
func WindowsPerSecond(count int, iterationSeconds float64) float64 {
	if iterationSeconds <= 0 {
		return 0
	}
	return float64(count) / iterationSeconds
}
