package parallelism

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func paper3D(t *testing.T) *Strategy {
	t.Helper()
	// The §3.1 workload: Llama3-8B with TP=4 (intra-node), FSDP=2, PP=2.
	s, err := NewStrategy(Dim{TP, 4}, Dim{FSDP, 2}, Dim{PP, 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStrategyWorldSize(t *testing.T) {
	s := paper3D(t)
	if s.WorldSize() != 16 {
		t.Errorf("WorldSize = %d, want 16", s.WorldSize())
	}
	if s.Degree(TP) != 4 || s.Degree(FSDP) != 2 || s.Degree(PP) != 2 {
		t.Error("Degree wrong")
	}
	if s.Degree(CP) != 1 || s.Has(CP) {
		t.Error("absent axis should have degree 1")
	}
	if got := s.String(); got != "TP=4 x FSDP=2 x PP=2" {
		t.Errorf("String() = %q", got)
	}
}

func TestStrategyValidation(t *testing.T) {
	cases := [][]Dim{
		{{TP, 0}},
		{{TP, -2}},
		{{TP, 2}, {TP, 2}},
		{{DP, 2}, {FSDP, 2}},
		{{TP, 2}, {TPSP, 2}},
	}
	for i, dims := range cases {
		if _, err := NewStrategy(dims...); err == nil {
			t.Errorf("case %d accepted: %v", i, dims)
		}
	}
}

func TestCoordinatesRoundTrip(t *testing.T) {
	s := paper3D(t)
	// Rank 0: TP=0, FSDP=0, PP=0. Rank 5: 5 = 1 + 4*1 -> TP=1, FSDP=1, PP=0.
	c := s.Coordinates(5)
	if c[0] != 1 || c[1] != 1 || c[2] != 0 {
		t.Errorf("Coordinates(5) = %v", c)
	}
	if got := s.Rank([]int{1, 1, 0}); got != 5 {
		t.Errorf("Rank([1 1 0]) = %d", got)
	}
	if s.Coordinate(13, PP) != 1 { // 13 = 1 + 4*1 + 8*1
		t.Errorf("Coordinate(13, PP) = %d", s.Coordinate(13, PP))
	}
	if s.Coordinate(13, EP) != 0 {
		t.Error("absent axis coordinate should be 0")
	}
}

func TestGroup(t *testing.T) {
	s := paper3D(t)
	// TP group of rank 0: ranks 0..3 (innermost).
	g := s.Group(0, TP)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("TP group of 0 = %v", g)
		}
	}
	// PP group of rank 0: {0, 8} (stride 8).
	g = s.Group(0, PP)
	if len(g) != 2 || g[0] != 0 || g[1] != 8 {
		t.Errorf("PP group of 0 = %v", g)
	}
	// FSDP group of rank 2: {2, 6}.
	g = s.Group(2, FSDP)
	if len(g) != 2 || g[0] != 2 || g[1] != 6 {
		t.Errorf("FSDP group of 2 = %v", g)
	}
	// Absent axis: singleton.
	g = s.Group(7, EP)
	if len(g) != 1 || g[0] != 7 {
		t.Errorf("EP group of 7 = %v", g)
	}
}

func TestGroupsPartition(t *testing.T) {
	s := paper3D(t)
	for _, a := range []Axis{TP, FSDP, PP} {
		groups := s.Groups(a)
		seen := make(map[int]int)
		for _, g := range groups {
			if len(g) != s.Degree(a) {
				t.Errorf("%v group size %d, want %d", a, len(g), s.Degree(a))
			}
			for _, r := range g {
				seen[r]++
			}
		}
		if len(seen) != s.WorldSize() {
			t.Errorf("%v groups cover %d ranks", a, len(seen))
		}
		for r, n := range seen {
			if n != 1 {
				t.Errorf("%v: rank %d in %d groups", a, r, n)
			}
		}
	}
}

// Property: rank/coordinate mapping is a bijection and every axis's
// groups partition the world, for random strategies.
func TestStrategyBijectionProperty(t *testing.T) {
	axesPool := []Axis{TP, FSDP, PP, CP, EP}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		perm := rng.Perm(len(axesPool))
		dims := make([]Dim, n)
		for i := 0; i < n; i++ {
			dims[i] = Dim{axesPool[perm[i]], rng.Intn(4) + 1}
		}
		s, err := NewStrategy(dims...)
		if err != nil {
			return true // skip invalid combos
		}
		for r := 0; r < s.WorldSize(); r++ {
			if s.Rank(s.Coordinates(r)) != r {
				return false
			}
		}
		for _, d := range dims {
			total := 0
			for _, g := range s.Groups(d.Axis) {
				total += len(g)
			}
			if total != s.WorldSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaleOutAxes(t *testing.T) {
	s := paper3D(t)
	// TP=4 fills the 4-GPU scale-up; FSDP and PP are scale-out.
	got := s.ScaleOutAxes(4)
	if len(got) != 2 || got[0] != FSDP || got[1] != PP {
		t.Errorf("ScaleOutAxes = %v", got)
	}
	if s.RingDegreeRequirement(4) != 4 {
		t.Errorf("RingDegreeRequirement = %d, want 4", s.RingDegreeRequirement(4))
	}
	// Paper §3: 3D-parallel job has total degree requirement 6 (incl. TP);
	// the scale-out requirement with TP inside an 1-GPU "domain" is 6.
	if s.RingDegreeRequirement(1) != 6 {
		t.Errorf("all-axis ring degree = %d, want 6", s.RingDegreeRequirement(1))
	}
}

// TestTable1Plan reproduces Table 1's rows.
func TestTable1Plan(t *testing.T) {
	const b = 1_000_000_000
	tests := []struct {
		params int64
		n      int
		want   []Recommendation
	}{
		{8 * b, 8, []Recommendation{{TP}, {DP}}},
		{70 * b, 512, []Recommendation{{TP, PP}, {TP, DP}, {DP}}},
		{70 * b, 1024, []Recommendation{{DP, PP}, {DP, TP}}},
		{405 * b, 8192, []Recommendation{{TP, DP, PP}}},
	}
	for _, tt := range tests {
		got := Plan(tt.params, tt.n)
		if len(got) != len(tt.want) {
			t.Errorf("Plan(%d, %d) = %v, want %v", tt.params, tt.n, got, tt.want)
			continue
		}
		for i := range tt.want {
			if len(got[i]) != len(tt.want[i]) {
				t.Errorf("Plan(%d, %d)[%d] = %v, want %v", tt.params, tt.n, i, got[i], tt.want[i])
				continue
			}
			for j := range tt.want[i] {
				if got[i][j] != tt.want[i][j] {
					t.Errorf("Plan(%d, %d)[%d][%d] = %v, want %v", tt.params, tt.n, i, j, got[i][j], tt.want[i][j])
				}
			}
		}
	}
}

func TestFeasibility(t *testing.T) {
	s := paper3D(t) // 2 scale-out axes -> static needs 4 ports
	if !FeasibleStatic(s, 4, 4) {
		t.Error("2 scale-out axes should fit 4 ports statically")
	}
	if FeasibleStatic(s, 4, 2) {
		t.Error("2 scale-out axes should not fit 2 ports statically")
	}
	// Adding CP makes it 3 scale-out axes: infeasible on a 4-port NIC
	// (paper C2)...
	s5 := MustStrategy(Dim{TP, 4}, Dim{CP, 2}, Dim{FSDP, 2}, Dim{PP, 2})
	if FeasibleStatic(s5, 4, 4) {
		t.Error("C2: CP should be statically infeasible on 4 ports")
	}
	// ...but feasible with Opus reconfiguration.
	if !FeasibleWithReconfiguration(s5, 4, 4) || !FeasibleWithReconfiguration(s5, 4, 2) {
		t.Error("reconfiguration should make 5D feasible")
	}
	if MaxSimultaneousScaleOutAxes(4) != 2 {
		t.Error("MaxSimultaneousScaleOutAxes(4) != 2")
	}
	// TP-only job has no scale-out traffic: feasible regardless.
	tpOnly := MustStrategy(Dim{TP, 4})
	if !FeasibleWithReconfiguration(tpOnly, 4, 0) {
		t.Error("TP-only should be feasible with no ports")
	}
}

// TestTable2Characteristics checks Table 2's communication columns.
func TestTable2Characteristics(t *testing.T) {
	rows := AllCharacteristics()
	if len(rows) != 7 {
		t.Fatalf("Table 2 has %d rows, want 7", len(rows))
	}
	check := func(a Axis, wantComms []Comm) {
		c, ok := CharacteristicsOf(a)
		if !ok {
			t.Fatalf("no characteristics for %v", a)
		}
		if len(c.Comms) != len(wantComms) {
			t.Fatalf("%v has %d comms, want %d", a, len(c.Comms), len(wantComms))
		}
		for i, w := range wantComms {
			if c.Comms[i] != w {
				t.Errorf("%v comm %d = %+v, want %+v", a, i, c.Comms[i], w)
			}
		}
	}
	check(DP, []Comm{{Backward, AllReduce, PerLayer}})
	check(FSDP, []Comm{{Forward, AllGather, PerLayer}, {Backward, ReduceScatter, PerLayer}})
	check(TP, []Comm{{Forward, AllReduce, PerOperator}, {Backward, AllReduce, PerOperator}})
	check(PP, []Comm{{Forward, SendRecv, PerMicrobatch}, {Backward, SendRecv, PerMicrobatch}})
	check(EP, []Comm{{Forward, AllToAll, PerLayer}, {Backward, AllToAll, PerLayer}})
	check(CP, []Comm{{Forward, AllGather, PerLayer}, {Backward, ReduceScatter, PerLayer}})

	// Memory-reduction strings for FSDP include the parameter shard.
	c, _ := CharacteristicsOf(FSDP)
	found := false
	for _, m := range c.MemoryReduction {
		if m == "params/dp" {
			found = true
		}
	}
	if !found {
		t.Error("FSDP memory reduction missing params/dp")
	}
}

func TestStringers(t *testing.T) {
	if AllReduce.String() != "AR" || ReduceScatter.String() != "RS" ||
		SendRecv.String() != "Send/Recv" || AllToAll.String() != "AllToAll" ||
		AllGather.String() != "AG" {
		t.Error("CollectiveKind strings wrong")
	}
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Error("Phase strings wrong")
	}
	if PerLayer.String() != "per layer" || PerOperator.String() != "per operator" ||
		PerMicrobatch.String() != "per microbatch" || PerModel.String() != "per model" {
		t.Error("Frequency strings wrong")
	}
	if TPSP.String() != "TP&SP" || Axis(99).String() == "" {
		t.Error("Axis strings wrong")
	}
}

func TestWindowCountPaperWorkload(t *testing.T) {
	// §3.1 workload: PP=2, FSDP=2, no CP/EP. Only the PP&FSDP term and
	// the 4 state transitions remain: 4(2-1) + 4 = 8 — matching the
	// visual count of circuit-configuration changes in Fig. 3(a).
	n, err := WindowCount(WindowCountConfig{PP: 2, Layers: 32, Microbatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("WindowCount(PP=2,FSDP) = %d, want 8", n)
	}
}

func TestWindowCountAllTerms(t *testing.T) {
	// With CP and EP every term contributes:
	// 4(4-1)=12, 2(8/4·... layersPerStage=2 -> 2(2-1)=2, 4·3=12,
	// 2·3·(2·2-1)=18, +4 => 48.
	n, err := WindowCount(WindowCountConfig{PP: 4, Layers: 8, Microbatches: 3, HasCP: true, HasEP: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 48 {
		t.Errorf("WindowCount = %d, want 48", n)
	}
}

func TestWindowCountNoPipeline(t *testing.T) {
	// FSDP only: just the steady/sync transitions.
	n, err := WindowCount(WindowCountConfig{PP: 1, Layers: 32, Microbatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("WindowCount(PP=1) = %d, want 2", n)
	}
}

func TestWindowCountValidation(t *testing.T) {
	bad := []WindowCountConfig{
		{PP: 0, Layers: 8, Microbatches: 1},
		{PP: 2, Layers: 0, Microbatches: 1},
		{PP: 2, Layers: 8, Microbatches: 0},
		{PP: 16, Layers: 8, Microbatches: 1},
	}
	for i, cfg := range bad {
		if _, err := WindowCount(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestWindowsPerSecond(t *testing.T) {
	// §3.1: "127 windows over one Llama3.1-405B training iteration,
	// approximately 20 seconds ... ≈ 6 windows/second".
	got := WindowsPerSecond(127, 20)
	if got < 6 || got > 6.5 {
		t.Errorf("WindowsPerSecond(127, 20) = %v, want ≈6.35", got)
	}
	if WindowsPerSecond(10, 0) != 0 {
		t.Error("zero iteration time should yield 0")
	}
}

func TestRankPanics(t *testing.T) {
	s := paper3D(t)
	for name, fn := range map[string]func(){
		"rank range":  func() { s.Coordinates(99) },
		"coord count": func() { s.Rank([]int{0}) },
		"coord range": func() { s.Rank([]int{9, 0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
