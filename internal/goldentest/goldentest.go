// Package goldentest compares command output against committed golden
// files, byte for byte. The cmd/ regression corpora (railgrid,
// railsweep, railwindows) use it to pin every output format of their
// canonical invocations; regenerate after an intentional output change
// with
//
//	go test ./cmd/... -run Golden -update
package goldentest

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update is registered on the test binary's flag set: `go test -update`
// rewrites the golden files instead of comparing against them.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// Updating reports whether the test run is regenerating golden files.
func Updating() bool { return *update }

// Check compares got against the golden file at path (relative to the
// test's package directory, conventionally testdata/golden/<name>).
// With -update it (re)writes the file instead and fails only on I/O
// errors, so a regeneration run always leaves a committed-ready corpus.
func Check(t *testing.T, got []byte, path string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file: %v (run `go test -update` to generate)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("output diverged from %s (run `go test -update` after intentional changes)\n%s",
		path, firstDiff(got, want))
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("got %d lines, want %d", len(gl), len(wl))
}
