package railfleet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"photonrail"
	"photonrail/internal/faultnet"
	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
)

// splitSpec is a grid whose six workload keys provably shard across
// two backends (requireSplit pins that), with deliberately light
// cells (4 microbatches of 1): the batch-timeout test needs a healthy
// backend's batch to finish far inside the timeout even under -race.
func splitSpec() scenario.Spec {
	return scenario.Spec{
		Name:   "split",
		Models: []string{"Llama3-8B", "Mixtral-8x7B"},
		Parallelisms: []scenario.Parallelism{
			{TP: 4, DP: 2, PP: 2}, {TP: 2, DP: 2, PP: 2}, {TP: 4, DP: 1, CP: 2, PP: 2},
		},
		Fabrics:        []string{"electrical", "photonic"},
		LatenciesMS:    []float64{5},
		Microbatches:   4,
		MicrobatchSize: 1,
		Iterations:     1,
	}
}

// requireSplit asserts both backends of a 2-backend fleet receive
// cells for the spec, and returns the local ground-truth rows.
func requireSplit(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	grid, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cells := grid.Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1})
	if len(assignment[0]) == 0 || len(assignment[1]) == 0 {
		t.Fatalf("grid sharded onto one backend (%d/%d); pick axes that split", len(assignment[0]), len(assignment[1]))
	}
	local, err := photonrail.NewEngine(0).RunGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	return rowsJSON(t, local.Rows())
}

// legacyBackend serves the opusnet framing like a pre-cells_req raild:
// every frame is answered with an application-level MsgErr on a
// healthy connection — never a transport error.
func legacyBackend(ln net.Listener) {
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := opusnet.ReadMessage(conn)
					if err != nil {
						return
					}
					_ = opusnet.WriteMessage(conn, &opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
						Error: fmt.Sprintf("railserve: unsupported message type %q", msg.Type)})
				}
			}()
		}
	}()
}

// TestFleetRoutesAroundLegacyBackend pins the mixed-version-fleet
// contract: a backend that deterministically REFUSES cells_req (an old
// raild, answering MsgErr on a healthy connection) is excluded from
// the request's later waves instead of being re-dialed and re-failed
// forever — the grid completes on the backends that do understand the
// frame, byte-identically. Pre-fix, this request never terminated.
func TestFleetRoutesAroundLegacyBackend(t *testing.T) {
	spec := splitSpec()
	wantRows := requireSplit(t, spec)

	fn := faultnet.New()
	t.Cleanup(fn.Close)
	legacyBackend(fn.Listen("b0"))
	real, err := railserve.NewServer(railserve.Config{Listener: fn.Listen("b1"), Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = real.Close(); real.Drain() })
	coord, err := New(Config{
		Listener: fn.Listen("coord"),
		Backends: []string{"b0", "b1"},
		InFlight: 4,
		Dial:     fn.Dial,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close(); coord.Drain() })

	conn, err := fn.Dial("coord")
	if err != nil {
		t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })

	done := make(chan struct{})
	var run *railserve.GridRun
	var runErr error
	go func() {
		run, runErr = c.RunGrid(spec, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("mixed fleet never terminated (legacy backend retried forever?)")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("mixed-fleet rows diverged from local")
	}
	if got := real.Stats().CellsExecuted; got != uint64(len(run.Rows)) {
		t.Errorf("real backend executed %d of %d cells", got, len(run.Rows))
	}
}

// TestFleetBatchTimeoutReshardsWedgedBackend pins the "times out" leg
// of the failover contract: a backend that is alive but wedged (its
// frames held by the fault harness, socket open) has its batch expire
// after BatchTimeout and its cells re-shard to the survivor — the
// client receives the full byte-identical result WITHOUT the wedged
// backend ever being released.
func TestFleetBatchTimeoutReshardsWedgedBackend(t *testing.T) {
	spec := splitSpec()
	wantRows := requireSplit(t, spec)

	fn := faultnet.New()
	t.Cleanup(fn.Close)
	var backends []*railserve.Server
	for i := 0; i < 2; i++ {
		s, err := railserve.NewServer(railserve.Config{Listener: fn.Listen(fmt.Sprintf("b%d", i)), Workers: 2, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, s)
		t.Cleanup(func() { _ = s.Close(); s.Drain() })
	}
	fn.Endpoint("b0").HoldAtFrame(1) // wedged: accepts requests, answers nothing
	t.Cleanup(fn.Endpoint("b0").Release)

	coord, err := New(Config{
		Listener: fn.Listen("coord"),
		Backends: []string{"b0", "b1"},
		InFlight: 4,
		// Generous next to a light batch's worst case (the full grid
		// runs in well under a second even under -race), tiny next to
		// the test's patience: only the wedged backend can trip it.
		BatchTimeout: 5 * time.Second,
		Dial:         fn.Dial,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close(); coord.Drain() })

	conn, err := fn.Dial("coord")
	if err != nil {
		t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })

	run, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("rows diverged after a batch-timeout re-shard")
	}
	if got := backends[1].Stats().CellsExecuted; got != uint64(len(run.Rows)) {
		t.Errorf("survivor executed %d of %d cells", got, len(run.Rows))
	}
}
