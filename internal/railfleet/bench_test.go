package railfleet

import (
	"fmt"
	"testing"

	"photonrail/internal/scenario"
)

// benchSpec is the swept grid: the full fig8-5d fan-out normally, a
// six-workload slice of it under -short (CI runs -short -benchtime 1x).
func benchSpec(short bool) scenario.Spec {
	if !short {
		return scenario.SpecOf(scenario.Fig8Grid5D())
	}
	return scenario.Spec{
		Name:   "bench-small",
		Models: []string{"Llama3-8B", "Mixtral-8x7B"},
		Parallelisms: []scenario.Parallelism{
			{TP: 4, DP: 2, PP: 2}, {TP: 2, DP: 2, PP: 2}, {TP: 4, DP: 1, CP: 2, PP: 2},
		},
		Fabrics:     []string{"electrical", "photonic"},
		LatenciesMS: []float64{5},
		Iterations:  1,
	}
}

// BenchmarkFleetGrid measures one cold grid fan-out through the
// coordinator — 1 vs 3 in-process backends, each fleet built fresh per
// iteration so every run pays full simulation cost (the quantity the
// fleet exists to parallelize). The 1-backend case is the
// single-daemon baseline the speedup is read against.
func BenchmarkFleetGrid(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			spec := benchSpec(testing.Short())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fl := newFleet(b, n, DefaultInFlight)
				c, err := fl.dial()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := c.RunGrid(spec, nil); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = c.Close()
				fl.stop()
				b.StartTimer()
			}
		})
	}
}
