package railfleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail"
	"photonrail/internal/faultnet"
	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// fleet is one in-process coordinator + backends on the fault network.
type fleet struct {
	net      *faultnet.Network
	coord    *Coordinator
	backends []*railserve.Server
}

// newFleet builds an n-backend fleet on a fresh fault-injection
// network, without registering cleanup (the benchmark tears fleets
// down per iteration). Backend endpoints are named "b0".."bN-1"; the
// coordinator listens on "coord".
func newFleet(tb testing.TB, n, inFlight int) *fleet {
	tb.Helper()
	var logf func(format string, args ...any)
	if _, isTest := tb.(*testing.T); isTest {
		logf = tb.Logf // benchmarks stay quiet
	}
	fn := faultnet.New()
	fl := &fleet{net: fn}
	var addrs []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("b%d", i)
		s, err := railserve.NewServer(railserve.Config{Listener: fn.Listen(name), Workers: 2, Logf: logf})
		if err != nil {
			tb.Fatal(err)
		}
		fl.backends = append(fl.backends, s)
		addrs = append(addrs, name)
	}
	coord, err := New(Config{
		Listener: fn.Listen("coord"),
		Backends: addrs,
		InFlight: inFlight,
		Dial:     fn.Dial,
		Logf:     logf,
	})
	if err != nil {
		tb.Fatal(err)
	}
	fl.coord = coord
	return fl
}

// stop tears the fleet down, draining abandoned executions.
func (fl *fleet) stop() {
	_ = fl.coord.Close()
	fl.coord.Drain()
	for _, s := range fl.backends {
		_ = s.Close()
		s.Drain()
	}
	fl.net.Close()
}

// startFleet is newFleet with test-scoped cleanup.
func startFleet(t *testing.T, n, inFlight int) *fleet {
	t.Helper()
	fl := newFleet(t, n, inFlight)
	t.Cleanup(fl.stop)
	return fl
}

// dialCoord connects a railserve client to the fleet's coordinator —
// the unchanged-client compatibility point.
func (fl *fleet) dialCoord(t *testing.T) *railserve.Client {
	t.Helper()
	c, err := fl.dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// dial connects a client to the coordinator without test plumbing.
func (fl *fleet) dial() (*railserve.Client, error) {
	conn, err := fl.net.Dial("coord")
	if err != nil {
		return nil, err
	}
	return railserve.NewClient(conn), nil
}

func rowsJSON(tb testing.TB, rows []scenario.Row) string {
	tb.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

// fig8Ref computes the fig8-5d ground truth once for the package: the
// rows a single local engine produces and the simulations (misses) it
// needs.
var fig8RefOnce sync.Once
var fig8RefRows string
var fig8RefMisses uint64

func fig8Ref(t *testing.T) (string, uint64) {
	t.Helper()
	fig8RefOnce.Do(func() {
		en := photonrail.NewEngine(0)
		res, err := en.RunGrid(scenario.Fig8Grid5D())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Rows())
		if err != nil {
			t.Fatal(err)
		}
		fig8RefRows = string(b)
		fig8RefMisses = en.CacheStats().Misses
	})
	return fig8RefRows, fig8RefMisses
}

// TestFleetGridByteIdentical is the acceptance loopback e2e: the
// 48-cell fig8-5d grid against a 3-backend fleet returns rows
// byte-identical to a single local run, with the cells actually
// distributed (every backend executes at least one) and zero
// duplicated simulation (fleet-wide misses equal one local run's).
func TestFleetGridByteIdentical(t *testing.T) {
	wantRows, wantMisses := fig8Ref(t)
	fl := startFleet(t, 3, 4)
	c := fl.dialCoord(t)

	spec := scenario.SpecOf(scenario.Fig8Grid5D())
	var mu sync.Mutex
	var ticks []int
	run, err := c.RunGrid(spec, func(done, total int) {
		if total != 48 {
			t.Errorf("progress total = %d, want 48", total)
		}
		mu.Lock()
		ticks = append(ticks, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != "fig8-5d" || len(run.Rows) != 48 {
		t.Fatalf("run = %q with %d rows", run.Name, len(run.Rows))
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("fleet rows diverged from the local engine's")
	}

	// Aggregated progress streamed monotonically up to completion.
	mu.Lock()
	if len(ticks) == 0 {
		t.Fatal("no aggregated progress frames")
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("progress ticks not increasing: %v", ticks)
		}
	}
	if last := ticks[len(ticks)-1]; last != 48 {
		t.Errorf("final progress tick = %d, want 48", last)
	}
	mu.Unlock()

	// Cells actually distributed: every backend executed >= 1 cell, and
	// fleet-wide simulations equal a single local run's misses — the
	// workload-key sharding keeps every baseline on exactly one backend.
	var fleetMisses, fleetCells uint64
	for i, s := range fl.backends {
		st := s.Stats()
		if st.CellsExecuted == 0 {
			t.Errorf("backend %d executed no cells", i)
		}
		fleetMisses += st.Misses
		fleetCells += st.CellsExecuted
	}
	if fleetCells != 48 {
		t.Errorf("fleet executed %d cells, want 48 (no duplicated work)", fleetCells)
	}
	if fleetMisses != wantMisses {
		t.Errorf("fleet-wide misses = %d, want %d (a single local run's)", fleetMisses, wantMisses)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GridsExecuted != 1 || st.GridsDeduped != 0 {
		t.Errorf("coordinator grids executed/deduped = %d/%d, want 1/0", st.GridsExecuted, st.GridsDeduped)
	}
	if len(st.Backends) != 3 {
		t.Fatalf("stats carry %d backends, want 3", len(st.Backends))
	}
	for _, b := range st.Backends {
		if !b.Healthy || b.Cells == 0 {
			t.Errorf("backend %s: healthy=%v cells=%d, want healthy with cells", b.Addr, b.Healthy, b.Cells)
		}
	}
	if st.CellsExecuted != 48 {
		t.Errorf("aggregated cellsExecuted = %d, want 48", st.CellsExecuted)
	}
}

// TestFleetFailoverMidGrid is the acceptance failover e2e: one backend
// is killed mid-grid by the fault harness (at an exact served-frame
// count, so the kill lands between its first progress frame and its
// results), and the client still receives the full, byte-identical
// result — the dead backend's cells re-shard to the survivors.
func TestFleetFailoverMidGrid(t *testing.T) {
	wantRows, _ := fig8Ref(t)
	fl := startFleet(t, 3, 4)

	// Pick a backend that will receive cells under the static shard
	// assignment, and kill it after it has served 2 frames — mid-grid,
	// before it can deliver its first batch's result.
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	victim := -1
	for bi, idxs := range assignment {
		if len(idxs) > 0 {
			victim = bi
			break
		}
	}
	if victim < 0 {
		t.Fatal("no backend received cells")
	}
	fl.net.Endpoint(fmt.Sprintf("b%d", victim)).KillAfterFrames(2)

	c := fl.dialCoord(t)
	run, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("failover rows diverged from the local engine's")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var deadSeen bool
	for _, b := range st.Backends {
		if b.Addr == fmt.Sprintf("b%d", victim) {
			deadSeen = true
			if b.Healthy {
				t.Errorf("killed backend %s still reported healthy", b.Addr)
			}
			if b.Failures == 0 {
				t.Errorf("killed backend %s reports no failures", b.Addr)
			}
		}
	}
	if !deadSeen {
		t.Fatalf("killed backend missing from stats: %+v", st.Backends)
	}
	// The survivors covered the whole grid between them.
	var fleetCells uint64
	for i, s := range fl.backends {
		if i == victim {
			continue
		}
		fleetCells += s.Stats().CellsExecuted
	}
	if fleetCells < 48-uint64(len(assignment[victim])) {
		t.Errorf("survivors executed %d cells, want >= %d", fleetCells, 48-len(assignment[victim]))
	}
}

// TestFleetAllBackendsDead: killing every backend fails the grid with
// a clear error instead of hanging.
func TestFleetAllBackendsDead(t *testing.T) {
	fl := startFleet(t, 2, 4)
	fl.net.Endpoint("b0").Kill()
	fl.net.Endpoint("b1").Kill()
	c := fl.dialCoord(t)
	_, err := c.RunGrid(scenario.SpecOf(scenario.Grid{Name: "doomed", LatenciesMS: []float64{5}, Iterations: 1}), nil)
	if err == nil || !strings.Contains(err.Error(), "no live backends") {
		t.Fatalf("err = %v, want no-live-backends", err)
	}
}

// TestFleetDroppedProgressFrameHarmless: advisory progress frames may
// vanish (here: the backend's first served frame is dropped by the
// harness); the result must still be complete and correct.
func TestFleetDroppedProgressFrameHarmless(t *testing.T) {
	fl := startFleet(t, 2, 8)
	fl.net.Endpoint("b0").DropFrame(1)
	fl.net.Endpoint("b1").DropFrame(1)
	c := fl.dialCoord(t)
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "droppy",
		Fabrics:     []scenario.FabricKind{scenario.Electrical, scenario.Photonic},
		LatenciesMS: []float64{5, 20},
		Iterations:  1,
	})
	run, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	local, err := photonrail.NewEngine(0).RunGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, run.Rows), rowsJSON(t, local.Rows()); got != want {
		t.Fatal("rows diverged under dropped progress frames")
	}
}

// TestFleetHeldBackendStallsThenCompletes: a held backend (frames
// withheld until Release) stalls the fleet result — the coordinator
// must not return a partial grid — and Release lets the identical
// full result through.
func TestFleetHeldBackendStallsThenCompletes(t *testing.T) {
	fl := startFleet(t, 2, 8)
	// Two models x three parallelisms = six workload keys, which the
	// static shard assignment provably splits across both backends (the
	// t.Fatal below pins that; adjust axes if the shard hash changes).
	spec := scenario.Spec{
		Name:   "held",
		Models: []string{"Llama3-8B", "Mixtral-8x7B"},
		Parallelisms: []scenario.Parallelism{
			{TP: 4, DP: 2, PP: 2}, {TP: 2, DP: 2, PP: 2}, {TP: 4, DP: 1, CP: 2, PP: 2},
		},
		Fabrics:     []string{"electrical", "photonic"},
		LatenciesMS: []float64{5},
		Iterations:  1,
	}
	grid, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cells := grid.Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1})
	if len(assignment[0]) == 0 || len(assignment[1]) == 0 {
		t.Fatalf("grid sharded onto one backend (%d/%d); pick axes that split", len(assignment[0]), len(assignment[1]))
	}
	held := fl.net.Endpoint("b0")
	held.HoldAtFrame(1)

	c := fl.dialCoord(t)
	type outcome struct {
		run *railserve.GridRun
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		run, err := c.RunGrid(spec, nil)
		res <- outcome{run, err}
	}()

	// The unheld backend finishes its whole share while b0 is gagged —
	// a deterministic wait on the coordinator's cell_complete events
	// (emitted only after a batch's rows are committed, so this is
	// strictly stronger than the old submission-counter poll).
	doneB1 := 0
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		if ev.Type == "cell_complete" && ev.Backend == "b1" {
			doneB1 += ev.Cells
		}
		return doneB1 >= len(assignment[1])
	})
	select {
	case out := <-res:
		t.Fatalf("result delivered while a backend was held: %+v", out)
	default:
	}
	held.Release()
	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	local, err := photonrail.NewEngine(0).RunGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, out.run.Rows), rowsJSON(t, local.Rows()); got != want {
		t.Fatal("rows diverged after a hold/release")
	}
}

// TestFleetSingleflightDedup: two concurrent identical grid requests
// coalesce onto ONE fleet execution; both clients get byte-identical
// rows and exactly one is flagged shared.
func TestFleetSingleflightDedup(t *testing.T) {
	fl := startFleet(t, 2, 8)
	// Gate the fleet execution so the requests provably overlap.
	gate := make(chan struct{})
	fl.coord.setExecGate(gate)
	c1 := fl.dialCoord(t)
	c2 := fl.dialCoord(t)
	spec := scenario.SpecOf(scenario.Grid{Name: "dedup", LatenciesMS: []float64{5}, Iterations: 1})
	type outcome struct {
		run *railserve.GridRun
		err error
	}
	res := make(chan outcome, 2)
	submit := func(c *railserve.Client) {
		go func() {
			run, err := c.RunGrid(spec, nil)
			res <- outcome{run, err}
		}()
	}
	submit(c1)
	// The second joins once the first's execution is registered: the
	// "submitted" event is emitted strictly after the run is visible in
	// the coordinator's run map, so the join is guaranteed, not timed.
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool { return ev.Type == "submitted" })
	submit(c2)
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool { return ev.Type == "deduped" })
	close(gate)
	var runs []*railserve.GridRun
	for i := 0; i < 2; i++ {
		out := <-res
		if out.err != nil {
			t.Fatal(out.err)
		}
		runs = append(runs, out.run)
	}
	if runs[0].Shared == runs[1].Shared {
		t.Errorf("shared flags = %v/%v, want exactly one joined request", runs[0].Shared, runs[1].Shared)
	}
	if got, want := rowsJSON(t, runs[0].Rows), rowsJSON(t, runs[1].Rows); got != want {
		t.Fatal("coalesced fleet results diverged")
	}
}

// waitEvent blocks until pred matches over the telemetry event stream
// (retained ring replayed first, then live events) — the deterministic
// replacement for the old waitCoordStats sleep-poll: a successful
// return guarantees the predicate saw a complete event window.
func waitEvent(t *testing.T, tel *telemetry.Set, pred func(telemetry.Event) bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := tel.Events.WaitFor(ctx, pred); err != nil {
		t.Fatalf("event wait: %v", err)
	}
}

// TestFleetExpPathByteIdenticalToDaemon: a grid experiment served by
// the fleet renders byte-identically to the same request served by a
// single raild daemon — the coordinator-side rendering really is the
// daemon's.
func TestFleetExpPathByteIdenticalToDaemon(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "exp-grid",
		Fabrics:     []scenario.FabricKind{scenario.Electrical, scenario.Photonic, scenario.PhotonicStatic},
		LatenciesMS: []float64{5},
		Iterations:  1,
	})
	req := opusnet.ExpRequestPayload{Name: "grid", Grid: &spec}

	// Reference: one plain raild daemon.
	single, err := railserve.NewServer(railserve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = single.Close(); single.Drain() })
	sc, err := railserve.Dial(single.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sc.Close() })
	want, err := sc.RunExperiment(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}

	fl := startFleet(t, 3, 4)
	c := fl.dialCoord(t)
	var ticks []int
	var mu sync.Mutex
	got, err := c.RunExperiment(context.Background(), req, func(done, total int) {
		mu.Lock()
		ticks = append(ticks, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "grid" || got.Grid != "exp-grid" {
		t.Errorf("exp run = %q / grid %q", got.Name, got.Grid)
	}
	if got.Rendered != want.Rendered {
		t.Errorf("text rendering diverged:\n got: %q\nwant: %q", got.Rendered, want.Rendered)
	}
	if got.RenderedCSV != want.RenderedCSV {
		t.Error("CSV rendering diverged")
	}
	if got.RowsJSON != want.RowsJSON {
		t.Error("JSON rendering diverged")
	}
	mu.Lock()
	if len(ticks) == 0 {
		t.Error("no exp progress frames from the fleet")
	}
	mu.Unlock()
}

// TestFleetExpCancelPropagates: cancelling the only exp-path waiter
// cancels the fan-out — the client returns promptly while the backends
// are held, and releasing them does not resurrect the request.
func TestFleetExpCancelPropagates(t *testing.T) {
	fl := startFleet(t, 2, 8)
	gate := make(chan struct{})
	fl.coord.setExecGate(gate)
	defer close(gate)
	c := fl.dialCoord(t)
	spec := scenario.SpecOf(scenario.Grid{Name: "cancel", LatenciesMS: []float64{5}, Iterations: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RunExperiment(ctx, opusnet.ExpRequestPayload{Name: "grid", Grid: &spec}, nil)
		done <- err
	}()
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "submitted" && ev.Exp == "grid"
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled fleet experiment did not return promptly")
	}
	// The connection survives the cancellation.
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetProxiesNonGridExperiments: a non-grid experiment is proxied
// to a backend and rendered byte-identically to a local run — and
// survives the preferred backend being dead (failover to the next).
func TestFleetProxiesNonGridExperiments(t *testing.T) {
	e, ok := photonrail.Lookup("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	res, err := e.Run(context.Background(), photonrail.NewEngine(1), photonrail.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.RenderText(&want); err != nil {
		t.Fatal(err)
	}

	fl := startFleet(t, 2, 8)
	// Kill the rendezvous-preferred backend so the proxy must fail over.
	preferred := fl.coord.proxyOrder("table3")[0].address()
	fl.net.Endpoint(preferred).Kill()
	c := fl.dialCoord(t)
	run, err := c.RunExperiment(context.Background(), opusnet.ExpRequestPayload{Name: "table3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Rendered != want.String() {
		t.Errorf("proxied table3 diverged:\n got: %q\nwant: %q", run.Rendered, want.String())
	}
}

// TestFleetRejectsBadRequests: the coordinator refuses what one daemon
// would refuse — before any backend sees the request.
func TestFleetRejectsBadRequests(t *testing.T) {
	fl := startFleet(t, 2, 8)
	c := fl.dialCoord(t)
	if _, err := c.RunGrid(scenario.Spec{Models: []string{"GPT-9"}}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown model") {
		t.Errorf("bad model error = %v", err)
	}
	bomb := scenario.SpecOf(scenario.Grid{
		Name:         "bomb",
		Parallelisms: make([]scenario.Parallelism, 50_000),
		LatenciesMS:  make([]float64, 50_000),
		Fabrics:      []scenario.FabricKind{scenario.Photonic},
	})
	if _, err := c.RunGrid(bomb, nil); err == nil || !strings.Contains(err.Error(), "request cap") {
		t.Errorf("cross-product bomb error = %v", err)
	}
	if _, err := c.RunExperiment(context.Background(), opusnet.ExpRequestPayload{Name: "fig99"}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment error = %v", err)
	}
	// No backend was ever touched.
	for i, s := range fl.backends {
		if st := s.Stats(); st.CellsExecuted != 0 || st.Misses != 0 {
			t.Errorf("backend %d stats = %+v, want untouched", i, st)
		}
	}
}
