package railfleet

import (
	"testing"

	"photonrail/internal/scenario"
)

// TestAssignCoversEveryCellOnce: the shard assignment partitions the
// remaining indices exactly — no cell lost, none duplicated — and
// keeps per-backend lists in expansion order.
func TestAssignCoversEveryCellOnce(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	seen := make(map[int]int)
	for bi, idxs := range assignment {
		for j := 1; j < len(idxs); j++ {
			if idxs[j] <= idxs[j-1] {
				t.Fatalf("backend %d list not in expansion order: %v", bi, idxs)
			}
		}
		for _, idx := range idxs {
			seen[idx]++
		}
	}
	for _, idx := range all {
		if seen[idx] != 1 {
			t.Fatalf("cell %d assigned %d times", idx, seen[idx])
		}
	}
	// The acceptance distribution: every backend executes >= 1 cell of
	// the 48-cell fig8-5d grid on a 3-backend fleet.
	for bi := 0; bi < 3; bi++ {
		if len(assignment[bi]) == 0 {
			t.Errorf("backend %d received no fig8-5d cells", bi)
		}
	}
}

// TestAssignColocatesWorkloads: all fabric/latency variants of one
// workload land on one backend — the no-duplicated-baselines property.
func TestAssignColocatesWorkloads(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	owner := make(map[string]int)
	for bi, idxs := range assignment {
		for _, idx := range idxs {
			key := WorkloadKey(cells[idx])
			if prev, ok := owner[key]; ok && prev != bi {
				t.Fatalf("workload %q split across backends %d and %d", key, prev, bi)
			}
			owner[key] = bi
		}
	}
}

// TestAssignRendezvousStability: removing one backend moves only its
// cells; every other assignment is untouched (the failover property —
// survivors keep their warm caches).
func TestAssignRendezvousStability(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	before := Assign(cells, all, []int{0, 1, 2})
	for _, dead := range []int{0, 1, 2} {
		var alive []int
		for bi := 0; bi < 3; bi++ {
			if bi != dead {
				alive = append(alive, bi)
			}
		}
		after := Assign(cells, all, alive)
		for _, bi := range alive {
			beforeSet := make(map[int]bool, len(before[bi]))
			for _, idx := range before[bi] {
				beforeSet[idx] = true
			}
			for _, idx := range before[bi] {
				found := false
				for _, got := range after[bi] {
					if got == idx {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("backend %d lost cell %d when backend %d died", bi, idx, dead)
				}
			}
			// Anything new on bi must have belonged to the dead backend.
			for _, idx := range after[bi] {
				if beforeSet[idx] {
					continue
				}
				inDead := false
				for _, d := range before[dead] {
					if d == idx {
						inDead = true
						break
					}
				}
				if !inDead {
					t.Fatalf("cell %d moved to backend %d but did not belong to dead backend %d", idx, bi, dead)
				}
			}
		}
	}
}
