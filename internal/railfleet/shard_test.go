package railfleet

import (
	"fmt"
	"math"
	"testing"

	"photonrail/internal/scenario"
)

// TestAssignCoversEveryCellOnce: the shard assignment partitions the
// remaining indices exactly — no cell lost, none duplicated — and
// keeps per-backend lists in expansion order.
func TestAssignCoversEveryCellOnce(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	seen := make(map[int]int)
	for bi, idxs := range assignment {
		for j := 1; j < len(idxs); j++ {
			if idxs[j] <= idxs[j-1] {
				t.Fatalf("backend %d list not in expansion order: %v", bi, idxs)
			}
		}
		for _, idx := range idxs {
			seen[idx]++
		}
	}
	for _, idx := range all {
		if seen[idx] != 1 {
			t.Fatalf("cell %d assigned %d times", idx, seen[idx])
		}
	}
	// The acceptance distribution: every backend executes >= 1 cell of
	// the 48-cell fig8-5d grid on a 3-backend fleet.
	for bi := 0; bi < 3; bi++ {
		if len(assignment[bi]) == 0 {
			t.Errorf("backend %d received no fig8-5d cells", bi)
		}
	}
}

// TestAssignColocatesWorkloads: all fabric/latency variants of one
// workload land on one backend — the no-duplicated-baselines property.
func TestAssignColocatesWorkloads(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	owner := make(map[string]int)
	for bi, idxs := range assignment {
		for _, idx := range idxs {
			key := WorkloadKey(cells[idx])
			if prev, ok := owner[key]; ok && prev != bi {
				t.Fatalf("workload %q split across backends %d and %d", key, prev, bi)
			}
			owner[key] = bi
		}
	}
}

// TestAssignRendezvousStability: removing one backend moves only its
// cells; every other assignment is untouched (the failover property —
// survivors keep their warm caches).
func TestAssignRendezvousStability(t *testing.T) {
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	before := Assign(cells, all, []int{0, 1, 2})
	for _, dead := range []int{0, 1, 2} {
		var alive []int
		for bi := 0; bi < 3; bi++ {
			if bi != dead {
				alive = append(alive, bi)
			}
		}
		after := Assign(cells, all, alive)
		for _, bi := range alive {
			beforeSet := make(map[int]bool, len(before[bi]))
			for _, idx := range before[bi] {
				beforeSet[idx] = true
			}
			for _, idx := range before[bi] {
				found := false
				for _, got := range after[bi] {
					if got == idx {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("backend %d lost cell %d when backend %d died", bi, idx, dead)
				}
			}
			// Anything new on bi must have belonged to the dead backend.
			for _, idx := range after[bi] {
				if beforeSet[idx] {
					continue
				}
				inDead := false
				for _, d := range before[dead] {
					if d == idx {
						inDead = true
						break
					}
				}
				if !inDead {
					t.Fatalf("cell %d moved to backend %d but did not belong to dead backend %d", idx, bi, dead)
				}
			}
		}
	}
}

// TestWeightedShareTracksCapacity: over a large synthetic key space,
// each target's share of keys tracks its capacity weight within a few
// percent — the CARP-style scoring really is capacity-proportional, so
// a backend advertising twice the workers absorbs about twice the
// workloads.
func TestWeightedShareTracksCapacity(t *testing.T) {
	targets := []Target{
		{ID: "a", Weight: 1},
		{ID: "b", Weight: 2},
		{ID: "c", Weight: 4},
		{ID: "d", Weight: 8},
	}
	const keys = 20000
	counts := make(map[string]int, len(targets))
	for i := 0; i < keys; i++ {
		counts[ownerOf(fmt.Sprintf("workload-%d", i), targets)]++
	}
	const totalWeight = 15.0
	for _, tg := range targets {
		want := keys * float64(tg.Weight) / totalWeight
		got := float64(counts[tg.ID])
		if diff := math.Abs(got-want) / want; diff > 0.10 {
			t.Errorf("target %s (weight %d) owns %d keys, want ~%.0f (share off by %.1f%%)",
				tg.ID, tg.Weight, counts[tg.ID], want, diff*100)
		}
	}
}

// TestWeightedJoinLeaveMinimalMovement: the weighted rendezvous keeps
// the minimal-disruption property — a leave moves only the leaver's
// keys, a join moves keys only onto the joiner, and a re-weight moves
// keys only onto the re-weighted target.
func TestWeightedJoinLeaveMinimalMovement(t *testing.T) {
	base := []Target{{ID: "a", Weight: 1}, {ID: "b", Weight: 2}, {ID: "c", Weight: 3}}
	const keys = 5000
	owner := func(ts []Target, i int) string { return ownerOf(fmt.Sprintf("workload-%d", i), ts) }
	before := make([]string, keys)
	for i := range before {
		before[i] = owner(base, i)
	}

	// Leave: dropping "c" relocates nothing that was not c's.
	left := base[:2]
	for i := 0; i < keys; i++ {
		if got := owner(left, i); before[i] != "c" && got != before[i] {
			t.Fatalf("key %d moved from %s to %s when only c left", i, before[i], got)
		}
	}

	// Join: every key "d" does not win stays put.
	joined := append(append([]Target(nil), base...), Target{ID: "d", Weight: 2})
	moved := 0
	for i := 0; i < keys; i++ {
		got := owner(joined, i)
		if got != before[i] {
			if got != "d" {
				t.Fatalf("key %d moved from %s to %s on d's join", i, before[i], got)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("no key moved to the joiner")
	}

	// Re-weight: raising b's capacity pulls keys toward b only.
	rew := []Target{{ID: "a", Weight: 1}, {ID: "b", Weight: 4}, {ID: "c", Weight: 3}}
	for i := 0; i < keys; i++ {
		if got := owner(rew, i); got != before[i] && got != "b" {
			t.Fatalf("key %d moved from %s to %s when only b was re-weighted", i, before[i], got)
		}
	}
}
