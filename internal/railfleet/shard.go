package railfleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"photonrail/internal/scenario"
)

// WorkloadKey is the canonical shard key of one grid cell: every
// coordinate that shapes the cell's simulated Workload — and therefore
// its electrical baseline — excluding the fabric kind and latency.
// Sharding by this key (rather than the full cell name) colocates all
// fabric variants of one workload on one backend, so each baseline is
// simulated exactly once fleet-wide and the fleet's total simulation
// count equals a single daemon's (the property test pins this).
func WorkloadKey(c scenario.Cell) string {
	return fmt.Sprintf("%s|%s|%s|%s|j%g|e%v|%d|%d|%d",
		c.Model.Name, c.GPU.Name, c.Par, c.Schedule, c.JitterFrac, c.EagerRS,
		c.Microbatches, c.MicrobatchSize, c.Iterations)
}

// shardScore ranks one backend for one workload key — rendezvous
// (highest-random-weight) hashing over the backend's position in the
// configured fleet. Positions, not addresses, feed the hash, so the
// assignment is reproducible across runs and listener port choices;
// rendezvous (rather than modulo) means a dead backend's keys move to
// survivors without reshuffling anyone else's.
func shardScore(key string, backendIndex int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, backendIndex)
	return h.Sum64()
}

// Assign shards the cells at the remaining expansion-order indices
// across the alive backends (by fleet position): each cell goes to the
// alive backend with the highest rendezvous score for its workload
// key. Per-backend index lists come back in expansion order, so batch
// results merge deterministically.
func Assign(cells []scenario.Cell, remaining []int, alive []int) map[int][]int {
	out := make(map[int][]int, len(alive))
	byKey := make(map[string]int) // workload key -> chosen backend
	sorted := append([]int(nil), remaining...)
	sort.Ints(sorted)
	for _, idx := range sorted {
		key := WorkloadKey(cells[idx])
		owner, ok := byKey[key]
		if !ok {
			best := uint64(0)
			owner = -1
			for _, bi := range alive {
				if score := shardScore(key, bi); owner < 0 || score > best {
					best, owner = score, bi
				}
			}
			byKey[key] = owner
		}
		out[owner] = append(out[owner], idx)
	}
	return out
}
