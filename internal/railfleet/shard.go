package railfleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"photonrail/internal/scenario"
)

// WorkloadKey is the canonical shard key of one grid cell: every
// coordinate that shapes the cell's simulated Workload — and therefore
// its electrical baseline — excluding the fabric kind and latency.
// Sharding by this key (rather than the full cell name) colocates all
// fabric variants of one workload on one backend, so each baseline is
// simulated exactly once fleet-wide and the fleet's total simulation
// count equals a single daemon's (the property test pins this).
func WorkloadKey(c scenario.Cell) string {
	return fmt.Sprintf("%s|%s|%s|%s|j%g|e%v|%d|%d|%d",
		c.Model.Name, c.GPU.Name, c.Par, c.Schedule, c.JitterFrac, c.EagerRS,
		c.Microbatches, c.MicrobatchSize, c.Iterations)
}

// Target is one assignable backend for weighted rendezvous sharding:
// a stable identity (the hash input, so the shard survives restarts
// and listener port choices) and a capacity weight.
type Target struct {
	ID string
	// Weight is the relative share of cells the target should carry —
	// its worker-pool capacity. Values below 1 are treated as 1.
	Weight int
}

// StaticID is the identity of the i-th static -backends entry. Fleet
// positions, not addresses, feed the hash, so a static fleet's
// assignment is reproducible across runs and port choices — the same
// rationale the pre-weighted sharding used.
func StaticID(i int) string { return "s" + strconv.Itoa(i) }

// weightedScore ranks one target for one workload key — weighted
// rendezvous hashing (CARP-style): the key/target hash maps to a
// uniform u in (0,1) and scores -w/ln(u). The target with the highest
// score owns the key; E[share] is proportional to weight, and the
// score is monotone in u, so equal weights reduce to plain
// highest-random-weight ordering and a weight change moves only the
// keys that change owners.
func weightedScore(key string, t Target) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%s", key, t.ID)
	// FNV's avalanche is weak for suffix differences: two hashes whose
	// inputs differ only in the trailing target ID agree in their high
	// bits, which collapses u across targets and lets the largest weight
	// win every key. A murmur3-style finalizer restores full mixing.
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	// Map the top 53 bits into (0,1): float64-exact, never 0 or 1.
	u := (float64(s>>11) + 0.5) / (1 << 53)
	w := t.Weight
	if w < 1 {
		w = 1
	}
	return -float64(w) / math.Log(u)
}

// ownerOf picks the highest-scoring target for a key; score ties (only
// possible for duplicate IDs) break to the lexicographically smaller
// ID, so the choice is deterministic whatever order targets arrive in.
func ownerOf(key string, targets []Target) string {
	owner, best := "", math.Inf(-1)
	for _, t := range targets {
		if s := weightedScore(key, t); s > best || (s == best && t.ID < owner) {
			best, owner = s, t.ID
		}
	}
	return owner
}

// AssignWeighted shards the cells at the remaining expansion-order
// indices across the targets: each cell goes to the target with the
// highest weighted rendezvous score for its workload key, so a
// target's expected cell share tracks its capacity weight and a
// join/leave/re-weight moves only the keys whose owner changed.
// Per-target index lists come back in expansion order, so batch
// results merge deterministically.
func AssignWeighted(cells []scenario.Cell, remaining []int, targets []Target) map[string][]int {
	out := make(map[string][]int, len(targets))
	byKey := make(map[string]string) // workload key -> chosen target id
	sorted := append([]int(nil), remaining...)
	sort.Ints(sorted)
	for _, idx := range sorted {
		key := WorkloadKey(cells[idx])
		owner, ok := byKey[key]
		if !ok {
			owner = ownerOf(key, targets)
			byKey[key] = owner
		}
		if owner != "" {
			out[owner] = append(out[owner], idx)
		}
	}
	return out
}

// Assign is AssignWeighted over equal-weight static fleet positions —
// the static -backends sharding, kept as its own entry point so
// static-only fleets (and the tests that predict their assignments)
// have a stable, weight-free contract.
func Assign(cells []scenario.Cell, remaining []int, alive []int) map[int][]int {
	targets := make([]Target, len(alive))
	for i, bi := range alive {
		targets[i] = Target{ID: StaticID(bi), Weight: 1}
	}
	byID := AssignWeighted(cells, remaining, targets)
	out := make(map[int][]int, len(alive))
	for i, bi := range alive {
		if idxs := byID[targets[i].ID]; len(idxs) > 0 {
			out[bi] = idxs
		}
	}
	return out
}
