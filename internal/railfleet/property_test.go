package railfleet

import (
	"math/rand"
	"testing"

	"photonrail"
	"photonrail/internal/scenario"
)

// randomSpec draws one random (but valid) grid from the preset space.
// Parallelism coordinates are chosen so every model divides cleanly;
// infeasible combinations (EP on dense models, C2 violations) are fine
// — they expand into reported skips, which must round-trip through the
// fleet identically too.
func randomSpec(rng *rand.Rand, trial int) scenario.Spec {
	pick := func(pool []string, atLeast int) []string {
		n := atLeast + rng.Intn(len(pool)-atLeast+1)
		idx := rng.Perm(len(pool))[:n]
		out := make([]string, 0, n)
		for _, i := range idx {
			out = append(out, pool[i])
		}
		return out
	}
	pars := []scenario.Parallelism{
		{TP: 4, DP: 2, PP: 2},
		{TP: 2, DP: 2, PP: 2},
		{TP: 4, DP: 1, CP: 2, PP: 2},
		{TP: 4, DP: 1, EP: 2, PP: 2},
	}
	nPars := 1 + rng.Intn(len(pars))
	var chosen []scenario.Parallelism
	for _, i := range rng.Perm(len(pars))[:nPars] {
		chosen = append(chosen, pars[i])
	}
	lats := []float64{1, 5, 20}
	spec := scenario.Spec{
		Name:         "prop",
		Models:       pick([]string{"Llama3-8B", "Mixtral-8x7B"}, 1),
		GPUs:         pick([]string{"A100", "H100"}, 1),
		Fabrics:      pick([]string{"electrical", "photonic", "provisioned", "static"}, 1),
		LatenciesMS:  lats[:1+rng.Intn(len(lats))],
		Parallelisms: chosen,
		Iterations:   1,
	}
	if rng.Intn(2) == 0 {
		spec.EagerRS = []bool{false, true}
	}
	_ = trial
	return spec
}

// TestFleetPropertyByteIdenticalNoDuplicatedWork is the randomized
// fleet property: for seeded random grids, a 3-backend fleet's rows
// are byte-identical to a single local engine run's, and the TOTAL
// simulations across the fleet (the sum of the backends' cache
// misses) equal the single run's — workload-key sharding never
// duplicates work across non-overlapping shards.
func TestFleetPropertyByteIdenticalNoDuplicatedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized fleet property is not a -short test")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		spec := randomSpec(rng, trial)
		grid, err := spec.Resolve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := grid.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		en := photonrail.NewEngine(0)
		local, err := en.RunGrid(grid)
		if err != nil {
			t.Fatalf("trial %d local run: %v", trial, err)
		}
		wantRows := rowsJSON(t, local.Rows())
		wantMisses := en.CacheStats().Misses

		fl := startFleet(t, 3, 3)
		c := fl.dialCoord(t)
		run, err := c.RunGrid(spec, nil)
		if err != nil {
			t.Fatalf("trial %d fleet run (spec %+v): %v", trial, spec, err)
		}
		if got := rowsJSON(t, run.Rows); got != wantRows {
			t.Fatalf("trial %d (spec %+v): fleet rows diverged from local", trial, spec)
		}
		var fleetMisses, fleetCells uint64
		for _, s := range fl.backends {
			st := s.Stats()
			fleetMisses += st.Misses
			fleetCells += st.CellsExecuted
		}
		if fleetCells != uint64(len(run.Rows)) {
			t.Errorf("trial %d: fleet executed %d cells for a %d-cell grid (duplicated or lost work)",
				trial, fleetCells, len(run.Rows))
		}
		if fleetMisses != wantMisses {
			t.Errorf("trial %d (spec %+v): fleet-wide misses = %d, want the single run's %d",
				trial, spec, fleetMisses, wantMisses)
		}
	}
}
