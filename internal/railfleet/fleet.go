package railfleet

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"

	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// backend is one raild daemon the coordinator shards cells onto.
type backend struct {
	index int
	addr  string
	dial  func(addr string) (net.Conn, error)

	mu       sync.Mutex
	client   *railserve.Client
	closed   bool // coordinator shut down: no more dials
	healthy  bool
	cells    uint64
	failures uint64
	// lastStats retains the backend's most recent successful stats_resp
	// so an unreachable backend keeps contributing its last-known-good
	// counters to fleet aggregates (Coordinator.Stats) instead of its
	// contribution silently vanishing.
	lastStats opusnet.CacheStatsPayload
}

// retainStats records a successful stats query's payload.
func (b *backend) retainStats(st opusnet.CacheStatsPayload) {
	b.mu.Lock()
	b.lastStats = st
	b.mu.Unlock()
}

// retainedStats returns the last successfully retained stats payload
// (zero counters for a backend never successfully queried).
func (b *backend) retainedStats() opusnet.CacheStatsPayload {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastStats
}

// setUnhealthy records a failed stats query without counting it as a
// request failure (failures tracks mid-request failovers).
func (b *backend) setUnhealthy() {
	b.mu.Lock()
	b.healthy = false
	b.mu.Unlock()
}

// get returns the backend's client, dialing if none is connected. A
// failed dial marks the backend unhealthy; the next request re-probes
// it, so a restarted daemon rejoins the fleet without coordinator
// intervention. After the coordinator closes, get refuses instead of
// re-dialing — an abandoned execution's failover wave must not leak a
// fresh connection (and its reader goroutine) past Close.
func (b *backend) get() (*railserve.Client, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("railfleet: coordinator closed")
	}
	if b.client != nil {
		c := b.client
		b.mu.Unlock()
		return c, nil
	}
	dial, addr := b.dial, b.addr
	b.mu.Unlock()
	conn, err := dial(addr) // outside the lock: dials may block
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		b.healthy = false
		return nil, err
	}
	if b.closed {
		_ = conn.Close() // Close raced the dial; do not leak the conn
		return nil, fmt.Errorf("railfleet: coordinator closed")
	}
	if b.client != nil {
		_ = conn.Close() // lost a dial race; use the winner
	} else {
		b.client = railserve.NewClient(conn)
		b.healthy = true
	}
	return b.client, nil
}

// fail records a mid-request backend failure and drops its connection
// (closing it joins the client's reader, so no goroutine outlives the
// failover). Requests pipelined on the same connection fail over on
// their own — their waits end with ErrConnDown.
func (b *backend) fail(c *railserve.Client) {
	b.mu.Lock()
	if c != nil && b.client == c {
		b.client = nil
	}
	b.healthy = false
	b.failures++
	b.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// note credits executed cells to the backend.
func (b *backend) note(cells int) {
	b.mu.Lock()
	b.cells += uint64(cells)
	b.mu.Unlock()
}

// snapshot reports the backend's health view and its live client (nil
// when disconnected).
func (b *backend) snapshot() (opusnet.BackendStatsPayload, *railserve.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return opusnet.BackendStatsPayload{
		Addr: b.addr, Healthy: b.healthy, Cells: b.cells, Failures: b.failures,
	}, b.client
}

// close drops the backend's connection (joining its reader), marks the
// backend unhealthy, and refuses future dials.
func (b *backend) close() {
	b.mu.Lock()
	b.closed = true
	b.healthy = false
	c := b.client
	b.client = nil
	b.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// alive probes the non-excluded backends (dialing disconnected ones,
// concurrently — one dead host must not stall the others behind its
// dial timeout) and returns the fleet positions that answered, sorted.
func (f *Coordinator) alive(excluded map[int]bool) []int {
	var mu sync.Mutex
	var out []int
	var wg sync.WaitGroup
	for _, b := range f.backends {
		if excluded[b.index] {
			continue
		}
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.get(); err == nil {
				mu.Lock()
				out = append(out, b.index)
				mu.Unlock()
			} else if f.logf != nil {
				f.logf("railfleet: backend %s unreachable: %v", b.addr, err)
			}
		}()
	}
	wg.Wait()
	sort.Ints(out)
	return out
}

// executeGrid fans one expanded grid out across the fleet and merges
// the partial rows back into canonical expansion order — the
// coordinator's core. Cells shard by workload key (Assign); each
// backend's share is submitted in batches of at most f.inFlight cells
// (the per-backend in-flight cap). A backend that dies or errors
// mid-grid has its unfinished cells re-sharded across the survivors on
// the next wave; the grid fails only when no backend is left. The
// returned rows are byte-identical to a single-daemon run, whichever
// backends executed which cells.
//
// onCell receives aggregated monotonic progress over the whole grid:
// committed cells (rows landed) plus live in-batch ticks, never
// exceeding the total — a failed batch's ticks are discarded along
// with its re-executed cells.
func (f *Coordinator) executeGrid(ctx context.Context, spec scenario.Spec, grid scenario.Grid, onCell func(done, total int)) ([]scenario.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cells := grid.Expand()
	total := len(cells)
	rows := make([]scenario.Row, total)

	var pmu sync.Mutex
	committed, lastEmitted, batchSeq := 0, 0, 0
	live := make(map[int]int) // batch id -> cells done in that batch
	emit := func() {          // pmu held
		v := committed
		for _, d := range live {
			v += d
		}
		if v > lastEmitted {
			lastEmitted = v
			if onCell != nil {
				onCell(v, total)
			}
		}
	}

	remaining := make([]int, total)
	for i := range remaining {
		remaining[i] = i
	}
	// A backend that fails during THIS request is excluded from its
	// later waves: each wave's candidate set strictly shrinks, so a
	// backend returning a deterministic refusal (e.g. a pre-cells_req
	// raild answering "unsupported message type") is routed around
	// once instead of being re-dialed and re-failed forever. It is
	// re-probed on the NEXT request, so restarts still rejoin.
	excluded := make(map[int]bool)
	for wave := 0; len(remaining) > 0; wave++ {
		alive := f.alive(excluded)
		if len(alive) == 0 {
			return nil, fmt.Errorf("railfleet: no live backends (%d of %d cells unexecuted)", len(remaining), total)
		}
		assignment := Assign(cells, remaining, alive)
		if f.logf != nil {
			f.logf("railfleet: grid %q wave %d: %d cells across %d backends", grid.Name, wave, len(remaining), len(assignment))
		}
		// One sharded event per (wave, backend), in backend order so the
		// event stream is deterministic for a given assignment.
		shardOrder := make([]int, 0, len(assignment))
		for bi := range assignment {
			shardOrder = append(shardOrder, bi)
		}
		sort.Ints(shardOrder)
		for _, bi := range shardOrder {
			f.tel.Events.Emit(telemetry.Event{Type: "sharded", Exp: grid.Name,
				Backend: f.backends[bi].addr, Cells: len(assignment[bi]), Wave: wave})
		}
		var wg sync.WaitGroup
		var fmu sync.Mutex
		var failed []int
		for bi, idxs := range assignment {
			b, idxs := f.backends[bi], idxs
			wg.Add(1)
			go func() {
				defer wg.Done()
				for start := 0; start < len(idxs); start += f.inFlight {
					end := start + f.inFlight
					if end > len(idxs) {
						end = len(idxs)
					}
					if err := f.runBatch(ctx, b, spec, idxs[start:end], rows, &pmu, &committed, live, &batchSeq, emit); err != nil {
						if ctx.Err() != nil {
							return // cancelled: the wave exit reports it
						}
						if f.logf != nil {
							f.logf("railfleet: backend %s failed %d cells of grid %q: %v (re-sharding)",
								b.addr, len(idxs)-start, grid.Name, err)
						}
						f.failoversC.Inc()
						f.tel.Events.Emit(telemetry.Event{Type: "failover", Exp: grid.Name,
							Backend: b.addr, Cells: len(idxs) - start, Wave: wave, Err: err.Error()})
						fmu.Lock()
						excluded[b.index] = true
						failed = append(failed, idxs[start:]...)
						fmu.Unlock()
						return
					}
					f.tel.Events.Emit(telemetry.Event{Type: "cell_complete", Exp: grid.Name,
						Backend: b.addr, Cells: end - start, Wave: wave})
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remaining = failed
	}
	return rows, nil
}

// runBatch executes one cell batch on one backend and merges its rows.
// Any failure other than the caller's own cancellation marks the
// backend failed (dropping its connection) so the wave loop re-shards.
func (f *Coordinator) runBatch(ctx context.Context, b *backend, spec scenario.Spec, batch []int,
	rows []scenario.Row, pmu *sync.Mutex, committed *int, live map[int]int, batchSeq *int, emit func()) error {
	pmu.Lock()
	*batchSeq++
	id := *batchSeq
	pmu.Unlock()
	defer func() {
		pmu.Lock()
		delete(live, id)
		pmu.Unlock()
	}()

	c, err := b.get()
	if err != nil {
		return err
	}
	// The batch — not the request — is bounded: a wedged backend's
	// batch expires (sending it a cancel frame) and its cells re-shard,
	// while the caller's own cancellation is still distinguished via
	// the parent ctx.
	bctx := ctx
	if f.batchTimeout > 0 {
		var bcancel context.CancelFunc
		bctx, bcancel = context.WithTimeout(ctx, f.batchTimeout)
		defer bcancel()
	}
	run, err := c.RunCellsCtx(bctx, spec, batch, 0, func(done, _ int) {
		pmu.Lock()
		if done > live[id] {
			live[id] = done
			emit()
		}
		pmu.Unlock()
	})
	if err == nil && len(run.Rows) != len(batch) {
		err = fmt.Errorf("railfleet: backend %s returned %d rows for a %d-cell batch", b.addr, len(run.Rows), len(batch))
	}
	if err != nil {
		if ctx.Err() == nil {
			b.fail(c)
		}
		return err
	}
	for j, idx := range batch {
		rows[idx] = run.Rows[j]
	}
	b.note(len(batch))
	pmu.Lock()
	delete(live, id)
	*committed += len(batch)
	emit()
	pmu.Unlock()
	return nil
}
