package railfleet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/railctl"
	"photonrail/internal/railserve"
	"photonrail/internal/telemetry"
)

// backend is one raild daemon the coordinator shards cells onto —
// either a static -backends entry (liveness by dial probe) or a
// self-registered dynamic member (liveness owned by the railctl
// registry's heartbeat state; this struct only carries its connection
// and per-backend counters).
type backend struct {
	index  int    // fleet position for statics; -1 for dynamic members
	id     string // stable identity: StaticID(index), or the registered id
	static bool
	dial   func(addr string) (net.Conn, error)

	mu sync.Mutex
	// addr is the serving address; immutable for statics, updated for a
	// dynamic member that re-registered from a new listener.
	addr     string
	client   *railserve.Client
	closed   bool // coordinator shut down: no more dials
	healthy  bool
	joined   bool // static announced live at least once (join/leave events)
	dead     bool // static known unreachable: skip per-request probes
	cells    uint64
	failures uint64
	// lastStats retains the backend's most recent successful stats_resp
	// so an unreachable backend keeps contributing its last-known-good
	// counters to fleet aggregates (Coordinator.Stats) instead of its
	// contribution silently vanishing.
	lastStats opusnet.CacheStatsPayload
}

// address returns the current serving address (dynamic members may
// re-register from a new listener).
func (b *backend) address() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addr
}

// setAddr points a dynamic member at a new serving address, dropping
// the stale connection.
func (b *backend) setAddr(addr string) {
	b.mu.Lock()
	if b.addr == addr {
		b.mu.Unlock()
		return
	}
	b.addr = addr
	c := b.client
	b.client = nil
	b.healthy = false
	b.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// retainStats records a successful stats query's payload.
func (b *backend) retainStats(st opusnet.CacheStatsPayload) {
	b.mu.Lock()
	b.lastStats = st
	b.mu.Unlock()
}

// retainedStats returns the last successfully retained stats payload
// (zero counters for a backend never successfully queried).
func (b *backend) retainedStats() opusnet.CacheStatsPayload {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastStats
}

// setUnhealthy records a failed stats query without counting it as a
// request failure (failures tracks mid-request failovers).
func (b *backend) setUnhealthy() {
	b.mu.Lock()
	b.healthy = false
	b.mu.Unlock()
}

// connected reports whether a live client exists and whether the
// backend is marked dead, without dialing.
func (b *backend) connected() (connected, dead bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.client != nil, b.dead
}

// isDead reports the static probe-skip flag.
func (b *backend) isDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// markDead flags a static backend unreachable so later requests skip
// its dial probe (the reprobe loop owns its revival); it reports
// whether a leave event is due — the backend had been announced live.
func (b *backend) markDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.static || b.closed {
		return false
	}
	due := b.joined && !b.dead
	b.dead = true
	b.healthy = false
	return due
}

// revive clears the probe-skip flag after a successful dial; it
// reports whether a join event is due — the first connect, or a
// recovery from dead.
func (b *backend) revive() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.static {
		return false // the registry owns dynamic lifecycle events
	}
	due := !b.joined || b.dead
	b.joined = true
	b.dead = false
	return due
}

// get returns the backend's client, dialing if none is connected. A
// failed dial marks the backend unhealthy. After the coordinator
// closes, get refuses instead of re-dialing — an abandoned execution's
// failover wave must not leak a fresh connection (and its reader
// goroutine) past Close.
func (b *backend) get() (*railserve.Client, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("railfleet: coordinator closed")
	}
	if b.client != nil {
		c := b.client
		b.mu.Unlock()
		return c, nil
	}
	dial, addr := b.dial, b.addr
	b.mu.Unlock()
	conn, err := dial(addr) // outside the lock: dials may block
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		b.healthy = false
		return nil, err
	}
	if b.closed {
		_ = conn.Close() // Close raced the dial; do not leak the conn
		return nil, fmt.Errorf("railfleet: coordinator closed")
	}
	if b.client != nil {
		_ = conn.Close() // lost a dial race; use the winner
	} else if b.addr != addr {
		_ = conn.Close() // the member re-registered elsewhere mid-dial
		return nil, fmt.Errorf("railfleet: backend %s moved to %s mid-dial", addr, b.addr)
	} else {
		b.client = railserve.NewClient(conn)
		b.healthy = true
	}
	return b.client, nil
}

// fail records a mid-request backend failure and drops its connection
// (closing it joins the client's reader, so no goroutine outlives the
// failover). Requests pipelined on the same connection fail over on
// their own — their waits end with ErrConnDown.
func (b *backend) fail(c *railserve.Client) {
	b.mu.Lock()
	if c != nil && b.client == c {
		b.client = nil
	}
	b.healthy = false
	b.failures++
	b.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// note credits executed cells to the backend.
func (b *backend) note(cells int) {
	b.mu.Lock()
	b.cells += uint64(cells)
	b.mu.Unlock()
}

// counts reports the per-backend execution counters.
func (b *backend) counts() (cells, failures uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cells, b.failures
}

// snapshot reports a static backend's health view and its live client
// (nil when disconnected).
func (b *backend) snapshot() (opusnet.BackendStatsPayload, *railserve.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := ""
	switch {
	case b.dead:
		state = string(railctl.StateDead)
	case b.healthy:
		state = string(railctl.StateHealthy)
	}
	return opusnet.BackendStatsPayload{
		Addr: b.addr, ID: b.id, Static: b.static, Capacity: 1, State: state,
		Healthy: b.healthy, Cells: b.cells, Failures: b.failures,
	}, b.client
}

// close drops the backend's connection (joining its reader), marks the
// backend unhealthy, and refuses future dials.
func (b *backend) close() {
	b.mu.Lock()
	b.closed = true
	b.healthy = false
	c := b.client
	b.client = nil
	b.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// noteStaticUp emits the join event for a static backend that just
// probed alive (first connect or a recovery from dead).
func (f *Coordinator) noteStaticUp(b *backend) {
	if b.revive() {
		f.tel.Events.Emit(telemetry.Event{Type: "join", Member: b.id, Backend: b.address(), Capacity: 1})
	}
}

// noteStaticDown marks a static backend dead — later requests skip its
// dial probe until the reprobe loop (or an empty-fleet rescue probe)
// revives it — and emits the leave event if it had been announced live.
func (f *Coordinator) noteStaticDown(b *backend, reason string) {
	if b.markDead() {
		f.tel.Events.Emit(telemetry.Event{Type: "leave", Member: b.id, Backend: b.address(), Reason: reason})
	}
}

// dynamicBackend returns (creating on first use) the connection record
// for a registered member, repointing it if the member re-registered
// from a new address. Membership state itself lives in the registry;
// this record only carries the data-plane connection and counters.
func (f *Coordinator) dynamicBackend(id, addr string) *backend {
	f.mu.Lock()
	b, ok := f.dynamic[id]
	if !ok {
		b = &backend{index: -1, id: id, addr: addr, dial: f.dial}
		if f.closed {
			b.closed = true
		}
		f.dynamic[id] = b
	}
	f.mu.Unlock()
	b.setAddr(addr)
	return b
}

// lookupDynamic returns the member's connection record, if any exists.
func (f *Coordinator) lookupDynamic(id string) *backend {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dynamic[id]
}

// probeStatics dials the given disconnected statics concurrently — one
// dead host must not stall the others behind its dial timeout — adding
// the reachable ones to byID and marking the rest dead.
func (f *Coordinator) probeStatics(probe []*backend, mu *sync.Mutex, byID map[string]*backend) {
	var wg sync.WaitGroup
	for _, b := range probe {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.get(); err == nil {
				f.noteStaticUp(b)
				mu.Lock()
				byID[b.id] = b
				mu.Unlock()
			} else {
				if f.logf != nil {
					f.logf("railfleet: backend %s unreachable: %v", b.address(), err)
				}
				f.noteStaticDown(b, "unreachable")
			}
		}()
	}
	wg.Wait()
}

// waveTargets assembles one wave's assignable backends: connected
// statics join immediately, disconnected non-dead statics get one
// concurrent probe, and known-dead statics are skipped — the reprobe
// loop owns their revival, so a request never pays a dial timeout for
// a backend that already failed one (the old per-request re-probe).
// Dynamic members come from the registry's heartbeat state with their
// advertised capacity as rendezvous weight — no dialing at all; their
// connections open lazily when a batch lands. If nothing is assignable
// the dead statics get a rescue probe, so a fully-restarted static
// fleet still serves rather than failing the request.
func (f *Coordinator) waveTargets(excluded map[string]bool) ([]Target, map[string]*backend) {
	var mu sync.Mutex
	byID := make(map[string]*backend, len(f.static))
	weights := make(map[string]int, len(f.static))
	var probe []*backend
	for _, b := range f.static {
		if excluded[b.id] {
			continue
		}
		weights[b.id] = 1
		connected, dead := b.connected()
		switch {
		case connected:
			byID[b.id] = b
		case dead:
			// skip: the reprobe loop owns revival
		default:
			probe = append(probe, b)
		}
	}
	f.probeStatics(probe, &mu, byID)
	if f.registry != nil {
		for _, m := range f.registry.Assignable() {
			if excluded[m.ID] {
				continue
			}
			byID[m.ID] = f.dynamicBackend(m.ID, m.Addr)
			weights[m.ID] = m.Capacity
		}
	}
	if len(byID) == 0 {
		var rescue []*backend
		for _, b := range f.static {
			if !excluded[b.id] && b.isDead() {
				rescue = append(rescue, b)
			}
		}
		f.probeStatics(rescue, &mu, byID)
	}
	targets := make([]Target, 0, len(byID))
	for id := range byID { //lint:allow maporder sorted below
		targets = append(targets, Target{ID: id, Weight: weights[id]})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	return targets, byID
}

// DefaultReprobeInterval is the cadence at which the coordinator
// re-probes dead static backends in the background when Config leaves
// it zero: fast enough that a restarted daemon rejoins within a couple
// of seconds, slow enough that a down host costs one dial attempt per
// tick instead of one per request.
const DefaultReprobeInterval = 2 * time.Second

// reprobeLoop revives dead static backends in the background — the
// request path skips them entirely, so this loop is the only thing
// (besides the empty-fleet rescue probe) that brings a restarted
// static daemon back into the rotation.
func (f *Coordinator) reprobeLoop(interval time.Duration) {
	defer f.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.baseCtx.Done():
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, b := range f.static {
			if !b.isDead() {
				continue
			}
			b := b
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := b.get(); err == nil {
					f.noteStaticUp(b)
				}
			}()
		}
		wg.Wait()
	}
}
