package railfleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// scrapeCounters renders the coordinator's metrics registry and keeps
// only the monotonic series (counters and histogram buckets/sums) —
// the set that must never decrease, scrape over scrape.
func scrapeCounters(t *testing.T, f *Coordinator) map[string]float64 {
	t.Helper()
	var b strings.Builder
	f.tel.Metrics.Render(&b)
	all, err := telemetry.ParseSamples(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(all))
	for name, v := range all {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if strings.HasSuffix(base, "_total") || strings.HasSuffix(base, "_bucket") ||
			strings.HasSuffix(base, "_sum") || strings.HasSuffix(base, "_count") {
			out[name] = v
		}
	}
	return out
}

// aggCounters extracts the fleet-aggregated cache counters of a stats
// payload — the values that must stay monotonic when a backend dies.
func aggCounters(st opusnet.CacheStatsPayload) map[string]uint64 {
	return map[string]uint64{
		"hits":       st.Hits,
		"misses":     st.Misses,
		"evictions":  st.Evictions,
		"cells_exec": st.CellsExecuted,
		"cells_dedu": st.CellsDeduped,
		"build_hit":  st.BuildHits, "build_miss": st.BuildMisses,
		"prov_hit": st.ProvisionHits, "prov_miss": st.ProvisionMisses,
		"time_hit": st.TimeHits, "time_miss": st.TimeMisses,
		"seed_hit": st.SeedHits, "seed_miss": st.SeedMisses,
	}
}

// TestFleetStatsMonotonicAcrossBackendKill is the regression test for
// the vanishing-contribution bug: killing a backend between two stats
// queries must not make any fleet aggregate go backwards. The dead
// backend keeps contributing its last-known-good counters and is
// reported unhealthy.
func TestFleetStatsMonotonicAcrossBackendKill(t *testing.T) {
	fl := startFleet(t, 2, 8)
	c := fl.dialCoord(t)

	spec := scenario.SpecOf(scenario.Fig8Grid5D())
	if _, err := c.RunGrid(spec, nil); err != nil {
		t.Fatal(err)
	}

	// First observation: queries every backend and retains its payload.
	st1, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.CellsExecuted != 48 {
		t.Fatalf("fleet executed %d cells, want 48", st1.CellsExecuted)
	}
	for _, b := range st1.Backends {
		if !b.Healthy {
			t.Fatalf("backend %s unhealthy before the kill", b.Addr)
		}
	}
	scrape1 := scrapeCounters(t, fl.coord)

	// Kill one backend's endpoint: its live connections drop and new
	// dials fail, so the next stats query cannot reach it.
	fl.net.Endpoint("b1").Kill()

	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for name, v1 := range aggCounters(st1) {
		if v2 := aggCounters(st2)[name]; v2 < v1 {
			t.Errorf("aggregate %s went backwards after kill: %d -> %d", name, v1, v2)
		}
	}
	var sawDead bool
	for _, b := range st2.Backends {
		if b.Addr == "b1" {
			sawDead = true
			if b.Healthy {
				t.Error("killed backend still reported healthy")
			}
		}
	}
	if !sawDead {
		t.Fatal("killed backend missing from the per-backend view")
	}

	// The same invariant through the /metrics surface: every monotonic
	// series present in the first scrape is >= in the second.
	scrape2 := scrapeCounters(t, fl.coord)
	for name, v1 := range scrape1 {
		v2, ok := scrape2[name]
		if !ok {
			t.Errorf("series %s vanished from the scrape after kill", name)
			continue
		}
		if v2 < v1 {
			t.Errorf("series %s went backwards after kill: %g -> %g", name, v1, v2)
		}
	}
}

// TestFleetStatsAfterClose is the regression test for the cancelled
// base-context bug: Stats on a closed coordinator must return promptly
// with the local counters and retained backend contributions — every
// backend unhealthy — instead of racing statsTimeout against a dead
// context.
func TestFleetStatsAfterClose(t *testing.T) {
	fl := startFleet(t, 2, 8)
	c := fl.dialCoord(t)

	spec := scenario.SpecOf(scenario.Grid{Name: "pre-close", LatenciesMS: []float64{5}, Iterations: 1})
	if _, err := c.RunGrid(spec, nil); err != nil {
		t.Fatal(err)
	}
	st1, err := c.Stats() // retains per-backend payloads
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.coord.Close(); err != nil {
		t.Fatal(err)
	}

	type result struct{ st opusnet.CacheStatsPayload }
	done := make(chan result, 1)
	go func() { done <- result{fl.coord.Stats()} }()
	var st2 opusnet.CacheStatsPayload
	select {
	case r := <-done:
		st2 = r.st
	case <-time.After(2 * time.Second):
		t.Fatal("Stats did not return promptly after Close")
	}

	if len(st2.Backends) != 2 {
		t.Fatalf("post-Close backends = %d, want 2", len(st2.Backends))
	}
	for _, b := range st2.Backends {
		if b.Healthy {
			t.Errorf("backend %s reported healthy after Close", b.Addr)
		}
	}
	if st2.GridsExecuted != st1.GridsExecuted {
		t.Errorf("post-Close grids executed = %d, want %d", st2.GridsExecuted, st1.GridsExecuted)
	}
	for name, v1 := range aggCounters(st1) {
		if v2 := aggCounters(st2)[name]; v2 < v1 {
			t.Errorf("aggregate %s went backwards after Close: %d -> %d", name, v1, v2)
		}
	}
}

// TestFleetObservabilityEndToEnd is the PR's acceptance e2e: a
// 3-backend fleet serves the 48-cell fig8-5d grid while /metrics is
// scraped concurrently over HTTP and one backend is killed mid-grid.
// Afterwards: the request-latency histogram has samples, the scraped
// cache/stage counters equal the framed stats_resp exactly, the
// sharded-event distribution covers all 48 cells, the failover counter
// incremented, and consecutive scrapes stay monotonic with the backend
// dead.
func TestFleetObservabilityEndToEnd(t *testing.T) {
	wantRows, _ := fig8Ref(t)
	fl := startFleet(t, 3, 4)
	hs := httptest.NewServer(fl.coord.Telemetry().Handler())
	t.Cleanup(hs.Close)
	c := fl.dialCoord(t)

	// Concurrent scrapers hammer /metrics for the whole grid run; each
	// scrape triggers the stats fan-out, so this also races stats
	// queries against execution and the kill.
	stopScrape := make(chan struct{})
	var swg sync.WaitGroup
	for i := 0; i < 3; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := http.Get(hs.URL + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
		}()
	}

	// Kill a backend that holds cells, mid-grid (after 2 served frames:
	// past its first progress frame, before its first batch result).
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	assignment := Assign(cells, all, []int{0, 1, 2})
	victim := -1
	for bi, idxs := range assignment {
		if len(idxs) > 0 {
			victim = bi
			break
		}
	}
	if victim < 0 {
		t.Fatal("no backend received cells")
	}
	fl.net.Endpoint(fmt.Sprintf("b%d", victim)).KillAfterFrames(2)

	run, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("rows diverged from the local engine's under scrape load")
	}
	close(stopScrape)
	swg.Wait()

	// Shard distribution: wave-0 sharded events cover all 48 cells.
	events := fl.coord.Telemetry().Events.Snapshot()
	wave0 := 0
	failoverEvents := 0
	for _, ev := range events {
		if ev.Type == "sharded" && ev.Wave == 0 {
			wave0 += ev.Cells
		}
		if ev.Type == "failover" {
			failoverEvents++
		}
	}
	if wave0 != 48 {
		t.Errorf("wave-0 sharded events cover %d cells, want 48", wave0)
	}
	if failoverEvents == 0 {
		t.Error("no failover event despite the mid-grid kill")
	}

	// Scrape vs stats_resp: the same quiescent process must report the
	// same numbers through both surfaces.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := telemetry.ParseSamples(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantEqual := map[string]uint64{
		"railfleet_cache_hits_total":                    st.Hits,
		"railfleet_cache_misses_total":                  st.Misses,
		"railfleet_cells_executed_total":                st.CellsExecuted,
		"railfleet_grids_executed_total":                st.GridsExecuted,
		"railfleet_stage_hits_total{stage=\"build\"}":   st.BuildHits,
		"railfleet_stage_misses_total{stage=\"build\"}": st.BuildMisses,
		"railfleet_stage_hits_total{stage=\"time\"}":    st.TimeHits,
		"railfleet_stage_misses_total{stage=\"time\"}":  st.TimeMisses,
	}
	for series, want := range wantEqual {
		if got, ok := scrape[series]; !ok || got != float64(want) {
			t.Errorf("scrape %s = %v (present %v), stats_resp says %d", series, got, ok, want)
		}
	}

	// The request-latency histogram sampled the grid request.
	if n := scrape[`railfleet_request_duration_seconds_count{experiment="grid"}`]; n != 1 {
		t.Errorf("grid latency histogram count = %v, want 1", n)
	}
	if scrape["railfleet_failovers_total"] == 0 {
		t.Error("failover counter did not increment on the mid-grid kill")
	}

	// Monotonicity holds scrape-over-scrape with the backend dead.
	s1 := scrapeCounters(t, fl.coord)
	s2 := scrapeCounters(t, fl.coord)
	for name, v1 := range s1 {
		if v2, ok := s2[name]; !ok || v2 < v1 {
			t.Errorf("series %s regressed across scrapes with a dead backend: %g -> %g (present %v)", name, v1, v2, ok)
		}
	}
}
