// Package railfleet scales raild past one machine: a coordinator that
// speaks the same opusnet protocol raild does — existing railclient
// invocations work unchanged, pointed at it — but executes each grid
// across a fleet of backend raild daemons.
//
// For every grid_req (or grid-experiment exp_req) the coordinator
// expands the grid locally, shards the cells across the live backends
// by canonical workload key (see WorkloadKey/Assign: all fabric
// variants of one workload colocate, so each electrical baseline
// simulates exactly once fleet-wide), fans the shards out as
// cells_req batches bounded by a per-backend in-flight cap, merges the
// partial rows back into canonical expansion order, and streams
// aggregated grid_progress — the fleet's output is byte-identical to a
// single daemon's.
//
// Failover is part of the contract: a backend that dies, times out, or
// errors mid-grid has its unfinished cells re-sharded across the
// survivors (wave by wave, until done or no backend is left), and a
// failed backend is re-probed on the next request, so a restarted
// daemon rejoins on its own. Request-level singleflight and
// cancellation keep raild's semantics across the fan-out: identical
// in-flight requests coalesce onto one fleet execution, a cancel frame
// (or dropped connection, or TimeoutMS) stops only that request's
// wait, and when the last experiment-path waiter departs the fleet
// execution's context is cancelled — which cancels the outstanding
// cells_req waits, sending cancel frames to the backends.
//
// Non-grid experiments (fig4, table1, bom, …) are proxied to one
// backend chosen by rendezvous hash of the experiment name, failing
// over to the next live backend on connection errors.
package railfleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"photonrail"
	"photonrail/internal/exp"
	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// Config parameterizes New.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Listener, when non-nil, serves instead of a TCP listener on Addr
	// (the in-process harnesses plug pipe-backed listeners in here).
	Listener net.Listener
	// Backends are the raild daemon addresses cells shard across; at
	// least one is required.
	Backends []string
	// InFlight caps the cells one backend holds in flight per request
	// (cells per cells_req batch); 0 means DefaultInFlight.
	InFlight int
	// BatchTimeout bounds one cells_req batch on one backend: a
	// backend that is alive but wedged (socket open, no results) has
	// its batch abandoned after this long and the cells re-sharded to
	// the survivors — the "times out" leg of the failover contract.
	// 0 means DefaultBatchTimeout; negative disables the bound.
	BatchTimeout time.Duration
	// Dial, when non-nil, replaces the TCP dialer for backend
	// connections (the fault-injection harness routes named endpoints
	// through here).
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives one line per served request and
	// failover event.
	Logf func(format string, args ...any)
}

// DefaultInFlight is the per-backend in-flight cell cap when Config
// leaves it zero: small enough that a mid-grid backend death loses at
// most one batch per backend, large enough to amortize framing.
const DefaultInFlight = 16

// DefaultBatchTimeout is the per-batch wedge bound when Config leaves
// it zero — generous next to a batch's worst-case simulation time, so
// it only fires on genuinely stuck backends.
const DefaultBatchTimeout = 5 * time.Minute

// eventRingCapacity bounds the coordinator's request-lifecycle event
// ring (see the railserve twin): a fig8-5d fan-out emits a few hundred
// sharded/cell_complete events, so 4096 retains several full grids.
const eventRingCapacity = 4096

// Coordinator is the fleet front end.
type Coordinator struct {
	ln           net.Listener
	backends     []*backend
	inFlight     int
	batchTimeout time.Duration
	logf         func(format string, args ...any)

	// tel is the coordinator's observability surface: sampled
	// stats_resp metrics (via Stats, so a scrape and a stats frame
	// agree), live request gauges/histograms, the failover counter, and
	// the lifecycle event ring.
	tel        *telemetry.Set
	reqSeq     atomic.Uint64
	inflightG  *telemetry.Gauge
	durations  *telemetry.HistogramVec
	failoversC *telemetry.Counter

	// baseCtx parents every fleet execution and request wait; Close
	// cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*fleetRun // resolved-grid key -> in-flight fleet execution
	conns  map[net.Conn]bool
	closed bool
	// Request-level counters, mirroring raild's: grid_req vs exp_req
	// arrivals that started (or joined) a fleet execution.
	gridsExecuted, gridsDeduped uint64
	expsExecuted, expsDeduped   uint64

	wg     sync.WaitGroup // accept loop + connection handlers
	execWG sync.WaitGroup // fleet executions + result deliveries

	// execGate, when non-nil, is received from before each fleet
	// execution starts — the same test-only hook raild has, so the
	// singleflight and cancellation tests hold a request in flight
	// deterministically. Guarded by mu.
	execGate <-chan struct{}
}

// setExecGate installs the test-only execution gate.
func (f *Coordinator) setExecGate(gate <-chan struct{}) {
	f.mu.Lock()
	f.execGate = gate
	f.mu.Unlock()
}

// New starts a coordinator for the given backends. Backends are dialed
// lazily, on the first request that needs them, so the fleet may come
// up in any order.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("railfleet: no backends configured")
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, err
		}
	}
	inFlight := cfg.InFlight
	if inFlight <= 0 {
		inFlight = DefaultInFlight
	}
	batchTimeout := cfg.BatchTimeout
	if batchTimeout == 0 {
		batchTimeout = DefaultBatchTimeout
	}
	//lint:allow ctxbg the coordinator's lifetime root: request contexts derive from it and Close cancels it
	baseCtx, baseCancel := context.WithCancel(context.Background())
	f := &Coordinator{
		ln:           ln,
		inFlight:     inFlight,
		batchTimeout: batchTimeout,
		logf:         cfg.Logf,
		baseCtx:      baseCtx,
		baseCancel:   baseCancel,
		runs:         make(map[string]*fleetRun),
		conns:        make(map[net.Conn]bool),
	}
	for i, addr := range cfg.Backends {
		f.backends = append(f.backends, &backend{index: i, addr: addr, dial: dial})
	}
	f.tel = telemetry.NewSet(eventRingCapacity, func() int64 { return time.Now().UnixNano() })
	f.inflightG = f.tel.Metrics.Gauge("railfleet_requests_inflight",
		"Requests admitted (validated and joined or started a fleet execution) and awaiting their final reply.")
	f.durations = f.tel.Metrics.HistogramVec("railfleet_request_duration_seconds",
		"Admitted-request wall time from arrival to final reply, by experiment (grid_req labels as \"grid\").",
		telemetry.DefLatencyBuckets, "experiment")
	f.failoversC = f.tel.Metrics.Counter("railfleet_failovers_total",
		"Backend failures mid-request whose work was re-sharded to (or retried on) the surviving backends.")
	opusnet.RegisterStatsMetrics(f.tel.Metrics, "railfleet", f.Stats)
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Telemetry exposes the coordinator's metrics registry and event log;
// cmd/railfleet serves Telemetry().Handler() on -metrics-addr, and the
// fleet tests wait deterministically on Telemetry().Events.
func (f *Coordinator) Telemetry() *telemetry.Set { return f.tel }

// reqObs carries one admitted request's observability lifecycle —
// railserve's twin, over the coordinator's instruments.
type reqObs struct {
	tel       *telemetry.Set
	inflightG *telemetry.Gauge
	durations *telemetry.HistogramVec
	id        string
	exp       string
	key       string
	cells     int
	start     time.Time
}

func (f *Coordinator) beginReq(expName, key string, cells int) *reqObs {
	f.inflightG.Inc()
	return &reqObs{
		tel: f.tel, inflightG: f.inflightG, durations: f.durations,
		id:  fmt.Sprintf("r%d", f.reqSeq.Add(1)),
		exp: expName, key: key, cells: cells, start: time.Now(),
	}
}

// admitted emits submitted/deduped; call with no coordinator lock held,
// after the join decision is visible in the counters.
func (ro *reqObs) admitted(shared bool) {
	typ := "submitted"
	if shared {
		typ = "deduped"
	}
	ro.tel.Events.Emit(telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells})
}

// finish lands the request's one histogram sample and terminal event;
// see the railserve twin for the contract.
func (ro *reqObs) finish(err error, cancelled bool) {
	d := time.Since(ro.start)
	ro.durations.With(ro.exp).Observe(d.Seconds())
	ro.inflightG.Dec()
	typ := "result"
	if cancelled {
		typ = "cancel"
	}
	ev := telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells, DurationNS: d.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	ro.tel.Events.Emit(ev)
}

// Addr returns the listen address for clients to dial.
func (f *Coordinator) Addr() string { return f.ln.Addr().String() }

// Close stops accepting, tears down live connections, cancels in-flight
// fleet executions, closes the backend connections, and waits for the
// connection handlers. Like raild, executions are abandoned rather than
// waited for (Drain exists for tests).
func (f *Coordinator) Close() error {
	f.mu.Lock()
	f.closed = true
	for conn := range f.conns {
		_ = conn.Close()
	}
	f.mu.Unlock()
	f.baseCancel()
	err := f.ln.Close()
	f.wg.Wait()
	for _, b := range f.backends {
		b.close()
	}
	return err
}

// Drain waits for in-flight fleet executions and result deliveries.
func (f *Coordinator) Drain() { f.execWG.Wait() }

// statsTimeout bounds one backend's stats query inside an aggregated
// Stats call, so a wedged backend degrades the aggregate instead of
// hanging it.
const statsTimeout = 5 * time.Second

// Stats reports the coordinator's serving telemetry: its request-level
// counters, the per-backend health view, and the cache counters
// aggregated across the fleet. Live backends are queried concurrently
// under a bounded context and their answers retained; a backend that
// does not answer is reported unhealthy and contributes its
// last-known-good counters instead of silently vanishing, so fleet
// aggregates never go backwards when a backend dies. (A backend that
// restarts legitimately resets its own counters; monotonicity is
// guaranteed across unreachability, not across backend restarts.)
//
// After Close, Stats returns promptly without querying anything —
// local counters plus the retained per-backend contributions, every
// backend reported unhealthy — rather than racing the cancelled base
// context.
func (f *Coordinator) Stats() opusnet.CacheStatsPayload {
	f.mu.Lock()
	closed := f.closed
	out := opusnet.CacheStatsPayload{
		GridsExecuted: f.gridsExecuted,
		GridsDeduped:  f.gridsDeduped,
		ExpsExecuted:  f.expsExecuted,
		ExpsDeduped:   f.expsDeduped,
	}
	f.mu.Unlock()
	snaps := make([]opusnet.BackendStatsPayload, len(f.backends))
	if closed {
		for i, b := range f.backends {
			snap, _ := b.snapshot()
			snap.Healthy = false
			snaps[i] = snap
		}
	} else {
		ctx, cancel := context.WithTimeout(f.baseCtx, statsTimeout)
		defer cancel()
		var wg sync.WaitGroup
		for i, b := range f.backends {
			i, b := i, b
			wg.Add(1)
			go func() {
				defer wg.Done()
				snap, c := b.snapshot()
				if c != nil {
					if bst, err := c.StatsCtx(ctx); err == nil {
						b.retainStats(bst)
					} else {
						b.setUnhealthy()
						snap.Healthy = false
					}
				}
				snaps[i] = snap
			}()
		}
		wg.Wait()
	}
	// Aggregate over the retained snapshots of ALL backends — reachable
	// or not — so no contribution is ever dropped from the sums.
	for i, b := range f.backends {
		bst := b.retainedStats()
		if !snaps[i].Healthy {
			// Counters are retained across unreachability; the in-flight
			// gauge is not — a dead backend runs nothing.
			bst.InFlight = 0
		}
		out.Hits += bst.Hits
		out.Misses += bst.Misses
		out.Evictions += bst.Evictions
		out.InFlight += bst.InFlight
		out.CellsExecuted += bst.CellsExecuted
		out.CellsDeduped += bst.CellsDeduped
		out.BuildHits += bst.BuildHits
		out.BuildMisses += bst.BuildMisses
		out.ProvisionHits += bst.ProvisionHits
		out.ProvisionMisses += bst.ProvisionMisses
		out.TimeHits += bst.TimeHits
		out.TimeMisses += bst.TimeMisses
		out.SeedHits += bst.SeedHits
		out.SeedMisses += bst.SeedMisses
	}
	out.Backends = snaps
	return out
}

func (f *Coordinator) acceptLoop() {
	defer f.wg.Done()
	opusnet.AcceptLoop(f.ln,
		func() bool {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.closed
		},
		func(err error) {
			if f.logf != nil {
				f.logf("railfleet: accept: %v", err)
			}
		},
		func(conn net.Conn) bool {
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				return false
			}
			f.conns[conn] = true
			f.mu.Unlock()
			f.wg.Add(1)
			go f.handle(conn)
			return true
		})
}

// handle serves one client connection on opusnet's shared serving
// skeleton — the same writer-goroutine, drop-advisory-frames,
// close-on-wedge, cancellation-registry discipline raild uses (see
// opusnet.ServeConn).
func (f *Coordinator) handle(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conns, conn)
		f.mu.Unlock()
		_ = conn.Close()
	}()
	opusnet.ServeConn(conn, f.dispatch)
}

func (f *Coordinator) dispatch(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	switch msg.Type {
	case opusnet.MsgGridReq:
		f.serveGrid(msg, reply)
	case opusnet.MsgExpReq:
		f.serveExp(msg, reply, cs)
	case opusnet.MsgCancel:
		cs.CancelSeq(msg.Seq)
	case opusnet.MsgStatsReq:
		seq := msg.Seq
		f.execWG.Add(1)
		go func() { // Stats queries backends; never block the read loop
			defer f.execWG.Done()
			st := f.Stats()
			reply(&opusnet.Message{Type: opusnet.MsgStatsResp, Seq: seq, Cache: &st}, true)
		}()
	default:
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
			Error: fmt.Sprintf("railfleet: unsupported message type %q", msg.Type)}, true)
	}
}

// fleetRun is one in-flight fleet grid execution with its subscribers;
// both request paths (grid_req and grid-experiment exp_req) coalesce
// onto it, keyed by the resolved grid. waiters is guarded by the
// Coordinator mutex; grid_req waiters never depart (the legacy path
// runs to completion), experiment waiters depart on cancel/deadline —
// the last departure cancels the fan-out, which cancels the
// outstanding cells_req waits on the backends.
type fleetRun struct {
	done     chan struct{}
	gridName string
	rows     []scenario.Row
	err      error
	cancel   context.CancelFunc
	waiters  int // guarded by Coordinator.mu

	mu   sync.Mutex
	subs []func(done, total int)
}

func (r *fleetRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *fleetRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// joinRun coalesces onto (or starts) the fleet execution for the
// resolved grid; started reports whether this request started it.
func (f *Coordinator) joinRun(key string, spec scenario.Spec, grid scenario.Grid) (run *fleetRun, started bool) {
	f.mu.Lock()
	gate := f.execGate
	run, shared := f.runs[key]
	if shared {
		run.waiters++
		f.mu.Unlock()
		return run, false
	}
	runCtx, runCancel := context.WithCancel(f.baseCtx)
	run = &fleetRun{done: make(chan struct{}), gridName: grid.Name, cancel: runCancel, waiters: 1}
	f.runs[key] = run
	f.mu.Unlock()
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		if gate != nil {
			<-gate // test-only hold, see execGate
		}
		run.rows, run.err = f.executeGrid(runCtx, spec, grid, run.broadcast)
		f.mu.Lock()
		if f.runs[key] == run {
			delete(f.runs, key)
		}
		f.mu.Unlock()
		runCancel()
		close(run.done)
	}()
	return run, true
}

// depart drops one waiter; the last one leaving cancels the fan-out
// and removes the run so a later identical request starts fresh.
func (f *Coordinator) depart(key string, run *fleetRun) {
	f.mu.Lock()
	run.waiters--
	last := run.waiters == 0
	if last && f.runs[key] == run {
		delete(f.runs, key)
	}
	f.mu.Unlock()
	if last {
		run.cancel()
	}
}

// serveGrid is the legacy grid path across the fleet: validate exactly
// as one daemon would, coalesce or start the fleet execution, stream
// aggregated progress, and deliver the merged rows. As on raild, the
// wait is not cancellable and the execution runs to completion.
func (f *Coordinator) serveGrid(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	if msg.Spec == nil {
		fail(fmt.Errorf("railfleet: grid request without a spec"))
		return
	}
	grid, err := railserve.ValidateGridSpec(*msg.Spec)
	if err != nil {
		fail(err)
		return
	}
	key := exp.Key("fleet", grid)
	ro := f.beginReq("grid", key, grid.CellCount())
	run, started := f.joinRun(key, *msg.Spec, grid)
	f.mu.Lock()
	if started {
		f.gridsExecuted++
	} else {
		f.gridsDeduped++
	}
	f.mu.Unlock()
	ro.admitted(!started)
	if f.logf != nil {
		if started {
			f.logf("railfleet: grid %q: fanning out (%d cells)", grid.Name, grid.CellCount())
		} else {
			f.logf("railfleet: grid %q: joined in-flight fleet execution", grid.Name)
		}
	}
	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgGridProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		<-run.done
		ro.finish(run.err, false)
		if run.err != nil {
			fail(run.err)
			return
		}
		reply(&opusnet.Message{Type: opusnet.MsgGridResult, Seq: seq, Grid: &opusnet.GridResultPayload{
			Name:   run.gridName,
			Rows:   run.rows,
			Shared: !started,
		}}, true)
	}()
}

// serveExp serves exp_req at the coordinator: grid experiments fan out
// across the fleet (coalescing with grid_req onto the same fleet
// execution, rendered at the coordinator byte-identically to a raild
// rendering); everything else is proxied to a backend.
func (f *Coordinator) serveExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	req := msg.Exp
	if req == nil {
		fail(fmt.Errorf("railfleet: experiment request without a payload"))
		return
	}
	if _, ok := photonrail.Lookup(req.Name); !ok {
		fail(fmt.Errorf("railfleet: unknown experiment (see photonrail.Experiments; grids run via name %q)", "grid"))
		return
	}
	if !photonrail.IsGridExperiment(req.Name) {
		// A grid on a non-grid experiment is rejected by the backend,
		// exactly as a direct raild request would be.
		f.proxyExp(msg, reply, cs)
		return
	}
	// Resolve the effective grid exactly as the registry would: an
	// explicit spec wins; a built-in grid experiment falls back to its
	// registered grid; bare "grid" falls back to the paper-default
	// custom grid.
	var spec scenario.Spec
	switch {
	case req.Grid != nil:
		spec = *req.Grid
	case req.Name != "grid":
		spec = scenario.SpecOf(scenario.Grids()[req.Name]())
	}
	if req.Name == "grid" && spec.Name == "" {
		spec.Name = "custom"
	}
	grid, err := railserve.ValidateGridSpec(spec)
	if err != nil {
		fail(err)
		return
	}

	wctx, wcancel := f.waitCtx(req.TimeoutMS)
	if !cs.Register(seq, wcancel) {
		wcancel()
		return
	}
	key := exp.Key("fleet", grid)
	ro := f.beginReq(req.Name, key, grid.CellCount())
	run, started := f.joinRun(key, spec, grid)
	f.mu.Lock()
	if started {
		f.expsExecuted++
	} else {
		f.expsDeduped++
	}
	f.mu.Unlock()
	ro.admitted(!started)
	if f.logf != nil {
		if started {
			f.logf("railfleet: experiment %q: fanning out grid %q", req.Name, grid.Name)
		} else {
			f.logf("railfleet: experiment %q: joined in-flight fleet execution", req.Name)
		}
	}
	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgExpProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		defer cs.Unregister(seq)
		defer wcancel()
		select {
		case <-run.done:
			if run.err != nil {
				ro.finish(run.err, false)
				fail(run.err)
				return
			}
			payload, err := renderGridPayload(req.Name, run.gridName, run.rows)
			if err != nil {
				ro.finish(err, false)
				fail(err)
				return
			}
			payload.Shared = !started
			ro.finish(nil, false)
			reply(&opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: payload}, true)
		case <-wctx.Done():
			f.depart(key, run)
			ro.finish(wctx.Err(), true)
			fail(fmt.Errorf("railfleet: experiment %q: %w", req.Name, wctx.Err()))
		}
	}()
}

// waitCtx bounds one request's wait under the base context.
func (f *Coordinator) waitCtx(timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(f.baseCtx, time.Duration(timeoutMS)*time.Millisecond)
	}
	return context.WithCancel(f.baseCtx)
}

// renderGridPayload renders merged fleet rows exactly as a raild
// daemon renders a completed grid experiment, so fleet output is
// byte-identical to a single daemon's (and to the local CLIs').
func renderGridPayload(expName, gridName string, rows []scenario.Row) (*opusnet.ExpResultPayload, error) {
	res := photonrail.GridExperimentResult(gridName, rows)
	var text, csv, rowsJSON bytes.Buffer
	if err := res.RenderText(&text); err != nil {
		return nil, err
	}
	if err := res.RenderCSV(&csv); err != nil {
		return nil, err
	}
	if err := res.RenderJSON(&rowsJSON); err != nil {
		return nil, err
	}
	return &opusnet.ExpResultPayload{
		Name:        expName,
		Grid:        gridName,
		Rendered:    text.String(),
		RenderedCSV: csv.String(),
		RowsJSON:    rowsJSON.String(),
	}, nil
}

// proxyExp forwards a non-grid experiment to one backend — chosen by
// rendezvous hash of the experiment name so repeat requests land on
// the same warm cache — failing over to the next live backend on
// connection errors. Application-level refusals are returned as-is: a
// retry elsewhere would only repeat them.
func (f *Coordinator) proxyExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	req := *msg.Exp
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	wctx, wcancel := f.waitCtx(req.TimeoutMS)
	if !cs.Register(seq, wcancel) {
		wcancel()
		return
	}
	ro := f.beginReq(req.Name, "", 0)
	f.mu.Lock()
	f.expsExecuted++
	f.mu.Unlock()
	ro.admitted(false)
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		defer cs.Unregister(seq)
		defer wcancel()
		order := f.proxyOrder(req.Name)
		var lastErr error
		for _, bi := range order {
			b := f.backends[bi]
			c, err := b.get()
			if err != nil {
				lastErr = err
				continue
			}
			run, err := c.RunExperiment(wctx, req, func(done, total int) {
				reply(&opusnet.Message{Type: opusnet.MsgExpProgress, Seq: seq,
					Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
			})
			if err != nil {
				if wctx.Err() != nil {
					ro.finish(wctx.Err(), true)
					fail(fmt.Errorf("railfleet: experiment %q: %w", req.Name, wctx.Err()))
					return
				}
				if errors.Is(err, railserve.ErrConnDown) {
					if f.logf != nil {
						f.logf("railfleet: backend %s died serving experiment %q: %v (failing over)", b.addr, req.Name, err)
					}
					b.fail(c)
					f.failoversC.Inc()
					f.tel.Events.Emit(telemetry.Event{Type: "failover", Req: ro.id, Exp: req.Name,
						Backend: b.addr, Err: err.Error()})
					lastErr = err
					continue
				}
				ro.finish(err, false)
				fail(err)
				return
			}
			ro.finish(nil, false)
			reply(&opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: &opusnet.ExpResultPayload{
				Name: run.Name, Grid: run.Grid,
				Rendered: run.Rendered, RenderedCSV: run.RenderedCSV, RowsJSON: run.RowsJSON,
				Shared: run.Shared,
			}}, true)
			return
		}
		err := fmt.Errorf("railfleet: no live backend served experiment %q (last error: %v)", req.Name, lastErr)
		ro.finish(err, false)
		fail(err)
	}()
}

// proxyOrder ranks the fleet positions by rendezvous score for an
// experiment name.
func (f *Coordinator) proxyOrder(name string) []int {
	order := make([]int, len(f.backends))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return shardScore(name, order[i]) > shardScore(name, order[j])
	})
	return order
}
