// Package railfleet scales raild past one machine: a coordinator that
// speaks the same opusnet protocol raild does — existing railclient
// invocations work unchanged, pointed at it — but executes each grid
// across a fleet of backend raild daemons.
//
// For every grid_req (or grid-experiment exp_req) the coordinator
// expands the grid locally, shards the cells across the live backends
// by canonical workload key (see WorkloadKey/Assign: all fabric
// variants of one workload colocate, so each electrical baseline
// simulates exactly once fleet-wide), fans the shards out as
// cells_req batches bounded by a per-backend in-flight cap, merges the
// partial rows back into canonical expansion order, and streams
// aggregated grid_progress — the fleet's output is byte-identical to a
// single daemon's.
//
// Membership is elastic: besides the static -backends list (sharded by
// fleet position, byte-identically to earlier releases), backends may
// register themselves over the same protocol (fleet_register), keep
// alive with heartbeats that piggyback their serving stats, and depart
// gracefully with a drain frame — the internal/railctl control plane.
// Dynamic liveness is heartbeat-edge driven (no per-request dial
// probes); capacity advertised at registration weights the rendezvous
// shard, so a bigger worker pool draws proportionally more cells; and
// a draining backend finishes its in-flight batch while its unstarted
// cells hand off to the next wave without tripping failover.
//
// Failover is part of the contract: a backend that dies, times out, or
// errors mid-grid has its unfinished cells re-sharded across the
// survivors (wave by wave, until done or no backend is left), and a
// failed static backend is re-probed in the background, so a restarted
// daemon rejoins on its own. Request-level singleflight and
// cancellation keep raild's semantics across the fan-out: identical
// in-flight requests coalesce onto one fleet execution, a cancel frame
// (or dropped connection, or TimeoutMS) stops only that request's
// wait, and when the last experiment-path waiter departs the fleet
// execution's context is cancelled — which cancels the outstanding
// cells_req waits, sending cancel frames to the backends.
//
// Non-grid experiments (fig4, table1, bom, …) are proxied to one
// backend chosen by rendezvous hash of the experiment name, failing
// over to the next live backend on connection errors.
package railfleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"photonrail"
	"photonrail/internal/exp"
	"photonrail/internal/opusnet"
	"photonrail/internal/railctl"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// Config parameterizes New.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Listener, when non-nil, serves instead of a TCP listener on Addr
	// (the in-process harnesses plug pipe-backed listeners in here).
	Listener net.Listener
	// Backends are the static raild daemon addresses cells shard
	// across. May be empty when AllowRegistration is set; at least one
	// of the two fleet sources is required.
	Backends []string
	// AllowRegistration accepts fleet_register/heartbeat/drain frames:
	// raild daemons join the fleet themselves (see internal/railctl)
	// instead of — or alongside — the static Backends list.
	AllowRegistration bool
	// HeartbeatTTL marks a registered backend dead when its newest
	// heartbeat is older than this; 0 means railctl.DefaultHeartbeatTTL.
	HeartbeatTTL time.Duration
	// ReprobeInterval is the background cadence at which dead static
	// backends are re-dialed (the request path skips them); 0 means
	// DefaultReprobeInterval, negative disables the loop.
	ReprobeInterval time.Duration
	// Now replaces the membership clock for tests; nil means time.Now.
	Now func() time.Time
	// InFlight caps the cells one backend holds in flight per request
	// (cells per cells_req batch); 0 means DefaultInFlight.
	InFlight int
	// BatchTimeout bounds one cells_req batch on one backend: a
	// backend that is alive but wedged (socket open, no results) has
	// its batch abandoned after this long and the cells re-sharded to
	// the survivors — the "times out" leg of the failover contract.
	// 0 means DefaultBatchTimeout; negative disables the bound.
	BatchTimeout time.Duration
	// Dial, when non-nil, replaces the TCP dialer for backend
	// connections (the fault-injection harness routes named endpoints
	// through here).
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives one line per served request and
	// failover event.
	Logf func(format string, args ...any)
}

// DefaultInFlight is the per-backend in-flight cell cap when Config
// leaves it zero: small enough that a mid-grid backend death loses at
// most one batch per backend, large enough to amortize framing.
const DefaultInFlight = 16

// DefaultBatchTimeout is the per-batch wedge bound when Config leaves
// it zero — generous next to a batch's worst-case simulation time, so
// it only fires on genuinely stuck backends.
const DefaultBatchTimeout = 5 * time.Minute

// eventRingCapacity bounds the coordinator's request-lifecycle event
// ring (see the railserve twin): a fig8-5d fan-out emits a few hundred
// sharded/cell_complete events, so 4096 retains several full grids.
const eventRingCapacity = 4096

// Coordinator is the fleet front end.
type Coordinator struct {
	ln           net.Listener
	static       []*backend
	inFlight     int
	batchTimeout time.Duration
	logf         func(format string, args ...any)
	dial         func(addr string) (net.Conn, error)
	now          func() time.Time

	// registry is the dynamic-membership control plane (nil unless
	// Config.AllowRegistration): self-registered backends, heartbeat
	// liveness, graceful drain. Data-plane connections for its members
	// live in dynamic, keyed by member id, guarded by mu.
	registry *railctl.Registry

	// tel is the coordinator's observability surface: sampled
	// stats_resp metrics (via Stats, so a scrape and a stats frame
	// agree), live request gauges/histograms, the failover counter, and
	// the lifecycle event ring.
	tel        *telemetry.Set
	reqSeq     atomic.Uint64
	inflightG  *telemetry.Gauge
	durations  *telemetry.HistogramVec
	failoversC *telemetry.Counter
	membersG   *telemetry.GaugeVec

	// baseCtx parents every fleet execution and request wait; Close
	// cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	runs    map[string]*fleetRun // resolved-grid key -> in-flight fleet execution
	conns   map[net.Conn]bool
	dynamic map[string]*backend // registered member id -> data-plane record
	closed  bool
	// Request-level counters, mirroring raild's: grid_req vs exp_req
	// arrivals that started (or joined) a fleet execution.
	gridsExecuted, gridsDeduped uint64
	expsExecuted, expsDeduped   uint64

	wg     sync.WaitGroup // accept loop + connection handlers
	execWG sync.WaitGroup // fleet executions + result deliveries

	// execGate, when non-nil, is received from before each fleet
	// execution starts — the same test-only hook raild has, so the
	// singleflight and cancellation tests hold a request in flight
	// deterministically. Guarded by mu.
	execGate <-chan struct{}
}

// setExecGate installs the test-only execution gate.
func (f *Coordinator) setExecGate(gate <-chan struct{}) {
	f.mu.Lock()
	f.execGate = gate
	f.mu.Unlock()
}

// New starts a coordinator for the given backends. Backends are dialed
// lazily, on the first request that needs them, so the fleet may come
// up in any order; with AllowRegistration the fleet may even start
// empty and fill in as daemons register.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 && !cfg.AllowRegistration {
		return nil, fmt.Errorf("railfleet: no backends configured")
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, err
		}
	}
	inFlight := cfg.InFlight
	if inFlight <= 0 {
		inFlight = DefaultInFlight
	}
	batchTimeout := cfg.BatchTimeout
	if batchTimeout == 0 {
		batchTimeout = DefaultBatchTimeout
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	//lint:allow ctxbg the coordinator's lifetime root: request contexts derive from it and Close cancels it
	baseCtx, baseCancel := context.WithCancel(context.Background())
	f := &Coordinator{
		ln:           ln,
		inFlight:     inFlight,
		batchTimeout: batchTimeout,
		logf:         cfg.Logf,
		dial:         dial,
		now:          now,
		baseCtx:      baseCtx,
		baseCancel:   baseCancel,
		runs:         make(map[string]*fleetRun),
		conns:        make(map[net.Conn]bool),
		dynamic:      make(map[string]*backend),
	}
	for i, addr := range cfg.Backends {
		f.static = append(f.static, &backend{index: i, id: StaticID(i), static: true, addr: addr, dial: dial})
	}
	f.tel = telemetry.NewSet(eventRingCapacity, func() int64 { return time.Now().UnixNano() })
	f.inflightG = f.tel.Metrics.Gauge("railfleet_requests_inflight",
		"Requests admitted (validated and joined or started a fleet execution) and awaiting their final reply.")
	f.durations = f.tel.Metrics.HistogramVec("railfleet_request_duration_seconds",
		"Admitted-request wall time from arrival to final reply, by experiment (grid_req labels as \"grid\").",
		telemetry.DefLatencyBuckets, "experiment")
	f.failoversC = f.tel.Metrics.Counter("railfleet_failovers_total",
		"Backend failures mid-request whose work was re-sharded to (or retried on) the surviving backends.")
	f.membersG = f.tel.Metrics.GaugeVec("railfleet_members",
		"Fleet members by membership state; static -backends entries count as healthy until a probe or batch failure marks them dead.",
		"state")
	f.tel.Metrics.OnScrape(f.sampleMembership)
	if cfg.AllowRegistration {
		f.registry = railctl.NewRegistry(railctl.Config{
			TTL: cfg.HeartbeatTTL,
			Now: now,
			OnEvent: func(ev railctl.Event) {
				if f.logf != nil {
					f.logf("railfleet: member %s (%s): %s %s", ev.ID, ev.Addr, ev.Type, ev.Reason)
				}
				f.tel.Events.Emit(telemetry.Event{Type: ev.Type, Member: ev.ID,
					Backend: ev.Addr, Capacity: ev.Capacity, Reason: ev.Reason})
			},
		})
	}
	opusnet.RegisterStatsMetrics(f.tel.Metrics, "railfleet", f.Stats)
	reprobe := cfg.ReprobeInterval
	if reprobe == 0 {
		reprobe = DefaultReprobeInterval
	}
	if reprobe > 0 && len(f.static) > 0 {
		f.wg.Add(1)
		go f.reprobeLoop(reprobe)
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// sampleMembership copies the membership table into the per-state
// gauge family at scrape time, so the /metrics view always matches
// what the next wave would see.
func (f *Coordinator) sampleMembership() {
	counts := map[railctl.State]float64{
		railctl.StateHealthy: 0, railctl.StateDraining: 0,
		railctl.StateDrained: 0, railctl.StateDead: 0,
	}
	for _, b := range f.static {
		if b.isDead() {
			counts[railctl.StateDead]++
		} else {
			counts[railctl.StateHealthy]++
		}
	}
	if f.registry != nil {
		for _, m := range f.registry.Members() {
			counts[m.State]++
		}
	}
	for state, n := range counts { //lint:allow maporder gauge series are independent; set order is immaterial
		f.membersG.With(string(state)).Set(n)
	}
}

// Telemetry exposes the coordinator's metrics registry and event log;
// cmd/railfleet serves Telemetry().Handler() on -metrics-addr, and the
// fleet tests wait deterministically on Telemetry().Events.
func (f *Coordinator) Telemetry() *telemetry.Set { return f.tel }

// reqObs carries one admitted request's observability lifecycle —
// railserve's twin, over the coordinator's instruments.
type reqObs struct {
	tel       *telemetry.Set
	inflightG *telemetry.Gauge
	durations *telemetry.HistogramVec
	id        string
	exp       string
	key       string
	cells     int
	start     time.Time
}

func (f *Coordinator) beginReq(expName, key string, cells int) *reqObs {
	f.inflightG.Inc()
	return &reqObs{
		tel: f.tel, inflightG: f.inflightG, durations: f.durations,
		id:  fmt.Sprintf("r%d", f.reqSeq.Add(1)),
		exp: expName, key: key, cells: cells, start: time.Now(),
	}
}

// admitted emits submitted/deduped; call with no coordinator lock held,
// after the join decision is visible in the counters.
func (ro *reqObs) admitted(shared bool) {
	typ := "submitted"
	if shared {
		typ = "deduped"
	}
	ro.tel.Events.Emit(telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells})
}

// finish lands the request's one histogram sample and terminal event;
// see the railserve twin for the contract.
func (ro *reqObs) finish(err error, cancelled bool) {
	d := time.Since(ro.start)
	ro.durations.With(ro.exp).Observe(d.Seconds())
	ro.inflightG.Dec()
	typ := "result"
	if cancelled {
		typ = "cancel"
	}
	ev := telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells, DurationNS: d.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	ro.tel.Events.Emit(ev)
}

// Addr returns the listen address for clients to dial.
func (f *Coordinator) Addr() string { return f.ln.Addr().String() }

// Close stops accepting, tears down live connections, cancels in-flight
// fleet executions, closes the backend connections, and waits for the
// connection handlers. Like raild, executions are abandoned rather than
// waited for (Drain exists for tests).
func (f *Coordinator) Close() error {
	f.mu.Lock()
	f.closed = true
	for conn := range f.conns {
		_ = conn.Close()
	}
	f.mu.Unlock()
	f.baseCancel()
	err := f.ln.Close()
	f.wg.Wait()
	for _, b := range f.static {
		b.close()
	}
	f.mu.Lock()
	dyn := make([]*backend, 0, len(f.dynamic))
	for _, b := range f.dynamic { //lint:allow maporder collecting for close; order is immaterial
		dyn = append(dyn, b)
	}
	f.mu.Unlock()
	for _, b := range dyn {
		b.close()
	}
	return err
}

// Drain waits for in-flight fleet executions and result deliveries.
func (f *Coordinator) Drain() { f.execWG.Wait() }

// statsTimeout bounds one backend's stats query inside an aggregated
// Stats call, so a wedged backend degrades the aggregate instead of
// hanging it.
const statsTimeout = 5 * time.Second

// Stats reports the coordinator's serving telemetry: its request-level
// counters, the per-backend membership view, and the cache counters
// aggregated across the fleet. Live static backends are queried
// concurrently under a bounded context and their answers retained; a
// backend that does not answer is reported unhealthy and contributes
// its last-known-good counters instead of silently vanishing, so fleet
// aggregates never go backwards when a backend dies. Dynamic members
// are never queried here: their newest heartbeat already carried their
// snapshot, and the registry retains it (members are never deleted, so
// a dead member's counters keep contributing). (A backend that
// restarts legitimately resets its own counters; monotonicity is
// guaranteed across unreachability, not across backend restarts.)
//
// After Close, Stats returns promptly without querying anything —
// local counters plus the retained per-backend contributions, every
// backend reported unhealthy — rather than racing the cancelled base
// context.
func (f *Coordinator) Stats() opusnet.CacheStatsPayload {
	f.mu.Lock()
	closed := f.closed
	out := opusnet.CacheStatsPayload{
		GridsExecuted: f.gridsExecuted,
		GridsDeduped:  f.gridsDeduped,
		ExpsExecuted:  f.expsExecuted,
		ExpsDeduped:   f.expsDeduped,
	}
	f.mu.Unlock()
	snaps := make([]opusnet.BackendStatsPayload, len(f.static))
	if closed {
		for i, b := range f.static {
			snap, _ := b.snapshot()
			snap.Healthy = false
			snaps[i] = snap
		}
	} else {
		ctx, cancel := context.WithTimeout(f.baseCtx, statsTimeout)
		defer cancel()
		var wg sync.WaitGroup
		for i, b := range f.static {
			i, b := i, b
			wg.Add(1)
			go func() {
				defer wg.Done()
				snap, c := b.snapshot()
				if c != nil {
					if bst, err := c.StatsCtx(ctx); err == nil {
						b.retainStats(bst)
					} else {
						b.setUnhealthy()
						snap.Healthy = false
					}
				}
				snaps[i] = snap
			}()
		}
		wg.Wait()
	}
	// Aggregate over the retained snapshots of ALL backends — reachable
	// or not — so no contribution is ever dropped from the sums.
	for i, b := range f.static {
		addStats(&out, b.retainedStats(), snaps[i].Healthy)
	}
	if f.registry != nil {
		nowT := f.now()
		for _, m := range f.registry.Members() {
			snap := opusnet.BackendStatsPayload{
				Addr: m.Addr, ID: m.ID, Capacity: m.Capacity, State: string(m.State),
				Healthy:            !closed && m.State == railctl.StateHealthy,
				LastHeartbeatAgeMS: nowT.Sub(m.LastHeartbeat).Milliseconds(),
			}
			if b := f.lookupDynamic(m.ID); b != nil {
				snap.Cells, snap.Failures = b.counts()
			}
			addStats(&out, m.Stats, snap.Healthy)
			snaps = append(snaps, snap)
		}
	}
	out.Backends = snaps
	return out
}

// addStats folds one backend's retained cache counters into the fleet
// aggregate. Counters are retained across unreachability; the
// in-flight gauge is not — a dead backend runs nothing.
func addStats(out *opusnet.CacheStatsPayload, bst opusnet.CacheStatsPayload, healthy bool) {
	if !healthy {
		bst.InFlight = 0
	}
	out.Hits += bst.Hits
	out.Misses += bst.Misses
	out.Evictions += bst.Evictions
	out.InFlight += bst.InFlight
	out.CellsExecuted += bst.CellsExecuted
	out.CellsDeduped += bst.CellsDeduped
	out.BuildHits += bst.BuildHits
	out.BuildMisses += bst.BuildMisses
	out.ProvisionHits += bst.ProvisionHits
	out.ProvisionMisses += bst.ProvisionMisses
	out.TimeHits += bst.TimeHits
	out.TimeMisses += bst.TimeMisses
	out.SeedHits += bst.SeedHits
	out.SeedMisses += bst.SeedMisses
}

func (f *Coordinator) acceptLoop() {
	defer f.wg.Done()
	opusnet.AcceptLoop(f.ln,
		func() bool {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.closed
		},
		func(err error) {
			if f.logf != nil {
				f.logf("railfleet: accept: %v", err)
			}
		},
		func(conn net.Conn) bool {
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				return false
			}
			f.conns[conn] = true
			f.mu.Unlock()
			f.wg.Add(1)
			go f.handle(conn)
			return true
		})
}

// handle serves one client connection on opusnet's shared serving
// skeleton — the same writer-goroutine, drop-advisory-frames,
// close-on-wedge, cancellation-registry discipline raild uses (see
// opusnet.ServeConn).
func (f *Coordinator) handle(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conns, conn)
		f.mu.Unlock()
		_ = conn.Close()
	}()
	opusnet.ServeConn(conn, f.dispatch)
}

func (f *Coordinator) dispatch(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	switch msg.Type {
	case opusnet.MsgGridReq:
		f.serveGrid(msg, reply)
	case opusnet.MsgExpReq:
		f.serveExp(msg, reply, cs)
	case opusnet.MsgCancel:
		cs.CancelSeq(msg.Seq)
	case opusnet.MsgFleetRegister:
		f.serveFleetRegister(msg, reply)
	case opusnet.MsgHeartbeat:
		f.serveHeartbeat(msg, reply)
	case opusnet.MsgDrain:
		f.serveDrain(msg, reply)
	case opusnet.MsgStatsReq:
		seq := msg.Seq
		f.execWG.Add(1)
		go func() { // Stats queries backends; never block the read loop
			defer f.execWG.Done()
			st := f.Stats()
			reply(&opusnet.Message{Type: opusnet.MsgStatsResp, Seq: seq, Cache: &st}, true)
		}()
	default:
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
			Error: fmt.Sprintf("railfleet: unsupported message type %q", msg.Type)}, true)
	}
}

// serveFleetRegister admits (or refreshes) a dynamic member. The
// registration connection is pure control plane: cells travel over
// connections the coordinator dials to the member's advertised
// address, so a member behind the same dialer as the statics needs no
// extra plumbing.
func (f *Coordinator) serveFleetRegister(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	if f.registry == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: dynamic registration disabled (static -backends fleet)"}, true)
		return
	}
	p := msg.FleetReg
	if p == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: fleet_register without a payload"}, true)
		return
	}
	if err := f.registry.Register(p.ID, p.Addr, p.Capacity); err != nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
		return
	}
	reply(&opusnet.Message{Type: opusnet.MsgAck, Seq: seq}, true)
}

// serveHeartbeat refreshes a member's liveness (and stats snapshot).
// An unknown identity is refused so the agent re-registers — the
// coordinator may have restarted and lost the membership table.
func (f *Coordinator) serveHeartbeat(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	if f.registry == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: dynamic registration disabled (static -backends fleet)"}, true)
		return
	}
	p := msg.Heartbeat
	if p == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: heartbeat without a payload"}, true)
		return
	}
	if err := f.registry.Heartbeat(p.ID, p.Capacity, p.Stats); err != nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
		return
	}
	reply(&opusnet.Message{Type: opusnet.MsgAck, Seq: seq}, true)
}

// serveDrain marks a member draining. Unknown identities ack: the
// member is already not part of the fleet, which is all a drain asks
// for — a drain must be idempotent so a retried SIGTERM cannot fail.
func (f *Coordinator) serveDrain(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	if f.registry == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: dynamic registration disabled (static -backends fleet)"}, true)
		return
	}
	p := msg.DrainReq
	if p == nil {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq,
			Error: "railfleet: drain without a payload"}, true)
		return
	}
	if err := f.registry.Drain(p.ID, p.Reason); err != nil && !errors.Is(err, railctl.ErrUnknownMember) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
		return
	}
	reply(&opusnet.Message{Type: opusnet.MsgAck, Seq: seq}, true)
}

// fleetRun is one in-flight fleet grid execution with its subscribers;
// both request paths (grid_req and grid-experiment exp_req) coalesce
// onto it, keyed by the resolved grid. waiters is guarded by the
// Coordinator mutex; grid_req waiters never depart (the legacy path
// runs to completion), experiment waiters depart on cancel/deadline —
// the last departure cancels the fan-out, which cancels the
// outstanding cells_req waits on the backends.
type fleetRun struct {
	done     chan struct{}
	gridName string
	rows     []scenario.Row
	err      error
	cancel   context.CancelFunc
	waiters  int // guarded by Coordinator.mu

	mu   sync.Mutex
	subs []func(done, total int)
}

func (r *fleetRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *fleetRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// joinRun coalesces onto (or starts) the fleet execution for the
// resolved grid; started reports whether this request started it.
func (f *Coordinator) joinRun(key string, spec scenario.Spec, grid scenario.Grid) (run *fleetRun, started bool) {
	f.mu.Lock()
	gate := f.execGate
	run, shared := f.runs[key]
	if shared {
		run.waiters++
		f.mu.Unlock()
		return run, false
	}
	runCtx, runCancel := context.WithCancel(f.baseCtx)
	run = &fleetRun{done: make(chan struct{}), gridName: grid.Name, cancel: runCancel, waiters: 1}
	f.runs[key] = run
	f.mu.Unlock()
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		if gate != nil {
			<-gate // test-only hold, see execGate
		}
		run.rows, run.err = f.executeGrid(runCtx, spec, grid, run.broadcast)
		f.mu.Lock()
		if f.runs[key] == run {
			delete(f.runs, key)
		}
		f.mu.Unlock()
		runCancel()
		close(run.done)
	}()
	return run, true
}

// depart drops one waiter; the last one leaving cancels the fan-out
// and removes the run so a later identical request starts fresh.
func (f *Coordinator) depart(key string, run *fleetRun) {
	f.mu.Lock()
	run.waiters--
	last := run.waiters == 0
	if last && f.runs[key] == run {
		delete(f.runs, key)
	}
	f.mu.Unlock()
	if last {
		run.cancel()
	}
}

// serveGrid is the legacy grid path across the fleet: validate exactly
// as one daemon would, coalesce or start the fleet execution, stream
// aggregated progress, and deliver the merged rows. As on raild, the
// wait is not cancellable and the execution runs to completion.
func (f *Coordinator) serveGrid(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	if msg.Spec == nil {
		fail(fmt.Errorf("railfleet: grid request without a spec"))
		return
	}
	grid, err := railserve.ValidateGridSpec(*msg.Spec)
	if err != nil {
		fail(err)
		return
	}
	key := exp.Key("fleet", grid)
	ro := f.beginReq("grid", key, grid.CellCount())
	run, started := f.joinRun(key, *msg.Spec, grid)
	f.mu.Lock()
	if started {
		f.gridsExecuted++
	} else {
		f.gridsDeduped++
	}
	f.mu.Unlock()
	ro.admitted(!started)
	if f.logf != nil {
		if started {
			f.logf("railfleet: grid %q: fanning out (%d cells)", grid.Name, grid.CellCount())
		} else {
			f.logf("railfleet: grid %q: joined in-flight fleet execution", grid.Name)
		}
	}
	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgGridProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		<-run.done
		ro.finish(run.err, false)
		if run.err != nil {
			fail(run.err)
			return
		}
		reply(&opusnet.Message{Type: opusnet.MsgGridResult, Seq: seq, Grid: &opusnet.GridResultPayload{
			Name:   run.gridName,
			Rows:   run.rows,
			Shared: !started,
		}}, true)
	}()
}

// serveExp serves exp_req at the coordinator: grid experiments fan out
// across the fleet (coalescing with grid_req onto the same fleet
// execution, rendered at the coordinator byte-identically to a raild
// rendering); everything else is proxied to a backend.
func (f *Coordinator) serveExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	req := msg.Exp
	if req == nil {
		fail(fmt.Errorf("railfleet: experiment request without a payload"))
		return
	}
	if _, ok := photonrail.Lookup(req.Name); !ok {
		fail(fmt.Errorf("railfleet: unknown experiment (see photonrail.Experiments; grids run via name %q)", "grid"))
		return
	}
	if !photonrail.IsGridExperiment(req.Name) {
		// A grid on a non-grid experiment is rejected by the backend,
		// exactly as a direct raild request would be.
		f.proxyExp(msg, reply, cs)
		return
	}
	// Resolve the effective grid exactly as the registry would: an
	// explicit spec wins; a built-in grid experiment falls back to its
	// registered grid; bare "grid" falls back to the paper-default
	// custom grid.
	var spec scenario.Spec
	switch {
	case req.Grid != nil:
		spec = *req.Grid
	case req.Name != "grid":
		spec = scenario.SpecOf(scenario.Grids()[req.Name]())
	}
	if req.Name == "grid" && spec.Name == "" {
		spec.Name = "custom"
	}
	grid, err := railserve.ValidateGridSpec(spec)
	if err != nil {
		fail(err)
		return
	}

	wctx, wcancel := f.waitCtx(req.TimeoutMS)
	if !cs.Register(seq, wcancel) {
		wcancel()
		return
	}
	key := exp.Key("fleet", grid)
	ro := f.beginReq(req.Name, key, grid.CellCount())
	run, started := f.joinRun(key, spec, grid)
	f.mu.Lock()
	if started {
		f.expsExecuted++
	} else {
		f.expsDeduped++
	}
	f.mu.Unlock()
	ro.admitted(!started)
	if f.logf != nil {
		if started {
			f.logf("railfleet: experiment %q: fanning out grid %q", req.Name, grid.Name)
		} else {
			f.logf("railfleet: experiment %q: joined in-flight fleet execution", req.Name)
		}
	}
	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgExpProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		defer cs.Unregister(seq)
		defer wcancel()
		select {
		case <-run.done:
			if run.err != nil {
				ro.finish(run.err, false)
				fail(run.err)
				return
			}
			payload, err := renderGridPayload(req.Name, run.gridName, run.rows)
			if err != nil {
				ro.finish(err, false)
				fail(err)
				return
			}
			payload.Shared = !started
			ro.finish(nil, false)
			reply(&opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: payload}, true)
		case <-wctx.Done():
			f.depart(key, run)
			ro.finish(wctx.Err(), true)
			fail(fmt.Errorf("railfleet: experiment %q: %w", req.Name, wctx.Err()))
		}
	}()
}

// waitCtx bounds one request's wait under the base context.
func (f *Coordinator) waitCtx(timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(f.baseCtx, time.Duration(timeoutMS)*time.Millisecond)
	}
	return context.WithCancel(f.baseCtx)
}

// renderGridPayload renders merged fleet rows exactly as a raild
// daemon renders a completed grid experiment, so fleet output is
// byte-identical to a single daemon's (and to the local CLIs').
func renderGridPayload(expName, gridName string, rows []scenario.Row) (*opusnet.ExpResultPayload, error) {
	res := photonrail.GridExperimentResult(gridName, rows)
	var text, csv, rowsJSON bytes.Buffer
	if err := res.RenderText(&text); err != nil {
		return nil, err
	}
	if err := res.RenderCSV(&csv); err != nil {
		return nil, err
	}
	if err := res.RenderJSON(&rowsJSON); err != nil {
		return nil, err
	}
	return &opusnet.ExpResultPayload{
		Name:        expName,
		Grid:        gridName,
		Rendered:    text.String(),
		RenderedCSV: csv.String(),
		RowsJSON:    rowsJSON.String(),
	}, nil
}

// proxyExp forwards a non-grid experiment to one backend — chosen by
// rendezvous hash of the experiment name so repeat requests land on
// the same warm cache — failing over to the next live backend on
// connection errors. Application-level refusals are returned as-is: a
// retry elsewhere would only repeat them.
func (f *Coordinator) proxyExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	req := *msg.Exp
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	wctx, wcancel := f.waitCtx(req.TimeoutMS)
	if !cs.Register(seq, wcancel) {
		wcancel()
		return
	}
	ro := f.beginReq(req.Name, "", 0)
	f.mu.Lock()
	f.expsExecuted++
	f.mu.Unlock()
	ro.admitted(false)
	f.execWG.Add(1)
	go func() {
		defer f.execWG.Done()
		defer cs.Unregister(seq)
		defer wcancel()
		order := f.proxyOrder(req.Name)
		var lastErr error
		for _, b := range order {
			c, err := b.get()
			if err != nil {
				f.noteStaticDown(b, "unreachable")
				lastErr = err
				continue
			}
			f.noteStaticUp(b)
			run, err := c.RunExperiment(wctx, req, func(done, total int) {
				reply(&opusnet.Message{Type: opusnet.MsgExpProgress, Seq: seq,
					Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
			})
			if err != nil {
				if wctx.Err() != nil {
					ro.finish(wctx.Err(), true)
					fail(fmt.Errorf("railfleet: experiment %q: %w", req.Name, wctx.Err()))
					return
				}
				if errors.Is(err, railserve.ErrConnDown) {
					if f.logf != nil {
						f.logf("railfleet: backend %s died serving experiment %q: %v (failing over)", b.address(), req.Name, err)
					}
					b.fail(c)
					f.noteStaticDown(b, "failover")
					f.failoversC.Inc()
					f.tel.Events.Emit(telemetry.Event{Type: "failover", Req: ro.id, Exp: req.Name,
						Backend: b.address(), Member: b.id, Err: err.Error()})
					lastErr = err
					continue
				}
				ro.finish(err, false)
				fail(err)
				return
			}
			ro.finish(nil, false)
			reply(&opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: &opusnet.ExpResultPayload{
				Name: run.Name, Grid: run.Grid,
				Rendered: run.Rendered, RenderedCSV: run.RenderedCSV, RowsJSON: run.RowsJSON,
				Shared: run.Shared,
			}}, true)
			return
		}
		err := fmt.Errorf("railfleet: no live backend served experiment %q (last error: %v)", req.Name, lastErr)
		ro.finish(err, false)
		fail(err)
	}()
}

// proxyOrder ranks the fleet's backends by weighted rendezvous score
// for an experiment name — the same hash the cell shard uses, so
// repeat requests land on the same warm cache. Assignable members and
// non-dead statics rank first; dead statics are appended as a last
// resort (the failover walk will probe them only when everything
// better already failed).
func (f *Coordinator) proxyOrder(name string) []*backend {
	type cand struct {
		b *backend
		t Target
	}
	var live, last []cand
	for _, b := range f.static {
		c := cand{b, Target{ID: b.id, Weight: 1}}
		if b.isDead() {
			last = append(last, c)
		} else {
			live = append(live, c)
		}
	}
	if f.registry != nil {
		for _, m := range f.registry.Assignable() {
			live = append(live, cand{f.dynamicBackend(m.ID, m.Addr), Target{ID: m.ID, Weight: m.Capacity}})
		}
	}
	rank := func(cs []cand) {
		sort.Slice(cs, func(i, j int) bool {
			si, sj := weightedScore(name, cs[i].t), weightedScore(name, cs[j].t)
			if si != sj {
				return si > sj
			}
			return cs[i].t.ID < cs[j].t.ID
		})
	}
	rank(live)
	rank(last)
	out := make([]*backend, 0, len(live)+len(last))
	for _, c := range append(live, last...) {
		out = append(out, c.b)
	}
	return out
}

// draining reports whether a backend is gracefully departing: a
// dynamic member the registry marked draining. A drainer keeps (and
// finishes) the batch it already holds; its unsubmitted cells hand off
// to the next wave without failover accounting.
func (f *Coordinator) draining(b *backend) bool {
	return !b.static && f.registry != nil && f.registry.Draining(b.id)
}

// executeGrid fans one expanded grid out across the fleet and merges
// the partial rows back into canonical expansion order — the
// coordinator's core. Cells shard by workload key with each backend's
// capacity as rendezvous weight (AssignWeighted); each backend's share
// is submitted in batches of at most f.inFlight cells (the per-backend
// in-flight cap). A backend that dies or errors mid-grid has its
// unfinished cells re-sharded across the survivors on the next wave; a
// backend that drains mid-grid finishes the batch it holds and hands
// its unsubmitted cells to the next wave — graceful, so no failover is
// counted. The grid fails only when no backend is left. The returned
// rows are byte-identical to a single-daemon run, whichever backends
// executed which cells.
//
// onCell receives aggregated monotonic progress over the whole grid:
// committed cells (rows landed) plus live in-batch ticks, never
// exceeding the total — a failed batch's ticks are discarded along
// with its re-executed cells.
func (f *Coordinator) executeGrid(ctx context.Context, spec scenario.Spec, grid scenario.Grid, onCell func(done, total int)) ([]scenario.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cells := grid.Expand()
	total := len(cells)
	rows := make([]scenario.Row, total)

	var pmu sync.Mutex
	committed, lastEmitted, batchSeq := 0, 0, 0
	live := make(map[int]int) // batch id -> cells done in that batch
	emit := func() {          // pmu held
		v := committed
		for _, d := range live {
			v += d
		}
		if v > lastEmitted {
			lastEmitted = v
			if onCell != nil {
				onCell(v, total)
			}
		}
	}

	remaining := make([]int, total)
	for i := range remaining {
		remaining[i] = i
	}
	// A backend that fails during THIS request is excluded from its
	// later waves: each wave's candidate set strictly shrinks, so a
	// backend returning a deterministic refusal (e.g. a pre-cells_req
	// raild answering "unsupported message type") is routed around
	// once instead of being re-dialed and re-failed forever. (Drained
	// members need no entry here: the next wave's registry read already
	// excludes them.)
	excluded := make(map[string]bool)
	for wave := 0; len(remaining) > 0; wave++ {
		targets, byID := f.waveTargets(excluded)
		if len(targets) == 0 {
			return nil, fmt.Errorf("railfleet: no live backends (%d of %d cells unexecuted)", len(remaining), total)
		}
		assignment := AssignWeighted(cells, remaining, targets)
		if f.logf != nil {
			f.logf("railfleet: grid %q wave %d: %d cells across %d backends", grid.Name, wave, len(remaining), len(assignment))
		}
		// One sharded event per (wave, backend), in member-id order so
		// the event stream is deterministic for a given assignment.
		shardOrder := make([]string, 0, len(assignment))
		for id := range assignment {
			shardOrder = append(shardOrder, id)
		}
		sort.Strings(shardOrder)
		for _, id := range shardOrder {
			f.tel.Events.Emit(telemetry.Event{Type: "sharded", Exp: grid.Name,
				Backend: byID[id].address(), Member: id, Cells: len(assignment[id]), Wave: wave})
		}
		var wg sync.WaitGroup
		var fmu sync.Mutex
		var failed []int
		for id, idxs := range assignment {
			b, idxs := byID[id], idxs
			wg.Add(1)
			go func() {
				defer wg.Done()
				for start := 0; start < len(idxs); start += f.inFlight {
					if f.draining(b) {
						// Graceful departure: the unsubmitted remainder hands
						// off to the next wave. No failover counter, no
						// exclusion — this is the drain working as designed.
						f.tel.Events.Emit(telemetry.Event{Type: "drain_handoff", Exp: grid.Name,
							Backend: b.address(), Member: b.id, Cells: len(idxs) - start, Wave: wave})
						fmu.Lock()
						failed = append(failed, idxs[start:]...)
						fmu.Unlock()
						return
					}
					end := start + f.inFlight
					if end > len(idxs) {
						end = len(idxs)
					}
					if err := f.runBatch(ctx, b, spec, idxs[start:end], rows, &pmu, &committed, live, &batchSeq, emit); err != nil {
						if ctx.Err() != nil {
							return // cancelled: the wave exit reports it
						}
						if f.draining(b) {
							// The drain raced the batch: its connection may
							// already be gone, but the departure is still
							// graceful — hand off, don't count a failover.
							f.tel.Events.Emit(telemetry.Event{Type: "drain_handoff", Exp: grid.Name,
								Backend: b.address(), Member: b.id, Cells: len(idxs) - start, Wave: wave})
							fmu.Lock()
							failed = append(failed, idxs[start:]...)
							fmu.Unlock()
							return
						}
						if f.logf != nil {
							f.logf("railfleet: backend %s failed %d cells of grid %q: %v (re-sharding)",
								b.address(), len(idxs)-start, grid.Name, err)
						}
						f.noteStaticDown(b, "failover")
						f.failoversC.Inc()
						f.tel.Events.Emit(telemetry.Event{Type: "failover", Exp: grid.Name,
							Backend: b.address(), Member: b.id, Cells: len(idxs) - start, Wave: wave, Err: err.Error()})
						fmu.Lock()
						excluded[b.id] = true
						failed = append(failed, idxs[start:]...)
						fmu.Unlock()
						return
					}
					f.tel.Events.Emit(telemetry.Event{Type: "cell_complete", Exp: grid.Name,
						Backend: b.address(), Member: b.id, Cells: end - start, Wave: wave})
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remaining = failed
	}
	return rows, nil
}

// runBatch executes one cell batch on one backend and merges its rows.
// Any failure other than the caller's own cancellation marks the
// backend failed (dropping its connection) so the wave loop re-shards.
func (f *Coordinator) runBatch(ctx context.Context, b *backend, spec scenario.Spec, batch []int,
	rows []scenario.Row, pmu *sync.Mutex, committed *int, live map[int]int, batchSeq *int, emit func()) error {
	pmu.Lock()
	*batchSeq++
	id := *batchSeq
	pmu.Unlock()
	defer func() {
		pmu.Lock()
		delete(live, id)
		pmu.Unlock()
	}()

	c, err := b.get()
	if err != nil {
		return err
	}
	// The batch — not the request — is bounded: a wedged backend's
	// batch expires (sending it a cancel frame) and its cells re-shard,
	// while the caller's own cancellation is still distinguished via
	// the parent ctx.
	bctx := ctx
	if f.batchTimeout > 0 {
		var bcancel context.CancelFunc
		bctx, bcancel = context.WithTimeout(ctx, f.batchTimeout)
		defer bcancel()
	}
	run, err := c.RunCellsCtx(bctx, spec, batch, 0, func(done, _ int) {
		pmu.Lock()
		if done > live[id] {
			live[id] = done
			emit()
		}
		pmu.Unlock()
	})
	if err == nil && len(run.Rows) != len(batch) {
		err = fmt.Errorf("railfleet: backend %s returned %d rows for a %d-cell batch", b.address(), len(run.Rows), len(batch))
	}
	if err != nil {
		if ctx.Err() == nil {
			b.fail(c)
		}
		return err
	}
	for j, idx := range batch {
		rows[idx] = run.Rows[j]
	}
	b.note(len(batch))
	pmu.Lock()
	delete(live, id)
	*committed += len(batch)
	emit()
	pmu.Unlock()
	return nil
}
