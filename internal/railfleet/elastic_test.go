package railfleet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail"
	"photonrail/internal/faultnet"
	"photonrail/internal/opusnet"
	"photonrail/internal/railctl"
	"photonrail/internal/railserve"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// elasticHeartbeat is the agent cadence in the elastic tests: fast
// enough that joins and drain acknowledgements land within a few
// milliseconds of wall time.
const elasticHeartbeat = 20 * time.Millisecond

// elasticFleet is an in-process coordinator whose fleet is entirely
// self-registered: backend servers listen on faultnet endpoints
// "b0".."bN-1" and railctl agents register them as members "n0".."nN-1"
// over the "coord" endpoint — no static -backends list anywhere.
type elasticFleet struct {
	t     *testing.T
	net   *faultnet.Network
	coord *Coordinator

	mu       sync.Mutex
	backends []*railserve.Server
	agents   []*railctl.Agent
}

func startElasticFleet(t *testing.T, inFlight int, ttl time.Duration) *elasticFleet {
	t.Helper()
	fn := faultnet.New()
	coord, err := New(Config{
		Listener:          fn.Listen("coord"),
		AllowRegistration: true,
		HeartbeatTTL:      ttl,
		InFlight:          inFlight,
		Dial:              fn.Dial,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fl := &elasticFleet{t: t, net: fn, coord: coord}
	t.Cleanup(fl.stop)
	return fl
}

func (fl *elasticFleet) stop() {
	fl.mu.Lock()
	agents := fl.agents
	backends := fl.backends
	fl.mu.Unlock()
	for _, a := range agents {
		a.Close() // stop heartbeats first, so nothing logs after the test
	}
	_ = fl.coord.Close()
	fl.coord.Drain()
	for _, s := range backends {
		_ = s.Close()
		s.Drain()
	}
	fl.net.Close()
}

// addMember starts backend i (endpoint "b<i>") and registers it as
// member "n<i>" with the given advertised capacity, returning once the
// coordinator has observed the join — so a caller may rely on the next
// wave seeing the member.
func (fl *elasticFleet) addMember(i, capacity int) (*railserve.Server, *railctl.Agent) {
	fl.t.Helper()
	name := fmt.Sprintf("b%d", i)
	id := fmt.Sprintf("n%d", i)
	s, err := railserve.NewServer(railserve.Config{Listener: fl.net.Listen(name), Workers: 2, Logf: fl.t.Logf})
	if err != nil {
		fl.t.Fatal(err)
	}
	a, err := railctl.StartAgent(railctl.AgentConfig{
		Coordinator: "coord",
		Dial:        fl.net.Dial,
		ID:          id,
		Addr:        name,
		Capacity:    capacity,
		Interval:    elasticHeartbeat,
		Stats:       func() opusnet.CacheStatsPayload { return s.Stats() },
		Logf:        fl.t.Logf,
	})
	if err != nil {
		_ = s.Close()
		fl.t.Fatal(err)
	}
	fl.mu.Lock()
	fl.backends = append(fl.backends, s)
	fl.agents = append(fl.agents, a)
	fl.mu.Unlock()
	waitEvent(fl.t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "join" && ev.Member == id
	})
	return s, a
}

// agent returns member i's agent.
func (fl *elasticFleet) agent(i int) *railctl.Agent {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.agents[i]
}

// dialCoord connects a railserve client to the coordinator.
func (fl *elasticFleet) dialCoord() *railserve.Client {
	fl.t.Helper()
	conn, err := fl.net.Dial("coord")
	if err != nil {
		fl.t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	fl.t.Cleanup(func() { _ = c.Close() })
	return c
}

// waitFrames polls until the endpoint has pumped at least n frames.
// Held frames count — the pump increments before withholding — so this
// detects "the backend produced its first reply frame" even while a
// HoldAtFrame gag keeps that frame from the coordinator.
func waitFrames(t *testing.T, ep *faultnet.Endpoint, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for ep.Frames() < n {
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never pumped %d frames", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// coordCounters renders the coordinator's metrics and parses them into
// sample values, so tests can assert on counter and gauge series.
func coordCounters(t *testing.T, f *Coordinator) map[string]float64 {
	t.Helper()
	var b strings.Builder
	f.Telemetry().Metrics.Render(&b)
	samples, err := telemetry.ParseSamples(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestElasticFleetJoinDrainMidRequest is the PR's acceptance e2e: a
// three-member self-registered fleet serves the 48-cell fig8-5d grid
// while one member gracefully drains mid-request — finishing the batch
// it holds, handing its unstarted cells to the next wave — and a
// fourth member joins mid-request and picks those cells up. The merged
// rows are byte-identical to a single local engine's, no simulation is
// duplicated fleet-wide, the joiner executes cells, and the drain
// trips zero failovers.
func TestElasticFleetJoinDrainMidRequest(t *testing.T) {
	wantRows, wantMisses := fig8Ref(t)
	// inFlight 8 makes batch boundaries workload-closed for fig8-5d:
	// every workload expands to exactly 8 consecutive cells (electrical
	// + static + 3 photonic latencies + 3 provisioned latencies), and a
	// member's share is a concatenation of whole workloads — so the
	// drainer's executed-batch/handoff split never splits a workload and
	// the no-duplicated-simulation property survives the handoff.
	const inFlight = 8
	fl := startElasticFleet(t, inFlight, 5*time.Second)
	for i := 0; i < 3; i++ {
		fl.addMember(i, 2)
	}

	// Predict the wave-0 shard to pick the drainer: a member holding
	// more than one batch, so a drain between its batches leaves a
	// handoff remainder.
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	targets := []Target{{ID: "n0", Weight: 2}, {ID: "n1", Weight: 2}, {ID: "n2", Weight: 2}}
	assignment := AssignWeighted(cells, all, targets)
	drainer := ""
	for _, tg := range targets {
		if len(assignment[tg.ID]) > inFlight {
			drainer = tg.ID
			break
		}
	}
	if drainer == "" {
		t.Fatalf("no member holds more than one batch (shares %d/%d/%d); adjust inFlight",
			len(assignment["n0"]), len(assignment["n1"]), len(assignment["n2"]))
	}
	share := assignment[drainer]
	batch1, handoff := share[:inFlight], share[inFlight:]
	if WorkloadKey(cells[batch1[len(batch1)-1]]) == WorkloadKey(cells[handoff[0]]) {
		t.Fatal("batch boundary splits a workload; pick an inFlight that is a multiple of the per-workload cell count")
	}
	// The joiner advertises overwhelming capacity, so it provably wins
	// every handed-off workload key whatever subset of the old members
	// is assignable in the handoff wave (removing competitors cannot
	// dethrone a rendezvous winner).
	joiner := Target{ID: "n3", Weight: 1 << 20}
	wave1 := []Target{joiner}
	for _, tg := range targets {
		if tg.ID != drainer {
			wave1 = append(wave1, tg)
		}
	}
	for _, idx := range handoff {
		if owner := ownerOf(WorkloadKey(cells[idx]), wave1); owner != joiner.ID {
			t.Fatalf("handoff cell %d re-shards to %s, not the joiner; raise the joiner's capacity", idx, owner)
		}
	}

	drainerIdx := int(drainer[1] - '0')
	held := fl.net.Endpoint(fmt.Sprintf("b%d", drainerIdx))
	held.HoldAtFrame(1)

	c := fl.dialCoord()
	type outcome struct {
		run *railserve.GridRun
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		run, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil)
		res <- outcome{run, err}
	}()

	// The drainer's first batch is provably in flight once its endpoint
	// pumps a frame (held, so nothing reaches the coordinator yet): the
	// grid is mid-request with work submitted to the drainer.
	waitFrames(t, held, 1)

	// Mid-request join: a fourth daemon registers itself. addMember
	// returns only after the coordinator observed the join.
	joinSrv, _ := fl.addMember(3, joiner.Weight)

	// Mid-request drain: Drain returns only after the coordinator acked,
	// i.e. the registry transition is applied — so when the held batch
	// completes, the drainer's next batch check provably observes it.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := fl.agent(drainerIdx).Drain(dctx, "test drain"); err != nil {
		t.Fatal(err)
	}
	held.Release()

	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := rowsJSON(t, out.run.Rows); got != wantRows {
		t.Fatal("rows diverged from the local engine's across the join+drain")
	}

	// The graceful handoff happened, with the member identity attached.
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "drain_handoff" && ev.Member == drainer && ev.Cells == len(handoff)
	})

	// The drainer executed exactly the batch it held; the joiner
	// executed exactly the handoff; fleet-wide the grid ran once.
	fl.mu.Lock()
	drainSrv := fl.backends[drainerIdx]
	members := append([]*railserve.Server(nil), fl.backends...)
	fl.mu.Unlock()
	if got := drainSrv.Stats().CellsExecuted; got != inFlight {
		t.Errorf("drainer executed %d cells, want its held batch of %d", got, inFlight)
	}
	if got := joinSrv.Stats().CellsExecuted; got != uint64(len(handoff)) {
		t.Errorf("joiner executed %d cells, want the %d handed off", got, len(handoff))
	}
	var fleetCells, fleetMisses uint64
	for _, s := range members {
		st := s.Stats()
		fleetCells += st.CellsExecuted
		fleetMisses += st.Misses
	}
	if fleetCells != 48 {
		t.Errorf("fleet executed %d cells, want 48 (no duplicated or lost work)", fleetCells)
	}
	if fleetMisses != wantMisses {
		t.Errorf("fleet-wide misses = %d, want a single local run's %d (zero duplicated simulation)", fleetMisses, wantMisses)
	}

	// The drain was graceful: zero failover events, zero on the counter.
	for _, ev := range fl.coord.Telemetry().Events.Snapshot() {
		if ev.Type == "failover" {
			t.Errorf("failover event during a graceful drain: %+v", ev)
		}
	}
	samples := coordCounters(t, fl.coord)
	if v := samples["railfleet_failovers_total"]; v != 0 {
		t.Errorf("railfleet_failovers_total = %g, want 0", v)
	}
	if v := samples[`railfleet_members{state="healthy"}`]; v != 3 {
		t.Errorf("healthy members gauge = %g, want 3 (two originals + joiner)", v)
	}
	if v := samples[`railfleet_members{state="draining"}`]; v != 1 {
		t.Errorf("draining members gauge = %g, want 1", v)
	}

	// The stats_resp membership view carries the same picture to any
	// railclient -daemon-stats invocation.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Backends) != 4 {
		t.Fatalf("membership view has %d entries, want 4", len(st.Backends))
	}
	for _, b := range st.Backends {
		if b.Static {
			t.Errorf("member %s reported static in an all-dynamic fleet", b.ID)
		}
		if b.LastHeartbeatAgeMS < 0 {
			t.Errorf("member %s heartbeat age %dms is negative", b.ID, b.LastHeartbeatAgeMS)
		}
		switch b.ID {
		case drainer:
			if b.State != string(railctl.StateDraining) || b.Healthy {
				t.Errorf("drainer view = state %q healthy %v, want draining/unhealthy", b.State, b.Healthy)
			}
		case joiner.ID:
			if b.State != string(railctl.StateHealthy) || !b.Healthy || b.Capacity != joiner.Weight {
				t.Errorf("joiner view = state %q healthy %v capacity %d, want healthy with capacity %d",
					b.State, b.Healthy, b.Capacity, joiner.Weight)
			}
			if b.Cells != uint64(len(handoff)) {
				t.Errorf("joiner view credits %d cells, want %d", b.Cells, len(handoff))
			}
		}
	}
}

// TestElasticMemberKilledMidGridFailsOver: a registered member whose
// serving endpoint dies mid-grid (its control-plane heartbeats still
// flowing) has its cells re-sharded to the survivor — the failover
// contract holds for dynamic members, with the member identity on the
// event — and once its heartbeats do stop, the registry marks it dead
// and emits the leave.
func TestElasticMemberKilledMidGridFailsOver(t *testing.T) {
	wantRows, _ := fig8Ref(t)
	fl := startElasticFleet(t, 4, time.Second)
	for i := 0; i < 2; i++ {
		fl.addMember(i, 2)
	}

	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	targets := []Target{{ID: "n0", Weight: 2}, {ID: "n1", Weight: 2}}
	assignment := AssignWeighted(cells, all, targets)
	victim := ""
	for _, tg := range targets {
		if len(assignment[tg.ID]) > 0 {
			victim = tg.ID
			break
		}
	}
	if victim == "" {
		t.Fatal("no member received cells")
	}
	victimIdx := int(victim[1] - '0')
	// Kill after 2 served frames: past its first progress frame, before
	// its first batch result — a mid-grid death at a reproducible point.
	fl.net.Endpoint(fmt.Sprintf("b%d", victimIdx)).KillAfterFrames(2)

	c := fl.dialCoord()
	run, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsJSON(t, run.Rows); got != wantRows {
		t.Fatal("failover rows diverged from the local engine's")
	}
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "failover" && ev.Member == victim
	})

	// Stop the victim's control plane; with nothing refreshing its
	// heartbeat the registry marks it dead on the next read.
	fl.agent(victimIdx).Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		state := ""
		for _, b := range st.Backends {
			if b.ID == victim {
				state = b.State
			}
		}
		if state == string(railctl.StateDead) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never marked dead: state %q", state)
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitEvent(t, fl.coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "leave" && ev.Member == victim && ev.Reason == "heartbeat timeout"
	})
}

// TestElasticFleetByteIdenticalAcrossMembershipHistory: whatever
// membership history a fleet goes through — seeded-random joins and
// drains between requests — every grid it serves comes back
// byte-identical to a single local engine's rows.
func TestElasticFleetByteIdenticalAcrossMembershipHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("membership-history property is not a -short test")
	}
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "history",
		Fabrics:     []scenario.FabricKind{scenario.Electrical, scenario.Photonic},
		LatenciesMS: []float64{5, 20},
		Iterations:  1,
	})
	grid, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	local, err := photonrail.NewEngine(0).RunGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsJSON(t, local.Rows())

	fl := startElasticFleet(t, 4, 5*time.Second)
	fl.addMember(0, 1)
	fl.addMember(1, 2)
	rng := rand.New(rand.NewSource(11))
	healthy := []int{0, 1}
	next := 2
	c := fl.dialCoord()
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		run, err := c.RunGrid(spec, nil)
		if err != nil {
			t.Fatalf("round %d (healthy members %v): %v", round, healthy, err)
		}
		if got := rowsJSON(t, run.Rows); got != want {
			t.Fatalf("round %d (healthy members %v): rows diverged from local", round, healthy)
		}
		// Mutate membership for the next round: drain a random member
		// (keeping at least one) or join a fresh one.
		if len(healthy) > 1 && rng.Intn(2) == 0 {
			pick := rng.Intn(len(healthy))
			idx := healthy[pick]
			if err := fl.agent(idx).Drain(ctx, "history"); err != nil {
				t.Fatal(err)
			}
			healthy = append(healthy[:pick], healthy[pick+1:]...)
		} else {
			fl.addMember(next, 1+rng.Intn(4))
			healthy = append(healthy, next)
			next++
		}
	}
}

// TestElasticHeartbeatStatsAndDeath drives the control plane by hand —
// raw protocol frames and an injected clock — and pins what the e2e
// cannot deterministically: heartbeat-piggybacked stats are what the
// coordinator aggregates (it never dials a dynamic member; the
// advertised address here does not even exist), a TTL-stale member
// dies, is refused work, and a late heartbeat revives it.
func TestElasticHeartbeatStatsAndDeath(t *testing.T) {
	fn := faultnet.New()
	t.Cleanup(fn.Close)
	var cmu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		cmu.Lock()
		defer cmu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		cmu.Lock()
		now = now.Add(d)
		cmu.Unlock()
	}
	coord, err := New(Config{
		Listener:          fn.Listen("coord"),
		AllowRegistration: true,
		HeartbeatTTL:      time.Second,
		Now:               clock,
		Dial:              fn.Dial,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close(); coord.Drain() })
	conn, err := fn.Dial("coord")
	if err != nil {
		t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()

	if err := c.FleetRegister(ctx, opusnet.FleetRegisterPayload{ID: "m1", Addr: "nowhere:1", Capacity: 3}); err != nil {
		t.Fatal(err)
	}
	hb := opusnet.CacheStatsPayload{Misses: 7, CellsExecuted: 5, BuildMisses: 2, InFlight: 1}
	if err := c.FleetHeartbeat(ctx, opusnet.HeartbeatPayload{ID: "m1", Capacity: 3, Stats: &hb}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 7 || st.CellsExecuted != 5 || st.BuildMisses != 2 || st.InFlight != 1 {
		t.Errorf("aggregates = misses %d cells %d buildMisses %d inFlight %d, want the piggybacked 7/5/2/1",
			st.Misses, st.CellsExecuted, st.BuildMisses, st.InFlight)
	}
	if len(st.Backends) != 1 {
		t.Fatalf("membership view has %d entries, want 1", len(st.Backends))
	}
	m := st.Backends[0]
	if m.ID != "m1" || m.State != string(railctl.StateHealthy) || !m.Healthy || m.Capacity != 3 || m.Static {
		t.Errorf("member view = %+v, want healthy dynamic m1 with capacity 3", m)
	}
	if m.LastHeartbeatAgeMS != 0 {
		t.Errorf("heartbeat age = %dms under a frozen clock, want 0", m.LastHeartbeatAgeMS)
	}

	// A heartbeat for an identity the coordinator does not know is
	// refused — the agent's cue to re-register; a drain for one acks —
	// departure must be idempotent.
	if err := c.FleetHeartbeat(ctx, opusnet.HeartbeatPayload{ID: "ghost", Capacity: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown member") {
		t.Errorf("ghost heartbeat error = %v, want unknown-member refusal", err)
	}
	if err := c.FleetDrain(ctx, opusnet.DrainPayload{ID: "ghost", Reason: "idempotent"}); err != nil {
		t.Errorf("ghost drain = %v, want ack", err)
	}

	// Past the TTL the member is dead: reported so, contributing its
	// retained counters with the in-flight gauge zeroed, and assigned
	// no work.
	advance(1500 * time.Millisecond)
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Backends) != 1 || st2.Backends[0].State != string(railctl.StateDead) || st2.Backends[0].Healthy {
		t.Errorf("post-TTL view = %+v, want dead/unhealthy", st2.Backends)
	}
	if st2.Misses != 7 || st2.InFlight != 0 {
		t.Errorf("post-TTL aggregates = misses %d inFlight %d, want retained 7 with in-flight zeroed", st2.Misses, st2.InFlight)
	}
	waitEvent(t, coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "leave" && ev.Member == "m1" && ev.Reason == "heartbeat timeout"
	})
	spec := scenario.SpecOf(scenario.Grid{Name: "refused", LatenciesMS: []float64{5}, Iterations: 1})
	if _, err := c.RunGrid(spec, nil); err == nil || !strings.Contains(err.Error(), "no live backends") {
		t.Errorf("grid on a dead fleet = %v, want no-live-backends", err)
	}

	// A late heartbeat revives the member (the agent outlived a
	// too-tight TTL), emitting a rejoin.
	if err := c.FleetHeartbeat(ctx, opusnet.HeartbeatPayload{ID: "m1", Capacity: 3}); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "join" && ev.Member == "m1" && ev.Reason == "heartbeat revival"
	})
	st3, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Backends[0].State != string(railctl.StateHealthy) || !st3.Backends[0].Healthy {
		t.Errorf("post-revival view = %+v, want healthy", st3.Backends[0])
	}
}

// TestStaticFleetRefusesRegistration: a static -backends coordinator
// has no registry; control-plane frames are refused with a telling
// error, and the static serving path is untouched by the attempts.
func TestStaticFleetRefusesRegistration(t *testing.T) {
	fl := startFleet(t, 2, 8)
	c := fl.dialCoord(t)
	ctx := context.Background()
	if err := c.FleetRegister(ctx, opusnet.FleetRegisterPayload{ID: "m1", Addr: "b0", Capacity: 1}); err == nil ||
		!strings.Contains(err.Error(), "registration disabled") {
		t.Errorf("register on a static fleet = %v, want registration-disabled refusal", err)
	}
	if err := c.FleetHeartbeat(ctx, opusnet.HeartbeatPayload{ID: "m1", Capacity: 1}); err == nil ||
		!strings.Contains(err.Error(), "registration disabled") {
		t.Errorf("heartbeat on a static fleet = %v, want registration-disabled refusal", err)
	}
	if err := c.FleetDrain(ctx, opusnet.DrainPayload{ID: "m1"}); err == nil ||
		!strings.Contains(err.Error(), "registration disabled") {
		t.Errorf("drain on a static fleet = %v, want registration-disabled refusal", err)
	}
	spec := scenario.SpecOf(scenario.Grid{Name: "still-static", LatenciesMS: []float64{5}, Iterations: 1})
	if _, err := c.RunGrid(spec, nil); err != nil {
		t.Fatalf("static fleet stopped serving after refused registrations: %v", err)
	}
}

// TestDeadStaticCostsNoDialsPerRequest is the regression test for the
// per-request re-probe of failed backends: once a static backend fails
// a probe it is marked dead and later requests skip it outright — with
// the background reprobe loop disabled, a down host costs exactly one
// dial attempt ever, not one per request.
func TestDeadStaticCostsNoDialsPerRequest(t *testing.T) {
	fn := faultnet.New()
	t.Cleanup(fn.Close)
	s0, err := railserve.NewServer(railserve.Config{Listener: fn.Listen("b0"), Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s0.Close(); s0.Drain() })
	var dmu sync.Mutex
	dials := map[string]int{}
	dial := func(addr string) (net.Conn, error) {
		dmu.Lock()
		dials[addr]++
		dmu.Unlock()
		if addr == "b1" {
			return nil, fmt.Errorf("connection refused")
		}
		return fn.Dial(addr)
	}
	coord, err := New(Config{
		Listener:        fn.Listen("coord"),
		Backends:        []string{"b0", "b1"},
		InFlight:        8,
		Dial:            dial,
		ReprobeInterval: -1, // isolate the request path: no background revival
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close(); coord.Drain() })
	conn, err := fn.Dial("coord")
	if err != nil {
		t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })

	dialsTo := func(addr string) int {
		dmu.Lock()
		defer dmu.Unlock()
		return dials[addr]
	}
	for i := 0; i < 3; i++ {
		spec := scenario.SpecOf(scenario.Grid{Name: fmt.Sprintf("probe-%d", i), LatenciesMS: []float64{5}, Iterations: 1})
		if _, err := c.RunGrid(spec, nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if n := dialsTo("b1"); n != 1 {
			t.Fatalf("after request %d the dead static has %d dial attempts, want exactly 1 (the first probe)", i, n)
		}
	}
	// The membership view reports it dead — without dialing it.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var sawDead bool
	for _, b := range st.Backends {
		if b.ID == StaticID(1) {
			sawDead = true
			if b.State != string(railctl.StateDead) || b.Healthy {
				t.Errorf("dead static view = state %q healthy %v, want dead/unhealthy", b.State, b.Healthy)
			}
		}
	}
	if !sawDead {
		t.Fatal("dead static missing from the membership view")
	}
	if n := dialsTo("b1"); n != 1 {
		t.Fatalf("stats dialed the dead static (%d attempts)", n)
	}
}

// TestReprobeLoopRevivesDeadStatic: the background reprobe loop — not
// any request — brings a recovered static backend back: its join event
// fires with no request in flight, and the next grid shards onto it.
func TestReprobeLoopRevivesDeadStatic(t *testing.T) {
	fn := faultnet.New()
	t.Cleanup(fn.Close)
	var servers []*railserve.Server
	for i := 0; i < 2; i++ {
		s, err := railserve.NewServer(railserve.Config{Listener: fn.Listen(fmt.Sprintf("b%d", i)), Workers: 2, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		t.Cleanup(func() { _ = s.Close(); s.Drain() })
	}
	var dmu sync.Mutex
	down := true
	dial := func(addr string) (net.Conn, error) {
		dmu.Lock()
		refused := addr == "b1" && down
		dmu.Unlock()
		if refused {
			return nil, fmt.Errorf("connection refused")
		}
		return fn.Dial(addr)
	}
	coord, err := New(Config{
		Listener:        fn.Listen("coord"),
		Backends:        []string{"b0", "b1"},
		InFlight:        8,
		Dial:            dial,
		ReprobeInterval: 10 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close(); coord.Drain() })
	conn, err := fn.Dial("coord")
	if err != nil {
		t.Fatal(err)
	}
	c := railserve.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })

	spec := scenario.SpecOf(scenario.Grid{Name: "pre-revival", LatenciesMS: []float64{5}, Iterations: 1})
	if _, err := c.RunGrid(spec, nil); err != nil {
		t.Fatal(err)
	}
	// b1 failed its probe and is dead. Bring it back: the loop revives
	// it with no request in flight.
	dmu.Lock()
	down = false
	dmu.Unlock()
	waitEvent(t, coord.Telemetry(), func(ev telemetry.Event) bool {
		return ev.Type == "join" && ev.Member == StaticID(1)
	})
	// The revived backend owns fig8-5d cells again (guarded by the same
	// static assignment the other e2e tests predict) and executes them.
	cells := scenario.Fig8Grid5D().Expand()
	all := make([]int, len(cells))
	for i := range all {
		all[i] = i
	}
	if len(Assign(cells, all, []int{0, 1})[1]) == 0 {
		t.Fatal("static position 1 owns no fig8-5d cells; pick a grid that splits")
	}
	if _, err := c.RunGrid(scenario.SpecOf(scenario.Fig8Grid5D()), nil); err != nil {
		t.Fatal(err)
	}
	if got := servers[1].Stats().CellsExecuted; got == 0 {
		t.Error("revived static executed no cells")
	}
}
