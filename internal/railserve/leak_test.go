package railserve

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
)

// clientReaders counts live reader goroutines of this package's Client
// — the goleak-style probe of the leak regression tests (the module
// vendors no dependencies, so the check is a stack scan rather than
// the goleak library).
func clientReaders() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "railserve.(*Client).readLoop")
}

// TestClientCloseJoinsReader is the goroutine-leak regression test:
// when the server closes the connection before the first frame,
// RunExperiment fails over the dead connection — and closing the
// client must leave NO progress-routing reader goroutine behind. The
// check is strict (counted immediately after Close returns, no
// settling retries) and repeated, so a Close that merely closes the
// socket without joining the reader — the pre-fix behavior — is
// caught.
func TestClientCloseJoinsReader(t *testing.T) {
	if n := clientReaders(); n != 0 {
		t.Fatalf("%d client readers alive before the test", n)
	}
	for i := 0; i < 50; i++ {
		s, err := NewServer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(s.Addr())
		if err != nil {
			_ = s.Close()
			t.Fatal(err)
		}
		// The server tears every connection down before any frame.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		_, err = c.RunExperiment(context.Background(),
			opusnet.ExpRequestPayload{Name: "table1"}, func(done, total int) {})
		if err == nil {
			t.Fatal("RunExperiment succeeded over a closed server")
		}
		if !errors.Is(err, ErrConnDown) {
			t.Fatalf("err = %v, want ErrConnDown", err)
		}
		if err := c.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("close: %v", err)
		}
		// Strict: the reader must already be gone when Close returns.
		if n := clientReaders(); n != 0 {
			t.Fatalf("iteration %d: %d client reader goroutines alive after Close", i, n)
		}
	}
}

// TestClientCloseJoinsReaderMidProgress is the deterministic half of
// the leak regression: the reader goroutine is parked inside the
// caller's progress callback (provably alive — it blocks on a test
// channel) while Close is called. A Close that does not join the
// reader returns immediately with the goroutine still running, which
// this test observes directly; the fixed Close blocks until the
// callback unwinds and the reader exits.
func TestClientCloseJoinsReaderMidProgress(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{Name: "leak", LatenciesMS: []float64{5}, Iterations: 1})
	s := newTestServer(t, 1, 0)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.RunGrid(spec, func(d, total int) {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		})
		done <- err
	}()
	<-entered // the reader is now parked inside the progress callback

	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case <-closed:
		// Close returned while the reader is still provably blocked in
		// the callback — the pre-fix leak.
		n := clientReaders()
		close(release)
		t.Fatalf("Close returned without joining the reader (%d alive)", n)
	case <-time.After(100 * time.Millisecond):
		// Close is (correctly) waiting for the reader.
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := clientReaders(); n != 0 {
		t.Fatalf("%d client readers alive after Close", n)
	}
	if err := <-done; err != nil && !errors.Is(err, ErrConnDown) {
		t.Fatalf("request err = %v, want success or ErrConnDown", err)
	}
}
