package railserve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// TestCellsSubsetMatchesGrid: the subset path returns exactly the full
// grid's rows at the requested indices, in request order — the
// invariant the fleet coordinator's merge relies on.
func TestCellsSubsetMatchesGrid(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "subset",
		Fabrics:     []scenario.FabricKind{scenario.Electrical, scenario.Photonic, scenario.PhotonicStatic},
		LatenciesMS: []float64{5, 20},
		Iterations:  1,
	})
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	full, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	indices := []int{3, 0, 2}
	var mu sync.Mutex
	var ticks []int
	run, err := c.RunCellsCtx(context.Background(), spec, indices, 0, func(done, total int) {
		if total != len(indices) {
			t.Errorf("progress total = %d, want %d", total, len(indices))
		}
		mu.Lock()
		ticks = append(ticks, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != "subset" || len(run.Rows) != len(indices) {
		t.Fatalf("run = %q with %d rows, want %q with %d", run.Name, len(run.Rows), "subset", len(indices))
	}
	for i, idx := range indices {
		if got, want := rowsJSON(t, run.Rows[i:i+1]), rowsJSON(t, full.Rows[idx:idx+1]); got != want {
			t.Errorf("subset row %d (cell %d) diverged:\n got: %s\nwant: %s", i, idx, got, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) == 0 || ticks[len(ticks)-1] != len(indices) {
		t.Errorf("progress ticks = %v", ticks)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsExecuted != uint64(len(indices)) || st.CellsDeduped != 0 {
		t.Errorf("cells executed/deduped = %d/%d, want %d/0", st.CellsExecuted, st.CellsDeduped, len(indices))
	}
}

// TestCellsSingleflightDedup: identical in-flight subset requests
// coalesce onto one execution, exactly like grids and experiments.
func TestCellsSingleflightDedup(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{Name: "dedup", LatenciesMS: []float64{5}, Iterations: 1})
	s := newTestServer(t, 0, 0)
	gate := make(chan struct{})
	s.setExecGate(gate)
	c1 := dialTest(t, s)
	c2 := dialTest(t, s)
	indices := []int{0, 1}
	type outcome struct {
		run *CellsRun
		err error
	}
	results := make(chan outcome, 2)
	for _, c := range []*Client{c1, c2} {
		c := c
		go func() {
			run, err := c.RunCellsCtx(context.Background(), spec, indices, 0, nil)
			results <- outcome{run, err}
		}()
	}
	// One execution submitted, one join deduped onto it.
	var submitted, deduped bool
	waitServerEvent(t, s, func(ev telemetry.Event) bool {
		switch {
		case ev.Type == "submitted" && ev.Exp == "cells":
			submitted = true
		case ev.Type == "deduped" && ev.Exp == "cells":
			deduped = true
		}
		return submitted && deduped
	})
	close(gate)
	var runs []*CellsRun
	for i := 0; i < 2; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		runs = append(runs, out.run)
	}
	if runs[0].Shared == runs[1].Shared {
		t.Errorf("shared flags = %v/%v, want exactly one joined request", runs[0].Shared, runs[1].Shared)
	}
	if got, want := rowsJSON(t, runs[0].Rows), rowsJSON(t, runs[1].Rows); got != want {
		t.Error("coalesced subset results diverged")
	}
}

// TestCellsRejectsBadRequests: empty, out-of-range, and duplicate
// index lists are refused before any simulation.
func TestCellsRejectsBadRequests(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{Name: "bad", LatenciesMS: []float64{5}, Iterations: 1})
	s := newTestServer(t, 1, 0)
	c := dialTest(t, s)
	cases := []struct {
		indices []int
		want    string
	}{
		{nil, "selects no cells"},
		{[]int{0, 99}, "outside grid"},
		{[]int{-1}, "outside grid"},
		{[]int{1, 1}, "duplicate cell index"},
	}
	for _, tc := range cases {
		if _, err := c.RunCellsCtx(context.Background(), spec, tc.indices, 0, nil); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("indices %v error = %v, want %q", tc.indices, err, tc.want)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsExecuted != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want zero executions for rejected subsets", st)
	}
}

// TestCellsCancelAndDeadline: a gated subset request honors both the
// client context (cancel frame) and the server-side TimeoutMS — and
// the connection survives.
func TestCellsCancelAndDeadline(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{Name: "cancel", LatenciesMS: []float64{5}, Iterations: 1})
	s := newTestServer(t, 0, 0)
	gate := make(chan struct{})
	s.setExecGate(gate)
	c := dialTest(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RunCellsCtx(ctx, spec, []int{0}, 0, nil)
		done <- err
	}()
	waitServerEvent(t, s, func(ev telemetry.Event) bool {
		return ev.Type == "submitted" && ev.Exp == "cells"
	})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled subset request did not return promptly")
	}

	// Server-side deadline on a still-gated execution.
	if _, err := c.RunCellsCtx(context.Background(), spec, []int{1}, 50*time.Millisecond, nil); err == nil ||
		!strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline err = %v", err)
	}
	close(gate)
	s.setExecGate(nil)
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection unusable after cancels: %v", err)
	}
}
