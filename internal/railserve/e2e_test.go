package railserve

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"photonrail"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

func newTestServer(t *testing.T, workers int, maxCost int64) *Server {
	t.Helper()
	s, err := NewServer(Config{Workers: workers, MaxCacheCost: maxCost, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// Close abandons in-flight executions by design; Drain afterwards so
	// none outlive the test that started them (they log via t.Logf).
	t.Cleanup(func() { _ = s.Close(); s.Drain() })
	return s
}

func dialTest(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func rowsJSON(t *testing.T, rows []scenario.Row) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLoopbackTwoConcurrentClientsDedup is the end-to-end loopback
// test: an in-process raild serves two concurrent railclient sessions
// requesting the same fig8-5d grid. The daemon must coalesce them onto
// one execution (request-level singleflight: exactly one grid
// execution, zero additional simulations for the second client) and
// hand both byte-identical results.
func TestLoopbackTwoConcurrentClientsDedup(t *testing.T) {
	spec := scenario.SpecOf(scenario.Fig8Grid5D())
	grid, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(grid.Expand())

	// Reference: the same grid on a local engine; its miss count is the
	// simulation budget one execution needs, and its rows are the
	// ground-truth results.
	ref := photonrail.NewEngine(0)
	refRes, err := ref.RunGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	refMisses := ref.CacheStats().Misses
	wantRows := rowsJSON(t, refRes.Rows())

	s := newTestServer(t, 0, 0)
	// Hold the execution at the gate until both requests are registered,
	// so the dedup assertion is deterministic on any machine speed.
	gate := make(chan struct{})
	s.setExecGate(gate)
	c1 := dialTest(t, s)
	c2 := dialTest(t, s)

	type outcome struct {
		run   *GridRun
		err   error
		ticks []int
	}
	results := make(chan outcome, 2)
	submit := func(c *Client) {
		go func() {
			var mu sync.Mutex
			var ticks []int
			run, err := c.RunGrid(spec, func(done, total int) {
				if total != wantCells {
					t.Errorf("progress total = %d, want %d", total, wantCells)
				}
				mu.Lock()
				ticks = append(ticks, done)
				mu.Unlock()
			})
			mu.Lock()
			defer mu.Unlock()
			results <- outcome{run, err, ticks}
		}()
	}
	submit(c1)
	submit(c2)

	// Both grid requests are parked at the gate; the join shows up as a
	// dedup event on the server's lifecycle stream.
	var submitted, deduped bool
	waitServerEvent(t, s, func(ev telemetry.Event) bool {
		switch {
		case ev.Type == "submitted" && ev.Exp == "grid":
			submitted = true
		case ev.Type == "deduped" && ev.Exp == "grid":
			deduped = true
		}
		return submitted && deduped
	})
	close(gate) // release the execution with both subscribers attached

	var runs []*GridRun
	allTicks := make([][]int, 0, 2)
	for i := 0; i < 2; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		runs = append(runs, out.run)
		allTicks = append(allTicks, out.ticks)
	}

	// Byte-identical results for both clients, equal to the local run.
	for i, run := range runs {
		if got := rowsJSON(t, run.Rows); got != wantRows {
			t.Fatalf("client %d rows diverged from the local engine's", i+1)
		}
		if run.Name != "fig8-5d" {
			t.Errorf("client %d grid name = %q", i+1, run.Name)
		}
	}
	// Exactly one of the two was the execution, the other the join.
	if runs[0].Shared == runs[1].Shared {
		t.Errorf("shared flags = %v/%v, want exactly one joined request", runs[0].Shared, runs[1].Shared)
	}

	// Request-level dedup: one grid execution, one coalesced request.
	st, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GridsExecuted != 1 || st.GridsDeduped != 1 {
		t.Fatalf("grids executed/deduped = %d/%d, want 1/1", st.GridsExecuted, st.GridsDeduped)
	}
	// Zero additional simulations: the daemon ran exactly the misses one
	// local execution needs, no matter how many clients asked.
	if st.Misses != refMisses {
		t.Fatalf("daemon misses = %d, want %d (zero additional simulations)", st.Misses, refMisses)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight = %d after completion", st.InFlight)
	}

	// Both clients subscribed before the gate opened, so both streamed
	// monotonic progress up to completion.
	for i, ticks := range allTicks {
		if len(ticks) == 0 {
			t.Fatalf("client %d saw no progress frames", i+1)
		}
		for j := 1; j < len(ticks); j++ {
			if ticks[j] <= ticks[j-1] {
				t.Fatalf("client %d progress ticks not increasing: %v", i+1, ticks)
			}
		}
		if last := ticks[len(ticks)-1]; last != wantCells {
			t.Errorf("client %d final progress tick = %d, want %d", i+1, last, wantCells)
		}
	}
}

// TestRejectsOversizedGridBeforeExecuting: a grid expanding past the
// per-request cell cap is refused up front — no simulation runs, and
// the connection stays usable (the result frame could never have been
// encoded, so executing it would only burn minutes and drop the conn).
func TestRejectsOversizedGridBeforeExecuting(t *testing.T) {
	lats := make([]float64, 9000)
	for i := range lats {
		lats[i] = float64(i + 1)
	}
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "huge",
		Fabrics:     []scenario.FabricKind{scenario.Photonic, scenario.PhotonicProvisioned},
		LatenciesMS: lats, // 18000 cells
		Iterations:  1,
	})
	s := newTestServer(t, 1, 0)
	c := dialTest(t, s)
	_, err := c.RunGrid(spec, nil)
	if err == nil || !strings.Contains(err.Error(), "request cap") {
		t.Fatalf("oversized grid error = %v", err)
	}

	// A compact spec whose axes multiply out to billions of cells: the
	// cap must trip arithmetically, without the daemon ever trying to
	// materialize the cross-product.
	bomb := scenario.SpecOf(scenario.Grid{
		Name:         "bomb",
		Parallelisms: make([]scenario.Parallelism, 50_000),
		LatenciesMS:  make([]float64, 50_000),
		Fabrics:      []scenario.FabricKind{scenario.Photonic},
	})
	if _, err := c.RunGrid(bomb, nil); err == nil || !strings.Contains(err.Error(), "request cap") {
		t.Fatalf("cross-product bomb error = %v", err)
	}

	st, serr := c.Stats()
	if serr != nil {
		t.Fatal(serr)
	}
	if st.GridsExecuted != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want zero executions for rejected grids", st)
	}
}

// TestWarmCacheAcrossSequentialRequests: a repeat of an already-served
// grid re-executes (the request is no longer in flight) but every cell
// is served from the warm memo cache — zero new simulations.
func TestWarmCacheAcrossSequentialRequests(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "warm",
		LatenciesMS: []float64{5},
		Iterations:  1,
	})
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	first, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsJSON(t, second.Rows), rowsJSON(t, first.Rows); got != want {
		t.Fatal("warm rerun diverged from first run")
	}
	if st2.Misses != st1.Misses {
		t.Fatalf("misses grew %d -> %d on a warm rerun", st1.Misses, st2.Misses)
	}
	if st2.GridsExecuted != 2 {
		t.Fatalf("grids executed = %d, want 2 (sequential requests both execute)", st2.GridsExecuted)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, 1, 0)
	c := dialTest(t, s)

	if _, err := c.RunGrid(scenario.Spec{Models: []string{"GPT-9"}}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown model") {
		t.Errorf("bad model error = %v", err)
	}
	if _, err := c.RunGrid(scenario.Spec{JitterFracs: []float64{2}}, nil); err == nil ||
		!strings.Contains(err.Error(), "jitter") {
		t.Errorf("bad jitter error = %v", err)
	}
	// An unbounded name would make the result (or even the refusal)
	// frame unencodable; the refusal must not echo it.
	long := scenario.Spec{Name: strings.Repeat("n", 1<<20)}
	if _, err := c.RunGrid(long, nil); err == nil ||
		!strings.Contains(err.Error(), "byte limit") || len(err.Error()) > 200 {
		t.Errorf("oversized name error = %.80v", err)
	}
	// The connection survives rejected requests.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats after rejections: %v", err)
	}
}

// TestPipelinedRequestsOneConnection: distinct grids submitted
// concurrently on one connection resolve independently (correlated by
// seq), proving the read loop is never parked on an executing grid.
func TestPipelinedRequestsOneConnection(t *testing.T) {
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	specs := []scenario.Spec{
		scenario.SpecOf(scenario.Grid{Name: "p1", LatenciesMS: []float64{5}, Iterations: 1}),
		scenario.SpecOf(scenario.Grid{Name: "p2", LatenciesMS: []float64{20}, Iterations: 1}),
	}
	var wg sync.WaitGroup
	got := make([]*GridRun, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec scenario.Spec) {
			defer wg.Done()
			got[i], errs[i] = c.RunGrid(spec, nil)
		}(i, spec)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i].Name != specs[i].Name {
			t.Errorf("request %d resolved to grid %q, want %q", i, got[i].Name, specs[i].Name)
		}
	}
}

// TestBoundedDaemonEvicts: a daemon with a tiny cache budget still
// serves correct results and reports evictions — the "safe to run
// indefinitely" property.
func TestBoundedDaemonEvicts(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "bounded",
		LatenciesMS: []float64{1, 10, 100},
		Iterations:  1,
	})
	s := newTestServer(t, 2, 1)
	c := dialTest(t, s)
	if _, err := c.RunGrid(spec, nil); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a 1-unit budget", st)
	}
}
