package railserve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"photonrail"
	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// localRendering runs a registry experiment in-process and returns the
// three renderings the daemon is expected to ship byte for byte.
func localRendering(t *testing.T, name string, p photonrail.Params) (text, csv, rows string) {
	t.Helper()
	e, ok := photonrail.Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(context.Background(), photonrail.NewEngine(0), p)
	if err != nil {
		t.Fatal(err)
	}
	var tb, cb, rb bytes.Buffer
	if err := res.RenderText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderJSON(&rb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String(), rb.String()
}

// TestExpLoopbackByteIdentical: a remote experiment's renderings are
// byte-identical to the local registry run's, for a static table and
// for a simulated sweep.
func TestExpLoopbackByteIdentical(t *testing.T) {
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	cases := []struct {
		req opusnet.ExpRequestPayload
		p   photonrail.Params
	}{
		{opusnet.ExpRequestPayload{Name: "table3"}, photonrail.Params{}},
		{opusnet.ExpRequestPayload{Name: "fig8", Iterations: 1, LatenciesMS: []float64{0, 10}},
			photonrail.Params{Iterations: 1, LatenciesMS: []float64{0, 10}}},
	}
	for _, tc := range cases {
		run, err := c.RunExperiment(context.Background(), tc.req, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.req.Name, err)
		}
		text, csv, rows := localRendering(t, tc.req.Name, tc.p)
		if run.Rendered != text {
			t.Errorf("%s: text rendering diverged:\n got: %q\nwant: %q", tc.req.Name, run.Rendered, text)
		}
		if run.RenderedCSV != csv {
			t.Errorf("%s: CSV rendering diverged", tc.req.Name)
		}
		if run.RowsJSON != rows {
			t.Errorf("%s: JSON rows diverged:\n got: %q\nwant: %q", tc.req.Name, run.RowsJSON, rows)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpsExecuted != 2 || st.ExpsDeduped != 0 {
		t.Fatalf("exps executed/deduped = %d/%d, want 2/0", st.ExpsExecuted, st.ExpsDeduped)
	}
}

// TestExpGridThroughExpPath: a grid submitted via exp_req renders
// byte-identically to the grid_req path's rows-based rendering.
func TestExpGridThroughExpPath(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "exp-grid",
		LatenciesMS: []float64{5},
		Iterations:  1,
	})
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	run, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "grid", Grid: &spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Grid != "exp-grid" {
		t.Errorf("grid name = %q", run.Grid)
	}
	legacy, err := c.RunGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// RowsJSON is the indented {"grid","cells"} document; spot-check the
	// grid name and a stable cell name rather than comparing compact vs
	// indented JSON forms.
	if !strings.Contains(run.RowsJSON, "\"grid\": \"exp-grid\"") {
		t.Errorf("RowsJSON = %.120q, want the {\"grid\",\"cells\"} document", run.RowsJSON)
	}
	if len(legacy.Rows) == 0 || !strings.Contains(run.RowsJSON, legacy.Rows[0].Cell) {
		t.Errorf("RowsJSON missing cell %q", legacy.Rows[0].Cell)
	}
	if !strings.Contains(run.Rendered, "cells:") {
		t.Errorf("Rendered = %.120q, want the table + footer", run.Rendered)
	}
}

// TestExpCancelStopsOnlyRequester is the daemon cancellation contract:
// two clients join one in-flight experiment; one cancels. The cancelled
// client gets its error promptly; the other still gets the full result;
// exactly one execution ran.
func TestExpCancelStopsOnlyRequester(t *testing.T) {
	s := newTestServer(t, 0, 0)
	gate := make(chan struct{})
	s.setExecGate(gate)
	c1 := dialTest(t, s)
	c2 := dialTest(t, s)
	req := opusnet.ExpRequestPayload{Name: "fig8", Iterations: 1, LatenciesMS: []float64{0, 10}}

	ctx1, cancel1 := context.WithCancel(context.Background())
	type outcome struct {
		run *ExpRun
		err error
	}
	res1 := make(chan outcome, 1)
	res2 := make(chan outcome, 1)
	go func() {
		run, err := c1.RunExperiment(ctx1, req, nil)
		res1 <- outcome{run, err}
	}()
	// Wait until the first request is registered, then join the second.
	waitServerEvent(t, s, func(ev telemetry.Event) bool {
		return ev.Type == "submitted" && ev.Exp == "fig8"
	})
	go func() {
		run, err := c2.RunExperiment(context.Background(), req, nil)
		res2 <- outcome{run, err}
	}()
	waitServerEvent(t, s, func(ev telemetry.Event) bool {
		return ev.Type == "deduped" && ev.Exp == "fig8"
	})

	cancel1()
	select {
	case out := <-res1:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("cancelled client err = %v, want context.Canceled", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled client did not return promptly")
	}

	close(gate) // release the execution with the surviving subscriber
	select {
	case out := <-res2:
		if out.err != nil {
			t.Fatalf("surviving client err = %v (peer's cancel must not disturb it)", out.err)
		}
		text, _, _ := localRendering(t, "fig8", photonrail.Params{Iterations: 1, LatenciesMS: []float64{0, 10}})
		if out.run.Rendered != text {
			t.Errorf("surviving client rendering diverged")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("surviving client never got its result")
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpsExecuted != 1 || st.ExpsDeduped != 1 {
		t.Fatalf("exps executed/deduped = %d/%d, want 1/1", st.ExpsExecuted, st.ExpsDeduped)
	}
}

// TestExpDeadline: a request whose TimeoutMS elapses while the
// execution is gated fails with a deadline error — and the connection
// stays usable.
func TestExpDeadline(t *testing.T) {
	s := newTestServer(t, 0, 0)
	gate := make(chan struct{})
	s.setExecGate(gate)
	c := dialTest(t, s)
	_, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "table1", TimeoutMS: 50}, nil)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline err = %v", err)
	}
	close(gate)
	s.setExecGate(nil)
	// The connection survives; an ungated rerun succeeds.
	run, err := c.RunExperiment(context.Background(), opusnet.ExpRequestPayload{Name: "table1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(run.Rendered, "Table 1") {
		t.Errorf("rendered = %.80q", run.Rendered)
	}
}

// TestExpRejectsBadRequests: unknown names, grids on non-grid
// experiments, and oversized grids are refused without executing.
func TestExpRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, 1, 0)
	c := dialTest(t, s)
	if _, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "fig99"}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment err = %v", err)
	}
	spec := scenario.SpecOf(scenario.Grid{Name: "g"})
	if _, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "table1", Grid: &spec}, nil); err == nil ||
		!strings.Contains(err.Error(), "does not take a grid") {
		t.Errorf("grid-on-table err = %v", err)
	}
	bomb := scenario.SpecOf(scenario.Grid{
		Name:         "bomb",
		Parallelisms: make([]scenario.Parallelism, 50_000),
		LatenciesMS:  make([]float64, 50_000),
		Fabrics:      []scenario.FabricKind{scenario.Photonic},
	})
	if _, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "grid", Grid: &bomb}, nil); err == nil ||
		!strings.Contains(err.Error(), "request cap") {
		t.Errorf("oversized grid err = %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpsExecuted != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want zero executions for rejected requests", st)
	}
}

// TestExpProgressStreams: a grid experiment through the exp path
// streams monotonic progress ticks.
func TestExpProgressStreams(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{
		Name:        "prog",
		LatenciesMS: []float64{5},
		Iterations:  1,
	})
	s := newTestServer(t, 0, 0)
	c := dialTest(t, s)
	var mu sync.Mutex
	var ticks []int
	_, err := c.RunExperiment(context.Background(),
		opusnet.ExpRequestPayload{Name: "grid", Grid: &spec},
		func(done, total int) {
			mu.Lock()
			ticks = append(ticks, done)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ticks) == 0 {
		t.Fatal("no progress frames")
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
}

// waitServerEvent blocks until pred matches over the server's telemetry
// event stream (retained ring replayed first, then live events) — the
// deterministic replacement for the old waitStats sleep-poll. Lifecycle
// events are emitted strictly after the corresponding stats counters
// become visible, so a matched event implies the counter state the old
// polls waited for.
func waitServerEvent(t *testing.T, s *Server, pred func(telemetry.Event) bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Telemetry().Events.WaitFor(ctx, pred); err != nil {
		t.Fatalf("event wait: %v", err)
	}
}

// TestRunGridCtxTimeout: the legacy grid path's client-side deadline —
// a gated execution makes the call block, the context expiry abandons
// it promptly, and the connection stays usable.
func TestRunGridCtxTimeout(t *testing.T) {
	spec := scenario.SpecOf(scenario.Grid{Name: "slow", LatenciesMS: []float64{5}, Iterations: 1})
	s := newTestServer(t, 0, 0)
	gate := make(chan struct{})
	s.setExecGate(gate)
	c := dialTest(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RunGridCtx(ctx, spec, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("RunGridCtx took %v after expiry", d)
	}
	close(gate)
	s.setExecGate(nil)
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection unusable after timeout: %v", err)
	}
}
