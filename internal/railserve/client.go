package railserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
)

// ErrConnDown reports the client's connection to the daemon failed
// before (or while awaiting) a reply. Callers that fail requests over
// to another daemon — the fleet coordinator — test for it with
// errors.Is to distinguish a dead backend from an application-level
// refusal a retry elsewhere would only repeat.
var ErrConnDown = errors.New("railserve: connection down")

// Client is a connection to a raild daemon. One client may pipeline
// several concurrent RunGrid calls on the one connection; replies are
// correlated by sequence number.
type Client struct {
	conn net.Conn
	// readDone closes when the reader goroutine exits; Close joins it,
	// so a closed client never leaves its progress-routing reader
	// behind (the goroutine-leak regression tests pin this).
	readDone chan struct{}

	// wmu serializes frame writes: WriteMessage issues two conn.Write
	// calls (header, body), so concurrent pipelined requests would
	// interleave bytes and corrupt the stream without it.
	wmu sync.Mutex

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*pendingCall
	readErr error
}

// pendingCall is one outstanding request: progress frames tick the
// callback, the final frame (result, stats, or error) lands on result.
type pendingCall struct {
	seq        uint64
	onProgress func(done, total int)
	result     chan *opusnet.Message
}

// Dial connects to the daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection — the in-process harnesses
// (and the fleet coordinator's pluggable dialer) hand pipe-backed
// conns in here; Dial is NewClient over a TCP connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		readDone: make(chan struct{}),
		pending:  make(map[uint64]*pendingCall),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down (outstanding calls fail) and waits
// for the client's reader goroutine to exit, so callers that close a
// client observe all of its goroutines gone. Do not call Close from
// inside an onProgress callback — the reader runs those, so the join
// would deadlock.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		msg, err := opusnet.ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, p := range c.pending {
				close(p.result)
			}
			c.pending = make(map[uint64]*pendingCall)
			c.mu.Unlock()
			return
		}
		progress := msg.Type == opusnet.MsgGridProgress || msg.Type == opusnet.MsgExpProgress
		c.mu.Lock()
		p, ok := c.pending[msg.Seq]
		if ok && !progress {
			delete(c.pending, msg.Seq) // final frame for this call
		}
		c.mu.Unlock()
		if !ok {
			continue // reply for an abandoned call
		}
		if progress {
			if p.onProgress != nil && msg.Progress != nil {
				p.onProgress(msg.Progress.Done, msg.Progress.Total)
			}
			continue
		}
		p.result <- msg
	}
}

// start registers a pending call and writes the request.
func (c *Client) start(m *opusnet.Message, onProgress func(done, total int)) (*pendingCall, error) {
	p := &pendingCall{onProgress: onProgress, result: make(chan *opusnet.Message, 1)}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	c.seq++
	m.Seq = c.seq
	p.seq = m.Seq
	c.pending[m.Seq] = p
	c.mu.Unlock()
	c.wmu.Lock()
	err := opusnet.WriteMessage(c.conn, m) //lint:allow lockedblock wmu exists to serialize frame writes; it guards nothing a reader blocks on
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	return p, nil
}

// GridRun is one executed grid as the daemon reported it.
type GridRun struct {
	// Name is the grid's name (for rendering).
	Name string
	// Rows are the executed cells in expansion order.
	Rows []scenario.Row
	// Shared reports the daemon coalesced this request onto an identical
	// in-flight request from another client.
	Shared bool
}

// RunGrid submits the grid spec and blocks until the daemon returns the
// executed rows. onProgress, when non-nil, receives per-cell completion
// ticks as the daemon streams them (calls are serialized per request;
// ticks may be dropped on a slow connection — they are advisory).
func (c *Client) RunGrid(spec scenario.Spec, onProgress func(done, total int)) (*GridRun, error) {
	return c.RunGridCtx(context.Background(), spec, onProgress) //lint:allow ctxbg deprecated pre-context wrapper; callers with a context use RunGridCtx
}

// RunGridCtx is RunGrid bounded by ctx: on expiry the call is
// abandoned client-side and ctx.Err() returned promptly (a best-effort
// cancel frame is sent; the legacy grid path executes to completion
// server-side either way, warming the daemon's cache).
func (c *Client) RunGridCtx(ctx context.Context, spec scenario.Spec, onProgress func(done, total int)) (*GridRun, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgGridReq, Spec: &spec}, onProgress)
	if err != nil {
		return nil, err
	}
	resp, err := p.awaitCtx(ctx, c)
	if err != nil {
		return nil, err
	}
	if resp.Type != opusnet.MsgGridResult || resp.Grid == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to grid request", resp.Type)
	}
	return &GridRun{Name: resp.Grid.Name, Rows: resp.Grid.Rows, Shared: resp.Grid.Shared}, nil
}

// awaitCtx blocks for a call's final frame, bounded by ctx: on expiry a
// best-effort cancel frame is sent, the call abandoned locally, and
// ctx.Err() returned promptly.
func (p *pendingCall) awaitCtx(ctx context.Context, c *Client) (*opusnet.Message, error) {
	select {
	case m, ok := <-p.result:
		if !ok {
			return nil, fmt.Errorf("%w: connection closed awaiting reply", ErrConnDown)
		}
		if m.Type == opusnet.MsgErr {
			return nil, fmt.Errorf("railserve: %s", m.Error)
		}
		return m, nil
	case <-ctx.Done():
		c.sendCancel(p.seq)
		c.forget(p.seq)
		return nil, ctx.Err()
	}
}

// CellsRun is one executed cell subset as the daemon reported it.
type CellsRun struct {
	// Name is the resolved grid's name.
	Name string
	// Indices echo the requested expansion-order cell positions.
	Indices []int
	// Rows are the executed cells, ordered as Indices listed them.
	Rows []scenario.Row
	// Shared reports the daemon coalesced this request onto an identical
	// in-flight subset request.
	Shared bool
}

// RunCellsCtx executes the subset of the grid's expanded cells at the
// given indices — the fleet coordinator's fan-out call. Semantics
// mirror RunExperiment: the wait is bounded by ctx (a cancel frame is
// sent on expiry so the daemon stops only this request's wait), and
// onProgress receives advisory ticks over the subset.
func (c *Client) RunCellsCtx(ctx context.Context, spec scenario.Spec, indices []int, timeout time.Duration, onProgress func(done, total int)) (*CellsRun, error) {
	req := opusnet.CellsRequestPayload{Spec: &spec, Indices: indices, TimeoutMS: timeout.Milliseconds()}
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgCellsReq, Cells: &req}, onProgress)
	if err != nil {
		return nil, err
	}
	resp, err := p.awaitCtx(ctx, c)
	if err != nil {
		return nil, err
	}
	if resp.Type != opusnet.MsgCellsResult || resp.CellsResult == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to cells request", resp.Type)
	}
	r := resp.CellsResult
	return &CellsRun{Name: r.Name, Indices: r.Indices, Rows: r.Rows, Shared: r.Shared}, nil
}

// ExpRun is one completed experiment as the daemon reported it: the
// exact bytes each output format prints, rendered server-side.
type ExpRun struct {
	// Name is the experiment that ran; Grid is the executed grid's name
	// for grid experiments.
	Name, Grid string
	// Rendered, RenderedCSV, and RowsJSON are the aligned-text, CSV,
	// and indented-JSON renderings.
	Rendered, RenderedCSV, RowsJSON string
	// Shared reports the daemon coalesced this request onto an
	// identical in-flight request.
	Shared bool
}

// RunExperiment submits a registered experiment by name and blocks
// until the daemon returns the result, the request's TimeoutMS elapses
// server-side, or ctx is cancelled — in which case a cancel frame is
// sent so the daemon stops only this request's wait (an execution other
// clients joined keeps running for them) and ctx.Err() is returned
// promptly. onProgress receives advisory completion ticks.
func (c *Client) RunExperiment(ctx context.Context, req opusnet.ExpRequestPayload, onProgress func(done, total int)) (*ExpRun, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgExpReq, Exp: &req}, onProgress)
	if err != nil {
		return nil, err
	}
	resp, err := p.awaitCtx(ctx, c)
	if err != nil {
		return nil, err
	}
	if resp.Type != opusnet.MsgExpResult || resp.ExpResult == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to experiment request", resp.Type)
	}
	r := resp.ExpResult
	return &ExpRun{
		Name: r.Name, Grid: r.Grid,
		Rendered: r.Rendered, RenderedCSV: r.RenderedCSV, RowsJSON: r.RowsJSON,
		Shared: r.Shared,
	}, nil
}

// ack sends a request frame and blocks for its MsgAck, bounded by ctx
// — the shared shape of the fleet control-plane calls (register,
// heartbeat, drain), whose replies carry no payload.
func (c *Client) ack(ctx context.Context, m *opusnet.Message) error {
	p, err := c.start(m, nil)
	if err != nil {
		return err
	}
	resp, err := p.awaitCtx(ctx, c)
	if err != nil {
		return err
	}
	if resp.Type != opusnet.MsgAck {
		return fmt.Errorf("railserve: unexpected reply %q to %s", resp.Type, m.Type)
	}
	return nil
}

// FleetRegister announces a backend to a fleet coordinator and blocks
// for the acknowledgement — the agent's registration call.
func (c *Client) FleetRegister(ctx context.Context, p opusnet.FleetRegisterPayload) error {
	return c.ack(ctx, &opusnet.Message{Type: opusnet.MsgFleetRegister, FleetReg: &p})
}

// FleetHeartbeat refreshes a registration (liveness, capacity, piggy-
// backed stats) and blocks for the acknowledgement. A coordinator that
// no longer knows the identity refuses with MsgErr, surfacing here as
// an error the caller answers by re-registering.
func (c *Client) FleetHeartbeat(ctx context.Context, p opusnet.HeartbeatPayload) error {
	return c.ack(ctx, &opusnet.Message{Type: opusnet.MsgHeartbeat, Heartbeat: &p})
}

// FleetDrain announces a graceful departure; the acknowledgement
// guarantees the coordinator will assign the backend no new work.
func (c *Client) FleetDrain(ctx context.Context, p opusnet.DrainPayload) error {
	return c.ack(ctx, &opusnet.Message{Type: opusnet.MsgDrain, DrainReq: &p})
}

// sendCancel writes a cancel frame for an outstanding request's seq.
func (c *Client) sendCancel(seq uint64) {
	c.wmu.Lock()
	//lint:allow lockedblock wmu exists to serialize frame writes; it guards nothing a reader blocks on
	_ = opusnet.WriteMessage(c.conn, &opusnet.Message{Type: opusnet.MsgCancel, Seq: seq})
	c.wmu.Unlock()
}

// forget abandons an outstanding call: later frames for it are dropped.
func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// Stats fetches the daemon's serving telemetry.
func (c *Client) Stats() (opusnet.CacheStatsPayload, error) {
	return c.StatsCtx(context.Background()) //lint:allow ctxbg deprecated pre-context wrapper; callers with a context use StatsCtx
}

// StatsCtx is Stats bounded by ctx — the fleet coordinator uses it so
// one wedged backend cannot hang an aggregated stats reply.
func (c *Client) StatsCtx(ctx context.Context) (opusnet.CacheStatsPayload, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgStatsReq}, nil)
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	resp, err := p.awaitCtx(ctx, c)
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	if resp.Type != opusnet.MsgStatsResp || resp.Cache == nil {
		return opusnet.CacheStatsPayload{}, fmt.Errorf("railserve: unexpected reply %q to stats request", resp.Type)
	}
	return *resp.Cache, nil
}
