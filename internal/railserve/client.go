package railserve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
)

// Client is a connection to a raild daemon. One client may pipeline
// several concurrent RunGrid calls on the one connection; replies are
// correlated by sequence number.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes: WriteMessage issues two conn.Write
	// calls (header, body), so concurrent pipelined requests would
	// interleave bytes and corrupt the stream without it.
	wmu sync.Mutex

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*pendingCall
	readErr error
}

// pendingCall is one outstanding request: progress frames tick the
// callback, the final frame (result, stats, or error) lands on result.
type pendingCall struct {
	onProgress func(done, total int)
	result     chan *opusnet.Message
}

// Dial connects to the daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]*pendingCall),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	for {
		msg, err := opusnet.ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, p := range c.pending {
				close(p.result)
			}
			c.pending = make(map[uint64]*pendingCall)
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		p, ok := c.pending[msg.Seq]
		if ok && msg.Type != opusnet.MsgGridProgress {
			delete(c.pending, msg.Seq) // final frame for this call
		}
		c.mu.Unlock()
		if !ok {
			continue // reply for an abandoned call
		}
		if msg.Type == opusnet.MsgGridProgress {
			if p.onProgress != nil && msg.Progress != nil {
				p.onProgress(msg.Progress.Done, msg.Progress.Total)
			}
			continue
		}
		p.result <- msg
	}
}

// start registers a pending call and writes the request.
func (c *Client) start(m *opusnet.Message, onProgress func(done, total int)) (*pendingCall, error) {
	p := &pendingCall{onProgress: onProgress, result: make(chan *opusnet.Message, 1)}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("railserve: connection down: %w", err)
	}
	c.seq++
	m.Seq = c.seq
	c.pending[m.Seq] = p
	c.mu.Unlock()
	c.wmu.Lock()
	err := opusnet.WriteMessage(c.conn, m)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// await blocks for a call's final frame.
func (p *pendingCall) await() (*opusnet.Message, error) {
	resp, ok := <-p.result
	if !ok {
		return nil, fmt.Errorf("railserve: connection closed awaiting reply")
	}
	if resp.Type == opusnet.MsgErr {
		return nil, fmt.Errorf("railserve: %s", resp.Error)
	}
	return resp, nil
}

// GridRun is one executed grid as the daemon reported it.
type GridRun struct {
	// Name is the grid's name (for rendering).
	Name string
	// Rows are the executed cells in expansion order.
	Rows []scenario.Row
	// Shared reports the daemon coalesced this request onto an identical
	// in-flight request from another client.
	Shared bool
}

// RunGrid submits the grid spec and blocks until the daemon returns the
// executed rows. onProgress, when non-nil, receives per-cell completion
// ticks as the daemon streams them (calls are serialized per request;
// ticks may be dropped on a slow connection — they are advisory).
func (c *Client) RunGrid(spec scenario.Spec, onProgress func(done, total int)) (*GridRun, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgGridReq, Spec: &spec}, onProgress)
	if err != nil {
		return nil, err
	}
	resp, err := p.await()
	if err != nil {
		return nil, err
	}
	if resp.Type != opusnet.MsgGridResult || resp.Grid == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to grid request", resp.Type)
	}
	return &GridRun{Name: resp.Grid.Name, Rows: resp.Grid.Rows, Shared: resp.Grid.Shared}, nil
}

// Stats fetches the daemon's serving telemetry.
func (c *Client) Stats() (opusnet.CacheStatsPayload, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgStatsReq}, nil)
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	resp, err := p.await()
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	if resp.Type != opusnet.MsgStatsResp || resp.Cache == nil {
		return opusnet.CacheStatsPayload{}, fmt.Errorf("railserve: unexpected reply %q to stats request", resp.Type)
	}
	return *resp.Cache, nil
}
