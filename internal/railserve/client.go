package railserve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
)

// Client is a connection to a raild daemon. One client may pipeline
// several concurrent RunGrid calls on the one connection; replies are
// correlated by sequence number.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes: WriteMessage issues two conn.Write
	// calls (header, body), so concurrent pipelined requests would
	// interleave bytes and corrupt the stream without it.
	wmu sync.Mutex

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*pendingCall
	readErr error
}

// pendingCall is one outstanding request: progress frames tick the
// callback, the final frame (result, stats, or error) lands on result.
type pendingCall struct {
	seq        uint64
	onProgress func(done, total int)
	result     chan *opusnet.Message
}

// Dial connects to the daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]*pendingCall),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	for {
		msg, err := opusnet.ReadMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, p := range c.pending {
				close(p.result)
			}
			c.pending = make(map[uint64]*pendingCall)
			c.mu.Unlock()
			return
		}
		progress := msg.Type == opusnet.MsgGridProgress || msg.Type == opusnet.MsgExpProgress
		c.mu.Lock()
		p, ok := c.pending[msg.Seq]
		if ok && !progress {
			delete(c.pending, msg.Seq) // final frame for this call
		}
		c.mu.Unlock()
		if !ok {
			continue // reply for an abandoned call
		}
		if progress {
			if p.onProgress != nil && msg.Progress != nil {
				p.onProgress(msg.Progress.Done, msg.Progress.Total)
			}
			continue
		}
		p.result <- msg
	}
}

// start registers a pending call and writes the request.
func (c *Client) start(m *opusnet.Message, onProgress func(done, total int)) (*pendingCall, error) {
	p := &pendingCall{onProgress: onProgress, result: make(chan *opusnet.Message, 1)}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("railserve: connection down: %w", err)
	}
	c.seq++
	m.Seq = c.seq
	p.seq = m.Seq
	c.pending[m.Seq] = p
	c.mu.Unlock()
	c.wmu.Lock()
	err := opusnet.WriteMessage(c.conn, m)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// await blocks for a call's final frame.
func (p *pendingCall) await() (*opusnet.Message, error) {
	resp, ok := <-p.result
	if !ok {
		return nil, fmt.Errorf("railserve: connection closed awaiting reply")
	}
	if resp.Type == opusnet.MsgErr {
		return nil, fmt.Errorf("railserve: %s", resp.Error)
	}
	return resp, nil
}

// GridRun is one executed grid as the daemon reported it.
type GridRun struct {
	// Name is the grid's name (for rendering).
	Name string
	// Rows are the executed cells in expansion order.
	Rows []scenario.Row
	// Shared reports the daemon coalesced this request onto an identical
	// in-flight request from another client.
	Shared bool
}

// RunGrid submits the grid spec and blocks until the daemon returns the
// executed rows. onProgress, when non-nil, receives per-cell completion
// ticks as the daemon streams them (calls are serialized per request;
// ticks may be dropped on a slow connection — they are advisory).
func (c *Client) RunGrid(spec scenario.Spec, onProgress func(done, total int)) (*GridRun, error) {
	return c.RunGridCtx(context.Background(), spec, onProgress)
}

// RunGridCtx is RunGrid bounded by ctx: on expiry the call is
// abandoned client-side and ctx.Err() returned promptly (a best-effort
// cancel frame is sent; the legacy grid path executes to completion
// server-side either way, warming the daemon's cache).
func (c *Client) RunGridCtx(ctx context.Context, spec scenario.Spec, onProgress func(done, total int)) (*GridRun, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgGridReq, Spec: &spec}, onProgress)
	if err != nil {
		return nil, err
	}
	var resp *opusnet.Message
	select {
	case m, ok := <-p.result:
		if !ok {
			return nil, fmt.Errorf("railserve: connection closed awaiting reply")
		}
		resp = m
	case <-ctx.Done():
		c.sendCancel(p.seq)
		c.forget(p.seq)
		return nil, ctx.Err()
	}
	if resp.Type == opusnet.MsgErr {
		return nil, fmt.Errorf("railserve: %s", resp.Error)
	}
	if resp.Type != opusnet.MsgGridResult || resp.Grid == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to grid request", resp.Type)
	}
	return &GridRun{Name: resp.Grid.Name, Rows: resp.Grid.Rows, Shared: resp.Grid.Shared}, nil
}

// ExpRun is one completed experiment as the daemon reported it: the
// exact bytes each output format prints, rendered server-side.
type ExpRun struct {
	// Name is the experiment that ran; Grid is the executed grid's name
	// for grid experiments.
	Name, Grid string
	// Rendered, RenderedCSV, and RowsJSON are the aligned-text, CSV,
	// and indented-JSON renderings.
	Rendered, RenderedCSV, RowsJSON string
	// Shared reports the daemon coalesced this request onto an
	// identical in-flight request.
	Shared bool
}

// RunExperiment submits a registered experiment by name and blocks
// until the daemon returns the result, the request's TimeoutMS elapses
// server-side, or ctx is cancelled — in which case a cancel frame is
// sent so the daemon stops only this request's wait (an execution other
// clients joined keeps running for them) and ctx.Err() is returned
// promptly. onProgress receives advisory completion ticks.
func (c *Client) RunExperiment(ctx context.Context, req opusnet.ExpRequestPayload, onProgress func(done, total int)) (*ExpRun, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgExpReq, Exp: &req}, onProgress)
	if err != nil {
		return nil, err
	}
	var resp *opusnet.Message
	select {
	case m, ok := <-p.result:
		if !ok {
			return nil, fmt.Errorf("railserve: connection closed awaiting reply")
		}
		resp = m
	case <-ctx.Done():
		// Best-effort: tell the daemon this wait is over, then abandon
		// the call locally (its eventual error frame is dropped).
		c.sendCancel(p.seq)
		c.forget(p.seq)
		return nil, ctx.Err()
	}
	if resp.Type == opusnet.MsgErr {
		return nil, fmt.Errorf("railserve: %s", resp.Error)
	}
	if resp.Type != opusnet.MsgExpResult || resp.ExpResult == nil {
		return nil, fmt.Errorf("railserve: unexpected reply %q to experiment request", resp.Type)
	}
	r := resp.ExpResult
	return &ExpRun{
		Name: r.Name, Grid: r.Grid,
		Rendered: r.Rendered, RenderedCSV: r.RenderedCSV, RowsJSON: r.RowsJSON,
		Shared: r.Shared,
	}, nil
}

// sendCancel writes a cancel frame for an outstanding request's seq.
func (c *Client) sendCancel(seq uint64) {
	c.wmu.Lock()
	_ = opusnet.WriteMessage(c.conn, &opusnet.Message{Type: opusnet.MsgCancel, Seq: seq})
	c.wmu.Unlock()
}

// forget abandons an outstanding call: later frames for it are dropped.
func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// Stats fetches the daemon's serving telemetry.
func (c *Client) Stats() (opusnet.CacheStatsPayload, error) {
	p, err := c.start(&opusnet.Message{Type: opusnet.MsgStatsReq}, nil)
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	resp, err := p.await()
	if err != nil {
		return opusnet.CacheStatsPayload{}, err
	}
	if resp.Type != opusnet.MsgStatsResp || resp.Cache == nil {
		return opusnet.CacheStatsPayload{}, fmt.Errorf("railserve: unexpected reply %q to stats request", resp.Type)
	}
	return *resp.Cache, nil
}
