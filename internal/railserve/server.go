// Package railserve is the sweep-serving daemon behind cmd/raild: a
// long-running TCP service that executes scenario grids for remote
// clients over the opusnet framed protocol. Where every one-shot CLI
// run rebuilds the memo cache from scratch, the daemon keeps one
// engine — and its simulation cache — warm across requests, shards each
// grid's cells across the engine's worker pool, and streams per-cell
// progress frames back so clients render live progress.
//
// Two layers of deduplication serve concurrent clients:
//
//   - request-level singleflight: identical in-flight grid requests
//     (keyed on the resolved grid) coalesce onto one execution, with
//     progress and results fanned out to every subscriber;
//   - simulation-level memoization: distinct grids sharing cells (or
//     electrical baselines) reuse the engine's cached simulations.
//
// The engine is cost-bounded (photonrail.NewBoundedEngine), so the
// daemon is safe to run indefinitely: cold results are evicted LRU-wise
// instead of growing without bound.
//
// One known limitation: an execution whose every subscriber disconnects
// is not cancelled — the engine has no cancellation plumbing — so it
// runs to completion on the shared pool. Its simulations land in the
// warm cache and serve later requests, but a stream of abandoned
// distinct grids can still occupy workers; cancellation would need
// context support in internal/exp.
package railserve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail"
	"photonrail/internal/exp"
	"photonrail/internal/opusnet"
)

// Config parameterizes NewServer.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Workers is the engine worker-pool size (0 = NumCPU).
	Workers int
	// MaxCacheCost bounds the engine's memo cache in simulation units
	// (0 = unbounded; see photonrail.NewBoundedEngine).
	MaxCacheCost int64
	// Logf, when non-nil, receives one line per served request.
	Logf func(format string, args ...any)
}

// Server is the sweep-serving daemon.
type Server struct {
	ln     net.Listener
	engine *photonrail.Engine
	logf   func(format string, args ...any)

	mu       sync.Mutex
	inflight map[string]*gridRun // resolved-grid key -> running execution
	conns    map[net.Conn]bool
	closed   bool
	// gridsExecuted counts grid executions actually started;
	// gridsDeduped counts requests coalesced onto one of them. The gap
	// between requests received and gridsExecuted is the request-level
	// dedup win the loopback e2e test asserts on.
	gridsExecuted, gridsDeduped uint64

	// wg tracks the accept loop and connection handlers — everything
	// Close must wait for. Grid executions and result deliveries are
	// tracked separately (execWG): once every connection is closed their
	// results are undeliverable, so Close abandons them rather than
	// blocking a shutdown on minutes of unwanted simulation.
	wg     sync.WaitGroup
	execWG sync.WaitGroup

	// execGate, when non-nil, is received from before each grid
	// execution starts — a test-only hook that lets the loopback tests
	// hold a request in flight deterministically. Guarded by mu.
	execGate <-chan struct{}
}

// setExecGate installs the test-only execution gate (under mu, so
// handler goroutines observe it).
func (s *Server) setExecGate(gate <-chan struct{}) {
	s.mu.Lock()
	s.execGate = gate
	s.mu.Unlock()
}

// maxGridName bounds a requested grid's name. The name is echoed into
// the result payload and error messages; without a bound, a name sized
// near the 8 MiB request-frame limit would make the reply frame
// unencodable after the grid had already executed.
const maxGridName = 256

// maxGridCells caps one request's cell count. The result frame carries
// one JSON row per cell inside opusnet's 8 MiB frame limit — rows run
// ~400 bytes and stay under 1 KiB even with pathological coordinate
// and skip-reason strings, so 4096 cells keep the reply below half the
// frame limit. Rejecting over-large grids up front (arithmetically,
// via CellCount, before any expansion) keeps the daemon from being
// OOM-killed by a huge cross-product or from simulating for minutes
// only to fail encoding the reply.
const maxGridCells = 4096

// gridRun is one in-flight grid execution with its subscribers.
type gridRun struct {
	done chan struct{}
	res  *photonrail.GridResult
	err  error

	mu   sync.Mutex
	subs []func(done, total int)
}

// subscribe adds a progress listener; fan-out calls are serialized per
// run (the engine already serializes its progress hook, but subscribers
// can be added mid-run).
func (r *gridRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *gridRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// NewServer starts the daemon listening on cfg.Addr. Close stops it.
func NewServer(cfg Config) (*Server, error) {
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:       ln,
		engine:   photonrail.NewBoundedEngine(cfg.Workers, cfg.MaxCacheCost),
		logf:     cfg.Logf,
		inflight: make(map[string]*gridRun),
		conns:    make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Engine exposes the daemon's engine (tests assert on its cache stats).
func (s *Server) Engine() *photonrail.Engine { return s.engine }

// Stats reports the daemon's serving telemetry: the engine's cache
// counters plus the request-level grid dedup counters.
func (s *Server) Stats() opusnet.CacheStatsPayload {
	st := s.engine.CacheStats()
	s.mu.Lock()
	executed, deduped := s.gridsExecuted, s.gridsDeduped
	s.mu.Unlock()
	return opusnet.CacheStatsPayload{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		InFlight:      st.InFlight,
		GridsExecuted: executed,
		GridsDeduped:  deduped,
	}
}

// Close stops accepting, tears down live connections, and waits for
// their handlers to finish. In-flight grid executions are NOT waited
// for: their results are undeliverable once the connections are gone,
// so they wind down on their own (or die with the process) — a SIGTERM
// never blocks on minutes of abandoned simulation.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Drain waits for in-flight grid executions and result deliveries to
// finish. Tests use it so abandoned executions never outlive the test
// that started them; a production shutdown calls Close alone.
func (s *Server) Drain() { s.execWG.Wait() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			done := s.closed
			s.mu.Unlock()
			if done {
				return
			}
			if s.logf != nil {
				s.logf("railserve: accept: %v", err)
			}
			// Persistent accept errors (e.g. fd exhaustion) would
			// otherwise busy-spin the loop and flood the log.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// replyBuffer bounds the per-connection reply queue: results and
// progress frames queue here while the socket drains.
const replyBuffer = 256

// handle serves one client connection. Replies are serialized through a
// per-connection writer goroutine so progress fan-out (which runs on
// the engine's pool) never blocks on a socket. Required frames
// (results, errors) on a wedged connection close it — the reply is
// dropped, and the peer sees the closed socket instead of waiting
// forever; advisory progress frames are simply dropped.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	out := make(chan *opusnet.Message, replyBuffer)
	var wout sync.WaitGroup
	wout.Add(1)
	go func() {
		defer wout.Done()
		dead := false
		for m := range out {
			if dead {
				continue // drain so senders never block on a dead socket
			}
			if err := opusnet.WriteMessage(conn, m); err != nil {
				// The error may be pre-write (e.g. an oversized frame)
				// with the socket itself still healthy; close it anyway,
				// because the peer is now missing a reply it would wait
				// on forever.
				dead = true
				_ = conn.Close()
			}
		}
	}()
	// A grid execution this connection subscribed to may still broadcast
	// after the read loop exits; sending on the closed writer channel
	// would panic. sendClosed gates every reply: once the connection is
	// torn down, late progress frames and results are dropped (the peer
	// is gone either way).
	var sendMu sync.Mutex
	sendClosed := false
	defer wout.Wait()
	defer func() {
		sendMu.Lock()
		sendClosed = true
		sendMu.Unlock()
		close(out)
	}()
	reply := func(m *opusnet.Message, required bool) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if sendClosed {
			return
		}
		select {
		case out <- m:
		default:
			if required {
				// replyBuffer outstanding frames: the peer is dead or
				// wedged. Close the connection so it sees an error
				// instead of waiting forever on the dropped reply.
				_ = conn.Close()
			}
			// Advisory progress frames are dropped silently.
		}
	}
	for {
		msg, err := opusnet.ReadMessage(conn)
		if err != nil {
			return
		}
		s.dispatch(msg, reply)
	}
}

func (s *Server) dispatch(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	switch msg.Type {
	case opusnet.MsgGridReq:
		s.serveGrid(msg, reply)
	case opusnet.MsgStatsReq:
		st := s.Stats()
		reply(&opusnet.Message{Type: opusnet.MsgStatsResp, Seq: msg.Seq, Cache: &st}, true)
	default:
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
			Error: fmt.Sprintf("railserve: unsupported message type %q", msg.Type)}, true)
	}
}

// serveGrid resolves and validates the request, then either joins an
// identical in-flight execution (request-level singleflight) or starts
// one. The caller's read loop is never blocked: execution and the final
// reply run on their own goroutine.
func (s *Server) serveGrid(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	if msg.Spec == nil {
		fail(fmt.Errorf("railserve: grid request without a spec"))
		return
	}
	if len(msg.Spec.Name) > maxGridName {
		// Deliberately does not echo the name: the refusal frame must
		// stay encodable.
		fail(fmt.Errorf("railserve: grid name of %d bytes exceeds the %d-byte limit", len(msg.Spec.Name), maxGridName))
		return
	}
	grid, err := msg.Spec.Resolve()
	if err != nil {
		fail(err)
		return
	}
	if err := grid.Validate(); err != nil {
		fail(err)
		return
	}
	// Reject over-large grids before any expansion or simulation: the
	// count is computed arithmetically, so a spec whose axes multiply
	// out to billions of cells cannot OOM the daemon, and a grid whose
	// result frame could never be encoded is refused before burning the
	// execution.
	cells := grid.CellCount()
	if cells > maxGridCells {
		fail(fmt.Errorf("railserve: grid %q expands to %d cells, exceeding the %d-cell request cap",
			grid.Name, cells, maxGridCells))
		return
	}
	key := exp.Key("grid", grid)

	s.mu.Lock()
	gate := s.execGate
	run, shared := s.inflight[key]
	if shared {
		s.gridsDeduped++
	} else {
		run = &gridRun{done: make(chan struct{})}
		s.inflight[key] = run
		s.gridsExecuted++
	}
	s.mu.Unlock()

	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgGridProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})

	if !shared {
		if s.logf != nil {
			s.logf("railserve: grid %q: executing (%d cells)", grid.Name, cells)
		}
		s.execWG.Add(1)
		go func() {
			defer s.execWG.Done()
			if gate != nil {
				<-gate // test-only hold, see execGate
			}
			run.res, run.err = s.engine.RunGridProgress(grid, run.broadcast)
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(run.done)
		}()
	} else if s.logf != nil {
		s.logf("railserve: grid %q: joined in-flight execution", grid.Name)
	}

	// Deliver the result without blocking the connection's read loop, so
	// one client can pipeline several grid requests on one connection.
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		<-run.done
		if run.err != nil {
			fail(run.err)
			return
		}
		reply(&opusnet.Message{Type: opusnet.MsgGridResult, Seq: seq, Grid: &opusnet.GridResultPayload{
			Name:   grid.Name,
			Rows:   run.res.Rows(),
			Shared: shared,
		}}, true)
	}()
}
