// Package railserve is the experiment-serving daemon behind cmd/raild:
// a long-running TCP service that executes any experiment in the
// photonrail registry — figure sweeps, window analyses, cost tables,
// scenario grids — for remote clients over the opusnet framed
// protocol. Where every one-shot CLI run rebuilds the memo cache from
// scratch, the daemon keeps one engine — and its simulation cache —
// warm across requests, shards each request's jobs across the engine's
// worker pool, and streams progress frames back so clients render live
// progress.
//
// Two layers of deduplication serve concurrent clients:
//
//   - request-level singleflight: identical in-flight requests (keyed
//     on the resolved grid, the experiment name + parameters, or the
//     grid + index list of a cell subset) coalesce onto one execution,
//     with progress and results fanned out to every subscriber;
//   - simulation-level memoization: distinct requests sharing
//     simulations (or electrical baselines) reuse the engine's cache.
//
// Beyond whole grids and registry experiments, the daemon executes
// cell *subsets* (cells_req: a grid spec plus expansion-order indices)
// — the partial-execution unit internal/railfleet shards a grid into
// when fanning it out across a fleet of these daemons.
//
// Cancellation is first-class on the experiment and cell-subset paths:
// every request
// may carry a deadline (TimeoutMS), a client may send a cancel frame
// referencing its request's Seq, and a dropped connection cancels its
// requests' waits. All three stop only that request's wait — an
// execution other clients joined keeps running for them; only when the
// last subscriber departs is the execution's context cancelled, which
// stops scheduling new simulation jobs (in-flight simulations land in
// the warm cache either way). Server.Close cancels the base context,
// so shutdown also stops abandoned executions from scheduling more
// work.
//
// The engine is cost-bounded (photonrail.NewBoundedEngine), so the
// daemon is safe to run indefinitely: cold results are evicted LRU-wise
// instead of growing without bound.
package railserve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photonrail"
	"photonrail/internal/exp"
	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// Config parameterizes NewServer.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Listener, when non-nil, serves instead of a fresh TCP listener on
	// Addr — the in-process loopback and fault-injection test harnesses
	// plug pipe-backed listeners in here.
	Listener net.Listener
	// Workers is the engine worker-pool size (0 = NumCPU).
	Workers int
	// MaxCacheCost bounds the engine's memo cache in simulation units
	// (0 = unbounded; see photonrail.NewBoundedEngine).
	MaxCacheCost int64
	// Logf, when non-nil, receives one line per served request.
	Logf func(format string, args ...any)
}

// eventRingCapacity bounds the daemon's request-lifecycle event ring:
// large enough that a deterministic test wait (or an /events tail
// attaching mid-run) sees a complete window over any realistic burst,
// small enough to cap memory; overflow drops oldest and is counted.
const eventRingCapacity = 4096

// Server is the experiment-serving daemon.
type Server struct {
	ln     net.Listener
	engine *photonrail.Engine
	logf   func(format string, args ...any)

	// tel is the daemon's observability surface: sampled stats_resp
	// metrics, live request gauges/histograms, and the lifecycle event
	// ring. Always on; cmd/raild exposes it over HTTP when asked.
	tel       *telemetry.Set
	reqSeq    atomic.Uint64 // request-id allocator ("r1", "r2", ...)
	inflightG *telemetry.Gauge
	durations *telemetry.HistogramVec

	// baseCtx parents every execution and request wait; Close cancels
	// it, so shutdown stops in-flight executions from scheduling more
	// simulation jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*gridRun // resolved-grid key -> running execution
	runs     map[string]*waitRun // experiment/cell-subset key -> running execution
	conns    map[net.Conn]bool
	closed   bool
	// gridsExecuted counts grid executions actually started;
	// gridsDeduped counts requests coalesced onto one of them. The gap
	// between requests received and gridsExecuted is the request-level
	// dedup win the loopback e2e test asserts on. expsExecuted and
	// expsDeduped are the experiment-path twins; cellsExecuted counts
	// CELLS executed through the subset path (the fleet distribution
	// tests assert every backend got some), cellsDeduped coalesced
	// subset requests.
	gridsExecuted, gridsDeduped uint64
	expsExecuted, expsDeduped   uint64
	cellsExecuted, cellsDeduped uint64

	// wg tracks the accept loop and connection handlers — everything
	// Close must wait for. Grid executions and result deliveries are
	// tracked separately (execWG): once every connection is closed their
	// results are undeliverable, so Close abandons them rather than
	// blocking a shutdown on minutes of unwanted simulation.
	wg     sync.WaitGroup
	execWG sync.WaitGroup

	// execGate, when non-nil, is received from before each grid
	// execution starts — a test-only hook that lets the loopback tests
	// hold a request in flight deterministically. Guarded by mu.
	execGate <-chan struct{}
}

// setExecGate installs the test-only execution gate (under mu, so
// handler goroutines observe it).
func (s *Server) setExecGate(gate <-chan struct{}) {
	s.mu.Lock()
	s.execGate = gate
	s.mu.Unlock()
}

// maxGridName bounds a requested grid's name. The name is echoed into
// the result payload and error messages; without a bound, a name sized
// near the 8 MiB request-frame limit would make the reply frame
// unencodable after the grid had already executed.
const maxGridName = 256

// maxGridCells caps one request's cell count. The result frame carries
// one JSON row per cell inside opusnet's 8 MiB frame limit — rows run
// ~400 bytes and stay under 1 KiB even with pathological coordinate
// and skip-reason strings, so 4096 cells keep the reply below half the
// frame limit. Rejecting over-large grids up front (arithmetically,
// via CellCount, before any expansion) keeps the daemon from being
// OOM-killed by a huge cross-product or from simulating for minutes
// only to fail encoding the reply.
const maxGridCells = 4096

// gridRun is one in-flight grid execution with its subscribers.
type gridRun struct {
	done chan struct{}
	res  *photonrail.GridResult
	err  error

	mu   sync.Mutex
	subs []func(done, total int)
}

// subscribe adds a progress listener; fan-out calls are serialized per
// run (the engine already serializes its progress hook, but subscribers
// can be added mid-run).
func (r *gridRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *gridRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// NewServer starts the daemon listening on cfg.Listener (when set) or
// a fresh TCP listener on cfg.Addr. Close stops it.
func NewServer(cfg Config) (*Server, error) {
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, err
		}
	}
	//lint:allow ctxbg the daemon's lifetime root: every request context derives from it and Close cancels it
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		ln:         ln,
		engine:     photonrail.NewBoundedEngine(cfg.Workers, cfg.MaxCacheCost),
		logf:       cfg.Logf,
		tel:        telemetry.NewSet(eventRingCapacity, func() int64 { return time.Now().UnixNano() }),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		inflight:   make(map[string]*gridRun),
		runs:       make(map[string]*waitRun),
		conns:      make(map[net.Conn]bool),
	}
	s.inflightG = s.tel.Metrics.Gauge("raild_requests_inflight",
		"Requests admitted (validated and joined or started an execution) and awaiting their final reply.")
	s.durations = s.tel.Metrics.HistogramVec("raild_request_duration_seconds",
		"Admitted-request wall time from arrival to final reply, by experiment (grid_req and cells_req label as \"grid\" and \"cells\").",
		telemetry.DefLatencyBuckets, "experiment")
	stageDur := s.tel.Metrics.HistogramVec("raild_stage_duration_seconds",
		"Wall time of simulations actually computed (cache misses), by pipeline stage.",
		telemetry.DefLatencyBuckets, "stage")
	s.engine.SetStageObserver(func(stage string, seconds float64) {
		if stage == "" {
			stage = "other"
		}
		stageDur.With(stage).Observe(seconds)
	})
	// The sampled stats_resp mirror: a /metrics scrape reports exactly
	// what a stats frame would, from the same Stats call.
	opusnet.RegisterStatsMetrics(s.tel.Metrics, "raild", s.Stats)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Telemetry exposes the daemon's metrics registry and event log;
// cmd/raild serves Telemetry().Handler() on -metrics-addr, and tests
// wait deterministically on Telemetry().Events.
func (s *Server) Telemetry() *telemetry.Set { return s.tel }

// reqObs carries one admitted request's observability through its
// lifecycle: an id, the in-flight gauge, the per-experiment latency
// histogram, and the lifecycle events. Exactly one finish call balances
// each begin.
type reqObs struct {
	tel       *telemetry.Set
	inflightG *telemetry.Gauge
	durations *telemetry.HistogramVec
	id        string
	exp       string
	key       string
	cells     int
	start     time.Time
}

// beginReq admits one request into the observability layer. expName is
// the histogram label ("grid"/"cells" for the raw paths); cells is the
// request's cell count when it has one.
func (s *Server) beginReq(expName, key string, cells int) *reqObs {
	s.inflightG.Inc()
	return &reqObs{
		tel: s.tel, inflightG: s.inflightG, durations: s.durations,
		id:  fmt.Sprintf("r%d", s.reqSeq.Add(1)),
		exp: expName, key: key, cells: cells, start: time.Now(),
	}
}

// admitted emits the request's submitted/deduped lifecycle event. Call
// it with no server lock held, after the join decision is visible in
// the counters — observing the event therefore guarantees a subsequent
// identical request coalesces.
func (ro *reqObs) admitted(shared bool) {
	typ := "submitted"
	if shared {
		typ = "deduped"
	}
	ro.tel.Events.Emit(telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells})
}

// finish observes the request's wall time into the latency histogram
// (every admitted request lands exactly one sample, result or error —
// railbench counts on that) and emits the terminal lifecycle event:
// "result", or "cancel" when the wait ended by deadline, cancel frame,
// or teardown.
func (ro *reqObs) finish(err error, cancelled bool) {
	d := time.Since(ro.start)
	ro.durations.With(ro.exp).Observe(d.Seconds())
	ro.inflightG.Dec()
	typ := "result"
	if cancelled {
		typ = "cancel"
	}
	ev := telemetry.Event{Type: typ, Req: ro.id, Exp: ro.exp, Key: ro.key, Cells: ro.cells, DurationNS: d.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	ro.tel.Events.Emit(ev)
}

// Addr returns the listen address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Engine exposes the daemon's engine (tests assert on its cache stats).
func (s *Server) Engine() *photonrail.Engine { return s.engine }

// Stats reports the daemon's serving telemetry: the engine's cache
// counters plus the request-level grid dedup counters.
func (s *Server) Stats() opusnet.CacheStatsPayload {
	st := s.engine.CacheStats()
	s.mu.Lock()
	executed, deduped := s.gridsExecuted, s.gridsDeduped
	expsExecuted, expsDeduped := s.expsExecuted, s.expsDeduped
	cellsExecuted, cellsDeduped := s.cellsExecuted, s.cellsDeduped
	s.mu.Unlock()
	return opusnet.CacheStatsPayload{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		InFlight:      st.InFlight,
		GridsExecuted: executed,
		GridsDeduped:  deduped,
		ExpsExecuted:  expsExecuted,
		ExpsDeduped:   expsDeduped,
		CellsExecuted: cellsExecuted,
		CellsDeduped:  cellsDeduped,

		BuildHits:       st.Build.Hits,
		BuildMisses:     st.Build.Misses,
		ProvisionHits:   st.Provision.Hits,
		ProvisionMisses: st.Provision.Misses,
		TimeHits:        st.Time.Hits,
		TimeMisses:      st.Time.Misses,
		SeedHits:        st.SeedHits,
		SeedMisses:      st.SeedMisses,
	}
}

// Close stops accepting, tears down live connections, cancels the base
// context (so in-flight executions stop scheduling new simulation
// jobs), and waits for the connection handlers to finish. Executions
// are NOT waited for: their results are undeliverable once the
// connections are gone, so they wind down promptly under the cancelled
// context — a SIGTERM never blocks on minutes of abandoned simulation.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Drain waits for in-flight grid executions and result deliveries to
// finish. Tests use it so abandoned executions never outlive the test
// that started them; a production shutdown calls Close alone.
func (s *Server) Drain() { s.execWG.Wait() }

// DrainCtx is Drain bounded by ctx — the graceful-shutdown wait: raild
// announces its drain to the coordinator, then waits here for in-flight
// executions to finish (bounded by -drain-timeout) before closing.
func (s *Server) DrainCtx(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Capacity reports the engine's worker-pool size — the weight a
// registered backend advertises for capacity-weighted sharding.
func (s *Server) Capacity() int { return s.engine.Workers() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	opusnet.AcceptLoop(s.ln,
		func() bool {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.closed
		},
		func(err error) {
			if s.logf != nil {
				s.logf("railserve: accept: %v", err)
			}
		},
		func(conn net.Conn) bool {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return false
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go s.handle(conn)
			return true
		})
}

// handle serves one client connection on opusnet's shared serving
// skeleton (writer goroutine, drop-advisory-frames, close-on-wedge,
// per-connection cancellation registry — see opusnet.ServeConn).
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	opusnet.ServeConn(conn, s.dispatch)
}

func (s *Server) dispatch(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	switch msg.Type {
	case opusnet.MsgGridReq:
		s.serveGrid(msg, reply)
	case opusnet.MsgExpReq:
		s.serveExp(msg, reply, cs)
	case opusnet.MsgCellsReq:
		s.serveCells(msg, reply, cs)
	case opusnet.MsgCancel:
		// No reply: the cancelled request itself terminates with MsgErr,
		// and a cancel that raced completion has nothing to do.
		cs.CancelSeq(msg.Seq)
	case opusnet.MsgStatsReq:
		st := s.Stats()
		reply(&opusnet.Message{Type: opusnet.MsgStatsResp, Seq: msg.Seq, Cache: &st}, true)
	default:
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
			Error: fmt.Sprintf("railserve: unsupported message type %q", msg.Type)}, true)
	}
}

// serveGrid resolves and validates the request, then either joins an
// identical in-flight execution (request-level singleflight) or starts
// one. The caller's read loop is never blocked: execution and the final
// reply run on their own goroutine.
func (s *Server) serveGrid(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	if msg.Spec == nil {
		fail(fmt.Errorf("railserve: grid request without a spec"))
		return
	}
	// validateGridSpec rejects over-large grids before any expansion or
	// simulation: the count is computed arithmetically, so a spec whose
	// axes multiply out to billions of cells cannot OOM the daemon, and
	// a grid whose result frame could never be encoded is refused
	// before burning the execution.
	grid, err := ValidateGridSpec(*msg.Spec)
	if err != nil {
		fail(err)
		return
	}
	cells := grid.CellCount()
	key := exp.Key("grid", grid)
	ro := s.beginReq("grid", key, cells)

	s.mu.Lock()
	gate := s.execGate
	run, shared := s.inflight[key]
	if shared {
		s.gridsDeduped++
	} else {
		run = &gridRun{done: make(chan struct{})}
		s.inflight[key] = run
		s.gridsExecuted++
	}
	s.mu.Unlock()
	ro.admitted(shared)

	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgGridProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})

	if !shared {
		if s.logf != nil {
			s.logf("railserve: grid %q: executing (%d cells)", grid.Name, cells)
		}
		s.execWG.Add(1)
		go func() {
			defer s.execWG.Done()
			if gate != nil {
				<-gate // test-only hold, see execGate
			}
			// Under the base context: Close stops the execution from
			// scheduling further cells instead of abandoning it to run
			// the grid out.
			run.res, run.err = s.engine.RunGridProgressCtx(s.baseCtx, grid, run.broadcast)
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(run.done)
		}()
	} else if s.logf != nil {
		s.logf("railserve: grid %q: joined in-flight execution", grid.Name)
	}

	// Deliver the result without blocking the connection's read loop, so
	// one client can pipeline several grid requests on one connection.
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		<-run.done
		ro.finish(run.err, false)
		if run.err != nil {
			fail(run.err)
			return
		}
		reply(&opusnet.Message{Type: opusnet.MsgGridResult, Seq: seq, Grid: &opusnet.GridResultPayload{
			Name:   grid.Name,
			Rows:   run.res.Rows(),
			Shared: shared,
		}}, true)
	}()
}

// waitRun is one in-flight experiment or cell-subset execution with
// its subscribers; payload holds the path-specific result
// (*opusnet.ExpResultPayload or *opusnet.CellsResultPayload). waiters
// counts the requests currently awaiting the result; when the last one
// departs before completion, the execution's context is cancelled —
// the request-level mirror of the engine cache's detached
// singleflight. waiters is guarded by the Server mutex (not r.mu), so
// the last-departure decision and the run's removal from the runs map
// are atomic: a later identical request can never join a cancelled
// run.
type waitRun struct {
	done    chan struct{}
	payload any
	err     error
	cancel  context.CancelFunc
	waiters int // guarded by Server.mu

	mu   sync.Mutex
	subs []func(done, total int)
}

func (r *waitRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *waitRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// departRun drops one waiter from a run; the last waiter leaving
// cancels the execution (stopping new simulation jobs from being
// scheduled — simulations already in flight finish into the warm
// cache) and removes it from the runs map in the same critical
// section, so a subsequent identical request starts a fresh execution
// instead of inheriting a spurious cancellation error. Cancelling a
// run that already completed is a harmless no-op.
func (s *Server) departRun(key string, run *waitRun) {
	s.mu.Lock()
	run.waiters--
	last := run.waiters == 0
	if last && s.runs[key] == run {
		delete(s.runs, key)
	}
	s.mu.Unlock()
	if last {
		run.cancel()
	}
}

// serveRun is the shared join-or-start skeleton of the cancellable
// request paths (experiments and cell subsets): coalesce onto an
// identical in-flight execution under key or start one via execute
// (detached, under the server's base context), then deliver the result
// without blocking the connection's read loop. The request's wait —
// not the shared execution — is bounded by its timeoutMS deadline, a
// MsgCancel frame, and the connection's lifetime; waitErr shapes the
// error a bounded wait reports. count runs under s.mu with the join
// decision (counters only — it must not block); logDecision, when
// non-nil, runs after the lock is released, so a slow Logf sink never
// wedges the server. resultMsg shapes the final frame from the run's
// payload.
func (s *Server) serveRun(
	ro *reqObs,
	key string, seq uint64, timeoutMS int64,
	progressType opusnet.MsgType,
	reply func(*opusnet.Message, bool), cs *opusnet.ConnState,
	count func(shared bool),
	logDecision func(shared bool),
	execute func(ctx context.Context, run *waitRun) (any, error),
	resultMsg func(payload any, shared bool) *opusnet.Message,
	waitErr func(err error) error,
) {
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	// The request's wait: bounded by the per-request deadline, the
	// cancel frame, the connection, and server shutdown.
	var wctx context.Context
	var wcancel context.CancelFunc
	if timeoutMS > 0 {
		wctx, wcancel = context.WithTimeout(s.baseCtx, time.Duration(timeoutMS)*time.Millisecond)
	} else {
		wctx, wcancel = context.WithCancel(s.baseCtx)
	}
	if !cs.Register(seq, wcancel) {
		wcancel() // connection already torn down
		ro.finish(fmt.Errorf("railserve: connection closed before admission"), true)
		return
	}

	s.mu.Lock()
	gate := s.execGate
	run, shared := s.runs[key]
	if shared {
		run.waiters++ // under s.mu, like the last-departure decision
		count(true)
		s.mu.Unlock()
	} else {
		runCtx, runCancel := context.WithCancel(s.baseCtx)
		run = &waitRun{done: make(chan struct{}), cancel: runCancel, waiters: 1}
		s.runs[key] = run
		count(false)
		s.mu.Unlock()
		s.execWG.Add(1)
		go func() {
			defer s.execWG.Done()
			if gate != nil {
				<-gate // test-only hold, see execGate
			}
			run.payload, run.err = execute(runCtx, run)
			s.mu.Lock()
			// departRun may already have removed (or a fresh run may
			// have replaced) this key; only delete our own entry.
			if s.runs[key] == run {
				delete(s.runs, key)
			}
			s.mu.Unlock()
			runCancel()
			close(run.done)
		}()
	}
	if logDecision != nil {
		logDecision(shared)
	}
	ro.admitted(shared)

	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: progressType, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		defer cs.Unregister(seq)
		defer wcancel()
		select {
		case <-run.done:
			ro.finish(run.err, false)
			if run.err != nil {
				fail(run.err)
				return
			}
			reply(resultMsg(run.payload, shared), true)
		case <-wctx.Done():
			// Only this request's wait ends: the shared execution keeps
			// running for its other subscribers (and is cancelled only
			// if this was the last one).
			s.departRun(key, run)
			ro.finish(wctx.Err(), true)
			fail(waitErr(wctx.Err()))
		}
	}()
}

// ValidateGridSpec applies the daemon's request bounds to a grid spec:
// name length, resolvability, well-formedness, and the arithmetic cell
// cap (see maxGridCells). The fleet coordinator applies the same
// bounds before fanning a grid out, so a request one daemon would
// refuse is refused by the fleet too — identically, before any
// backend sees it.
func ValidateGridSpec(spec scenario.Spec) (scenario.Grid, error) {
	if len(spec.Name) > maxGridName {
		// Deliberately does not echo the name: the refusal frame must
		// stay encodable.
		return scenario.Grid{}, fmt.Errorf("railserve: grid name of %d bytes exceeds the %d-byte limit", len(spec.Name), maxGridName)
	}
	grid, err := spec.Resolve()
	if err != nil {
		return scenario.Grid{}, err
	}
	if err := grid.Validate(); err != nil {
		return scenario.Grid{}, err
	}
	if cells := grid.CellCount(); cells > maxGridCells {
		return scenario.Grid{}, fmt.Errorf("railserve: grid %q expands to %d cells, exceeding the %d-cell request cap",
			grid.Name, cells, maxGridCells)
	}
	return grid, nil
}

// serveExp runs a registered photonrail experiment for one request:
// validate, then hand the cancellable join-or-start skeleton
// (serveRun) an execute closure that runs the registry entry and
// renders its result server-side.
func (s *Server) serveExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	req := msg.Exp
	if req == nil {
		fail(fmt.Errorf("railserve: experiment request without a payload"))
		return
	}
	e, ok := photonrail.Lookup(req.Name)
	if !ok {
		// Deliberately does not echo arbitrary names at frame-limit
		// lengths; the registry spelling list is short and fixed.
		fail(fmt.Errorf("railserve: unknown experiment (see photonrail.Experiments; grids run via name %q)", "grid"))
		return
	}
	p := photonrail.Params{
		Iterations:       req.Iterations,
		WindowIterations: req.WindowIterations,
		LatenciesMS:      req.LatenciesMS,
		Rail:             req.Rail,
		GPUs:             req.GPUs,
	}
	if req.Grid != nil {
		if !photonrail.IsGridExperiment(req.Name) {
			fail(fmt.Errorf("railserve: experiment %q does not take a grid", req.Name))
			return
		}
		spec := *req.Grid
		if _, err := ValidateGridSpec(spec); err != nil {
			fail(err)
			return
		}
		p.Grid = &spec
	}
	// The canonical experiment/params hash: the same key the railgate
	// front door content-addresses stored results under, so in-flight
	// coalescing here and cross-restart dedup there agree by construction.
	key := photonrail.ExperimentKey(req.Name, p)

	s.serveRun(s.beginReq(req.Name, key, 0), key, seq, req.TimeoutMS, opusnet.MsgExpProgress, reply, cs,
		func(shared bool) {
			if shared {
				s.expsDeduped++
			} else {
				s.expsExecuted++
			}
		},
		func(shared bool) {
			if s.logf == nil {
				return
			}
			if shared {
				s.logf("railserve: experiment %q: joined in-flight execution", req.Name)
			} else {
				s.logf("railserve: experiment %q: executing", req.Name)
			}
		},
		func(ctx context.Context, run *waitRun) (any, error) {
			params := p
			params.OnProgress = run.broadcast
			res, err := e.Run(ctx, s.engine, params)
			if err != nil {
				return nil, err
			}
			return renderExpPayload(req.Name, res)
		},
		func(payload any, shared bool) *opusnet.Message {
			p := *(payload.(*opusnet.ExpResultPayload))
			p.Shared = shared
			return &opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: &p}
		},
		func(err error) error {
			return fmt.Errorf("railserve: experiment %q: %w", req.Name, err)
		})
}

// serveCells executes a subset of a grid's cells — the fleet
// coordinator's partial-execution path. Identical subset requests
// coalesce (singleflight keyed on the resolved grid AND the index
// list), cells simulate on the shared bounded engine cache, and the
// wait honors the same deadline/cancel/teardown contract as the
// experiment path.
func (s *Server) serveCells(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *opusnet.ConnState) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	req := msg.Cells
	if req == nil || req.Spec == nil {
		fail(fmt.Errorf("railserve: cells request without a grid spec"))
		return
	}
	grid, err := ValidateGridSpec(*req.Spec)
	if err != nil {
		fail(err)
		return
	}
	if len(req.Indices) == 0 {
		fail(fmt.Errorf("railserve: cells request for grid %q selects no cells", grid.Name))
		return
	}
	total := grid.CellCount()
	seen := make(map[int]bool, len(req.Indices))
	for _, idx := range req.Indices {
		if idx < 0 || idx >= total {
			fail(fmt.Errorf("railserve: cell index %d outside grid %q (%d cells)", idx, grid.Name, total))
			return
		}
		if seen[idx] {
			fail(fmt.Errorf("railserve: duplicate cell index %d for grid %q", idx, grid.Name))
			return
		}
		seen[idx] = true
	}
	indices := append([]int(nil), req.Indices...)
	key := exp.Key("cells", grid, indices)

	s.serveRun(s.beginReq("cells", key, len(indices)), key, seq, req.TimeoutMS, opusnet.MsgGridProgress, reply, cs,
		func(shared bool) {
			if shared {
				s.cellsDeduped++
			} else {
				s.cellsExecuted += uint64(len(indices))
			}
		},
		func(shared bool) {
			if s.logf == nil {
				return
			}
			if shared {
				s.logf("railserve: grid %q: joined in-flight %d-cell subset", grid.Name, len(indices))
			} else {
				s.logf("railserve: grid %q: executing %d-cell subset", grid.Name, len(indices))
			}
		},
		func(ctx context.Context, run *waitRun) (any, error) {
			results, err := s.engine.RunCellsProgressCtx(ctx, grid, indices, run.broadcast)
			if err != nil {
				return nil, err
			}
			res := photonrail.GridResult{Grid: grid, Cells: results}
			return &opusnet.CellsResultPayload{Name: grid.Name, Indices: indices, Rows: res.Rows()}, nil
		},
		func(payload any, shared bool) *opusnet.Message {
			p := *(payload.(*opusnet.CellsResultPayload))
			p.Shared = shared
			return &opusnet.Message{Type: opusnet.MsgCellsResult, Seq: seq, CellsResult: &p}
		},
		func(err error) error {
			return fmt.Errorf("railserve: grid %q cells: %w", grid.Name, err)
		})
}

// renderExpPayload renders a completed experiment once, server-side,
// into the exact bytes each client output format prints.
func renderExpPayload(name string, res *photonrail.ExperimentResult) (*opusnet.ExpResultPayload, error) {
	var text, csv, rows bytes.Buffer
	if err := res.RenderText(&text); err != nil {
		return nil, err
	}
	if err := res.RenderCSV(&csv); err != nil {
		return nil, err
	}
	if err := res.RenderJSON(&rows); err != nil {
		return nil, err
	}
	return &opusnet.ExpResultPayload{
		Name:        name,
		Grid:        res.Grid,
		Rendered:    text.String(),
		RenderedCSV: csv.String(),
		RowsJSON:    rows.String(),
	}, nil
}
