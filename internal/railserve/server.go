// Package railserve is the experiment-serving daemon behind cmd/raild:
// a long-running TCP service that executes any experiment in the
// photonrail registry — figure sweeps, window analyses, cost tables,
// scenario grids — for remote clients over the opusnet framed
// protocol. Where every one-shot CLI run rebuilds the memo cache from
// scratch, the daemon keeps one engine — and its simulation cache —
// warm across requests, shards each request's jobs across the engine's
// worker pool, and streams progress frames back so clients render live
// progress.
//
// Two layers of deduplication serve concurrent clients:
//
//   - request-level singleflight: identical in-flight requests (keyed
//     on the resolved grid or the experiment name + parameters)
//     coalesce onto one execution, with progress and results fanned
//     out to every subscriber;
//   - simulation-level memoization: distinct requests sharing
//     simulations (or electrical baselines) reuse the engine's cache.
//
// Cancellation is first-class on the experiment path: every request
// may carry a deadline (TimeoutMS), a client may send a cancel frame
// referencing its request's Seq, and a dropped connection cancels its
// requests' waits. All three stop only that request's wait — an
// execution other clients joined keeps running for them; only when the
// last subscriber departs is the execution's context cancelled, which
// stops scheduling new simulation jobs (in-flight simulations land in
// the warm cache either way). Server.Close cancels the base context,
// so shutdown also stops abandoned executions from scheduling more
// work.
//
// The engine is cost-bounded (photonrail.NewBoundedEngine), so the
// daemon is safe to run indefinitely: cold results are evicted LRU-wise
// instead of growing without bound.
package railserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"photonrail"
	"photonrail/internal/exp"
	"photonrail/internal/opusnet"
	"photonrail/internal/scenario"
)

// Config parameterizes NewServer.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Workers is the engine worker-pool size (0 = NumCPU).
	Workers int
	// MaxCacheCost bounds the engine's memo cache in simulation units
	// (0 = unbounded; see photonrail.NewBoundedEngine).
	MaxCacheCost int64
	// Logf, when non-nil, receives one line per served request.
	Logf func(format string, args ...any)
}

// Server is the experiment-serving daemon.
type Server struct {
	ln     net.Listener
	engine *photonrail.Engine
	logf   func(format string, args ...any)

	// baseCtx parents every execution and request wait; Close cancels
	// it, so shutdown stops in-flight executions from scheduling more
	// simulation jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*gridRun // resolved-grid key -> running execution
	expRuns  map[string]*expRun  // experiment key -> running execution
	conns    map[net.Conn]bool
	closed   bool
	// gridsExecuted counts grid executions actually started;
	// gridsDeduped counts requests coalesced onto one of them. The gap
	// between requests received and gridsExecuted is the request-level
	// dedup win the loopback e2e test asserts on. expsExecuted and
	// expsDeduped are the experiment-path twins.
	gridsExecuted, gridsDeduped uint64
	expsExecuted, expsDeduped   uint64

	// wg tracks the accept loop and connection handlers — everything
	// Close must wait for. Grid executions and result deliveries are
	// tracked separately (execWG): once every connection is closed their
	// results are undeliverable, so Close abandons them rather than
	// blocking a shutdown on minutes of unwanted simulation.
	wg     sync.WaitGroup
	execWG sync.WaitGroup

	// execGate, when non-nil, is received from before each grid
	// execution starts — a test-only hook that lets the loopback tests
	// hold a request in flight deterministically. Guarded by mu.
	execGate <-chan struct{}
}

// setExecGate installs the test-only execution gate (under mu, so
// handler goroutines observe it).
func (s *Server) setExecGate(gate <-chan struct{}) {
	s.mu.Lock()
	s.execGate = gate
	s.mu.Unlock()
}

// maxGridName bounds a requested grid's name. The name is echoed into
// the result payload and error messages; without a bound, a name sized
// near the 8 MiB request-frame limit would make the reply frame
// unencodable after the grid had already executed.
const maxGridName = 256

// maxGridCells caps one request's cell count. The result frame carries
// one JSON row per cell inside opusnet's 8 MiB frame limit — rows run
// ~400 bytes and stay under 1 KiB even with pathological coordinate
// and skip-reason strings, so 4096 cells keep the reply below half the
// frame limit. Rejecting over-large grids up front (arithmetically,
// via CellCount, before any expansion) keeps the daemon from being
// OOM-killed by a huge cross-product or from simulating for minutes
// only to fail encoding the reply.
const maxGridCells = 4096

// gridRun is one in-flight grid execution with its subscribers.
type gridRun struct {
	done chan struct{}
	res  *photonrail.GridResult
	err  error

	mu   sync.Mutex
	subs []func(done, total int)
}

// subscribe adds a progress listener; fan-out calls are serialized per
// run (the engine already serializes its progress hook, but subscribers
// can be added mid-run).
func (r *gridRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *gridRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// NewServer starts the daemon listening on cfg.Addr. Close stops it.
func NewServer(cfg Config) (*Server, error) {
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		ln:         ln,
		engine:     photonrail.NewBoundedEngine(cfg.Workers, cfg.MaxCacheCost),
		logf:       cfg.Logf,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		inflight:   make(map[string]*gridRun),
		expRuns:    make(map[string]*expRun),
		conns:      make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Engine exposes the daemon's engine (tests assert on its cache stats).
func (s *Server) Engine() *photonrail.Engine { return s.engine }

// Stats reports the daemon's serving telemetry: the engine's cache
// counters plus the request-level grid dedup counters.
func (s *Server) Stats() opusnet.CacheStatsPayload {
	st := s.engine.CacheStats()
	s.mu.Lock()
	executed, deduped := s.gridsExecuted, s.gridsDeduped
	expsExecuted, expsDeduped := s.expsExecuted, s.expsDeduped
	s.mu.Unlock()
	return opusnet.CacheStatsPayload{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		InFlight:      st.InFlight,
		GridsExecuted: executed,
		GridsDeduped:  deduped,
		ExpsExecuted:  expsExecuted,
		ExpsDeduped:   expsDeduped,
	}
}

// Close stops accepting, tears down live connections, cancels the base
// context (so in-flight executions stop scheduling new simulation
// jobs), and waits for the connection handlers to finish. Executions
// are NOT waited for: their results are undeliverable once the
// connections are gone, so they wind down promptly under the cancelled
// context — a SIGTERM never blocks on minutes of abandoned simulation.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Drain waits for in-flight grid executions and result deliveries to
// finish. Tests use it so abandoned executions never outlive the test
// that started them; a production shutdown calls Close alone.
func (s *Server) Drain() { s.execWG.Wait() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			done := s.closed
			s.mu.Unlock()
			if done {
				return
			}
			if s.logf != nil {
				s.logf("railserve: accept: %v", err)
			}
			// Persistent accept errors (e.g. fd exhaustion) would
			// otherwise busy-spin the loop and flood the log.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// replyBuffer bounds the per-connection reply queue: results and
// progress frames queue here while the socket drains.
const replyBuffer = 256

// handle serves one client connection. Replies are serialized through a
// per-connection writer goroutine so progress fan-out (which runs on
// the engine's pool) never blocks on a socket. Required frames
// (results, errors) on a wedged connection close it — the reply is
// dropped, and the peer sees the closed socket instead of waiting
// forever; advisory progress frames are simply dropped.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	out := make(chan *opusnet.Message, replyBuffer)
	var wout sync.WaitGroup
	wout.Add(1)
	go func() {
		defer wout.Done()
		dead := false
		for m := range out {
			if dead {
				continue // drain so senders never block on a dead socket
			}
			if err := opusnet.WriteMessage(conn, m); err != nil {
				// The error may be pre-write (e.g. an oversized frame)
				// with the socket itself still healthy; close it anyway,
				// because the peer is now missing a reply it would wait
				// on forever.
				dead = true
				_ = conn.Close()
			}
		}
	}()
	// A grid execution this connection subscribed to may still broadcast
	// after the read loop exits; sending on the closed writer channel
	// would panic. sendClosed gates every reply: once the connection is
	// torn down, late progress frames and results are dropped (the peer
	// is gone either way).
	var sendMu sync.Mutex
	sendClosed := false
	defer wout.Wait()
	defer func() {
		sendMu.Lock()
		sendClosed = true
		sendMu.Unlock()
		close(out)
	}()
	reply := func(m *opusnet.Message, required bool) {
		sendMu.Lock()
		defer sendMu.Unlock()
		if sendClosed {
			return
		}
		select {
		case out <- m:
		default:
			if required {
				// replyBuffer outstanding frames: the peer is dead or
				// wedged. Close the connection so it sees an error
				// instead of waiting forever on the dropped reply.
				_ = conn.Close()
			}
			// Advisory progress frames are dropped silently.
		}
	}
	// Per-connection cancellation registry: each outstanding exp
	// request's waiter context is cancellable by a MsgCancel frame
	// carrying the request's Seq; tearing the connection down cancels
	// them all, so a dropped client stops holding executions alive.
	cs := newConnState()
	defer cs.teardown()
	for {
		msg, err := opusnet.ReadMessage(conn)
		if err != nil {
			return
		}
		s.dispatch(msg, reply, cs)
	}
}

// connState tracks a connection's cancellable request waits.
type connState struct {
	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
	closed  bool
}

func newConnState() *connState {
	return &connState{cancels: make(map[uint64]context.CancelFunc)}
}

// register installs a request's cancel func; it reports false (without
// installing) when the connection is already torn down.
func (cs *connState) register(seq uint64, cancel context.CancelFunc) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return false
	}
	cs.cancels[seq] = cancel
	return true
}

func (cs *connState) unregister(seq uint64) {
	cs.mu.Lock()
	delete(cs.cancels, seq)
	cs.mu.Unlock()
}

// cancelSeq fires the cancel for one outstanding request; unknown or
// completed Seqs are ignored (the cancel raced the result).
func (cs *connState) cancelSeq(seq uint64) {
	cs.mu.Lock()
	cancel := cs.cancels[seq]
	cs.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// teardown cancels every outstanding wait on a dying connection.
func (cs *connState) teardown() {
	cs.mu.Lock()
	cs.closed = true
	cancels := make([]context.CancelFunc, 0, len(cs.cancels))
	for _, c := range cs.cancels {
		cancels = append(cancels, c)
	}
	cs.cancels = make(map[uint64]context.CancelFunc)
	cs.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

func (s *Server) dispatch(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *connState) {
	switch msg.Type {
	case opusnet.MsgGridReq:
		s.serveGrid(msg, reply)
	case opusnet.MsgExpReq:
		s.serveExp(msg, reply, cs)
	case opusnet.MsgCancel:
		// No reply: the cancelled request itself terminates with MsgErr,
		// and a cancel that raced completion has nothing to do.
		cs.cancelSeq(msg.Seq)
	case opusnet.MsgStatsReq:
		st := s.Stats()
		reply(&opusnet.Message{Type: opusnet.MsgStatsResp, Seq: msg.Seq, Cache: &st}, true)
	default:
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: msg.Seq,
			Error: fmt.Sprintf("railserve: unsupported message type %q", msg.Type)}, true)
	}
}

// serveGrid resolves and validates the request, then either joins an
// identical in-flight execution (request-level singleflight) or starts
// one. The caller's read loop is never blocked: execution and the final
// reply run on their own goroutine.
func (s *Server) serveGrid(msg *opusnet.Message, reply func(*opusnet.Message, bool)) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	if msg.Spec == nil {
		fail(fmt.Errorf("railserve: grid request without a spec"))
		return
	}
	if len(msg.Spec.Name) > maxGridName {
		// Deliberately does not echo the name: the refusal frame must
		// stay encodable.
		fail(fmt.Errorf("railserve: grid name of %d bytes exceeds the %d-byte limit", len(msg.Spec.Name), maxGridName))
		return
	}
	grid, err := msg.Spec.Resolve()
	if err != nil {
		fail(err)
		return
	}
	if err := grid.Validate(); err != nil {
		fail(err)
		return
	}
	// Reject over-large grids before any expansion or simulation: the
	// count is computed arithmetically, so a spec whose axes multiply
	// out to billions of cells cannot OOM the daemon, and a grid whose
	// result frame could never be encoded is refused before burning the
	// execution.
	cells := grid.CellCount()
	if cells > maxGridCells {
		fail(fmt.Errorf("railserve: grid %q expands to %d cells, exceeding the %d-cell request cap",
			grid.Name, cells, maxGridCells))
		return
	}
	key := exp.Key("grid", grid)

	s.mu.Lock()
	gate := s.execGate
	run, shared := s.inflight[key]
	if shared {
		s.gridsDeduped++
	} else {
		run = &gridRun{done: make(chan struct{})}
		s.inflight[key] = run
		s.gridsExecuted++
	}
	s.mu.Unlock()

	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgGridProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})

	if !shared {
		if s.logf != nil {
			s.logf("railserve: grid %q: executing (%d cells)", grid.Name, cells)
		}
		s.execWG.Add(1)
		go func() {
			defer s.execWG.Done()
			if gate != nil {
				<-gate // test-only hold, see execGate
			}
			// Under the base context: Close stops the execution from
			// scheduling further cells instead of abandoning it to run
			// the grid out.
			run.res, run.err = s.engine.RunGridProgressCtx(s.baseCtx, grid, run.broadcast)
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(run.done)
		}()
	} else if s.logf != nil {
		s.logf("railserve: grid %q: joined in-flight execution", grid.Name)
	}

	// Deliver the result without blocking the connection's read loop, so
	// one client can pipeline several grid requests on one connection.
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		<-run.done
		if run.err != nil {
			fail(run.err)
			return
		}
		reply(&opusnet.Message{Type: opusnet.MsgGridResult, Seq: seq, Grid: &opusnet.GridResultPayload{
			Name:   grid.Name,
			Rows:   run.res.Rows(),
			Shared: shared,
		}}, true)
	}()
}

// expRun is one in-flight experiment execution with its subscribers.
// waiters counts the requests currently awaiting the result; when the
// last one departs before completion, the execution's context is
// cancelled — the request-level mirror of the engine cache's detached
// singleflight. waiters is guarded by the Server mutex (not r.mu), so
// the last-departure decision and the run's removal from the inflight
// map are atomic: a later identical request can never join a cancelled
// run.
type expRun struct {
	done    chan struct{}
	payload *opusnet.ExpResultPayload
	err     error
	cancel  context.CancelFunc
	waiters int // guarded by Server.mu

	mu   sync.Mutex
	subs []func(done, total int)
}

func (r *expRun) subscribe(fn func(done, total int)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

func (r *expRun) broadcast(done, total int) {
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(done, total)
	}
}

// departExp drops one waiter from a run; the last waiter leaving
// cancels the execution (stopping new simulation jobs from being
// scheduled — simulations already in flight finish into the warm
// cache) and removes it from the inflight map in the same critical
// section, so a subsequent identical request starts a fresh execution
// instead of inheriting a spurious cancellation error. Cancelling a
// run that already completed is a harmless no-op.
func (s *Server) departExp(key string, run *expRun) {
	s.mu.Lock()
	run.waiters--
	last := run.waiters == 0
	if last && s.expRuns[key] == run {
		delete(s.expRuns, key)
	}
	s.mu.Unlock()
	if last {
		run.cancel()
	}
}

// serveExp runs a registered photonrail experiment for one request:
// validate, coalesce onto an identical in-flight execution or start
// one under the server's base context, and deliver the result without
// blocking the connection's read loop. The request's wait — not the
// shared execution — is bounded by its TimeoutMS deadline, a MsgCancel
// frame, and the connection's lifetime.
func (s *Server) serveExp(msg *opusnet.Message, reply func(*opusnet.Message, bool), cs *connState) {
	seq := msg.Seq
	fail := func(err error) {
		reply(&opusnet.Message{Type: opusnet.MsgErr, Seq: seq, Error: err.Error()}, true)
	}
	req := msg.Exp
	if req == nil {
		fail(fmt.Errorf("railserve: experiment request without a payload"))
		return
	}
	e, ok := photonrail.Lookup(req.Name)
	if !ok {
		// Deliberately does not echo arbitrary names at frame-limit
		// lengths; the registry spelling list is short and fixed.
		fail(fmt.Errorf("railserve: unknown experiment (see photonrail.Experiments; grids run via name %q)", "grid"))
		return
	}
	p := photonrail.Params{
		Iterations:       req.Iterations,
		WindowIterations: req.WindowIterations,
		LatenciesMS:      req.LatenciesMS,
		Rail:             req.Rail,
		GPUs:             req.GPUs,
	}
	var specKey scenario.Spec
	if req.Grid != nil {
		if !photonrail.IsGridExperiment(req.Name) {
			fail(fmt.Errorf("railserve: experiment %q does not take a grid", req.Name))
			return
		}
		spec := *req.Grid
		if len(spec.Name) > maxGridName {
			fail(fmt.Errorf("railserve: grid name of %d bytes exceeds the %d-byte limit", len(spec.Name), maxGridName))
			return
		}
		grid, err := spec.Resolve()
		if err != nil {
			fail(err)
			return
		}
		if err := grid.Validate(); err != nil {
			fail(err)
			return
		}
		if cells := grid.CellCount(); cells > maxGridCells {
			fail(fmt.Errorf("railserve: grid %q expands to %d cells, exceeding the %d-cell request cap",
				grid.Name, cells, maxGridCells))
			return
		}
		p.Grid = &spec
		specKey = spec
	}
	key := exp.Key("exp", req.Name, p.Iterations, p.WindowIterations, p.LatenciesMS, p.Rail, p.GPUs, specKey)

	// The request's wait: bounded by the per-request deadline, the
	// cancel frame, the connection, and server shutdown.
	var wctx context.Context
	var wcancel context.CancelFunc
	if req.TimeoutMS > 0 {
		wctx, wcancel = context.WithTimeout(s.baseCtx, time.Duration(req.TimeoutMS)*time.Millisecond)
	} else {
		wctx, wcancel = context.WithCancel(s.baseCtx)
	}
	if !cs.register(seq, wcancel) {
		wcancel() // connection already torn down
		return
	}

	s.mu.Lock()
	gate := s.execGate
	run, shared := s.expRuns[key]
	if shared {
		run.waiters++ // under s.mu, like the last-departure decision
		s.expsDeduped++
	} else {
		runCtx, runCancel := context.WithCancel(s.baseCtx)
		run = &expRun{done: make(chan struct{}), cancel: runCancel, waiters: 1}
		s.expRuns[key] = run
		s.expsExecuted++
		s.mu.Unlock()
		if s.logf != nil {
			s.logf("railserve: experiment %q: executing", req.Name)
		}
		s.execWG.Add(1)
		go func() {
			defer s.execWG.Done()
			if gate != nil {
				<-gate // test-only hold, see execGate
			}
			params := p
			params.OnProgress = run.broadcast
			res, err := e.Run(runCtx, s.engine, params)
			if err == nil {
				run.payload, err = renderExpPayload(req.Name, res)
			}
			run.err = err
			s.mu.Lock()
			// departExp may already have removed (or a fresh run may
			// have replaced) this key; only delete our own entry.
			if s.expRuns[key] == run {
				delete(s.expRuns, key)
			}
			s.mu.Unlock()
			runCancel()
			close(run.done)
		}()
		goto deliver
	}
	s.mu.Unlock()
	if s.logf != nil {
		s.logf("railserve: experiment %q: joined in-flight execution", req.Name)
	}

deliver:
	run.subscribe(func(done, total int) {
		reply(&opusnet.Message{Type: opusnet.MsgExpProgress, Seq: seq,
			Progress: &opusnet.GridProgress{Done: done, Total: total}}, false)
	})
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		defer cs.unregister(seq)
		defer wcancel()
		select {
		case <-run.done:
			if run.err != nil {
				fail(run.err)
				return
			}
			payload := *run.payload
			payload.Shared = shared
			reply(&opusnet.Message{Type: opusnet.MsgExpResult, Seq: seq, ExpResult: &payload}, true)
		case <-wctx.Done():
			// Only this request's wait ends: the shared execution keeps
			// running for its other subscribers (and is cancelled only
			// if this was the last one).
			s.departExp(key, run)
			fail(fmt.Errorf("railserve: experiment %q: %w", req.Name, wctx.Err()))
		}
	}()
}

// renderExpPayload renders a completed experiment once, server-side,
// into the exact bytes each client output format prints.
func renderExpPayload(name string, res *photonrail.ExperimentResult) (*opusnet.ExpResultPayload, error) {
	var text, csv, rows bytes.Buffer
	if err := res.RenderText(&text); err != nil {
		return nil, err
	}
	if err := res.RenderCSV(&csv); err != nil {
		return nil, err
	}
	if err := res.RenderJSON(&rows); err != nil {
		return nil, err
	}
	return &opusnet.ExpResultPayload{
		Name:        name,
		Grid:        res.Grid,
		Rendered:    text.String(),
		RenderedCSV: csv.String(),
		RowsJSON:    rows.String(),
	}, nil
}
