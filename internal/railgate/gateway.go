// Package railgate is the multi-tenant HTTP/JSON front door to the
// photonrail experiment fleet — the upgrade path for clients that will
// never speak the opusnet framed protocol. It fronts a raild daemon, a
// railfleet coordinator, or an in-process loopback daemon (anything
// whose client satisfies Runner) and exposes the experiment registry
// over plain HTTP:
//
//	GET  /v1/experiments           — the registry catalog (JSON, or the
//	                                 railsweep -list text via Accept)
//	POST /v1/experiments/{name}    — run an experiment; body is the
//	                                 JSON parameter payload (the wire
//	                                 ExpRequestPayload shape); ?async=1
//	                                 returns 202 + run id immediately
//	GET  /v1/runs/{id}             — the completed result, negotiated:
//	                                 JSON rows, CSV, or aligned text
//	GET  /v1/runs/{id}/events      — the run's lifecycle + per-cell
//	                                 progress as SSE
//	GET  /metrics, /events         — the gateway's own observability
//
// Multi-tenancy: every request carries a tenant (X-Tenant header;
// "default" otherwise). Each tenant has a token-bucket rate limit and a
// queue-depth cap — exceeding either refuses with 429 + Retry-After —
// and execution slots are dispatched by a weighted start-time-fair
// queue (see fairQueue), so one tenant's 4096-cell grid cannot starve
// another tenant's fig4.
//
// Durability: completed results spill to a content-addressed
// resultstore keyed by photonrail.ExperimentKey — the same canonical
// hash the daemon's request-level singleflight coalesces on. An
// identical request therefore dedups at every distance: in flight on
// the daemon, across gateway requests, and across full daemon restarts
// (served from disk with zero new simulations).
package railgate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"photonrail"
	"photonrail/internal/opusnet"
	"photonrail/internal/railserve"
	"photonrail/internal/resultstore"
	"photonrail/internal/scenario"
	"photonrail/internal/telemetry"
)

// Runner executes one experiment request — the gateway's view of a
// backend. *railserve.Client satisfies it directly, so the gateway
// fronts a raild daemon or a railfleet coordinator with the full
// cancellation, deadline, and singleflight semantics of the framed
// protocol; tests plug scripted runners in.
type Runner interface {
	RunExperiment(ctx context.Context, req opusnet.ExpRequestPayload, onProgress func(done, total int)) (*railserve.ExpRun, error)
}

var _ Runner = (*railserve.Client)(nil)

// Config parameterizes New.
type Config struct {
	// Runner executes experiments (required).
	Runner Runner
	// Store, when non-nil, is the durable result store: completed runs
	// spill into it and identical requests are served from it without
	// touching the Runner — including across daemon restarts.
	Store *resultstore.Store
	// Slots is the gateway-wide concurrent-execution bound the fair
	// queue dispatches over (0 = 4).
	Slots int
	// DefaultTenant is the admission policy for tenants without an
	// override; see TenantLimits for the zero-value defaults.
	DefaultTenant TenantLimits
	// Tenants overrides the policy per tenant name.
	Tenants map[string]TenantLimits
	// MaxRuns bounds the completed runs retained for GET /v1/runs
	// retrieval, oldest evicted first (0 = 1024). In-flight runs are
	// never evicted.
	MaxRuns int
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
	// Now, when non-nil, replaces the wall clock (tests freeze it).
	Now func() time.Time
}

// gateway event types (the run lifecycle on the gateway's event log).
const (
	evSubmitted = "submitted" // admitted past the rate limit
	evCached    = "cached"    // served from the durable store
	evStarted   = "started"   // granted an execution slot
	evProgress  = "progress"  // per-cell completion tick
	evResult    = "result"    // completed successfully
	evError     = "error"     // failed (or cancelled while queued)
	evRejected  = "rejected"  // refused with 429 (Reason: rate | queue)
)

// gwEventRing bounds the gateway's event ring: deep enough to replay a
// full 4096-cell grid's progress ticks to a late-attaching SSE client.
const gwEventRing = 8192

// run is one accepted request's lifecycle record.
type run struct {
	id         string
	tenant     string
	experiment string
	key        string
	req        opusnet.ExpRequestPayload
	cost       float64
	start      time.Time

	done chan struct{}
	// Final state, written before done closes.
	entry  resultstore.Entry
	err    error
	cached bool
	shared bool
}

// Gateway is the HTTP front door; construct with New, serve Handler,
// stop with Close.
type Gateway struct {
	runner  Runner
	store   *resultstore.Store
	tel     *telemetry.Set
	fq      *fairQueue
	tenants *tenantSet
	logf    func(format string, args ...any)
	now     func() time.Time
	maxRuns int

	// baseCtx parents async executions; Close cancels it and joins
	// them, so a stopped gateway leaves no execution behind.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	runWG      sync.WaitGroup

	reqSeq atomic.Uint64

	mu        sync.Mutex
	runs      map[string]*run
	doneOrder []string
	closed    bool

	reqTotal   *telemetry.CounterVec
	rejectedC  *telemetry.CounterVec
	inflightG  *telemetry.Gauge
	durations  *telemetry.HistogramVec
	queueDepth *telemetry.GaugeVec
}

// New builds a gateway over cfg.Runner.
func New(cfg Config) (*Gateway, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("railgate: no runner configured")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	//lint:allow ctxbg the gateway's lifetime root: async executions derive from it and Close cancels it
	baseCtx, baseCancel := context.WithCancel(context.Background())
	g := &Gateway{
		runner:     cfg.Runner,
		store:      cfg.Store,
		tel:        telemetry.NewSet(gwEventRing, func() int64 { return cfg.Now().UnixNano() }),
		fq:         newFairQueue(cfg.Slots),
		tenants:    newTenantSet(cfg.DefaultTenant, cfg.Tenants),
		logf:       cfg.Logf,
		now:        cfg.Now,
		maxRuns:    cfg.MaxRuns,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		runs:       make(map[string]*run),
	}
	g.reqTotal = g.tel.Metrics.CounterVec("railgate_requests_total",
		"HTTP requests answered on the run-submission path, by tenant and status code.", "tenant", "code")
	g.rejectedC = g.tel.Metrics.CounterVec("railgate_rejected_total",
		"Requests refused with 429, by tenant and reason (rate = token bucket, queue = queue-depth cap).", "tenant", "reason")
	g.inflightG = g.tel.Metrics.Gauge("railgate_requests_inflight",
		"Requests holding an execution slot (granted by the fair queue, awaiting their result).")
	g.durations = g.tel.Metrics.HistogramVec("railgate_request_duration_seconds",
		"Accepted-request wall time from admission to final state, by experiment.",
		telemetry.DefLatencyBuckets, "experiment")
	g.queueDepth = g.tel.Metrics.GaugeVec("railgate_queue_depth",
		"Requests admitted but not yet executing, by tenant (sampled at scrape).", "tenant")
	g.tel.Metrics.OnScrape(g.sampleQueueDepths)
	if g.store != nil {
		hits := g.tel.Metrics.Counter("railgate_store_hits_total", "Durable-store lookups served from disk.")
		misses := g.tel.Metrics.Counter("railgate_store_misses_total", "Durable-store lookups that found nothing.")
		puts := g.tel.Metrics.Counter("railgate_store_puts_total", "Results spilled to the durable store.")
		evics := g.tel.Metrics.Counter("railgate_store_evictions_total", "Stored results evicted by the size bound.")
		bytes := g.tel.Metrics.Gauge("railgate_store_bytes", "Resident bytes in the durable store.")
		g.tel.Metrics.OnScrape(func() {
			st := g.store.Stats()
			hits.Set(st.Hits)
			misses.Set(st.Misses)
			puts.Set(st.Puts)
			evics.Set(st.Evictions)
			bytes.Set(float64(st.Bytes))
		})
	}
	return g, nil
}

// sampleQueueDepths mirrors the fair queue's per-tenant depths into the
// queue-depth gauge at scrape time (tenants with no backlog read 0).
func (g *Gateway) sampleQueueDepths() {
	depths := g.fq.Depths()
	names := g.tenants.names()
	sort.Strings(names)
	for _, name := range names {
		g.queueDepth.With(name).Set(float64(depths[name]))
	}
}

// Telemetry exposes the gateway's metrics registry and event log (the
// same Set Handler serves on /metrics and /events).
func (g *Gateway) Telemetry() *telemetry.Set { return g.tel }

// Close stops the gateway: in-flight async executions are cancelled and
// joined. The caller shuts the HTTP server down first, so no new
// requests arrive mid-teardown.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.baseCancel()
	g.runWG.Wait()
}

// Handler serves the gateway API plus the observability endpoints.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", g.handleCatalog)
	mux.HandleFunc("POST /v1/experiments/{name}", g.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", g.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", g.handleRunEvents)
	tel := g.tel.Handler()
	mux.Handle("GET /metrics", tel)
	mux.Handle("GET /events", tel)
	return mux
}

// tenantOf resolves the request's tenant: the X-Tenant header, or
// "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// errorJSON writes a JSON error envelope.
func (g *Gateway) errorJSON(w http.ResponseWriter, tenant string, code int, format string, args ...any) {
	g.reqTotal.With(tenant, strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reject refuses a request with 429 + Retry-After.
func (g *Gateway) reject(w http.ResponseWriter, tenant, name, reason string, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	g.rejectedC.With(tenant, reason).Inc()
	g.tel.Events.Emit(telemetry.Event{Type: evRejected, Tenant: tenant, Exp: name, Reason: reason})
	g.errorJSON(w, tenant, http.StatusTooManyRequests, "railgate: tenant %q over its %s limit; retry after %ds", tenant, reason, secs)
}

// catalogEntry is one experiment in the JSON catalog.
type catalogEntry struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	Grid        bool               `json:"grid"`
	Params      []catalogParamInfo `json:"params,omitempty"`
}

type catalogParamInfo struct {
	Name    string `json:"name"`
	Default string `json:"default"`
	Doc     string `json:"doc"`
}

func (g *Gateway) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if negotiate(r) == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = photonrail.DescribeExperiments(w)
		return
	}
	var out []catalogEntry
	for _, e := range photonrail.Experiments() {
		ce := catalogEntry{Name: e.Name, Description: e.Description, Grid: photonrail.IsGridExperiment(e.Name)}
		for _, p := range e.Params {
			ce.Params = append(ce.Params, catalogParamInfo{Name: p.Name, Default: p.Default, Doc: p.Doc})
		}
		out = append(out, ce)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// paramsOf maps the wire payload to registry parameters exactly as the
// daemon does, so photonrail.ExperimentKey hashes identically here and
// there.
func paramsOf(req opusnet.ExpRequestPayload) photonrail.Params {
	p := photonrail.Params{
		Iterations:       req.Iterations,
		WindowIterations: req.WindowIterations,
		LatenciesMS:      req.LatenciesMS,
		Rail:             req.Rail,
		GPUs:             req.GPUs,
	}
	if req.Grid != nil {
		spec := *req.Grid
		p.Grid = &spec
	}
	return p
}

// requestCost weighs a request for the fair queue: grid experiments
// cost their cell count, everything else 1 — so a 4096-cell grid pays
// for its size against a fig4's single unit.
func requestCost(name string, p photonrail.Params) float64 {
	if !photonrail.IsGridExperiment(name) {
		return 1
	}
	if p.Grid != nil {
		if grid, err := p.Grid.Resolve(); err == nil {
			return float64(grid.CellCount())
		}
		return 1
	}
	if mk, ok := scenario.Grids()[name]; ok {
		return float64(mk().CellCount())
	}
	return 1
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	name := r.PathValue("name")
	if _, ok := photonrail.Lookup(name); !ok {
		g.errorJSON(w, tenant, http.StatusNotFound, "railgate: unknown experiment %q (GET /v1/experiments lists the registry)", name)
		return
	}
	var req opusnet.ExpRequestPayload
	if err := decodeBody(r.Body, &req); err != nil {
		g.errorJSON(w, tenant, http.StatusBadRequest, "railgate: bad parameter payload: %v", err)
		return
	}
	req.Name = name
	if req.Grid != nil {
		if !photonrail.IsGridExperiment(name) {
			g.errorJSON(w, tenant, http.StatusBadRequest, "railgate: experiment %q does not take a grid", name)
			return
		}
		// The daemon's own request bounds, applied before any queueing:
		// a grid the fleet would refuse is refused here, identically,
		// without burning a slot.
		if _, err := railserve.ValidateGridSpec(*req.Grid); err != nil {
			g.errorJSON(w, tenant, http.StatusBadRequest, "%v", err)
			return
		}
	}
	p := paramsOf(req)
	key := photonrail.ExperimentKey(name, p)

	g.mu.Lock()
	closed := g.closed
	g.mu.Unlock()
	if closed {
		g.errorJSON(w, tenant, http.StatusServiceUnavailable, "railgate: shutting down")
		return
	}

	ts := g.tenants.get(tenant)
	if ok, retry := ts.take(g.now()); !ok {
		g.reject(w, tenant, name, "rate", retry)
		return
	}

	// Durable-store fast path: an identical request — from any tenant,
	// before or after a daemon restart — serves the stored object with
	// zero new simulations and no slot held.
	if g.store != nil {
		if ent, ok := g.store.Get(key); ok {
			run := g.newRun(tenant, name, key, req, 0)
			run.cached = true
			g.tel.Events.Emit(telemetry.Event{Type: evCached, Req: run.id, Tenant: tenant, Exp: name, Key: key})
			g.finishRun(run, ent, nil)
			g.respondRun(w, r, run)
			return
		}
	}

	cost := requestCost(name, p)
	limits := ts.limits
	waiter, err := g.fq.Enqueue(tenant, limits.Weight, limits.MaxInFlight, limits.MaxQueue, cost)
	if err != nil {
		g.reject(w, tenant, name, "queue", time.Second)
		return
	}
	run := g.newRun(tenant, name, key, req, cost)
	g.tel.Events.Emit(telemetry.Event{Type: evSubmitted, Req: run.id, Tenant: tenant, Exp: name, Key: key, Cells: int(cost)})

	if isAsync(r) {
		g.runWG.Add(1)
		go func() {
			defer g.runWG.Done()
			g.execute(g.baseCtx, run, waiter)
		}()
		g.reqTotal.With(tenant, strconv.Itoa(http.StatusAccepted)).Inc()
		w.Header().Set("Location", "/v1/runs/"+run.id)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"id":     run.id,
			"name":   name,
			"key":    key,
			"status": "queued",
			"result": "/v1/runs/" + run.id,
			"events": "/v1/runs/" + run.id + "/events",
		})
		return
	}
	g.execute(r.Context(), run, waiter)
	g.respondRun(w, r, run)
}

// isAsync reports the ?async query toggle.
func isAsync(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// decodeBody parses the optional JSON parameter payload; an empty body
// is the zero payload.
func decodeBody(body io.Reader, req *opusnet.ExpRequestPayload) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}

// newRun registers a fresh run record.
func (g *Gateway) newRun(tenant, name, key string, req opusnet.ExpRequestPayload, cost float64) *run {
	rn := &run{
		id:         fmt.Sprintf("g%d", g.reqSeq.Add(1)),
		tenant:     tenant,
		experiment: name,
		key:        key,
		req:        req,
		cost:       cost,
		start:      g.now(),
		done:       make(chan struct{}),
	}
	g.mu.Lock()
	g.runs[rn.id] = rn
	g.mu.Unlock()
	return rn
}

// execute waits for a fair-queue grant, runs the experiment, spills the
// result to the durable store, and finalizes the run.
func (g *Gateway) execute(ctx context.Context, rn *run, waiter *fqWaiter) {
	if err := waiter.Wait(ctx, g.fq); err != nil {
		g.finishRun(rn, resultstore.Entry{}, fmt.Errorf("railgate: cancelled while queued: %w", err))
		return
	}
	defer g.fq.Release(waiter)
	g.inflightG.Inc()
	defer g.inflightG.Dec()
	g.tel.Events.Emit(telemetry.Event{Type: evStarted, Req: rn.id, Tenant: rn.tenant, Exp: rn.experiment, Key: rn.key})
	onProgress := func(done, total int) {
		g.tel.Events.Emit(telemetry.Event{Type: evProgress, Req: rn.id, Tenant: rn.tenant, Exp: rn.experiment, Done: done, Total: total})
	}
	res, err := g.runner.RunExperiment(ctx, rn.req, onProgress)
	if err != nil {
		g.finishRun(rn, resultstore.Entry{}, err)
		return
	}
	ent := resultstore.Entry{
		Experiment:  rn.experiment,
		Grid:        res.Grid,
		Rendered:    res.Rendered,
		RenderedCSV: res.RenderedCSV,
		RowsJSON:    res.RowsJSON,
	}
	rn.shared = res.Shared
	if g.store != nil {
		if perr := g.store.Put(rn.key, ent); perr != nil && g.logf != nil {
			g.logf("railgate: spill %s: %v", rn.key, perr)
		}
	}
	g.finishRun(rn, ent, nil)
}

// finishRun records the run's final state, emits the terminal event,
// observes the latency, and evicts the oldest completed runs beyond
// the retention bound.
func (g *Gateway) finishRun(rn *run, ent resultstore.Entry, err error) {
	rn.entry, rn.err = ent, err
	d := g.now().Sub(rn.start)
	g.durations.With(rn.experiment).Observe(d.Seconds())
	ev := telemetry.Event{Type: evResult, Req: rn.id, Tenant: rn.tenant, Exp: rn.experiment, Key: rn.key, DurationNS: d.Nanoseconds()}
	if err != nil {
		ev.Type = evError
		ev.Err = err.Error()
	}
	close(rn.done)
	g.mu.Lock()
	g.doneOrder = append(g.doneOrder, rn.id)
	for len(g.doneOrder) > g.maxRuns {
		delete(g.runs, g.doneOrder[0])
		g.doneOrder = g.doneOrder[1:]
	}
	g.mu.Unlock()
	g.tel.Events.Emit(ev)
}

// respondRun writes a completed (or failed) run as the response.
func (g *Gateway) respondRun(w http.ResponseWriter, r *http.Request, rn *run) {
	<-rn.done
	if rn.err != nil {
		code := http.StatusBadGateway
		if errors.Is(rn.err, context.Canceled) || errors.Is(rn.err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		g.errorJSON(w, rn.tenant, code, "%v", rn.err)
		return
	}
	g.serveEntry(w, r, rn, http.StatusOK)
}

func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	id := r.PathValue("id")
	g.mu.Lock()
	rn := g.runs[id]
	g.mu.Unlock()
	if rn == nil {
		g.errorJSON(w, tenant, http.StatusNotFound, "railgate: unknown run %q", id)
		return
	}
	select {
	case <-rn.done:
	default:
		g.reqTotal.With(tenant, strconv.Itoa(http.StatusAccepted)).Inc()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{"id": rn.id, "status": "running"})
		return
	}
	if rn.err != nil {
		g.errorJSON(w, tenant, http.StatusInternalServerError, "%v", rn.err)
		return
	}
	g.serveEntry(w, r, rn, http.StatusOK)
}

func (g *Gateway) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.mu.Lock()
	rn := g.runs[id]
	g.mu.Unlock()
	if rn == nil {
		g.errorJSON(w, tenantOf(r), http.StatusNotFound, "railgate: unknown run %q", id)
		return
	}
	g.tel.Events.ServeSSE(w, r,
		func(ev telemetry.Event) bool { return ev.Req == id },
		func(ev telemetry.Event) bool { return ev.Type == evResult || ev.Type == evError })
}

// negotiate picks the response format: the ?format query parameter
// (table/csv/json, the CLI spellings) when present, else the first
// supported media type in Accept order; JSON is the default.
func negotiate(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		switch strings.TrimSpace(strings.SplitN(part, ";", 2)[0]) {
		case "application/json":
			return "json"
		case "text/csv":
			return "csv"
		case "text/plain":
			return "table"
		case "*/*", "text/*":
			return "json"
		}
	}
	return "json"
}

// serveEntry writes the run's rendering in the negotiated format. The
// bytes are exactly what the engine rendered once at execution time —
// identical to the corresponding CLI output, and identical across
// store hits, daemon restarts, and gateways.
func (g *Gateway) serveEntry(w http.ResponseWriter, r *http.Request, rn *run, code int) {
	var body, ctype string
	switch negotiate(r) {
	case "json":
		body, ctype = rn.entry.RowsJSON, "application/json; charset=utf-8"
	case "csv":
		body, ctype = rn.entry.RenderedCSV, "text/csv; charset=utf-8"
	case "table", "text":
		body, ctype = rn.entry.Rendered, "text/plain; charset=utf-8"
	default:
		g.errorJSON(w, rn.tenant, http.StatusNotAcceptable, "railgate: unknown format (want table, csv, or json)")
		return
	}
	g.reqTotal.With(rn.tenant, strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Railgate-Run", rn.id)
	w.Header().Set("Railgate-Key", rn.key)
	w.Header().Set("Railgate-Cached", strconv.FormatBool(rn.cached))
	w.Header().Set("Railgate-Shared", strconv.FormatBool(rn.shared))
	w.WriteHeader(code)
	_, _ = io.WriteString(w, body)
}
