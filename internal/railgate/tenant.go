package railgate

import (
	"math"
	"sync"
	"time"
)

// TenantLimits parameterizes one tenant's admission control. The zero
// value of each field selects the documented default, so
// Config.DefaultTenant{} yields a permissive tenant (no rate limit,
// shared slots, a 64-deep queue).
type TenantLimits struct {
	// RatePerSec is the sustained request rate admitted (token-bucket
	// refill; 0 = unlimited). Requests beyond the bucket are refused
	// with 429 and a Retry-After telling the tenant when a token will
	// exist.
	RatePerSec float64
	// Burst is the bucket depth (0 = max(1, RatePerSec)).
	Burst float64
	// MaxInFlight caps the tenant's concurrently executing requests
	// (0 = no per-tenant cap; the gateway's slot pool still bounds the
	// total).
	MaxInFlight int
	// MaxQueue caps the tenant's waiting (admitted but not yet
	// executing) requests; one more is refused with 429. 0 = 64.
	MaxQueue int
	// Weight scales the tenant's fair-queue share (0 = 1).
	Weight float64
}

// defaultMaxQueue is the queue-depth cap when TenantLimits.MaxQueue is
// zero.
const defaultMaxQueue = 64

// withDefaults resolves the zero-value conventions.
func (l TenantLimits) withDefaults() TenantLimits {
	if l.Burst <= 0 {
		l.Burst = math.Max(1, l.RatePerSec)
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = defaultMaxQueue
	}
	if l.Weight <= 0 {
		l.Weight = 1
	}
	return l
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	limits TenantLimits

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take spends one rate-limit token, refilling the bucket for the time
// elapsed since the last call. When no token is available it reports
// how long until one is — the Retry-After the gateway sends.
func (t *tenantState) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.limits.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.limits.RatePerSec
	} else {
		t.tokens = t.limits.Burst
	}
	if t.tokens > t.limits.Burst {
		t.tokens = t.limits.Burst
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	need := (1 - t.tokens) / t.limits.RatePerSec
	return false, time.Duration(math.Ceil(need*1000)) * time.Millisecond
}

// tenantSet resolves tenant names to their live state, creating each on
// first sight from the per-tenant overrides or the default limits.
type tenantSet struct {
	def       TenantLimits
	overrides map[string]TenantLimits

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newTenantSet(def TenantLimits, overrides map[string]TenantLimits) *tenantSet {
	return &tenantSet{
		def:       def.withDefaults(),
		overrides: overrides,
		tenants:   make(map[string]*tenantState),
	}
}

// names lists every tenant seen so far (unsorted; callers sort).
func (s *tenantSet) names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants { //lint:allow maporder callers sort the snapshot
		out = append(out, name)
	}
	return out
}

func (s *tenantSet) get(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		limits := s.def
		if o, ok := s.overrides[name]; ok {
			limits = o.withDefaults()
		}
		t = &tenantState{limits: limits}
		s.tenants[name] = t
	}
	return t
}
