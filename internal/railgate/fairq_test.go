package railgate

import (
	"context"
	"errors"
	"testing"
	"time"
)

// isGranted reports whether the waiter's slot grant has fired, without
// blocking.
func isGranted(w *fqWaiter) bool {
	select {
	case <-w.ready:
		return true
	default:
		return false
	}
}

// grantedOf returns the single newly granted waiter among ws, failing
// the test on zero or multiple grants — queues with one slot dispatch
// exactly one waiter at a time, so grant order is fully deterministic.
func grantedOf(t *testing.T, ws map[*fqWaiter]string) *fqWaiter {
	t.Helper()
	var got *fqWaiter
	for w := range ws { //lint:allow maporder at most one waiter is granted, so order is immaterial
		if isGranted(w) {
			if got != nil {
				t.Fatalf("two waiters granted at once")
			}
			got = w
		}
	}
	if got == nil {
		t.Fatalf("no waiter granted")
	}
	return got
}

// drainOrder releases the one granted waiter at a time and records the
// tenant order the queue dispatched.
func drainOrder(t *testing.T, q *fairQueue, ws map[*fqWaiter]string) []string {
	t.Helper()
	var order []string
	for len(ws) > 0 {
		w := grantedOf(t, ws)
		order = append(order, ws[w])
		delete(ws, w)
		q.Release(w)
	}
	return order
}

// TestFairQueueInterleavesFloodedTenant pins the headline property: a
// tenant with a deep backlog does not starve a tenant with a single
// request — the light tenant's request jumps the backlog as soon as a
// slot frees.
func TestFairQueueInterleavesFloodedTenant(t *testing.T) {
	q := newFairQueue(1)
	ws := make(map[*fqWaiter]string)
	for i := 0; i < 4; i++ {
		w, err := q.Enqueue("flood", 1, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ws[w] = "flood"
	}
	// The first flood request was granted immediately (slot was free).
	// A light tenant arriving now must run next, not after the backlog.
	w, err := q.Enqueue("light", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws[w] = "light"
	order := drainOrder(t, q, ws)
	want := []string{"flood", "light", "flood", "flood", "flood"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueCostMakesGridsPay pins that request cost shapes the
// share: after one expensive (many-cell) request, the cheap tenant's
// whole backlog drains before the expensive tenant runs again.
func TestFairQueueCostMakesGridsPay(t *testing.T) {
	q := newFairQueue(1)
	ws := make(map[*fqWaiter]string)
	for i := 0; i < 2; i++ {
		w, err := q.Enqueue("grids", 1, 0, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		ws[w] = "grids"
	}
	for i := 0; i < 3; i++ {
		w, err := q.Enqueue("cheap", 1, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ws[w] = "cheap"
	}
	order := drainOrder(t, q, ws)
	want := []string{"grids", "cheap", "cheap", "cheap", "grids"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueWeightsScaleShare pins that a weight-2 tenant drains two
// requests for every one of a weight-1 tenant under contention.
func TestFairQueueWeightsScaleShare(t *testing.T) {
	q := newFairQueue(1)
	// Occupy the slot so every enqueue below queues.
	hold, err := q.Enqueue("hold", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := make(map[*fqWaiter]string)
	for i := 0; i < 4; i++ {
		w, err := q.Enqueue("heavy", 2, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ws[w] = "heavy"
	}
	for i := 0; i < 2; i++ {
		w, err := q.Enqueue("light", 1, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ws[w] = "light"
	}
	q.Release(hold)
	order := drainOrder(t, q, ws)
	// heavy tags: 0.5, 1.0, 1.5, 2.0; light tags: 1.0, 2.0 — ties break
	// by enqueue order (heavy enqueued first).
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueQueueFull pins the depth cap: maxQueue waiting requests
// admit, one more refuses with ErrQueueFull, and a free depth admits
// again.
func TestFairQueueQueueFull(t *testing.T) {
	q := newFairQueue(1)
	first, err := q.Enqueue("t", 1, 0, 2, 1) // granted immediately
	if err != nil {
		t.Fatal(err)
	}
	var queued []*fqWaiter
	for i := 0; i < 2; i++ {
		w, err := q.Enqueue("t", 1, 0, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, w)
	}
	if _, err := q.Enqueue("t", 1, 0, 2, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap enqueue error = %v, want ErrQueueFull", err)
	}
	if got := q.Queued("t"); got != 2 {
		t.Fatalf("Queued = %d, want 2", got)
	}
	q.Release(first)
	if !isGranted(queued[0]) {
		t.Fatal("next waiter not granted after release")
	}
	if _, err := q.Enqueue("t", 1, 0, 2, 1); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

// TestFairQueueMaxInflightCaps pins the per-tenant concurrency cap: with
// two slots free, a maxInflight-1 tenant holds only one.
func TestFairQueueMaxInflightCaps(t *testing.T) {
	q := newFairQueue(2)
	w1, err := q.Enqueue("t", 1, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := q.Enqueue("t", 1, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !isGranted(w1) {
		t.Fatal("first waiter should hold a slot")
	}
	if isGranted(w2) {
		t.Fatal("second waiter granted past maxInflight=1")
	}
	// Another tenant still gets the second slot.
	w3, err := q.Enqueue("other", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !isGranted(w3) {
		t.Fatal("other tenant should take the free slot")
	}
	q.Release(w1)
	if !isGranted(w2) {
		t.Fatal("second waiter not granted after first released")
	}
	q.Release(w2)
	q.Release(w3)
}

// TestFairQueueWaitCancelRemoves pins that a cancelled wait leaves the
// queue (later releases skip it) and reports the context error.
func TestFairQueueWaitCancelRemoves(t *testing.T) {
	q := newFairQueue(1)
	hold, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w2.Wait(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait = %v, want context.Canceled", err)
	}
	if got := q.Queued("t"); got != 1 {
		t.Fatalf("Queued after cancel = %d, want 1", got)
	}
	q.Release(hold)
	if !isGranted(w3) {
		t.Fatal("release should skip the cancelled waiter and grant the next")
	}
}

// TestFairQueueWaitKeepsRacedGrant pins the grant/cancel race contract:
// a waiter granted before its context died observes the grant (nil), so
// the slot is released through the normal path instead of leaking.
func TestFairQueueWaitKeepsRacedGrant(t *testing.T) {
	q := newFairQueue(1)
	w, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.Wait(ctx, q); err != nil {
		t.Fatalf("Wait after racing grant = %v, want nil (keep the grant)", err)
	}
	q.Release(w)
	w2, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !isGranted(w2) {
		t.Fatal("slot not free after released raced grant")
	}
}

// TestFairQueueWaitBlocksUntilGrant exercises the blocking path: a
// waiter parked behind a held slot is granted when the holder releases.
func TestFairQueueWaitBlocksUntilGrant(t *testing.T) {
	q := newFairQueue(1)
	hold, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := q.Enqueue("t", 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w2.Wait(context.Background(), q) }()
	select {
	case err := <-done:
		t.Fatalf("Wait returned %v before release", err)
	case <-time.After(10 * time.Millisecond):
	}
	q.Release(hold)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after release")
	}
	q.Release(w2)
}

// TestFairQueueDepths pins the scrape snapshot shape: only tenants with
// waiting requests appear.
func TestFairQueueDepths(t *testing.T) {
	q := newFairQueue(1)
	if _, err := q.Enqueue("a", 1, 0, 0, 1); err != nil { // granted
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue("a", 1, 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Enqueue("b", 1, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	d := q.Depths()
	if d["a"] != 2 || d["b"] != 1 || len(d) != 2 {
		t.Fatalf("Depths = %v, want map[a:2 b:1]", d)
	}
}
