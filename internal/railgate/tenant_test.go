package railgate

import (
	"testing"
	"time"
)

// TestTokenBucketRefill walks a frozen clock through the bucket
// contract: burst spends, refusal reports a correct Retry-After, and
// elapsed time refills at RatePerSec.
func TestTokenBucketRefill(t *testing.T) {
	ts := &tenantState{limits: TenantLimits{RatePerSec: 1, Burst: 2}.withDefaults()}
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if ok, _ := ts.take(now); !ok {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	ok, retry := ts.take(now)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry != time.Second {
		t.Fatalf("Retry-After = %v, want 1s (rate 1/s, bucket empty)", retry)
	}

	now = now.Add(500 * time.Millisecond)
	ok, retry = ts.take(now)
	if ok {
		t.Fatal("take admitted with half a token")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("Retry-After = %v, want 500ms", retry)
	}

	now = now.Add(500 * time.Millisecond)
	if ok, _ := ts.take(now); !ok {
		t.Fatal("take refused after full refill interval")
	}
}

// TestTokenBucketCapsAtBurst pins that idle time cannot bank more than
// Burst tokens.
func TestTokenBucketCapsAtBurst(t *testing.T) {
	ts := &tenantState{limits: TenantLimits{RatePerSec: 10, Burst: 2}.withDefaults()}
	now := time.Unix(1000, 0)
	if ok, _ := ts.take(now); !ok {
		t.Fatal("first take refused")
	}
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := ts.take(now); !ok {
			t.Fatalf("take %d refused after long idle (burst should be banked)", i)
		}
	}
	if ok, _ := ts.take(now); ok {
		t.Fatal("take beyond burst admitted after long idle")
	}
}

// TestTokenBucketUnlimited pins that RatePerSec 0 never refuses.
func TestTokenBucketUnlimited(t *testing.T) {
	ts := &tenantState{limits: TenantLimits{}.withDefaults()}
	now := time.Unix(1000, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := ts.take(now); !ok {
			t.Fatal("unlimited tenant refused")
		}
	}
}

// TestTenantLimitsDefaults pins the zero-value conventions.
func TestTenantLimitsDefaults(t *testing.T) {
	l := TenantLimits{}.withDefaults()
	if l.Burst != 1 || l.MaxQueue != defaultMaxQueue || l.Weight != 1 {
		t.Fatalf("withDefaults() = %+v", l)
	}
	l = TenantLimits{RatePerSec: 5}.withDefaults()
	if l.Burst != 5 {
		t.Fatalf("Burst default = %v, want RatePerSec", l.Burst)
	}
}

// TestTenantSetOverrides pins that named overrides apply and unnamed
// tenants share the default policy (but not the default state).
func TestTenantSetOverrides(t *testing.T) {
	set := newTenantSet(
		TenantLimits{RatePerSec: 2},
		map[string]TenantLimits{"vip": {RatePerSec: 100, Weight: 8}},
	)
	if got := set.get("vip").limits.Weight; got != 8 {
		t.Fatalf("vip weight = %v, want 8", got)
	}
	a, b := set.get("a"), set.get("b")
	if a == b {
		t.Fatal("distinct tenants share state")
	}
	if a.limits.RatePerSec != 2 || a.limits.Burst != 2 {
		t.Fatalf("default tenant limits = %+v", a.limits)
	}
	if set.get("a") != a {
		t.Fatal("tenant state not stable across lookups")
	}
	names := set.names()
	if len(names) != 3 {
		t.Fatalf("names = %v, want 3 tenants", names)
	}
}
