package railgate

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// ErrQueueFull reports a tenant's queue-depth cap was exceeded; the
// gateway answers it with 429 + Retry-After.
var ErrQueueFull = fmt.Errorf("railgate: tenant queue full")

// fairQueue is a start-time-fair weighted queue over a bounded slot
// pool — the scheduler that keeps one tenant's 4096-cell grid from
// starving another tenant's fig4.
//
// Each admitted request is stamped with a virtual start/finish time:
// vstart = max(global virtual time, the tenant's last virtual finish),
// vfinish = vstart + cost/weight. When a slot frees, the eligible
// request (per-tenant FIFO heads, tenants under their in-flight cap)
// with the smallest virtual finish is granted, and the global virtual
// time advances to its virtual start. A flooding tenant therefore only
// advances its own virtual clock: its backlog's finish tags race ahead
// of real time, and a light tenant's next request — whose tag starts at
// the global clock — jumps the backlog. With equal weights and equal
// costs this degrades to round-robin; weights scale each tenant's
// share; costs (grid cell counts) make a huge grid pay for its size.
//
// The zero value is not usable; construct with newFairQueue.
type fairQueue struct {
	mu       sync.Mutex
	slots    int // free execution slots
	vtime    float64
	tenants  map[string]*fqTenant
	grantSeq uint64 // FIFO tiebreak for equal virtual finish tags
}

// fqTenant is one tenant's scheduling state.
type fqTenant struct {
	lastFinish float64
	inflight   int
	queue      []*fqWaiter
}

// fqWaiter is one queued request. ready closes when a slot is granted;
// granted/cancelled are guarded by the queue mutex.
type fqWaiter struct {
	tenantID    string
	weight      float64
	maxInflight int
	cost        float64
	vstart      float64
	vfinish     float64
	seq         uint64
	ready       chan struct{}
	granted     bool
	cancelled   bool
}

// newFairQueue builds a queue dispatching over the given slot count
// (minimum 1).
func newFairQueue(slots int) *fairQueue {
	if slots < 1 {
		slots = 1
	}
	return &fairQueue{slots: slots, tenants: make(map[string]*fqTenant)}
}

// Enqueue admits one request for the tenant, or refuses with
// ErrQueueFull when the tenant already has maxQueue requests waiting.
// weight scales the tenant's share (minimum treated as 1); maxInflight
// caps the tenant's concurrently granted slots (0 = no per-tenant cap);
// cost is the request's size in scheduling units (grid cell count; 1
// for scalar experiments).
func (q *fairQueue) Enqueue(tenantID string, weight float64, maxInflight, maxQueue int, cost float64) (*fqWaiter, error) {
	if weight <= 0 {
		weight = 1
	}
	if cost < 1 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[tenantID]
	if t == nil {
		t = &fqTenant{}
		q.tenants[tenantID] = t
	}
	if maxQueue > 0 && len(t.queue) >= maxQueue {
		return nil, ErrQueueFull
	}
	w := &fqWaiter{
		tenantID:    tenantID,
		weight:      weight,
		maxInflight: maxInflight,
		cost:        cost,
		ready:       make(chan struct{}),
	}
	w.vstart = q.vtime
	if t.lastFinish > w.vstart {
		w.vstart = t.lastFinish
	}
	w.vfinish = w.vstart + cost/weight
	t.lastFinish = w.vfinish
	q.grantSeq++
	w.seq = q.grantSeq
	t.queue = append(t.queue, w)
	q.scheduleLocked()
	return w, nil
}

// Wait blocks until the waiter is granted a slot or ctx expires. A
// cancelled wait that raced its grant keeps the grant (the caller
// observes nil and proceeds to fail fast under its dead context,
// releasing the slot normally).
func (w *fqWaiter) Wait(ctx context.Context, q *fairQueue) error {
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	q.mu.Lock()
	if w.granted {
		q.mu.Unlock()
		return nil
	}
	w.cancelled = true
	t := q.tenants[w.tenantID]
	for i, qw := range t.queue {
		if qw == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	q.mu.Unlock()
	return ctx.Err()
}

// Release returns a granted slot to the pool and dispatches the next
// eligible waiter.
func (q *fairQueue) Release(w *fqWaiter) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t := q.tenants[w.tenantID]; t != nil {
		t.inflight--
	}
	q.slots++
	q.scheduleLocked()
}

// Depths snapshots the per-tenant queued (not yet granted) request
// counts — the queue-depth gauge's scrape feed.
func (q *fairQueue) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for id, t := range q.tenants { //lint:allow maporder snapshot map; consumers sort or index by tenant
		if len(t.queue) > 0 {
			out[id] = len(t.queue)
		}
	}
	return out
}

// Queued reports one tenant's current queue depth.
func (q *fairQueue) Queued(tenantID string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t := q.tenants[tenantID]; t != nil {
		return len(t.queue)
	}
	return 0
}

// scheduleLocked grants free slots to the eligible waiters with the
// smallest virtual finish tags. Tenants are scanned in sorted order so
// ties break deterministically (then by enqueue sequence).
func (q *fairQueue) scheduleLocked() {
	for q.slots > 0 {
		ids := make([]string, 0, len(q.tenants))
		for id, t := range q.tenants { //lint:allow maporder ids are sorted before use
			if len(t.queue) == 0 {
				continue
			}
			head := t.queue[0]
			if head.maxInflight > 0 && t.inflight >= head.maxInflight {
				continue
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return
		}
		sort.Strings(ids)
		var best *fqWaiter
		var bestTenant *fqTenant
		for _, id := range ids {
			t := q.tenants[id]
			head := t.queue[0]
			if best == nil || head.vfinish < best.vfinish ||
				(head.vfinish == best.vfinish && head.seq < best.seq) {
				best, bestTenant = head, t
			}
		}
		bestTenant.queue = bestTenant.queue[1:]
		bestTenant.inflight++
		q.slots--
		if best.vstart > q.vtime {
			q.vtime = best.vstart
		}
		best.granted = true
		close(best.ready)
	}
}
